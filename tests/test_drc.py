"""Tests for the spacing DRC checker."""

import pytest

from repro.layout import Layer, Rect, build_layout
from repro.layout.drc import PAD_CLEARANCE_RULE, SpacingViolation, check_spacing


def test_generated_layouts_are_spacing_clean(c17_design, rca4_design):
    assert check_spacing(c17_design) == []
    assert check_spacing(rca4_design) == []


def test_alu_layout_spacing_clean():
    from repro.circuit import alu4

    assert check_spacing(build_layout(alu4())) == []


def test_planted_violation_reported(c17_design):
    from repro.layout.design import LayoutDesign

    shapes = list(c17_design.shapes)
    # Plant a metal2 wire 0.5 um away from an existing metal2 shape.
    victim = next(
        s for s in shapes if s.layer is Layer.METAL2 and s.net not in ("VDD", "GND")
    )
    shapes.append(
        Rect(
            Layer.METAL2,
            victim.urx + 0.5,
            victim.lly,
            victim.urx + 2.0,
            victim.ury,
            "INTRUDER",
        )
    )
    sabotaged = LayoutDesign(
        name=c17_design.name,
        source=c17_design.source,
        mapped=c17_design.mapped,
        placement=c17_design.placement,
        plan=c17_design.plan,
        shapes=shapes,
        transistors=c17_design.transistors,
        cell_of_net=c17_design.cell_of_net,
        row_base=c17_design.row_base,
    )
    violations = check_spacing(sabotaged)
    assert violations
    worst = violations[0]
    assert {worst.shape_a.net, worst.shape_b.net} >= {"INTRUDER"} or any(
        "INTRUDER" in (v.shape_a.net, v.shape_b.net) for v in violations
    )
    assert 0 < worst.severity <= 1


def test_severity_metric():
    a = Rect(Layer.METAL1, 0, 0, 1, 1, "x")
    b = Rect(Layer.METAL1, 1.75, 0, 3, 1, "y")
    violation = SpacingViolation(a, b, 0.75, 1.5)
    assert violation.severity == pytest.approx(0.5)


def test_pad_clearance_rule_is_smaller():
    from repro.layout.geometry import DesignRules

    assert PAD_CLEARANCE_RULE < DesignRules().metal1_space
