"""Unit tests for the analytic figure reproductions (no heavy pipeline)."""


import pytest

from repro.experiments import (
    ExperimentConfig,
    example1_required_coverage,
    example2_residual_dl,
    figure1_coverage_growth,
    figure2_model_curves,
    figure3_weight_histogram,
    figure4_coverage_curves,
    figure5_dl_vs_T,
    figure6_dl_vs_gamma,
)

SMALL = ExperimentConfig(benchmark="c17", max_random_patterns=128, seed=7)


def test_figure1_structure():
    data = figure1_coverage_growth()
    assert set(data.series) == {"T(k)", "theta(k)"}
    assert data.scalars["R"] == pytest.approx(2.0)
    assert "Fig.1" in data.render
    theta_values = [v for _, v in data.series["theta(k)"]]
    assert max(theta_values) <= 0.96 + 1e-12


def test_figure2_structure():
    data = figure2_model_curves()
    wb = dict(data.series["Williams-Brown"])
    eq11 = dict(data.series["eq11"])
    assert eq11[0.5] < wb[0.5]
    assert eq11[1.0] > 0
    assert data.scalars["residual_dl_ppm"] > 0


def test_examples():
    e1 = example1_required_coverage()
    assert e1.scalars["T_eq11"] == pytest.approx(0.9775, abs=1e-3)
    e2 = example2_residual_dl()
    assert e2.scalars["dl_eq11_ppm"] == pytest.approx(2873, abs=2)


def test_figure3_small_pipeline():
    data = figure3_weight_histogram(SMALL)
    assert data.scalars["n_faults"] > 50
    assert data.scalars["log10_spread"] > 1.0
    assert "histogram" in data.series


def test_figure4_small_pipeline():
    data = figure4_coverage_curves(SMALL)
    assert set(data.series) == {"T(k)", "theta(k)", "Gamma(k)"}
    assert data.scalars["final_T"] == 1.0
    assert 0 < data.scalars["theta_max"] <= 1.0


def test_figure5_small_pipeline():
    data = figure5_dl_vs_T(SMALL)
    assert {"simulated", "Williams-Brown", "fitted-eq11"} == set(data.series)
    assert data.scalars["R_fit"] > 0
    assert 0.5 <= data.scalars["theta_max_fit"] <= 1.0


def test_figure6_small_pipeline():
    data = figure6_dl_vs_gamma(SMALL)
    assert {"simulated", "DL(Gamma)"} == set(data.series)
    assert data.scalars["final_gamma"] <= 1.0
    assert data.scalars["dl_actual_ppm"] >= 0
