"""Property-based layout tests: every generated layout must verify clean."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, GateType
from repro.layout import SpatialIndex, build_layout, extract_transistors, verify_layout
from repro.layout.geometry import Layer, Rect


@st.composite
def small_circuits(draw):
    kinds = [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
             GateType.XOR, GateType.NOT, GateType.BUF]
    n_inputs = draw(st.integers(min_value=2, max_value=5))
    n_gates = draw(st.integers(min_value=2, max_value=14))
    ckt = Circuit(name="prop")
    nets = [ckt.add_input(f"i{k}") for k in range(n_inputs)]
    for g in range(n_gates):
        gt = draw(st.sampled_from(kinds))
        fan = 1 if gt in (GateType.NOT, GateType.BUF) else draw(st.integers(2, 4))
        sources = [nets[draw(st.integers(0, len(nets) - 1))] for _ in range(fan)]
        ckt.add_gate(gt, sources, f"g{g}")
        nets.append(f"g{g}")
    ckt.add_output(nets[-1])
    ckt.validate()
    return ckt


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ckt=small_circuits())
def test_generated_layouts_always_verify_clean(ckt):
    design = build_layout(ckt)
    report = verify_layout(design)
    assert report.clean, (report.split_nets, report.merged_nets, report.shorts[:2])
    # Geometric transistor recovery matches the generated netlist exactly.
    assert len(extract_transistors(design)) == len(design.transistors)


@settings(max_examples=25, deadline=None)
@given(
    rects=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0.5, max_value=10),
            st.floats(min_value=0.5, max_value=10),
        ),
        min_size=2,
        max_size=40,
    ),
    cell_size=st.floats(min_value=3.0, max_value=40.0),
)
def test_spatial_index_candidate_pairs_complete(rects, cell_size):
    shapes = [Rect(Layer.METAL1, x, y, x + w, y + h) for x, y, w, h in rects]
    index = SpatialIndex(shapes, cell_size=cell_size)
    pairs = set()
    for a, b in index.candidate_pairs():
        pairs.add((id(a), id(b)))
        pairs.add((id(b), id(a)))
    for i, a in enumerate(shapes):
        for b in shapes[i + 1 :]:
            if a.intersects(b):
                assert (id(a), id(b)) in pairs
