"""Unit tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NULL_SPAN


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with collection disabled."""
    obs.disable()
    yield
    obs.disable()


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------
def test_span_nesting_builds_a_tree():
    collector, _ = obs.enable()
    with obs.span("outer", stage="pipeline"):
        with obs.span("inner_a"):
            pass
        with obs.span("inner_a"):
            pass
        with obs.span("inner_b"):
            with obs.span("leaf"):
                pass

    assert len(collector.roots) == 1
    outer = collector.roots[0]
    assert outer.name == "outer"
    assert outer.attributes == {"stage": "pipeline"}
    assert [c.name for c in outer.children] == ["inner_a", "inner_a", "inner_b"]
    assert [c.name for c in outer.children[2].children] == ["leaf"]
    assert len(collector.find("inner_a")) == 2


def test_span_records_wall_and_cpu_time():
    collector, _ = obs.enable()
    with obs.span("timed"):
        time.sleep(0.01)
    (span,) = collector.roots
    assert span.wall_time >= 0.009
    assert span.end_wall is not None and span.end_cpu is not None
    # sleeping burns wall time, not CPU
    assert span.cpu_time < span.wall_time


def test_span_set_attaches_attributes():
    collector, _ = obs.enable()
    with obs.span("stage") as active:
        active.set(n_faults=7).set(coverage=0.5)
    assert collector.roots[0].attributes == {"n_faults": 7, "coverage": 0.5}


def test_stage_timings_aggregate_by_name():
    collector, _ = obs.enable()
    for _ in range(3):
        with obs.span("repeated"):
            pass
    timings = collector.stage_timings()
    assert set(timings) == {"repeated"}
    assert timings["repeated"] >= 0.0


def test_spans_are_thread_safe():
    collector, _ = obs.enable()

    def worker(tag: str) -> None:
        with obs.span("thread_root", tag=tag):
            with obs.span("thread_child"):
                pass

    threads = [threading.Thread(target=worker, args=(str(i),)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Each thread contributes exactly one root with one child: no cross-talk.
    assert len(collector.roots) == 8
    assert all(len(r.children) == 1 for r in collector.roots)


# ---------------------------------------------------------------------------
# No-op (disabled) path
# ---------------------------------------------------------------------------
def test_disabled_span_is_shared_noop_singleton():
    assert not obs.is_enabled()
    assert obs.span("anything", attr=1) is NULL_SPAN
    assert obs.span("other") is NULL_SPAN
    with obs.span("works_as_context_manager") as s:
        s.set(ignored=True)
    # Metric helpers silently discard.
    obs.inc("counter")
    obs.observe("hist", 1.0)
    obs.set_gauge("gauge", 2.0)
    assert obs.collector() is None and obs.registry() is None


def test_disabled_instrumentation_overhead_is_negligible():
    """100k disabled metric+span calls must stay far under a second."""
    assert not obs.is_enabled()
    start = time.perf_counter()
    for _ in range(100_000):
        obs.inc("x")
        obs.span("y")
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0


def test_enable_disable_round_trip():
    collector, registry = obs.enable()
    assert obs.is_enabled()
    assert obs.collector() is collector and obs.registry() is registry
    obs.inc("seen")
    assert registry.counter("seen").value == 1
    obs.disable()
    obs.inc("seen")  # discarded
    assert registry.counter("seen").value == 1


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(5)
    assert registry.counter("c").value == 6
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)
    registry.gauge("g").set(1.5)
    registry.gauge("g").set(2.5)
    assert registry.gauge("g").value == 2.5


def test_histogram_bucketing():
    hist = Histogram("h", bounds=[1.0, 10.0, 100.0])
    for value in (0.5, 0.9, 1.0, 5.0, 50.0, 500.0):
        hist.observe(value)
    # buckets are [lo, hi): <1.0, [1,10), [10,100), >=100
    assert hist.buckets == [2, 2, 1, 1]
    assert hist.count == 6
    assert hist.min == 0.5 and hist.max == 500.0
    assert hist.mean == pytest.approx(sum((0.5, 0.9, 1.0, 5.0, 50.0, 500.0)) / 6)
    populated = hist.nonzero_buckets()
    assert populated[0] == (None, 1.0, 2)
    assert populated[-1] == (100.0, None, 1)


def test_histogram_default_bounds_span_decades():
    hist = Histogram("weights")
    hist.observe(1e-8)
    hist.observe(1e-2)
    hist.observe(1e4)
    assert hist.count == 3
    assert len(hist.nonzero_buckets()) == 3  # three different decades


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=[10.0, 1.0])


def test_histogram_percentile_tracks_sorted_raw_samples():
    # Bucketed percentiles are estimates; with bucket-aligned samples they
    # must stay within one bucket of the exact (sorted-sample) answer.
    import random

    rng = random.Random(42)
    samples = [rng.uniform(0.001, 1000.0) for _ in range(500)]
    hist = Histogram("h")
    for value in samples:
        hist.observe(value)
    ranked = sorted(samples)
    for q in (10, 25, 50, 75, 90, 95, 99):
        exact = ranked[min(len(ranked) - 1, int(q / 100.0 * len(ranked)))]
        estimate = hist.percentile(q)
        # Default bounds are decade-spaced: the estimate must land within
        # one decade of the exact sample statistic.
        assert exact / 10.0 <= estimate <= exact * 10.0


def test_histogram_percentile_edge_cases():
    hist = Histogram("h")
    hist.observe(5.0)
    hist.observe(7.0)
    assert hist.percentile(0) == 5.0  # exact min
    assert hist.percentile(100) == 7.0  # exact max
    assert 5.0 <= hist.percentile(50) <= 7.0  # clamped inside [min, max]
    with pytest.raises(ValueError):
        hist.percentile(-1)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_percentile_empty_raises():
    # A percentile of nothing is undefined; the old 0.0 silently masked
    # instruments that never observed a sample.
    hist = Histogram("empty")
    with pytest.raises(ValueError, match="empty histogram 'empty'"):
        hist.percentile(50)
    with pytest.raises(ValueError, match="no samples observed"):
        hist.percentile(0)
    # Out-of-range q still reports the range error, samples or not.
    with pytest.raises(ValueError, match=r"\[0, 100\]"):
        hist.percentile(150)

def test_counter_values_and_merge_deltas():
    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.counter("b").inc(1)
    assert registry.counter_values() == {"a": 3, "b": 1}
    registry.merge_counter_deltas(
        {"a": 2, "b": 0, "c": 5, "skipme": 7}, skip=frozenset({"skipme"})
    )
    assert registry.counter_values() == {"a": 5, "b": 1, "c": 5}


def test_registry_snapshot_is_jsonable():
    import json

    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.gauge("b").set(0.25)
    registry.histogram("c").observe(2.0)
    snap = registry.snapshot()
    parsed = json.loads(json.dumps(snap))
    assert parsed["counters"]["a"] == 3
    assert parsed["gauges"]["b"] == 0.25
    assert parsed["histograms"]["c"]["count"] == 1


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------
def test_manifest_round_trip(tmp_path):
    from repro.experiments import ExperimentConfig
    from repro.obs.manifest import RunManifest, config_hash, read_manifests

    collector, registry = obs.enable()
    with obs.span("pipeline.run"):
        with obs.span("stage_a"):
            pass
    registry.counter("pipeline.cache_miss").inc()
    registry.histogram("weights").observe(1e-6)

    config = ExperimentConfig(benchmark="c17", seed=99)
    manifest = RunManifest.from_run(
        config,
        collector=collector,
        registry=registry,
        cache="miss",
        results={"R": 1.9, "theta_max": 0.96},
    )
    path = tmp_path / "trace.jsonl"
    n_records = manifest.write(str(path))
    assert n_records >= 3  # manifest + >=1 span + metrics

    (parsed,) = read_manifests(str(path))
    assert parsed.benchmark == "c17"
    assert parsed.seed == 99
    assert parsed.cache == "miss"
    assert parsed.config_hash == config_hash(config)
    assert parsed.config["max_random_patterns"] == 768
    assert parsed.results == {"R": 1.9, "theta_max": 0.96}
    assert "pipeline.run" in parsed.stage_timings
    assert parsed.spans[0]["name"] == "pipeline.run"
    assert parsed.metrics["counters"]["pipeline.cache_miss"] == 1


def test_manifest_append_accumulates_runs(tmp_path):
    from repro.obs.manifest import RunManifest, read_manifests

    path = tmp_path / "trace.jsonl"
    RunManifest(benchmark="c17", seed=1).write(str(path))
    RunManifest(benchmark="c432", seed=2).write(str(path))
    manifests = read_manifests(str(path))
    assert [m.benchmark for m in manifests] == ["c17", "c432"]


def test_read_manifests_skips_torn_final_line(tmp_path):
    from repro.obs.manifest import RunManifest, read_manifests

    path = tmp_path / "trace.jsonl"
    RunManifest(benchmark="c17", seed=1).write(str(path))
    RunManifest(
        benchmark="c432", seed=2, metrics={"counters": {"x": 1}}
    ).write(str(path))
    # Tear the final (metrics) record mid-write, the way a killed run
    # leaves it: the run's manifest line survives, its last record doesn't.
    content = path.read_text()
    path.write_text(content[: len(content) - len(content.splitlines()[-1]) // 2 - 1])
    with pytest.warns(RuntimeWarning, match="corrupt/truncated"):
        manifests = read_manifests(str(path))
    assert [m.benchmark for m in manifests] == ["c17", "c432"]


def test_read_manifests_skips_garbage_interior_line(tmp_path):
    from repro.obs.manifest import RunManifest, read_manifests

    path = tmp_path / "trace.jsonl"
    RunManifest(benchmark="c17", seed=1).write(str(path))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("{not json at all\n")
        handle.write("[1, 2, 3]\n")
    RunManifest(benchmark="c432", seed=2).write(str(path))
    with pytest.warns(RuntimeWarning):
        manifests = read_manifests(str(path))
    assert [m.benchmark for m in manifests] == ["c17", "c432"]


def test_config_hash_is_stable_and_sensitive():
    from repro.experiments import ExperimentConfig
    from repro.obs.manifest import config_hash

    a = config_hash(ExperimentConfig(benchmark="c17"))
    b = config_hash(ExperimentConfig(benchmark="c17"))
    c = config_hash(ExperimentConfig(benchmark="c17", seed=7))
    assert a == b
    assert a != c


# ---------------------------------------------------------------------------
# Instrumented pipeline pieces
# ---------------------------------------------------------------------------
def test_fault_sim_records_detection_counts(c17_circuit):
    from repro.atpg.patterns import random_patterns
    from repro.simulation import FaultSimulator, collapse_faults

    sim = FaultSimulator(c17_circuit)
    faults = collapse_faults(c17_circuit)
    patterns = random_patterns(len(c17_circuit.primary_inputs), 32, seed=3)
    result = sim.run(patterns, faults=faults, drop_detected=False)

    # Every detected fault has a positive count; n-detection sets shrink.
    for fault in result.detected:
        assert result.detections_of(fault) >= 1
    assert result.detection_counts
    assert max(result.detection_counts.values()) > 1
    n1 = result.n_detection_coverage(1)
    n5 = result.n_detection_coverage(5)
    assert n1 == result.coverage
    assert 0.0 <= n5 <= n1
    assert set(result.detected_n_times(1)) == set(result.detected)


def test_pipeline_increments_cache_counters():
    from repro.experiments import ExperimentConfig, run_experiment

    _, registry = obs.enable()
    config = ExperimentConfig(benchmark="c17", seed=4242, max_random_patterns=64)
    run_experiment(config)
    assert registry.counter("pipeline.cache_miss").value == 1
    assert registry.counter("pipeline.cache_hit").value == 0
    run_experiment(config)
    assert registry.counter("pipeline.cache_hit").value == 1


def test_profile_report_renders(c17_circuit):
    from repro.simulation import FaultSimulator, collapse_faults
    from repro.atpg.patterns import random_patterns

    collector, registry = obs.enable()
    sim = FaultSimulator(c17_circuit)
    patterns = random_patterns(len(c17_circuit.primary_inputs), 16, seed=1)
    sim.run(patterns, faults=collapse_faults(c17_circuit))

    report = obs.render_profile(collector, registry)
    assert "fault_sim.run" in report
    assert "fault_sim.patterns_applied" in report
    assert "counter" in report
