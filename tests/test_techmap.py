"""Unit tests for technology mapping onto the physical cell library."""

import random

import pytest

from repro.circuit import Circuit, GateType, c17, c432_like, parity_tree, ripple_carry_adder
from repro.layout.techmap import MAX_CELL_FANIN, techmap
from repro.simulation import LogicSimulator

_PHYSICAL = {GateType.NOT, GateType.NAND, GateType.NOR}


def _assert_equivalent(original: Circuit, mapped: Circuit, samples: int = 200):
    sim_a = LogicSimulator(original)
    sim_b = LogicSimulator(mapped)
    rng = random.Random(13)
    n = len(original.primary_inputs)
    for _ in range(samples):
        vec = [rng.randint(0, 1) for _ in range(n)]
        assert sim_a.outputs(vec) == sim_b.outputs(vec)


@pytest.mark.parametrize(
    "builder",
    [c17, lambda: ripple_carry_adder(4), lambda: parity_tree(6), c432_like],
)
def test_mapping_preserves_function(builder):
    original = builder()
    mapped = techmap(original)
    assert mapped.primary_inputs == original.primary_inputs
    assert mapped.primary_outputs == original.primary_outputs
    _assert_equivalent(original, mapped)


def test_only_physical_gates():
    mapped = techmap(c432_like())
    for gate in mapped.gates:
        assert gate.gate_type in _PHYSICAL
        assert len(gate.inputs) <= MAX_CELL_FANIN


def test_wide_gate_decomposition():
    ckt = Circuit(name="wide")
    inputs = [ckt.add_input(f"i{i}") for i in range(9)]
    ckt.add_gate(GateType.AND, inputs, "z")
    ckt.add_output("z")
    mapped = techmap(ckt)
    for gate in mapped.gates:
        assert len(gate.inputs) <= MAX_CELL_FANIN
    _assert_equivalent(ckt, mapped, samples=512)


def test_wide_nor_decomposition():
    ckt = Circuit(name="widenor")
    inputs = [ckt.add_input(f"i{i}") for i in range(7)]
    ckt.add_gate(GateType.NOR, inputs, "z")
    ckt.add_output("z")
    mapped = techmap(ckt)
    _assert_equivalent(ckt, mapped, samples=128)


def test_xor_uses_four_nands():
    ckt = Circuit(name="x2")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.XOR, ["a", "b"], "z")
    ckt.add_output("z")
    mapped = techmap(ckt)
    assert len(mapped.gates) == 4
    assert all(g.gate_type is GateType.NAND for g in mapped.gates)
    _assert_equivalent(ckt, mapped, samples=4)


def test_xnor_and_buf():
    ckt = Circuit(name="misc")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.XNOR, ["a", "b"], "x")
    ckt.add_gate(GateType.BUF, ["x"], "z")
    ckt.add_output("z")
    mapped = techmap(ckt)
    _assert_equivalent(ckt, mapped, samples=4)


def test_multi_input_xor():
    ckt = Circuit(name="x4")
    inputs = [ckt.add_input(f"i{i}") for i in range(4)]
    ckt.add_gate(GateType.XOR, inputs, "z")
    ckt.add_output("z")
    mapped = techmap(ckt)
    _assert_equivalent(ckt, mapped, samples=16)


def test_original_net_names_preserved():
    original = c17()
    mapped = techmap(original)
    original_nets = set(original.nets)
    mapped_nets = set(mapped.nets)
    assert original_nets <= mapped_nets
    # Decomposition-internal nets are suffixed with '$'.
    for net in mapped_nets - original_nets:
        assert "$" in net
