"""Unit tests for placement and routing."""

import pytest

from repro.circuit import ripple_carry_adder
from repro.layout import place, route, techmap
from repro.layout.placement import POWER_MARGIN
from repro.layout.routing import collect_pins


@pytest.fixture(scope="module")
def placed_rca():
    mapped = techmap(ripple_carry_adder(4))
    return mapped, place(mapped)


def test_all_cells_placed(placed_rca):
    mapped, placement = placed_rca
    assert len(placement.cells) == mapped.gate_count


def test_no_cell_overlap(placed_rca):
    _, placement = placed_rca
    for row in placement.rows:
        ordered = sorted(row, key=lambda pc: pc.x)
        for a, b in zip(ordered, ordered[1:]):
            assert a.x + a.cell.width <= b.x + 1e-9


def test_cells_avoid_lanes(placed_rca):
    _, placement = placed_rca
    for pc in placement.cells:
        for lo, hi in placement.lanes:
            assert pc.x + pc.cell.width <= lo + 1e-9 or pc.x >= hi - 1e-9


def test_cells_respect_power_margin(placed_rca):
    _, placement = placed_rca
    assert all(pc.x >= POWER_MARGIN for pc in placement.cells)


def test_rows_roughly_balanced(placed_rca):
    _, placement = placed_rca
    widths = [sum(pc.cell.width for pc in row) for row in placement.rows]
    if len(widths) > 2:
        assert max(widths[:-1]) <= 2.5 * min(widths[:-1])


def test_collect_pins_covers_signal_nets(placed_rca):
    mapped, placement = placed_rca
    pins = collect_pins(placement)
    # Every gate output and PI that is read must have pins.
    for gate in mapped.gates:
        assert gate.output in pins or gate.output not in {
            n for g in mapped.gates for n in g.inputs
        } | set(mapped.primary_outputs)
    for net, refs in pins.items():
        assert refs, net


def test_routing_assigns_trunks_everywhere(placed_rca):
    mapped, placement = placed_rca
    plan = route(placement)
    pins = collect_pins(placement)
    for net, net_route in plan.nets.items():
        rows = {p.row for p in net_route.pins}
        assert set(net_route.trunks) == rows
        if len(rows) > 1:
            assert net_route.riser_x is not None
        else:
            assert net_route.riser_x is None


def test_track_assignment_no_overlap(placed_rca):
    _, placement = placed_rca
    plan = route(placement)
    per_channel_track: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for net_route in plan.nets.values():
        for channel, (lo, hi, track) in net_route.trunks.items():
            per_channel_track.setdefault((channel, track), []).append((lo, hi))
    for intervals in per_channel_track.values():
        intervals.sort()
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert hi1 < lo2  # disjoint with positive gap


def test_channel_heights_positive(placed_rca):
    _, placement = placed_rca
    plan = route(placement)
    for channel in range(placement.n_rows):
        assert plan.channel_height(channel) > 0


def test_riser_columns_distinct_when_overlapping(placed_rca):
    _, placement = placed_rca
    plan = route(placement)
    risers = [
        (nr.riser_x, nr.channels[0], nr.channels[-1])
        for nr in plan.nets.values()
        if nr.riser_x is not None
    ]
    for i, (x1, lo1, hi1) in enumerate(risers):
        for x2, lo2, hi2 in risers[i + 1 :]:
            if lo1 <= hi2 and lo2 <= hi1:  # vertical spans overlap
                assert abs(x1 - x2) >= 3.5 - 1e-9


def test_clusters_stay_in_one_row():
    """Decomposition clusters (`base$k` instances) never straddle rows."""
    from repro.circuit import parity_tree
    from repro.layout import place, techmap

    mapped = techmap(parity_tree(16))  # XOR-rich: many 4-NAND clusters
    placement = place(mapped)
    row_of = {}
    for pc in placement.cells:
        row_of.setdefault(pc.cell.instance.split("$")[0], set()).add(pc.row)
    for base, rows in row_of.items():
        assert len(rows) == 1, (base, rows)
