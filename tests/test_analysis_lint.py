"""Unit tests for the structural netlist linter."""

import json

import pytest

from repro.analysis import (
    HIGH_FANOUT_THRESHOLD,
    Severity,
    lint_circuit,
)
from repro.circuit import Circuit, CircuitError, GateType, c17
from repro.circuit.iscas import BENCHMARKS


def build_clean() -> Circuit:
    ckt = Circuit(name="clean")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.AND, ["a", "b"], "c")
    ckt.add_output("c")
    return ckt


def rules_of(report) -> set[str]:
    return {f.rule for f in report.findings}


def test_clean_circuit_has_no_findings():
    report = lint_circuit(build_clean())
    assert report.findings == []
    assert report.max_severity is None
    assert report.stats["errors"] == 0


def test_c17_is_clean():
    assert lint_circuit(c17()).findings == []


def test_multi_driven_net_is_error():
    ckt = build_clean()
    ckt.add_gate(GateType.OR, ["a", "b"], "c", name="dup")
    report = lint_circuit(ckt)
    assert "multi-driven-net" in rules_of(report)
    finding = report.errors[0]
    assert finding.nets == ("c",)
    assert "dup" in finding.gates


def test_undriven_net_is_error():
    ckt = build_clean()
    ckt.add_gate(GateType.AND, ["a", "ghost"], "d")
    report = lint_circuit(ckt)
    assert "undriven-net" in rules_of(report)
    assert any(f.nets == ("ghost",) for f in report.errors)


def test_undriven_primary_output_is_error():
    ckt = build_clean()
    ckt.add_output("phantom")
    report = lint_circuit(ckt)
    assert any(
        f.rule == "undriven-net" and f.nets == ("phantom",)
        for f in report.errors
    )


def test_cycle_reported_with_actual_loop():
    ckt = Circuit(name="loop")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "y"], "x")
    ckt.add_gate(GateType.NOT, ["x"], "y")
    ckt.add_output("y")
    report = lint_circuit(ckt)
    cycle = next(f for f in report.errors if f.rule == "combinational-cycle")
    assert set(cycle.nets) == {"x", "y"}
    assert "->" in cycle.message


def test_dangling_output_is_warning():
    ckt = build_clean()
    ckt.add_gate(GateType.NOT, ["a"], "dead")
    report = lint_circuit(ckt)
    finding = next(f for f in report.findings if f.rule == "dangling-output")
    assert finding.severity is Severity.WARNING
    assert finding.nets == ("dead",)


def test_unreachable_logic_is_warning():
    ckt = build_clean()
    # A two-gate island: n1 is read (by n2) so it is not dangling, but
    # neither reaches the primary output.
    ckt.add_gate(GateType.NOT, ["a"], "n1")
    ckt.add_gate(GateType.NOT, ["n1"], "n2")
    report = lint_circuit(ckt)
    unreachable = [f for f in report.findings if f.rule == "unreachable-logic"]
    assert [f.nets for f in unreachable] == [("n1",)]
    assert any(f.rule == "dangling-output" and f.nets == ("n2",) for f in report.findings)


def test_tied_input_and_constant_net():
    ckt = Circuit(name="tied")
    ckt.add_input("a")
    ckt.add_gate(GateType.XOR, ["a", "a"], "z")  # constant 0
    ckt.add_output("z")
    report = lint_circuit(ckt)
    assert "tied-input" in rules_of(report)
    constant = next(f for f in report.findings if f.rule == "constant-net")
    assert constant.nets == ("z",)
    assert report.constants == {"z": 0}


def test_unused_input_is_info():
    ckt = build_clean()
    ckt.add_input("spare")
    report = lint_circuit(ckt)
    finding = next(f for f in report.findings if f.rule == "unused-input")
    assert finding.severity is Severity.INFO
    assert finding.nets == ("spare",)


def test_high_fanout_threshold():
    ckt = Circuit(name="fan")
    ckt.add_input("a")
    ckt.add_input("b")
    for i in range(HIGH_FANOUT_THRESHOLD):
        ckt.add_gate(GateType.AND, ["a", "b"], f"g{i}")
        ckt.add_output(f"g{i}")
    report = lint_circuit(ckt)
    flagged = [f for f in report.findings if f.rule == "high-fanout"]
    assert {f.nets[0] for f in flagged} == {"a", "b"}


def test_fanout_histogram_matches_pin_convention():
    report = lint_circuit(c17())
    # c17 has 11 nets; G3 and G11 and G16 feed two pins each, G22/G23 are
    # POs (one reader each), every other net feeds exactly one pin.
    assert sum(report.fanout_histogram.values()) == 11
    assert report.fanout_histogram[2] == 3
    assert report.fanout_histogram[1] == 8


def test_errors_sorted_first():
    ckt = build_clean()
    ckt.add_input("spare")                       # INFO
    ckt.add_gate(GateType.AND, ["a", "ghost"], "d")  # ERROR + dangling WARNING
    report = lint_circuit(ckt)
    ranks = [f.severity.rank for f in report.findings]
    assert ranks == sorted(ranks, reverse=True)


def test_report_json_round_trip():
    ckt = build_clean()
    ckt.add_input("spare")
    report = lint_circuit(ckt)
    payload = json.loads(report.to_json())
    assert payload["circuit"] == "clean"
    assert payload["stats"]["infos"] == 1
    assert payload["findings"][0]["rule"] == "unused-input"


def test_render_text_mentions_every_finding():
    ckt = build_clean()
    ckt.add_gate(GateType.OR, ["a", "b"], "c", name="dup")
    text = lint_circuit(ckt).render_text()
    assert "multi-driven-net" in text
    assert "ERROR" in text


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_linter_agrees_with_validate_on_builtins(name):
    circuit = BENCHMARKS[name]()
    report = lint_circuit(circuit)
    # Every built-in circuit validates, so the linter must report no ERRORs.
    circuit.validate()
    assert report.errors == []


@pytest.mark.parametrize(
    "breaker",
    [
        lambda c: c.add_gate(GateType.OR, ["G1", "G2"], "G10", name="dup"),
        lambda c: c.add_gate(GateType.AND, ["G1", "ghost"], "extra"),
        lambda c: c.add_output("phantom"),
    ],
)
def test_linter_agrees_with_validate_on_broken(breaker):
    circuit = c17()
    breaker(circuit)
    report = lint_circuit(circuit)
    with pytest.raises(CircuitError):
        circuit.validate()
    assert report.errors, "validate() raised but linter saw no ERROR"
