"""Unit tests for model fitting (R, theta_max, Agrawal n, susceptibility)."""

import math

import numpy as np
import pytest

from repro.core import (
    agrawal,
    coverage_at,
    fit_agrawal_n,
    fit_sousa_model,
    fit_susceptibility,
    sousa_defect_level,
    weighted_coverage_at,
)


def test_fit_sousa_recovers_parameters():
    y = 0.75
    r_true, theta_true = 1.9, 0.96
    coverages = np.linspace(0.05, 0.999, 40)
    dls = [sousa_defect_level(y, t, r_true, theta_true) for t in coverages]
    fit = fit_sousa_model(coverages, dls, y)
    assert fit.susceptibility_ratio == pytest.approx(r_true, abs=0.02)
    assert fit.theta_max == pytest.approx(theta_true, abs=0.005)
    assert fit.residual < 1e-6


def test_fit_sousa_with_noise():
    rng = np.random.default_rng(5)
    y = 0.75
    coverages = np.linspace(0.1, 0.99, 60)
    dls = np.array([sousa_defect_level(y, t, 2.2, 0.94) for t in coverages])
    noisy = np.clip(dls * (1 + rng.normal(0, 0.03, dls.shape)), 1e-9, 0.999)
    fit = fit_sousa_model(coverages, noisy, y)
    assert fit.susceptibility_ratio == pytest.approx(2.2, abs=0.3)
    assert fit.theta_max == pytest.approx(0.94, abs=0.02)


def test_fit_sousa_identifies_wb_data_as_r1():
    y = 0.8
    coverages = np.linspace(0.05, 0.999, 30)
    dls = [sousa_defect_level(y, t, 1.0, 1.0) for t in coverages]
    fit = fit_sousa_model(coverages, dls, y)
    assert fit.susceptibility_ratio == pytest.approx(1.0, abs=0.02)
    assert fit.theta_max == pytest.approx(1.0, abs=0.005)


def test_fit_sousa_predict():
    y = 0.75
    coverages = np.linspace(0.1, 0.99, 30)
    dls = [sousa_defect_level(y, t, 1.5, 0.97) for t in coverages]
    fit = fit_sousa_model(coverages, dls, y)
    assert fit.predict(y, 0.5) == pytest.approx(
        sousa_defect_level(y, 0.5, 1.5, 0.97), rel=0.02
    )


def test_fit_sousa_validation():
    with pytest.raises(ValueError):
        fit_sousa_model([0.5], [0.1], 0.75)
    with pytest.raises(ValueError):
        fit_sousa_model([0.5, 0.6], [0.1, 0.2], 1.5)


def test_fit_agrawal_n_recovers():
    y = 0.75
    n_true = 4.0
    coverages = np.linspace(0.05, 0.99, 40)
    dls = [agrawal(y, t, n_true) for t in coverages]
    assert fit_agrawal_n(coverages, dls, y) == pytest.approx(n_true, abs=0.05)


def test_fit_susceptibility_fixed_theta():
    s_true = math.e**2.5
    ks = [2, 4, 8, 32, 128, 1024, 8192]
    curve = [coverage_at(k, s_true) for k in ks]
    s_fit, theta = fit_susceptibility(ks, curve, theta_max=1.0)
    assert math.log(s_fit) == pytest.approx(2.5, abs=1e-6)
    assert theta == 1.0


def test_fit_susceptibility_free_theta():
    s_true, theta_true = math.e**1.4, 0.92
    ks = [2, 4, 8, 32, 128, 1024, 8192, 65536]
    curve = [weighted_coverage_at(k, s_true, theta_true) for k in ks]
    s_fit, theta_fit = fit_susceptibility(ks, curve)
    assert math.log(s_fit) == pytest.approx(1.4, abs=0.02)
    assert theta_fit == pytest.approx(theta_true, abs=0.005)


def test_fit_susceptibility_validation():
    with pytest.raises(ValueError):
        fit_susceptibility([2], [0.5])
    with pytest.raises(ValueError):
        fit_susceptibility([0.5, 2], [0.1, 0.2])
