"""Event bus, typed events, sinks and the terminal progress renderer."""

import io
import json
import warnings

import pytest

from repro import obs
from repro.obs.events import (
    CheckpointEvent,
    Event,
    EventBus,
    JsonlEventSink,
    ListSink,
    ProgressEvent,
    ProgressRenderer,
    RetryEvent,
    StageEvent,
    event_from_record,
)


@pytest.fixture(autouse=True)
def _clean_events_state():
    obs.disable_events()
    obs.disable()
    yield
    obs.disable_events()
    obs.disable()


# ---------------------------------------------------------------------------
# events and records
# ---------------------------------------------------------------------------
def test_events_stamp_both_clocks():
    event = ProgressEvent(stage="fault_sim", completed=3, total=10)
    assert event.ts > 0
    assert event.ts_mono > 0
    assert event.type == "ProgressEvent"


def test_event_record_round_trip():
    for event in (
        ProgressEvent(
            stage="fault_sim",
            completed=5,
            total=20,
            unit="patterns",
            data={"detection_rate": 0.5},
        ),
        StageEvent(stage="atpg", status="end", wall_s=1.25, data={"n": 3}),
        RetryEvent(
            point="parallel.chunk",
            key=2,
            attempt=1,
            reason="boom",
            delay_s=0.5,
        ),
        CheckpointEvent(stage="stuck_sim", action="save", path="/tmp/x.ckpt"),
    ):
        record = event.to_record()
        assert record["type"] == event.type
        rebuilt = event_from_record(json.loads(json.dumps(record)))
        assert type(rebuilt) is type(event)
        assert rebuilt.to_record() == record


def test_unknown_event_type_degrades_to_base_event():
    rebuilt = event_from_record({"type": "NoSuchEvent", "ts": 1.0, "ts_mono": 2.0})
    assert type(rebuilt) is Event
    assert rebuilt.ts == 1.0


# ---------------------------------------------------------------------------
# bus
# ---------------------------------------------------------------------------
def test_bus_fans_out_in_subscription_order():
    bus = EventBus()
    seen: list[str] = []
    bus.subscribe(lambda e: seen.append("a"))
    bus.subscribe(lambda e: seen.append("b"))
    bus.publish(StageEvent(stage="x"))
    assert seen == ["a", "b"]
    assert bus.published == 1


def test_broken_subscriber_is_dropped_with_warning():
    bus = EventBus()

    def broken(event):
        raise ValueError("sink died")

    healthy = ListSink(bus)
    bus.subscribe(broken)
    with pytest.warns(RuntimeWarning, match="unsubscribing"):
        bus.publish(StageEvent(stage="one"))
    # The broken sink is gone; the healthy one keeps receiving.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        bus.publish(StageEvent(stage="two"))
    assert [e.stage for e in healthy.events] == ["one", "two"]


def test_emit_is_noop_without_bus():
    assert not obs.events_enabled()
    obs.emit(StageEvent(stage="ignored"))  # must not raise
    bus = obs.enable_events()
    sink = ListSink(bus)
    obs.emit(StageEvent(stage="seen"))
    obs.disable_events()
    obs.emit(StageEvent(stage="ignored-again"))
    assert [e.stage for e in sink.events] == ["seen"]


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------
def test_jsonl_sink_writes_parseable_flushed_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus()
    sink = JsonlEventSink(str(path), bus)
    bus.publish(ProgressEvent(stage="s", completed=1, total=2))
    # Flushed per event: readable before close.
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    bus.publish(StageEvent(stage="s", status="end", wall_s=0.1))
    sink.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["type"] for r in records] == ["ProgressEvent", "StageEvent"]
    assert sink.written == 2
    # A closed sink discards silently instead of raising.
    bus.publish(StageEvent(stage="late"))
    assert sink.written == 2


# ---------------------------------------------------------------------------
# renderer
# ---------------------------------------------------------------------------
def _renderer(min_interval=0.0):
    stream = io.StringIO()  # not a TTY -> line-per-update mode
    return ProgressRenderer(stream=stream, min_interval=min_interval), stream


def test_renderer_formats_progress_fields():
    renderer, stream = _renderer()
    renderer(
        ProgressEvent(
            stage="fault_sim",
            completed=128,
            total=256,
            unit="patterns",
            data={"faults_remaining": 42, "detection_rate": 0.75},
        )
    )
    line = stream.getvalue()
    assert "[fault_sim]" in line
    assert "128/256 patterns" in line
    assert "42 faults left" in line
    assert "75.0% detected" in line


def test_renderer_eta_uses_ewma_of_chunk_latencies():
    renderer, stream = _renderer()
    for done, latency in ((1, 2.0), (2, 4.0)):
        renderer(
            ProgressEvent(
                stage="par",
                completed=done,
                total=4,
                unit="chunks",
                data={"chunk_id": done - 1, "latency_s": latency, "workers": 2},
            )
        )
    # EWMA after (2.0, 4.0) with alpha=0.4: 0.4*4 + 0.6*2 = 2.8;
    # 2 chunks remain over 2 workers -> eta = 2.8s.
    assert renderer._ewma["par"] == pytest.approx(2.8)
    assert "eta 2.8s" in stream.getvalue().splitlines()[-1]


def test_renderer_throttles_non_tty_but_prints_final(tmp_path):
    renderer, stream = _renderer(min_interval=3600.0)
    for k in range(1, 10):
        renderer(ProgressEvent(stage="s", completed=k, total=10))
    renderer(ProgressEvent(stage="s", completed=10, total=10))
    lines = stream.getvalue().splitlines()
    # First update prints, the rest throttle, the terminal one always prints.
    assert len(lines) == 2
    assert lines[-1].startswith("[s] | 10/10")


def test_renderer_gives_stage_retry_checkpoint_their_own_lines():
    renderer, stream = _renderer()
    renderer(StageEvent(stage="atpg", status="start"))
    renderer(StageEvent(stage="atpg", status="end", wall_s=2.0, data={"n": 1}))
    renderer(
        RetryEvent(
            point="parallel.chunk", key=1, attempt=1, reason="x", delay_s=0.25
        )
    )
    renderer(CheckpointEvent(stage="atpg", action="save"))
    renderer.close()
    lines = stream.getvalue().splitlines()
    assert lines[0] == "[atpg] started"
    assert lines[1].startswith("[atpg] done in 2.00s")
    assert "[retry] parallel.chunk key=1" in lines[2]
    assert lines[3] == "[checkpoint] save atpg"


# ---------------------------------------------------------------------------
# campaign events and the bounded envelope buffer (the event bridge)
# ---------------------------------------------------------------------------
def test_campaign_and_job_event_json_round_trip():
    from repro.obs.events import CampaignEvent, JobEvent

    inner = ProgressEvent(
        stage="fault_sim", completed=7, total=32, unit="patterns"
    )
    for event in (
        CampaignEvent(
            job="abc123", action="done", data={"result_sha": "d" * 64}
        ),
        JobEvent(
            job="abc123",
            config_hash="abc123",
            worker_pid=4242,
            inner=inner.to_record(),
        ),
    ):
        record = event.to_record()
        rebuilt = event_from_record(json.loads(json.dumps(record)))
        assert type(rebuilt) is type(event)
        assert rebuilt.to_record() == record


def test_job_event_rebuilds_typed_inner_event():
    from repro.obs.events import JobEvent

    inner = ProgressEvent(stage="podem", completed=3, total=9)
    wrapped = JobEvent(job="j1", inner=inner.to_record())
    assert wrapped.inner_type == "ProgressEvent"
    rebuilt = wrapped.inner_event()
    assert isinstance(rebuilt, ProgressEvent)
    assert rebuilt.stage == "podem"
    assert rebuilt.completed == 3


def test_bounded_buffer_writes_envelopes_and_reader_round_trips(tmp_path):
    from repro.obs.events import BoundedEventBuffer, read_event_envelopes

    path = tmp_path / "chan.jsonl"
    buffer = BoundedEventBuffer(
        str(path), tags={"job": "j1", "worker_pid": 7}, flush_size=2
    )
    buffer(StageEvent(stage="a", status="start"))
    buffer(StageEvent(stage="a", status="end"))  # hits flush_size
    buffer.close()

    envelopes, offset = read_event_envelopes(str(path))
    assert offset == path.stat().st_size
    assert [e["tags"]["job"] for e in envelopes] == ["j1"] * len(envelopes)
    records = [r for e in envelopes for r in e["events"]]
    assert [r["stage"] for r in records] == ["a", "a"]
    assert all(e["dropped"] == 0 for e in envelopes)
    # Nothing new: the reader stays put.
    assert read_event_envelopes(str(path), offset) == ([], offset)


def test_bounded_buffer_drops_oldest_and_publishes_loss(tmp_path):
    from repro.obs.events import BoundedEventBuffer, read_event_envelopes

    path = tmp_path / "chan.jsonl"
    # Huge flush_size + interval: nothing flushes until close, so the
    # capacity bound must drop the oldest records.
    buffer = BoundedEventBuffer(
        str(path),
        capacity=3,
        flush_size=10_000,
        min_interval=10_000.0,
        clock=lambda: 0.0,
    )
    for i in range(8):
        buffer(ProgressEvent(stage="s", completed=i))
    buffer.close()

    envelopes, _ = read_event_envelopes(str(path))
    final = envelopes[-1]
    # 8 published, capacity 3: the 5 oldest dropped, count published.
    assert final["dropped"] == 5
    kept = [r["completed"] for e in envelopes for r in e["events"]]
    assert kept == [5, 6, 7]
    assert buffer.dropped == 5


def test_bounded_buffer_close_always_writes_final_envelope(tmp_path):
    from repro.obs.events import BoundedEventBuffer, read_event_envelopes

    path = tmp_path / "chan.jsonl"
    buffer = BoundedEventBuffer(str(path))
    buffer.close()  # no events at all — the envelope still lands
    envelopes, _ = read_event_envelopes(str(path))
    assert len(envelopes) == 1
    assert envelopes[0]["events"] == []
    assert envelopes[0]["dropped"] == 0
    # A closed buffer discards silently instead of raising into the bus.
    buffer(StageEvent(stage="late"))
    assert buffer.envelopes_written == 1


def test_bounded_buffer_throttles_by_interval(tmp_path):
    from repro.obs.events import BoundedEventBuffer

    now = {"t": 0.0}
    buffer = BoundedEventBuffer(
        str(tmp_path / "chan.jsonl"),
        min_interval=1.0,
        flush_size=10_000,
        clock=lambda: now["t"],
    )
    buffer(StageEvent(stage="a"))  # t=0: within interval of construction
    assert buffer.envelopes_written == 0
    now["t"] = 0.5
    buffer(StageEvent(stage="b"))
    assert buffer.envelopes_written == 0
    now["t"] = 1.5
    buffer(StageEvent(stage="c"))  # interval elapsed: flush
    assert buffer.envelopes_written == 1


def test_envelope_reader_leaves_torn_tail_for_next_call(tmp_path):
    from repro.obs.events import read_event_envelopes

    path = tmp_path / "chan.jsonl"
    whole = json.dumps({"tags": {}, "dropped": 0, "events": []})
    path.write_text(whole + "\n" + '{"tags": {}, "dro')  # torn mid-write
    envelopes, offset = read_event_envelopes(str(path))
    assert len(envelopes) == 1
    assert offset == len(whole) + 1
    # The writer finishes the line: the next call picks it up.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('pped": 1, "events": []}\n')
    more, offset2 = read_event_envelopes(str(path), offset)
    assert [e["dropped"] for e in more] == [1]
    assert offset2 == path.stat().st_size


def test_envelope_reader_missing_file_is_empty():
    from repro.obs.events import read_event_envelopes

    assert read_event_envelopes("/nonexistent/chan.jsonl") == ([], 0)


def test_renderer_renders_job_events_with_job_prefix():
    from repro.obs.events import JobEvent

    stream = io.StringIO()
    renderer = ProgressRenderer(stream=stream, min_interval=0.0)
    inner = ProgressEvent(stage="fault_sim", completed=4, total=8, unit="p")
    renderer(JobEvent(job="abcdef123456", inner=inner.to_record()))
    out = stream.getvalue()
    assert "(abcdef1234)" in out
    assert "[fault_sim]" in out
    assert "4/8" in out
