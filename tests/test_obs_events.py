"""Event bus, typed events, sinks and the terminal progress renderer."""

import io
import json
import warnings

import pytest

from repro import obs
from repro.obs.events import (
    CheckpointEvent,
    Event,
    EventBus,
    JsonlEventSink,
    ListSink,
    ProgressEvent,
    ProgressRenderer,
    RetryEvent,
    StageEvent,
    event_from_record,
)


@pytest.fixture(autouse=True)
def _clean_events_state():
    obs.disable_events()
    obs.disable()
    yield
    obs.disable_events()
    obs.disable()


# ---------------------------------------------------------------------------
# events and records
# ---------------------------------------------------------------------------
def test_events_stamp_both_clocks():
    event = ProgressEvent(stage="fault_sim", completed=3, total=10)
    assert event.ts > 0
    assert event.ts_mono > 0
    assert event.type == "ProgressEvent"


def test_event_record_round_trip():
    for event in (
        ProgressEvent(
            stage="fault_sim",
            completed=5,
            total=20,
            unit="patterns",
            data={"detection_rate": 0.5},
        ),
        StageEvent(stage="atpg", status="end", wall_s=1.25, data={"n": 3}),
        RetryEvent(
            point="parallel.chunk",
            key=2,
            attempt=1,
            reason="boom",
            delay_s=0.5,
        ),
        CheckpointEvent(stage="stuck_sim", action="save", path="/tmp/x.ckpt"),
    ):
        record = event.to_record()
        assert record["type"] == event.type
        rebuilt = event_from_record(json.loads(json.dumps(record)))
        assert type(rebuilt) is type(event)
        assert rebuilt.to_record() == record


def test_unknown_event_type_degrades_to_base_event():
    rebuilt = event_from_record({"type": "NoSuchEvent", "ts": 1.0, "ts_mono": 2.0})
    assert type(rebuilt) is Event
    assert rebuilt.ts == 1.0


# ---------------------------------------------------------------------------
# bus
# ---------------------------------------------------------------------------
def test_bus_fans_out_in_subscription_order():
    bus = EventBus()
    seen: list[str] = []
    bus.subscribe(lambda e: seen.append("a"))
    bus.subscribe(lambda e: seen.append("b"))
    bus.publish(StageEvent(stage="x"))
    assert seen == ["a", "b"]
    assert bus.published == 1


def test_broken_subscriber_is_dropped_with_warning():
    bus = EventBus()

    def broken(event):
        raise ValueError("sink died")

    healthy = ListSink(bus)
    bus.subscribe(broken)
    with pytest.warns(RuntimeWarning, match="unsubscribing"):
        bus.publish(StageEvent(stage="one"))
    # The broken sink is gone; the healthy one keeps receiving.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        bus.publish(StageEvent(stage="two"))
    assert [e.stage for e in healthy.events] == ["one", "two"]


def test_emit_is_noop_without_bus():
    assert not obs.events_enabled()
    obs.emit(StageEvent(stage="ignored"))  # must not raise
    bus = obs.enable_events()
    sink = ListSink(bus)
    obs.emit(StageEvent(stage="seen"))
    obs.disable_events()
    obs.emit(StageEvent(stage="ignored-again"))
    assert [e.stage for e in sink.events] == ["seen"]


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------
def test_jsonl_sink_writes_parseable_flushed_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus()
    sink = JsonlEventSink(str(path), bus)
    bus.publish(ProgressEvent(stage="s", completed=1, total=2))
    # Flushed per event: readable before close.
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    bus.publish(StageEvent(stage="s", status="end", wall_s=0.1))
    sink.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["type"] for r in records] == ["ProgressEvent", "StageEvent"]
    assert sink.written == 2
    # A closed sink discards silently instead of raising.
    bus.publish(StageEvent(stage="late"))
    assert sink.written == 2


# ---------------------------------------------------------------------------
# renderer
# ---------------------------------------------------------------------------
def _renderer(min_interval=0.0):
    stream = io.StringIO()  # not a TTY -> line-per-update mode
    return ProgressRenderer(stream=stream, min_interval=min_interval), stream


def test_renderer_formats_progress_fields():
    renderer, stream = _renderer()
    renderer(
        ProgressEvent(
            stage="fault_sim",
            completed=128,
            total=256,
            unit="patterns",
            data={"faults_remaining": 42, "detection_rate": 0.75},
        )
    )
    line = stream.getvalue()
    assert "[fault_sim]" in line
    assert "128/256 patterns" in line
    assert "42 faults left" in line
    assert "75.0% detected" in line


def test_renderer_eta_uses_ewma_of_chunk_latencies():
    renderer, stream = _renderer()
    for done, latency in ((1, 2.0), (2, 4.0)):
        renderer(
            ProgressEvent(
                stage="par",
                completed=done,
                total=4,
                unit="chunks",
                data={"chunk_id": done - 1, "latency_s": latency, "workers": 2},
            )
        )
    # EWMA after (2.0, 4.0) with alpha=0.4: 0.4*4 + 0.6*2 = 2.8;
    # 2 chunks remain over 2 workers -> eta = 2.8s.
    assert renderer._ewma["par"] == pytest.approx(2.8)
    assert "eta 2.8s" in stream.getvalue().splitlines()[-1]


def test_renderer_throttles_non_tty_but_prints_final(tmp_path):
    renderer, stream = _renderer(min_interval=3600.0)
    for k in range(1, 10):
        renderer(ProgressEvent(stage="s", completed=k, total=10))
    renderer(ProgressEvent(stage="s", completed=10, total=10))
    lines = stream.getvalue().splitlines()
    # First update prints, the rest throttle, the terminal one always prints.
    assert len(lines) == 2
    assert lines[-1].startswith("[s] | 10/10")


def test_renderer_gives_stage_retry_checkpoint_their_own_lines():
    renderer, stream = _renderer()
    renderer(StageEvent(stage="atpg", status="start"))
    renderer(StageEvent(stage="atpg", status="end", wall_s=2.0, data={"n": 1}))
    renderer(
        RetryEvent(
            point="parallel.chunk", key=1, attempt=1, reason="x", delay_s=0.25
        )
    )
    renderer(CheckpointEvent(stage="atpg", action="save"))
    renderer.close()
    lines = stream.getvalue().splitlines()
    assert lines[0] == "[atpg] started"
    assert lines[1].startswith("[atpg] done in 2.00s")
    assert "[retry] parallel.chunk key=1" in lines[2]
    assert lines[3] == "[checkpoint] save atpg"
