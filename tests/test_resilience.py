"""Unit tests: failure taxonomy, retry policy, and the chaos harness."""

import pickle

import pytest

from repro.resilience import (
    ChaosInjectedError,
    ChaosInjectedFatalError,
    ChaosPlan,
    ChaosRule,
    FailureKind,
    RetryPolicy,
    chaos,
    classify_failure,
)


# ---------------------------------------------------------------------------
# classify_failure
# ---------------------------------------------------------------------------
def test_classify_transient_types():
    from concurrent.futures.process import BrokenProcessPool

    for exc in (
        BrokenProcessPool("worker died"),
        OSError("fork failed"),
        TimeoutError("deadline"),
        EOFError("pipe closed"),
        ChaosInjectedError("injected"),
    ):
        failure = classify_failure(exc, chunk_id=3)
        assert failure.kind is FailureKind.TRANSIENT
        assert failure.transient
        assert failure.chunk_id == 3
        assert type(exc).__name__ == failure.exception_type
        assert failure.exception_type in failure.reason


def test_classify_fatal_types():
    for exc in (
        ValueError("bad input"),
        AssertionError("invariant"),
        ChaosInjectedFatalError("injected fatal"),
    ):
        failure = classify_failure(exc)
        assert failure.kind is FailureKind.FATAL
        assert not failure.transient


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
def test_retry_policy_deterministic_exponential_backoff():
    policy = RetryPolicy(
        max_attempts=5, backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5
    )
    assert policy.delays() == [0.1, 0.2, 0.4, 0.5]
    # Same policy, same delays — no jitter.
    assert policy.delays() == RetryPolicy(
        max_attempts=5, backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5
    ).delays()


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy().delay(-1)


# ---------------------------------------------------------------------------
# Chaos harness
# ---------------------------------------------------------------------------
def test_chaos_noop_without_plan():
    chaos.uninstall()
    chaos.maybe_inject("parallel.chunk", key=0)  # must not raise
    assert chaos.planned_kind("checkpoint.save", key="atpg") is None
    assert chaos.current_plan() is None


def test_chaos_rule_matches_keys_and_attempts():
    rule = ChaosRule(
        point="parallel.chunk", kind="exception", keys={1, 2}, attempts={0}
    )
    assert rule.matches(0, "parallel.chunk", 1, 0)
    assert not rule.matches(0, "parallel.chunk", 3, 0)
    assert not rule.matches(0, "parallel.chunk", 1, 1)
    assert not rule.matches(0, "other.point", 1, 0)


def test_chaos_rule_rejects_unknown_kind_and_bad_rate():
    with pytest.raises(ValueError):
        ChaosRule(point="p", kind="explode")
    with pytest.raises(ValueError):
        ChaosRule(point="p", kind="exception", rate=1.5)


def test_chaos_rate_is_seed_deterministic():
    rule = ChaosRule(point="p", kind="exception", rate=0.5)
    outcomes_a = [rule.matches(7, "p", k, 0) for k in range(200)]
    outcomes_b = [rule.matches(7, "p", k, 0) for k in range(200)]
    assert outcomes_a == outcomes_b
    # A different seed re-rolls the outcomes.
    outcomes_c = [rule.matches(8, "p", k, 0) for k in range(200)]
    assert outcomes_a != outcomes_c
    # Rate bounds behave: 0 never fires, 1 always fires.
    never = ChaosRule(point="p", kind="exception", rate=0.0)
    always = ChaosRule(point="p", kind="exception", rate=1.0)
    assert not any(never.matches(7, "p", k, 0) for k in range(50))
    assert all(always.matches(7, "p", k, 0) for k in range(50))


def test_chaos_active_scopes_and_restores_plan():
    chaos.uninstall()
    plan = ChaosPlan(rules=(ChaosRule(point="p", kind="exception"),))
    with chaos.active(plan):
        assert chaos.current_plan() is plan
        with pytest.raises(ChaosInjectedError):
            chaos.maybe_inject("p")
    assert chaos.current_plan() is None


def test_chaos_fatal_kind_raises_fatal():
    plan = ChaosPlan(rules=(ChaosRule(point="p", kind="fatal"),))
    with chaos.active(plan), pytest.raises(ChaosInjectedFatalError):
        chaos.maybe_inject("p")


def test_chaos_cooperative_kinds_do_not_fire_actively():
    plan = ChaosPlan(
        rules=(ChaosRule(point="checkpoint.save", kind="truncate", keys={"atpg"}),)
    )
    with chaos.active(plan):
        chaos.maybe_inject("checkpoint.save", key="atpg")  # must not raise
        assert chaos.planned_kind("checkpoint.save", key="atpg") == "truncate"
        assert chaos.planned_kind("checkpoint.save", key="other") is None


def test_chaos_plan_is_picklable_for_worker_shipping():
    plan = ChaosPlan(
        rules=(
            ChaosRule(point="parallel.chunk", kind="crash", keys={0}, attempts={0}),
            ChaosRule(point="parallel.chunk", kind="sleep", sleep_s=0.5, rate=0.3),
        ),
        seed=42,
    )
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert clone.rule_for("parallel.chunk", 0, 0).kind == "crash"
