"""Unit tests for layout geometry primitives."""

import pytest

from repro.layout import DesignRules, Layer, Rect, bounding_box, facing_span


def test_rect_metrics():
    r = Rect(Layer.METAL1, 0, 0, 4, 2)
    assert r.width == 4
    assert r.height == 2
    assert r.area == 8
    assert r.center == (2, 1)
    assert r.min_dimension == 2
    assert r.length == 4


def test_degenerate_rect_rejected():
    with pytest.raises(ValueError):
        Rect(Layer.METAL1, 2, 0, 1, 1)


def test_intersects_and_overlap():
    a = Rect(Layer.METAL1, 0, 0, 2, 2)
    b = Rect(Layer.METAL1, 1, 1, 3, 3)
    c = Rect(Layer.METAL1, 5, 5, 6, 6)
    touch = Rect(Layer.METAL1, 2, 0, 4, 2)
    assert a.intersects(b)
    assert a.overlap_area(b) == 1.0
    assert not a.intersects(c)
    assert a.intersects(touch)  # edge contact counts
    assert a.overlap_area(touch) == 0.0


def test_distance():
    a = Rect(Layer.METAL1, 0, 0, 1, 1)
    b = Rect(Layer.METAL1, 4, 0, 5, 1)
    c = Rect(Layer.METAL1, 4, 5, 5, 6)
    assert a.distance_to(b) == 3.0
    assert a.distance_to(c) == pytest.approx((3**2 + 4**2) ** 0.5)
    assert a.distance_to(a) == 0.0


def test_translated_and_renamed():
    r = Rect(Layer.POLY, 0, 0, 1, 1, net="x")
    moved = r.translated(10, 5)
    assert (moved.llx, moved.lly, moved.urx, moved.ury) == (10, 5, 11, 6)
    assert moved.net == "x"
    assert r.renamed("y").net == "y"


def test_bounding_box():
    shapes = [
        Rect(Layer.METAL1, 0, 0, 1, 1),
        Rect(Layer.METAL2, 5, -2, 6, 7),
    ]
    box = bounding_box(shapes)
    assert (box.llx, box.lly, box.urx, box.ury) == (0, -2, 6, 7)
    assert bounding_box([]) is None


def test_facing_span_vertical_neighbours():
    a = Rect(Layer.METAL1, 0, 0, 10, 1)
    b = Rect(Layer.METAL1, 2, 3, 8, 4)
    spacing, run = facing_span(a, b)
    assert spacing == 2.0
    assert run == 6.0


def test_facing_span_horizontal_neighbours():
    a = Rect(Layer.METAL1, 0, 0, 1, 10)
    b = Rect(Layer.METAL1, 4, 2, 5, 6)
    spacing, run = facing_span(a, b)
    assert spacing == 3.0
    assert run == 4.0


def test_facing_span_diagonal_none():
    a = Rect(Layer.METAL1, 0, 0, 1, 1)
    b = Rect(Layer.METAL1, 5, 5, 6, 6)
    assert facing_span(a, b) is None


def test_facing_span_overlapping_none():
    a = Rect(Layer.METAL1, 0, 0, 4, 4)
    b = Rect(Layer.METAL1, 1, 1, 2, 2)
    assert facing_span(a, b) is None


def test_design_rules_lookup():
    rules = DesignRules()
    assert rules.min_width(Layer.METAL1) == rules.metal1_width
    assert rules.min_space(Layer.METAL2) == rules.metal2_space
    assert rules.metal1_pitch == rules.metal1_width + rules.metal1_space
    assert rules.min_width(Layer.POLY) == rules.poly_width


def test_layer_categories():
    assert Layer.METAL1.is_conductor
    assert Layer.POLY.is_conductor
    assert not Layer.CONTACT.is_conductor
    assert Layer.CONTACT.is_cut
    assert Layer.VIA.is_cut
    assert not Layer.NWELL.is_conductor
