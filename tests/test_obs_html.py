"""The self-contained HTML dashboard (``python -m repro obs html``).

Panel rendering is tested on synthetic manifests (fast, no pipeline run);
one end-to-end test drives the real CLI over a real traced run.  The
self-containment property — no scripts, no external URLs — is asserted on
every build because it is the whole point of the artifact.
"""

import json
import re
import xml.etree.ElementTree as ET

import pytest

from repro import obs
from repro.__main__ import main
from repro.obs.html import PANEL_IDS, build_report, write_report
from repro.obs.manifest import RunManifest, read_manifests


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.disable_events()
    yield
    obs.disable()
    obs.disable_events()


def _manifest(seed=1, **overrides):
    """A synthetic but schema-complete manifest."""
    base = dict(
        benchmark="c17",
        config={"benchmark": "c17", "seed": seed},
        config_hash=f"hash{seed:04d}aaaaaaaa",
        seed=seed,
        git="abc1234",
        cache="miss",
        engine={"engine": "serial", "workers": 1},
        resilience={
            "chunk_retries": 1,
            "chunks_salvaged": 0,
            "engine_degraded": False,
            "stages_restored": ["atpg"],
            "stages_recomputed": [],
        },
        stage_timings={"pipeline.run": 0.5, "pipeline.atpg": 0.2},
        spans=[
            {
                "name": "pipeline.run",
                "attributes": {},
                "wall_s": 0.5,
                "cpu_s": 0.4,
                "t0": 10.0,
                "t1": 10.5,
                "children": [
                    {
                        "name": "pipeline.atpg",
                        "attributes": {},
                        "wall_s": 0.2,
                        "cpu_s": 0.2,
                        "t0": 10.0,
                        "t1": 10.2,
                        "children": [],
                    },
                    {
                        "name": "fault_sim.run",
                        "attributes": {"worker_pid": 4242, "chunk_id": 0},
                        "wall_s": 0.1,
                        "cpu_s": 0.1,
                        "t0": 10.2,
                        "t1": 10.3,
                        "children": [],
                    },
                ],
            }
        ],
        metrics={"counters": {"fault_sim.faults_simulated": 22}},
        results={
            "final_T": 0.95,
            "final_DL": 0.006,
            "n_patterns": 40,
            "theta_max_fit": 0.97,
        },
        curves={
            "k": [1, 10, 40],
            "T": [0.3, 0.8, 0.95],
            "theta": [0.35, 0.85, 0.96],
            "DL": [0.2, 0.05, 0.006],
            "fit_T": [0.3, 0.6, 1.0],
            "fit_DL": [0.2, 0.08, 0.0],
            "n_detection": {
                "depth_cap": 16,
                "counts": [2, 5, 8, 7],
                "coverage_ge": [0.9, 0.7, 0.4],
            },
        },
        attribution={
            "stages": {"fault_sim": {"gate_evals": 1234}},
            "cone_buckets": {
                "le_0004": {"faults": 30, "gate_evals": 900},
                "le_0008": {"faults": 4, "gate_evals": 334},
            },
            "drops_per_block": {"0000": 20},
            "stage_wall_s": {"atpg": 0.2, "stuck_sim": 0.1},
            "reconcile": {
                "pipeline_wall_s": 0.5,
                "attributed_wall_s": 0.45,
                "unattributed_wall_s": 0.05,
                "coverage": 0.9,
            },
        },
    )
    base.update(overrides)
    return RunManifest(**base)


def _assert_self_contained(html):
    assert "<script" not in html
    assert not re.search(r"https?://", html)
    assert "<link" not in html
    # Every inline SVG must be parseable markup.
    for svg in re.findall(r"<svg.*?</svg>", html, re.S):
        ET.fromstring(svg)


# ---------------------------------------------------------------------------
# build_report
# ---------------------------------------------------------------------------
def test_full_report_has_every_panel_and_no_external_refs():
    html = build_report([_manifest(1), _manifest(2)])
    for panel_id in PANEL_IDS:
        assert f'id="{panel_id}"' in html
    _assert_self_contained(html)
    assert html.count("<svg") >= 5
    assert "<!DOCTYPE html>" in html
    # Data made it into the marks: the worker lane and the cone buckets.
    assert "pid 4242" in html
    assert "le_0004" in html


def test_report_on_old_schema_manifest_degrades_gracefully():
    # A manifest written before curves/attribution existed (and without
    # spans) renders notes, not exceptions.
    old = _manifest(
        3,
        curves={},
        attribution={},
        spans=[],
        resilience={},
        stage_timings={},
    )
    html = build_report([old])
    for panel_id in PANEL_IDS:
        assert f'id="{panel_id}"' in html
    _assert_self_contained(html)
    assert "no per-run curves" in html
    assert "--attribution" in html
    assert "no spans" in html


def test_report_labels_runs_by_engine_kind():
    new_style = _manifest(
        5, engine={"engine": "serial", "kind": "numpy", "workers": 1}
    )
    mixed = [
        _manifest(4, engine={"engine": "serial", "kind": "python", "workers": 1}),
        new_style,
    ]
    html = build_report(mixed)
    _assert_self_contained(html)
    # Trend panel summarises the engine mix of the history; the
    # attribution panel names the kind of the run it renders.
    assert "engines: numpy" in html
    assert "python" in html
    assert "fault-sim engine: numpy" in html


def test_report_on_pre_engine_kind_manifests_degrades_gracefully():
    # Histories recorded before the engine registry carry no "kind": the
    # panels render unlabelled rather than guessing (or crashing).
    old = [_manifest(6), _manifest(7, engine={})]
    html = build_report(old)
    for panel_id in PANEL_IDS:
        assert f'id="{panel_id}"' in html
    _assert_self_contained(html)
    assert "engines:" not in html
    assert "pre-engine-registry" in html


def test_report_with_no_manifests_renders_placeholders():
    html = build_report([])
    for panel_id in PANEL_IDS:
        assert f'id="{panel_id}"' in html
    _assert_self_contained(html)
    assert "no runs recorded" in html


def test_last_trims_history():
    manifests = [_manifest(seed) for seed in range(5)]
    html = build_report(manifests, last=2)
    assert "2 run(s)" in html


def test_html_escapes_untrusted_fields():
    evil = _manifest(4, benchmark='<script>alert("x")</script>')
    html = build_report([evil])
    assert "<script" not in html
    assert "&lt;script&gt;" in html


def test_write_report_returns_bytes(tmp_path):
    out = tmp_path / "report.html"
    n = write_report(str(out), [_manifest(1)])
    assert out.stat().st_size == n
    assert n > 1000


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _write_history(tmp_path, manifests):
    path = tmp_path / "runs.jsonl"
    for manifest in manifests:
        manifest.write(str(path))
    return path


def test_obs_html_cli_on_synthetic_history(tmp_path, capsys):
    path = _write_history(tmp_path, [_manifest(1), _manifest(2)])
    out = tmp_path / "dash.html"
    code = main(
        ["obs", "html", "--manifests", str(path), "--out", str(out)]
    )
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    html = out.read_text()
    for panel_id in PANEL_IDS:
        assert f'id="{panel_id}"' in html
    _assert_self_contained(html)


def test_obs_html_cli_last_flag(tmp_path, capsys):
    path = _write_history(tmp_path, [_manifest(s) for s in range(4)])
    out = tmp_path / "dash.html"
    assert (
        main(
            [
                "obs",
                "html",
                "--manifests",
                str(path),
                "--out",
                str(out),
                "--last",
                "2",
            ]
        )
        == 0
    )
    assert "2 of 4 recorded run(s)" in capsys.readouterr().out
    assert "2 run(s)" in out.read_text()


def test_obs_html_cli_missing_file_exits_2(tmp_path, capsys):
    code = main(
        [
            "obs",
            "html",
            "--manifests",
            str(tmp_path / "nope.jsonl"),
            "--out",
            str(tmp_path / "dash.html"),
        ]
    )
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_obs_html_cli_rejects_nonpositive_last(tmp_path, capsys):
    path = _write_history(tmp_path, [_manifest(1)])
    code = main(
        [
            "obs",
            "html",
            "--manifests",
            str(path),
            "--out",
            str(tmp_path / "dash.html"),
            "--last",
            "0",
        ]
    )
    assert code == 2
    assert "--last" in capsys.readouterr().err


def test_obs_html_end_to_end_real_run(tmp_path, capsys):
    """The real pipeline -> manifest -> dashboard path."""
    trace = tmp_path / "runs.jsonl"
    assert (
        main(["c17", "--seed", "77", "--attribution", "--trace", str(trace)])
        == 0
    )
    capsys.readouterr()
    out = tmp_path / "report.html"
    assert (
        main(["obs", "html", "--manifests", str(trace), "--out", str(out)])
        == 0
    )
    html = out.read_text()
    _assert_self_contained(html)
    for panel_id in PANEL_IDS:
        assert f'id="{panel_id}"' in html
    # The real run recorded curves and attribution, so the data panels
    # carry marks rather than placeholder notes.
    assert "no per-run curves" not in html
    assert "Stage wall time" in html
    assert "reconciliation" in html


# ---------------------------------------------------------------------------
# list --json / --limit (satellite)
# ---------------------------------------------------------------------------
def test_obs_list_json_emits_typed_rows(tmp_path, capsys):
    path = _write_history(tmp_path, [_manifest(1), _manifest(2)])
    code = main(["obs", "list", str(path), "--json"])
    assert code == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 2
    assert rows[0]["benchmark"] == "c17"
    assert rows[0]["theta_max"] == pytest.approx(0.97)
    assert rows[0]["final_DL_ppm"] == pytest.approx(6000.0)
    assert rows[0]["wall_s"] == pytest.approx(0.5)
    assert rows[1]["seed"] == 2


def test_obs_list_limit_keeps_most_recent(tmp_path, capsys):
    path = _write_history(tmp_path, [_manifest(s) for s in range(4)])
    code = main(["obs", "list", str(path), "--json", "--limit", "2"])
    assert code == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["seed"] for r in rows] == [2, 3]


def test_obs_list_limit_rejects_nonpositive(tmp_path, capsys):
    path = _write_history(tmp_path, [_manifest(1)])
    assert main(["obs", "list", str(path), "--limit", "-1"]) == 2
    assert "--limit" in capsys.readouterr().err


def test_synthetic_manifest_roundtrips(tmp_path):
    # The fixture stays honest: what we synthesise is what the real
    # serialisation layer produces and re-reads.
    path = _write_history(tmp_path, [_manifest(1)])
    (back,) = read_manifests(str(path))
    assert back.curves["n_detection"]["depth_cap"] == 16
    assert back.attribution["reconcile"]["coverage"] == pytest.approx(0.9)


# ---------------------------------------------------------------------------
# Redundancy-prover panel
# ---------------------------------------------------------------------------
def test_analysis_panel_renders_prover_tiles():
    manifest = _manifest(41)
    manifest.results["prover"] = {
        "n_proved": 49,
        "n_screened": 820,
        "depth": 2,
        "by_method": {"fire": 48, "static_learning": 1},
        "n_learned": 132,
        "certs_failed": 0,
        "podem": {
            "backtracks": 15443,
            "learned_prunes": 159,
            "learned_conflicts": 646,
        },
    }
    html = build_report([manifest])
    _assert_self_contained(html)
    assert 'id="panel-analysis"' in html
    assert "faults proved untestable" in html
    assert "proofs by method — fire: 48, static_learning: 1" in html
    assert "PODEM backtracks" in html
    assert "15443" in html
    # Zero failed certificates renders as a good (not crit) tile.
    assert 'class="tile-value good">0<' in html
    assert "no prover records" not in html


def test_analysis_panel_flags_failed_certificates():
    manifest = _manifest(42)
    manifest.results["prover"] = {
        "n_proved": 7,
        "n_screened": 100,
        "depth": 1,
        "by_method": {"fire": 7},
        "n_learned": 3,
        "certs_failed": 2,
        "podem": {},
    }
    html = build_report([manifest])
    assert 'class="tile-value crit">2<' in html


def test_analysis_panel_degrades_on_pre_prover_manifests():
    # Histories recorded before the prover existed carry no
    # results["prover"]; ablated runs record None.  Both degrade to a note.
    old = _manifest(43)
    ablated = _manifest(44)
    ablated.results["prover"] = None
    html = build_report([old, ablated])
    assert 'id="panel-analysis"' in html
    assert "no prover records in this history" in html
    _assert_self_contained(html)
