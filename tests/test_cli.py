"""Unit tests for the command-line entry point."""

import pytest

from repro.__main__ import main


def test_cli_runs_small_benchmark(capsys, tmp_path):
    svg = tmp_path / "layout.svg"
    code = main(["c17", "--svg", str(svg)])
    assert code == 0
    out = capsys.readouterr().out
    assert "fit of eq. 11" in out
    assert "theta(k)" in out
    assert svg.exists()


def test_cli_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["not-a-circuit"])


def test_cli_technique_option(capsys):
    code = main(["c17", "--technique", "either"])
    assert code == 0
    assert "Coverage growth" in capsys.readouterr().out
