"""Unit tests for the command-line entry point."""

import pytest

from repro import obs
from repro.__main__ import main


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.disable_events()
    yield
    obs.disable()
    obs.disable_events()


def test_cli_runs_small_benchmark(capsys, tmp_path):
    svg = tmp_path / "layout.svg"
    code = main(["c17", "--svg", str(svg)])
    assert code == 0
    out = capsys.readouterr().out
    assert "fit of eq. 11" in out
    assert "theta(k)" in out
    assert "pipeline cache:" in out
    assert svg.exists()


def test_cli_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["not-a-circuit"])


def test_cli_technique_option(capsys):
    code = main(["c17", "--technique", "either"])
    assert code == 0
    assert "Coverage growth" in capsys.readouterr().out


def test_cli_seed_and_max_random_patterns_flags(capsys):
    # A custom seed/cap combination forces a fresh (cache-miss) run.
    code = main(["c17", "--seed", "777", "--max-random-patterns", "96"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pipeline cache: miss" in out
    # Re-running the identical configuration is memoised and says so.
    code = main(["c17", "--seed", "777", "--max-random-patterns", "96"])
    assert code == 0
    assert "pipeline cache: hit" in capsys.readouterr().out


def test_cli_profile_prints_span_tree_and_metrics(capsys):
    code = main(["c17", "--seed", "31337", "--profile"])
    assert code == 0
    out = capsys.readouterr().out
    assert "stage timings" in out
    for span_name in (
        "pipeline.run",
        "atpg.random",
        "pipeline.stuck_fault_sim",
        "defects.extract",
        "switch_sim.run",
    ):
        assert span_name in out
    assert "metrics:" in out
    assert "fault_sim.patterns_applied" in out
    # --profile leaves the global state disabled afterwards.
    assert not obs.is_enabled()


def test_cli_profile_includes_engine_block(capsys):
    code = main(["c17", "--seed", "271828", "--profile"])
    assert code == 0
    out = capsys.readouterr().out
    assert "engine:" in out
    assert "word_width:" in out
    assert "workers:" in out


def test_cli_events_stream_ends_with_terminal_stage_events(capsys, tmp_path):
    import json

    events_file = tmp_path / "events.jsonl"
    code = main(["c17", "--seed", "555", "--events", str(events_file)])
    assert code == 0
    assert "events streamed to" in capsys.readouterr().out
    records = [
        json.loads(line) for line in events_file.read_text().splitlines()
    ]
    assert records, "event stream is empty"
    # Every record parses and carries the discriminator + both clocks.
    for record in records:
        assert record["type"] in (
            "ProgressEvent",
            "StageEvent",
            "RetryEvent",
            "CheckpointEvent",
        )
        assert record["ts"] > 0 and record["ts_mono"] > 0
    # Each pipeline stage ends with a terminal StageEvent, and the stream
    # itself terminates on the whole-pipeline one.
    ends = {
        r["stage"]
        for r in records
        if r["type"] == "StageEvent" and r["status"] == "end"
    }
    for stage in ("atpg", "stuck_sim", "extraction", "switch_sim", "pipeline"):
        assert stage in ends
    assert records[-1]["type"] == "StageEvent"
    assert records[-1]["stage"] == "pipeline"
    assert records[-1]["status"] == "end"
    assert not obs.events_enabled()


def test_cli_progress_renders_to_stderr(capsys):
    code = main(["c17", "--seed", "666", "--progress"])
    assert code == 0
    err = capsys.readouterr().err
    assert "[pipeline] started" in err
    assert "[atpg] done" in err
    assert "% detected" in err


def test_cli_trace_format_chrome_writes_valid_trace(capsys, tmp_path):
    import json

    trace_file = tmp_path / "trace.json"
    code = main(
        [
            "c17",
            "--seed",
            "777",
            "--trace",
            str(trace_file),
            "--trace-format",
            "chrome",
        ]
    )
    assert code == 0
    assert "chrome trace" in capsys.readouterr().out
    parsed = json.loads(trace_file.read_text())
    events = parsed["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in complete} >= {"pipeline.run"}
    assert any(e["name"] == "process_name" for e in events)
    # Chrome format replaces the manifest: the file is one JSON object.
    assert trace_file.read_text().count("pipeline.run") >= 1


def test_cli_trace_format_chrome_requires_trace(capsys):
    code = main(["c17", "--trace-format", "chrome"])
    assert code == 2
    assert "requires --trace" in capsys.readouterr().err


def test_cli_analyze_clean_circuit(capsys):
    code = main(["analyze", "c17"])
    assert code == 0
    out = capsys.readouterr().out
    assert "c17" in out
    assert "scoap: hardest nets" in out
    assert "untestable: 0 of" in out


def test_cli_analyze_quick_skips_implications(capsys):
    code = main(["analyze", "c17", "--quick"])
    assert code == 0
    out = capsys.readouterr().out
    assert "scoap: hardest nets" in out
    assert "untestable" not in out


def test_cli_analyze_finds_redundancy(capsys):
    # c432_like carries real dangling/unreachable logic plus untestable faults.
    code = main(["analyze", "c432_like"])
    assert code == 0
    out = capsys.readouterr().out
    assert "dangling-output" in out
    assert "untestable: 48 of" in out
    assert "[observation-conflict]" in out or "[activation]" in out


def test_cli_analyze_json_report(capsys, tmp_path):
    import json

    report = tmp_path / "analysis.json"
    code = main(["analyze", "c17", "alu4", "--json", str(report)])
    assert code == 0
    assert "report written to" in capsys.readouterr().out
    payload = json.loads(report.read_text())
    assert [c["circuit"] for c in payload["circuits"]] == ["c17", "alu4"]
    for entry in payload["circuits"]:
        assert isinstance(entry["lint"]["findings"], list)
        assert "scoap" in entry and "untestable" in entry


def test_cli_analyze_rejects_unknown_circuit(capsys):
    code = main(["analyze", "no-such-circuit"])
    assert code == 2
    assert "unknown circuit" in capsys.readouterr().err


def test_cli_analyze_fail_on_error_passes_clean(capsys):
    code = main(["analyze", "c17", "--fail-on-error"])
    assert code == 0


def test_cli_analyze_defaults_to_all_benchmarks(capsys):
    from repro.circuit.iscas import BENCHMARKS

    code = main(["analyze", "--quick"])
    assert code == 0
    out = capsys.readouterr().out
    for name in BENCHMARKS:
        assert name in out


def test_cli_checkpoint_then_resume(capsys, tmp_path):
    ckpt = tmp_path / "ckpt"
    code = main(["c17", "--seed", "424", "--checkpoint-dir", str(ckpt)])
    assert code == 0
    first = capsys.readouterr().out
    assert "recomputed atpg, stuck_sim, extraction, switch_sim" in first

    code = main(
        ["c17", "--seed", "424", "--checkpoint-dir", str(ckpt), "--resume"]
    )
    assert code == 0
    second = capsys.readouterr().out
    assert "restored atpg, stuck_sim, extraction, switch_sim" in second

    # The resumed run reports the exact same fitted parameters.
    fit_line = next(line for line in first.splitlines() if "fit of eq. 11" in line)
    assert fit_line in second


def test_cli_resume_requires_checkpoint_dir(capsys):
    code = main(["c17", "--resume"])
    assert code == 2
    assert "--resume requires --checkpoint-dir" in capsys.readouterr().err


def test_cli_unwritable_checkpoint_dir_fails_cleanly(capsys, tmp_path):
    blocker = tmp_path / "occupied"
    blocker.write_text("not a directory")
    code = main(["c17", "--checkpoint-dir", str(blocker / "sub")])
    assert code == 2
    err = capsys.readouterr().err
    assert "checkpoint failure" in err
    assert "Traceback" not in err


def test_cli_corrupt_checkpoint_exits_nonzero(capsys, tmp_path):
    from repro.experiments import ExperimentConfig
    from repro.resilience import CheckpointStore

    ckpt = tmp_path / "ckpt"
    assert main(["c17", "--seed", "425", "--checkpoint-dir", str(ckpt)]) == 0
    capsys.readouterr()
    store = CheckpointStore(ckpt, ExperimentConfig(benchmark="c17", seed=425))
    path = store.path_for("atpg")
    path.write_bytes(path.read_bytes()[:40])

    code = main(
        ["c17", "--seed", "425", "--checkpoint-dir", str(ckpt), "--resume"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "checkpoint failure" in err
    assert "Traceback" not in err


def test_cli_invalid_config_value_exits_nonzero(capsys):
    code = main(["c17", "--yield", "1.5"])
    assert code == 2
    err = capsys.readouterr().err
    assert "invalid configuration" in err
    assert "target_yield" in err


def test_cli_trace_writes_manifest(capsys, tmp_path):
    from repro.obs.manifest import read_manifests

    trace = tmp_path / "run.jsonl"
    code = main(["c17", "--seed", "90210", "--trace", str(trace)])
    assert code == 0
    assert "manifest" in capsys.readouterr().out
    (manifest,) = read_manifests(str(trace))
    assert manifest.benchmark == "c17"
    assert manifest.seed == 90210
    assert manifest.config["seed"] == 90210
    assert manifest.config_hash
    assert manifest.cache == "miss"
    assert "R" in manifest.results and "theta_max_fit" in manifest.results
    assert "pipeline.run" in manifest.stage_timings
    # >= 5 distinct spans through the pipeline stages.
    assert len(manifest.stage_timings) >= 5

    # A second identical run appends a cache-hit manifest to the same file.
    code = main(["c17", "--seed", "90210", "--trace", str(trace)])
    assert code == 0
    capsys.readouterr()
    manifests = read_manifests(str(trace))
    assert len(manifests) == 2
    assert manifests[1].cache == "hit"


def test_cli_engine_numpy_preflight_failure_exits_2(capsys, monkeypatch):
    from repro.simulation import engines

    monkeypatch.setattr(
        engines, "numpy_preflight", lambda: (False, "probe forced to fail")
    )
    code = main(["c17", "--engine", "numpy"])
    assert code == 2
    err = capsys.readouterr().err
    # Exactly one line, naming the reason — no traceback, no partial run.
    assert err.count("\n") == 1
    assert "probe forced to fail" in err
    assert "--engine numpy" in err


def test_cli_engine_auto_records_choice_in_manifest(capsys, tmp_path):
    from repro.obs.manifest import read_manifests

    trace = tmp_path / "runs.jsonl"
    code = main(["c17", "--seed", "424242", "--engine", "auto", "--trace", str(trace)])
    assert code == 0
    capsys.readouterr()
    (manifest,) = read_manifests(str(trace))
    assert manifest.config["engine"] == "auto"
    engine = manifest.engine
    assert engine["requested"] == "auto"
    assert engine["kind"] in ("python", "numpy")
    assert str(engine["reason"]).startswith("auto: ")
    assert engine["crossover"] > 0


def test_cli_engine_rejects_unknown_name(capsys):
    with pytest.raises(SystemExit):
        main(["c17", "--engine", "fortran"])


def test_cli_analyze_prove_prints_prover_summary(capsys):
    code = main(["analyze", "alu4", "--prove", "--depth", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "prover: 4 of 440 faults proved untestable (depth 1" in out
    assert "4 certificates checked, 0 failed" in out


def test_cli_analyze_certificates_file(capsys, tmp_path):
    import json

    from repro.analysis.check import check_certificates
    from repro.circuit.iscas import load_benchmark

    certs_file = tmp_path / "certs.json"
    code = main(
        ["analyze", "alu4", "--prove", "--depth", "1",
         "--certificates", str(certs_file)]
    )
    assert code == 0
    assert "4 certificates written to" in capsys.readouterr().out
    payload = json.loads(certs_file.read_text())
    assert payload["schema_version"] == 2
    certs = payload["certificates"]["alu4"]
    assert len(certs) == 4
    # The written certificates stand on their own: an independent checker
    # bound to a freshly-built circuit validates every one.
    n_ok, errors = check_certificates(load_benchmark("alu4"), certs)
    assert n_ok == 4 and not errors


def test_cli_analyze_json_schema_version_and_engine_preflight(tmp_path):
    import json

    from repro.simulation.engines import ENGINE_NAMES

    report = tmp_path / "analysis.json"
    code = main(["analyze", "c17", "--quick", "--json", str(report)])
    assert code == 0
    payload = json.loads(report.read_text())
    assert payload["schema_version"] == 2
    preflight = payload["engine_preflight"]
    assert preflight["names"] == sorted(ENGINE_NAMES)
    assert set(preflight["numpy"]) == {"ok", "reason"}
    assert isinstance(preflight["numpy"]["ok"], bool)
    assert [c["circuit"] for c in payload["circuits"]] == ["c17"]


def test_cli_analyze_json_includes_prover_block(tmp_path):
    import json

    report = tmp_path / "analysis.json"
    code = main(["analyze", "alu4", "--prove", "--json", str(report)])
    assert code == 0
    (entry,) = json.loads(report.read_text())["circuits"]
    prover = entry["prover"]
    assert prover["n_proved"] == 4
    assert prover["certs_failed"] == 0
    assert prover["depth"] == 2
    assert prover["netlist_sha256"]


def test_cli_analyze_rejects_negative_depth(capsys):
    code = main(["analyze", "c17", "--prove", "--depth", "-1"])
    assert code == 2
    assert "--depth must be non-negative" in capsys.readouterr().err


def test_cli_analyze_certificates_requires_prove(capsys, tmp_path):
    code = main(
        ["analyze", "c17", "--certificates", str(tmp_path / "c.json")]
    )
    assert code == 2
    assert "--certificates requires --prove" in capsys.readouterr().err
    assert not (tmp_path / "c.json").exists()


def test_cli_fault_sim_retries_and_chunk_timeout_accepted(capsys):
    code = main(
        ["c17", "--seed", "4242", "--fault-sim-retries", "3",
         "--chunk-timeout", "30"]
    )
    assert code == 0
    assert "fit of eq. 11" in capsys.readouterr().out


def test_cli_fault_sim_retries_invalid_exits_2(capsys):
    code = main(["c17", "--fault-sim-retries", "0"])
    assert code == 2
    err = capsys.readouterr().err
    assert "invalid configuration" in err
    assert "fault_sim_retries" in err


def test_cli_chunk_timeout_invalid_exits_2(capsys):
    code = main(["c17", "--chunk-timeout", "-5"])
    assert code == 2
    err = capsys.readouterr().err
    assert "invalid configuration" in err
    assert "chunk_timeout" in err


def test_cli_keyboard_interrupt_exits_130_with_resume_hint(
    capsys, tmp_path, monkeypatch
):
    import repro.__main__ as main_mod

    def _interrupt(*_args, **_kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(main_mod, "run_experiment", _interrupt)
    code = main(
        ["c17", "--seed", "5150", "--checkpoint-dir", str(tmp_path / "ck")]
    )
    assert code == 130
    err = capsys.readouterr().err
    assert "interrupted" in err
    assert "--resume" in err


def test_cli_keyboard_interrupt_writes_interrupted_manifest(
    capsys, tmp_path, monkeypatch
):
    import repro.__main__ as main_mod
    from repro.obs.manifest import read_manifests

    def _interrupt(*_args, **_kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(main_mod, "run_experiment", _interrupt)
    trace = tmp_path / "runs.jsonl"
    code = main(["c17", "--seed", "5150", "--trace", str(trace)])
    assert code == 130
    err = capsys.readouterr().err
    assert "interrupted-run manifest appended" in err
    assert "--checkpoint-dir DIR" in err  # resumability hint without one
    (manifest,) = read_manifests(str(trace))
    assert manifest.results == {"interrupted": True}
