"""Additional extraction-robustness tests: sabotage / failure injection.

The LVS-lite checker must actually catch broken layouts — these tests break
a good layout in controlled ways and assert the verifier reports it.
"""


from repro.layout import (
    Layer,
    Rect,
    build_connectivity,
    verify_layout,
)
from repro.layout.design import LayoutDesign


def _clone_with_shapes(design: LayoutDesign, shapes) -> LayoutDesign:
    return LayoutDesign(
        name=design.name,
        source=design.source,
        mapped=design.mapped,
        placement=design.placement,
        plan=design.plan,
        shapes=list(shapes),
        transistors=design.transistors,
        cell_of_net=design.cell_of_net,
        row_base=design.row_base,
    )


def test_detects_split_net(c17_design):
    # Remove one routing trunk: its net must fall apart.
    shapes = list(c17_design.shapes)
    victim = next(
        s
        for s in shapes
        if s.layer is Layer.METAL1 and s.net == "G11" and s.purpose == "wire"
        and s.width > s.height  # a horizontal trunk
    )
    shapes.remove(victim)
    report = verify_layout(_clone_with_shapes(c17_design, shapes))
    assert "G11" in report.split_nets


def test_detects_merged_nets(c17_design):
    # Plant a strap connecting two different signal nets.
    shapes = list(c17_design.shapes)
    a = next(s for s in shapes if s.net == "G10" and s.layer is Layer.METAL2)
    b = next(s for s in shapes if s.net == "G11" and s.layer is Layer.METAL2)
    lo_x = min(a.llx, b.llx)
    hi_x = max(a.urx, b.urx)
    lo_y = min(a.lly, b.lly)
    hi_y = max(a.ury, b.ury)
    shapes.append(Rect(Layer.METAL2, lo_x, lo_y, hi_x, hi_y, "G10"))
    report = verify_layout(_clone_with_shapes(c17_design, shapes))
    assert report.merged_nets or report.shorts


def test_connectivity_graph_edges_sane(c17_design):
    graph = build_connectivity(c17_design.shapes)
    # Every edge joins shapes of the same net (the layout is clean).
    for i, j in graph.edges:
        assert c17_design.shapes[i].net == c17_design.shapes[j].net


def test_missing_via_splits_net(c17_design):
    shapes = list(c17_design.shapes)
    # Remove the first signal via found: some net must split.
    victim = next(
        s for s in shapes if s.layer is Layer.VIA and s.net not in ("VDD", "GND")
    )
    shapes.remove(victim)
    report = verify_layout(_clone_with_shapes(c17_design, shapes))
    assert victim.net in report.split_nets
