"""Unit tests for the delay-screen augmentation of realistic coverage."""


from repro.atpg import random_patterns
from repro.defects import (
    BridgeFault,
    TransistorGateOpen,
    TransistorStuckOpen,
    extract_faults,
)
from repro.switchsim.coverage import delay_screen_detections


def test_delay_screen_targets_open_classes(c17_design):
    patterns = random_patterns(5, 96, seed=41)
    faults = extract_faults(c17_design).faults
    detections = delay_screen_detections(faults, c17_design, patterns)
    by_id = {id(f): f for f in faults}
    assert detections, "expected the screen to reach some opens"
    for fault_id, k in detections.items():
        fault = by_id[fault_id]
        assert isinstance(fault, (TransistorStuckOpen, TransistorGateOpen))
        assert 2 <= k <= len(patterns)  # two-pattern tests start at k = 2


def test_delay_screen_ignores_bridges(c17_design):
    patterns = random_patterns(5, 32, seed=42)
    bridge = BridgeFault(weight=1.0, net_a="G10", net_b="G11")
    assert delay_screen_detections([bridge], c17_design, patterns) == {}


def test_delay_screen_constant_patterns_detect_nothing(c17_design):
    patterns = [[0, 0, 0, 0, 0]] * 10
    faults = extract_faults(c17_design).faults
    assert delay_screen_detections(faults, c17_design, patterns) == {}
