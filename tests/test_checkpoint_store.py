"""CheckpointStore: round-trips, integrity checking, recovery, chaos."""

import pytest

from repro import obs
from repro.experiments import ExperimentConfig
from repro.resilience import (
    ChaosPlan,
    ChaosRule,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    chaos,
)
from repro.simulation.faults import StuckAtFault


@pytest.fixture(autouse=True)
def _clean_state():
    chaos.uninstall()
    obs.disable()
    yield
    chaos.uninstall()
    obs.disable()


CONFIG = ExperimentConfig(benchmark="c17", seed=11)


def test_round_trip_preserves_payload(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    payload = {
        "patterns": [[0, 1, 0], [1, 1, 1]],
        "faults": [StuckAtFault("n1", 0), StuckAtFault("n2", 1)],
        "coverage": 0.875,
    }
    store.save("atpg", payload)
    assert store.has("atpg")
    assert store.load("atpg") == payload


def test_store_is_keyed_by_config_hash(tmp_path):
    a = CheckpointStore(tmp_path, CONFIG)
    b = CheckpointStore(tmp_path, ExperimentConfig(benchmark="c17", seed=12))
    a.save("atpg", {"x": 1})
    assert a.dir != b.dir
    assert b.load("atpg") is None


def test_stages_and_clear(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    store.save("atpg", 1)
    store.save("stuck_sim", 2)
    assert store.stages() == ["atpg", "stuck_sim"]
    store.clear()
    assert store.stages() == []
    assert store.load("atpg") is None


def test_missing_stage_loads_none(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    assert store.load("nothing") is None


def test_atomic_write_leaves_no_temp_files(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    store.save("atpg", list(range(1000)))
    leftovers = [p.name for p in store.dir.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []


def test_truncated_checkpoint_recovers_tolerantly(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    path = store.save("stuck_sim", {"big": list(range(500))})
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])

    with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
        assert store.load("stuck_sim") is None
    # The stage recomputes and overwrites the bad file.
    store.save("stuck_sim", {"big": [1]})
    assert store.load("stuck_sim") == {"big": [1]}


def test_corrupt_payload_byte_detected(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    path = store.save("atpg", {"values": list(range(100))})
    data = bytearray(path.read_bytes())
    data[-10] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
        assert store.load("atpg") is None


def test_strict_store_raises_on_corruption(tmp_path):
    tolerant = CheckpointStore(tmp_path, CONFIG)
    path = tolerant.save("atpg", [1, 2, 3])
    data = path.read_bytes()
    path.write_bytes(data[:-4])

    strict = CheckpointStore(tmp_path, CONFIG, strict=True)
    with pytest.raises(CheckpointCorruptError):
        strict.load("atpg")


def test_header_stage_mismatch_is_corruption(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    path = store.save("atpg", [1])
    path.rename(store.path_for("stuck_sim"))
    with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
        assert store.load("stuck_sim") is None


def test_unpicklable_payload_raises_checkpoint_error(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    with pytest.raises(CheckpointError, match="not picklable"):
        store.save("atpg", lambda: None)


def test_unwritable_root_raises_checkpoint_error(tmp_path):
    blocker = tmp_path / "file-not-dir"
    blocker.write_text("occupied")
    with pytest.raises(CheckpointError, match="cannot create"):
        CheckpointStore(blocker / "sub", CONFIG)


def test_chaos_truncate_rule_exercises_recovery(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    plan = ChaosPlan(
        rules=(ChaosRule(point="checkpoint.save", kind="truncate", keys={"atpg"}),)
    )
    with chaos.active(plan):
        store.save("atpg", {"x": list(range(200))})
        store.save("stuck_sim", {"y": 2})
    # The truncated stage reads back as missing; the untouched one is fine.
    with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
        assert store.load("atpg") is None
    assert store.load("stuck_sim") == {"y": 2}


def test_chaos_corrupt_rule_exercises_recovery(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    plan = ChaosPlan(
        rules=(ChaosRule(point="checkpoint.save", kind="corrupt", keys={"atpg"}),)
    )
    with chaos.active(plan):
        store.save("atpg", {"x": list(range(200))})
    with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
        assert store.load("atpg") is None


def test_corruption_counter_increments(tmp_path):
    store = CheckpointStore(tmp_path, CONFIG)
    path = store.save("atpg", [1, 2, 3])
    path.write_bytes(path.read_bytes()[:-2])
    _, registry = obs.enable()
    with pytest.warns(RuntimeWarning):
        store.load("atpg")
    assert registry.counter("resilience.checkpoints_corrupt").value == 1
