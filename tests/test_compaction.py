"""Unit tests for static test-set compaction."""

from repro.atpg import TestSet, compact_test_set, generate_random_tests
from repro.simulation import FaultSimulator, collapse_faults


def test_compaction_preserves_coverage(c17_circuit):
    faults = collapse_faults(c17_circuit)
    generated = generate_random_tests(
        c17_circuit, faults, target_coverage=1.0, max_patterns=512, seed=2
    )
    assert generated.coverage == 1.0
    compacted = compact_test_set(c17_circuit, generated.test_set, faults)
    assert len(compacted) <= len(generated.test_set)

    sim = FaultSimulator(c17_circuit)
    result = sim.run(compacted.patterns, faults=faults)
    assert result.coverage == 1.0


def test_compaction_removes_duplicates(c17_circuit):
    faults = collapse_faults(c17_circuit)
    ts = TestSet(n_inputs=5)
    base = generate_random_tests(
        c17_circuit, faults, target_coverage=1.0, max_patterns=512, seed=2
    ).test_set
    for pattern in base.patterns:
        ts.append(pattern, "random")
        ts.append(pattern, "random")  # duplicate every vector
    compacted = compact_test_set(c17_circuit, ts, faults)
    assert len(compacted) <= len(base)


def test_compaction_keeps_provenance(c17_circuit):
    faults = collapse_faults(c17_circuit)
    base = generate_random_tests(
        c17_circuit, faults, target_coverage=1.0, max_patterns=512, seed=2
    ).test_set
    compacted = compact_test_set(c17_circuit, base, faults)
    assert all(source == "random" for source in compacted.sources)
