"""Chrome/Perfetto trace export: lanes, rebasing, metadata, instant events."""

import json

import pytest

from repro import obs
from repro.obs.events import CheckpointEvent, RetryEvent, StageEvent
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.trace import Span, TraceCollector


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.disable_events()
    yield
    obs.disable()
    obs.disable_events()


def _collector_with_work():
    collector, _ = obs.enable()
    with collector.start("pipeline.run", {"benchmark": "c17"}):
        with collector.start("fault_sim.parallel", {}):
            pass
    return collector


def _attach_worker_span(collector, pid, chunk_id):
    worker = Span(
        name="fault_sim.run",
        attributes={"worker_pid": pid, "chunk_id": chunk_id},
        start_wall=collector.roots[0].start_wall + 0.001,
    )
    worker.end_wall = worker.start_wall + 0.5
    worker.end_cpu = 0.4
    parallel = collector.roots[0].children[0]
    parallel.children.append(worker)
    return worker


def test_spans_become_complete_events_rebased_to_zero():
    collector = _collector_with_work()
    trace = chrome_trace(collector)
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {
        "pipeline.run",
        "fault_sim.parallel",
    }
    assert min(e["ts"] for e in complete) == 0.0
    assert all(e["dur"] >= 0 for e in complete)
    assert trace["displayTimeUnit"] == "ms"


def test_worker_spans_get_their_own_lane():
    collector = _collector_with_work()
    _attach_worker_span(collector, pid=11111, chunk_id=0)
    _attach_worker_span(collector, pid=22222, chunk_id=1)
    trace = chrome_trace(collector, main_pid=99)
    by_name = {}
    for event in trace["traceEvents"]:
        if event["ph"] == "X":
            by_name.setdefault(event["name"], []).append(event["pid"])
    assert by_name["pipeline.run"] == [99]
    assert sorted(by_name["fault_sim.run"]) == [11111, 22222]
    # Process metadata names every lane, main sorted first.
    meta = {
        e["pid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["name"] == "process_name"
    }
    assert meta[99] == "pipeline (main)"
    assert meta[11111] == "fault-sim worker 11111"
    sort_index = {
        e["pid"]: e["args"]["sort_index"]
        for e in trace["traceEvents"]
        if e["name"] == "process_sort_index"
    }
    assert sort_index[99] == 0
    assert sort_index[11111] == 11111


def test_untagged_children_inherit_worker_lane():
    collector = _collector_with_work()
    worker = _attach_worker_span(collector, pid=11111, chunk_id=0)
    child = Span(
        name="fault_sim.group",
        attributes={},
        start_wall=worker.start_wall,
    )
    child.end_wall, child.end_cpu = worker.end_wall, 0.1
    worker.children.append(child)
    trace = chrome_trace(collector, main_pid=99)
    lanes = {
        e["name"]: e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"
    }
    assert lanes["fault_sim.group"] == 11111


def test_retry_and_checkpoint_events_become_instant_markers():
    collector = _collector_with_work()
    base = collector.roots[0].start_wall
    events = [
        RetryEvent(
            point="parallel.chunk",
            key=1,
            attempt=1,
            reason="boom",
            ts_mono=base + 0.25,
        ),
        CheckpointEvent(stage="atpg", action="save", ts_mono=base + 0.5),
        StageEvent(stage="atpg"),  # not a marker type: ignored
    ]
    trace = chrome_trace(collector, events=events)
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 2
    retry, checkpoint = instants
    assert retry["name"] == "retry parallel.chunk key=1"
    assert retry["s"] == "g"
    assert retry["ts"] == pytest.approx(250_000, abs=1000)
    assert retry["args"]["reason"] == "boom"
    assert "ts_mono" not in retry["args"]
    assert checkpoint["name"] == "checkpoint save atpg"


def test_empty_collector_still_produces_valid_trace():
    trace = chrome_trace(TraceCollector(), main_pid=7)
    names = {e["name"] for e in trace["traceEvents"]}
    assert names == {"process_name", "process_sort_index"}


def test_write_chrome_trace_is_valid_json(tmp_path):
    collector = _collector_with_work()
    path = tmp_path / "trace.json"
    count = write_chrome_trace(str(path), collector)
    parsed = json.loads(path.read_text())
    assert len(parsed["traceEvents"]) == count
    assert any(e["ph"] == "X" for e in parsed["traceEvents"])


def test_serial_run_exports_single_lane_trace():
    # A zero-worker (serial) run has no worker_pid-tagged spans at all:
    # every complete event lands on the main lane and exactly one process
    # is named in the metadata.
    collector = _collector_with_work()
    trace = chrome_trace(collector, main_pid=42)
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert complete  # spans exported
    assert {e["pid"] for e in complete} == {42}
    meta = {
        e["pid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["name"] == "process_name"
    }
    assert meta == {42: "pipeline (main)"}
    # The document stays valid trace-event JSON end to end.
    json.loads(json.dumps(trace))


def test_serial_pipeline_chrome_trace_end_to_end(tmp_path):
    from repro.__main__ import main

    out = tmp_path / "trace.json"
    assert (
        main(
            [
                "c17",
                "--seed",
                "5",
                "--trace",
                str(out),
                "--trace-format",
                "chrome",
            ]
        )
        == 0
    )
    trace = json.loads(out.read_text())
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert any(e["name"] == "pipeline.run" for e in complete)
    # c17 runs serial (below the parallel crossover): one lane only.
    assert len({e["pid"] for e in complete}) == 1
