"""Unit tests for Circuit/Gate structure and validation."""

import pytest

from repro.circuit import Circuit, CircuitError, GateType


def build_simple() -> Circuit:
    ckt = Circuit(name="simple")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.AND, ["a", "b"], "c")
    ckt.add_gate(GateType.NOT, ["c"], "d")
    ckt.add_output("d")
    return ckt


def test_valid_circuit_passes():
    build_simple().validate()


def test_nets_enumeration():
    ckt = build_simple()
    assert ckt.nets == ["a", "b", "c", "d"]


def test_driver_and_fanout():
    ckt = build_simple()
    assert ckt.driver_of("c").gate_type is GateType.AND
    assert ckt.driver_of("a") is None
    assert [g.name for g in ckt.fanout_of("c")] == ["d"]
    fanout = ckt.fanout_map()
    assert [g.name for g in fanout["a"]] == ["c"]
    assert fanout["d"] == []


def test_duplicate_primary_input_rejected():
    ckt = Circuit(name="x")
    ckt.add_input("a")
    with pytest.raises(CircuitError):
        ckt.add_input("a")


def test_multiple_drivers_rejected():
    ckt = build_simple()
    ckt.add_gate(GateType.OR, ["a", "b"], "c", name="dup")
    with pytest.raises(CircuitError, match="multiple drivers"):
        ckt.validate()


def test_undriven_input_rejected():
    ckt = build_simple()
    ckt.add_gate(GateType.AND, ["a", "ghost"], "e")
    with pytest.raises(CircuitError, match="undriven"):
        ckt.validate()


def test_undriven_output_rejected():
    ckt = build_simple()
    ckt.add_output("ghost")
    with pytest.raises(CircuitError, match="not driven"):
        ckt.validate()


def test_cycle_rejected():
    ckt = Circuit(name="loop")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "y"], "x")
    ckt.add_gate(GateType.NOT, ["x"], "y")
    ckt.add_output("y")
    with pytest.raises(CircuitError, match="cycle"):
        ckt.validate()


def test_gate_without_inputs_rejected():
    ckt = Circuit(name="x")
    with pytest.raises(CircuitError):
        ckt.add_gate(GateType.AND, [], "z")


def test_stats():
    stats = build_simple().stats()
    assert stats == {
        "inputs": 2,
        "outputs": 1,
        "gates": 2,
        "nets": 4,
        "transistors": 6 + 2,
    }


def test_diamond_not_a_cycle():
    ckt = Circuit(name="diamond")
    ckt.add_input("a")
    ckt.add_gate(GateType.NOT, ["a"], "b")
    ckt.add_gate(GateType.NOT, ["a"], "c")
    ckt.add_gate(GateType.AND, ["b", "c"], "d")
    ckt.add_output("d")
    ckt.validate()


def test_repeated_input_pin_allowed():
    ckt = Circuit(name="rep")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "a"], "b")
    ckt.add_output("b")
    ckt.validate()


def test_empty_circuit_validates():
    # No gates, no outputs: nothing to check, nothing to fail.
    Circuit(name="empty").validate()
    empty_with_pi = Circuit(name="pi-only")
    empty_with_pi.add_input("a")
    empty_with_pi.validate()


def test_empty_circuit_with_output_rejected():
    ckt = Circuit(name="empty-out")
    ckt.add_output("z")
    with pytest.raises(CircuitError, match="not driven"):
        ckt.validate()


def test_cycle_error_names_the_actual_loop():
    ckt = Circuit(name="loop")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "y"], "x")
    ckt.add_gate(GateType.NOT, ["x"], "y")
    ckt.add_output("y")
    with pytest.raises(CircuitError, match="cycle") as exc:
        ckt.validate()
    message = str(exc.value)
    assert "->" in message and "x" in message and "y" in message


def test_multiple_driver_error_names_both_drivers():
    ckt = build_simple()
    ckt.add_gate(GateType.OR, ["a", "b"], "c", name="dup")
    with pytest.raises(CircuitError, match="dup"):
        ckt.validate()
