"""Cross-job trace export and the sweep report builder.

The trace tests prove the issue's post-mortem property: a Chrome/Perfetto
trace rebuilds from the *journal alone* — one process group per job, lanes
per worker, instant markers for reclaims/retries/cache hits — and degrades
to a synthetic timebase on pre-``ts`` journals.  The report tests cover the
self-contained HTML contract plus the ``--baseline``/``--gate`` regression
strip (same exit-code contract as ``obs check-bench``).
"""

import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.campaign import Journal
from repro.obs.campaign_html import (
    CAMPAIGN_PANEL_IDS,
    campaign_regressions,
)
from repro.obs.export import campaign_chrome_trace, write_campaign_trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.disable_events()
    yield
    obs.disable()
    obs.disable_events()


def _synthetic_records(with_ts=True) -> list[dict]:
    """A two-job campaign: job-a retried then done, job-b reclaimed once."""

    def stamp(record, ts):
        if with_ts:
            record["ts"] = ts
        return record

    jobs = [
        {"job_id": "job-a", "config": {"seed": 1}, "priority": 0,
         "max_attempts": 3},
        {"job_id": "job-b", "config": {"seed": 2}, "priority": 0,
         "max_attempts": 3},
    ]
    return [
        stamp({"type": "campaign", "name": "t", "spec": {}, "jobs": jobs},
              100.0),
        stamp({"type": "lease", "job": "job-a", "lease_id": "L1",
               "attempt": 0}, 100.1),
        stamp({"type": "lease", "job": "job-b", "lease_id": "L2",
               "attempt": 0}, 100.2),
        stamp({"type": "fail", "job": "job-a", "attempt": 0,
               "kind": "transient", "reason": "TimeoutError"}, 100.4),
        stamp({"type": "reclaim", "job": "job-b",
               "reason": "lease expired"}, 100.6),
        stamp({"type": "lease", "job": "job-a", "lease_id": "L3",
               "attempt": 1}, 100.7),
        stamp({"type": "done", "job": "job-a", "cached": False,
               "result_sha": "a" * 64, "wall_s": 0.5, "worker_pid": 4242},
              101.2),
        stamp({"type": "lease", "job": "job-b", "lease_id": "L4",
               "attempt": 1}, 101.3),
        stamp({"type": "done", "job": "job-b", "cached": True,
               "result_sha": "b" * 64}, 101.4),
        stamp({"type": "end", "name": "t"}, 101.5),
    ]


# ---------------------------------------------------------------------------
# trace: built from the journal alone
# ---------------------------------------------------------------------------
def test_trace_gives_each_job_its_own_process_group():
    trace = campaign_chrome_trace(_synthetic_records())
    names = {
        (e["pid"], e["args"]["name"])
        for e in trace["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert (0, "campaign supervisor") in names
    assert (1, "job job-a") in names
    assert (2, "job job-b") in names
    assert trace["otherData"]["jobs"] == 2
    assert trace["otherData"]["timebase"].startswith("journal wall clock")


def test_trace_lease_intervals_land_on_worker_lanes():
    trace = campaign_chrome_trace(_synthetic_records())
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    job_a = {e["name"]: e for e in spans if e["pid"] == 1}
    # job-a's final attempt ran on the reporting worker's pid lane.
    done = job_a["attempt 1 [done]"]
    assert done["tid"] == 4242
    assert done["args"]["outcome"] == "done"
    # Attempt 0 ended in a transient failure on the attempt-number lane
    # (the worker never reported a pid).
    fail = job_a["attempt 0 [fail]"]
    assert fail["tid"] == 0
    # Timebase rebased to the earliest stamp: nothing starts before 0.
    assert min(e["ts"] for e in trace["traceEvents"] if "ts" in e) == 0.0
    assert done["dur"] == pytest.approx(0.5e6)


def test_trace_markers_for_reclaim_retry_and_cache_hit():
    trace = campaign_chrome_trace(_synthetic_records())
    markers = {
        e["name"] for e in trace["traceEvents"] if e["ph"] == "i"
    }
    assert "lease reclaimed" in markers
    assert "retry (transient failure)" in markers
    assert "cache hit" in markers


def test_trace_degrades_to_synthetic_timebase_without_ts():
    trace = campaign_chrome_trace(_synthetic_records(with_ts=False))
    assert "synthetic" in trace["otherData"]["timebase"]
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert spans, "lease intervals must survive the ts-less degrade"
    # 1ms-per-record spacing keeps ordering readable.
    assert all(e["dur"] > 0 for e in spans)


def test_trace_closes_leases_left_open_by_a_crash():
    records = _synthetic_records()[:3]  # campaign + two leases, no terminal
    trace = campaign_chrome_trace(records)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {e["args"]["outcome"] for e in spans} == {"open"}
    assert all(e["args"]["note"] == "no terminal record" for e in spans)


def test_trace_overlays_merged_event_stream():
    event_records = [
        {
            "type": "JobEvent",
            "job": "job-a",
            "worker_pid": 4242,
            "inner": {
                "type": "ProgressEvent",
                "stage": "fault_sim",
                "completed": 4,
                "total": 8,
            },
            "ts": 100.9,
        }
    ]
    trace = campaign_chrome_trace(
        _synthetic_records(), events=event_records, compactions=[101.45]
    )
    overlay = [
        e
        for e in trace["traceEvents"]
        if e["ph"] == "i" and e.get("s") == "t"
    ]
    assert [e["name"] for e in overlay] == ["fault_sim: ProgressEvent"]
    assert overlay[0]["pid"] == 1  # job-a's lane
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "i"}
    assert "journal compacted" in names


def test_write_campaign_trace_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    count = write_campaign_trace(str(path), _synthetic_records())
    payload = json.loads(path.read_text())
    assert len(payload["traceEvents"]) == count
    assert payload["displayTimeUnit"] == "ms"


# ---------------------------------------------------------------------------
# regressions vs a baseline campaign
# ---------------------------------------------------------------------------
def _walls_journal(directory, walls: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    jobs = [
        {"job_id": j, "config": {"seed": i}, "priority": 0, "max_attempts": 3}
        for i, j in enumerate(walls)
    ]
    with Journal(directory) as journal:
        journal.append(
            {"type": "campaign", "name": "t", "spec": {}, "jobs": jobs,
             "ts": 100.0}
        )
        now = 100.0
        for i, (job, wall) in enumerate(walls.items()):
            journal.append(
                {"type": "lease", "job": job, "lease_id": f"L{i}",
                 "attempt": 0, "ts": now}
            )
            now += wall
            journal.append(
                {"type": "done", "job": job, "cached": False,
                 "result_sha": "0" * 64, "wall_s": wall, "worker_pid": 1,
                 "ts": now}
            )
        journal.append({"type": "end", "name": "t", "ts": now})


def test_campaign_regressions_flags_only_jobs_past_tolerance(tmp_path):
    _walls_journal(tmp_path / "base", {"j1": 0.1, "j2": 0.1, "j3": 0.1})
    _walls_journal(tmp_path / "cur", {"j1": 0.11, "j2": 0.5, "j4": 9.0})
    base, _ = Journal(tmp_path / "base", readonly=True).replay()
    cur, _ = Journal(tmp_path / "cur", readonly=True).replay()
    rows = campaign_regressions(cur, base, tolerance=3.0)
    # j4 has no baseline, j3 no current: only the common jobs compare.
    assert [r["job"] for r in rows] == ["j1", "j2"]
    by_job = {r["job"]: r for r in rows}
    assert not by_job["j1"]["regressed"]
    assert by_job["j2"]["regressed"]
    assert by_job["j2"]["ratio"] == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# report CLI: self-contained HTML, graceful degrade, gate
# ---------------------------------------------------------------------------
def _run_real_campaign(tmp_path, name="report-sweep") -> str:
    spec = tmp_path / "spec.json"
    spec.write_text(
        json.dumps(
            {
                "name": name,
                "base": {"benchmark": "c17", "max_random_patterns": 16},
                "grid": {"seed": [1, 2]},
            }
        )
    )
    camp = str(tmp_path / "camp")
    assert (
        main(["campaign", "run", str(spec), "--dir", camp, "--workers", "0"])
        == 0
    )
    return camp


def test_report_cli_renders_self_contained_html(capsys, tmp_path):
    camp = _run_real_campaign(tmp_path)
    capsys.readouterr()
    assert main(["campaign", "report", "--dir", camp]) == 0
    out = capsys.readouterr().out
    assert "wrote campaign report" in out
    html = (tmp_path / "camp" / "report.html").read_text()
    for panel_id in CAMPAIGN_PANEL_IDS:
        assert f'id="{panel_id}"' in html
    assert "<script" not in html
    assert "http://" not in html and "https://" not in html
    assert "report-sweep" in html
    # The sweep axis (seed) made it into the small multiples.
    assert "seed" in html


def test_report_degrades_gracefully_on_ts_less_journal(capsys, tmp_path):
    """Pre-PR-10 journals (no per-record wall clocks) still render."""
    directory = tmp_path / "old"
    directory.mkdir()
    jobs = [{"job_id": "j1", "config": {"seed": 1}, "priority": 0,
             "max_attempts": 3}]
    with Journal(directory) as journal:
        for record in (
            {"type": "campaign", "name": "old", "spec": {}, "jobs": jobs},
            {"type": "lease", "job": "j1", "lease_id": "L", "attempt": 0},
            {"type": "done", "job": "j1", "cached": False,
             "result_sha": "0" * 64, "wall_s": 0.2, "worker_pid": 1},
            {"type": "end", "name": "old"},
        ):
            # Raw Journal.append stamps nothing — only the supervisor adds
            # ts — so this journal is byte-faithful to the old format.
            journal.append(dict(record))
    records, _ = Journal(directory, readonly=True).replay()
    assert all("ts" not in r for r in records)

    out_file = str(tmp_path / "old-report.html")
    assert main(["campaign", "report", "--dir", str(directory),
                 "--out", out_file]) == 0
    html = open(out_file).read()
    for panel_id in CAMPAIGN_PANEL_IDS:
        assert f'id="{panel_id}"' in html


def test_report_gate_fails_on_regressed_baseline(capsys, tmp_path):
    _walls_journal(tmp_path / "base", {"j1": 0.1, "j2": 0.1})
    _walls_journal(tmp_path / "cur", {"j1": 0.1, "j2": 2.0})
    out_file = str(tmp_path / "report.html")
    code = main(
        ["campaign", "report", "--dir", str(tmp_path / "cur"),
         "--out", out_file, "--baseline", str(tmp_path / "base"), "--gate"]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "slower than" in captured.err
    html = open(out_file).read()
    assert 'id="panel-campaign-regression"' in html
    # Without --gate the same comparison only warns.
    assert main(
        ["campaign", "report", "--dir", str(tmp_path / "cur"),
         "--out", out_file, "--baseline", str(tmp_path / "base")]
    ) == 0


def test_report_gate_passes_on_clean_baseline(tmp_path):
    _walls_journal(tmp_path / "base", {"j1": 0.1})
    _walls_journal(tmp_path / "cur", {"j1": 0.1})
    assert main(
        ["campaign", "report", "--dir", str(tmp_path / "cur"),
         "--out", str(tmp_path / "r.html"),
         "--baseline", str(tmp_path / "base"), "--gate"]
    ) == 0


def test_report_missing_dir_exits_2(capsys, tmp_path):
    assert main(
        ["campaign", "report", "--dir", str(tmp_path / "nope")]
    ) == 2
    assert "error" in capsys.readouterr().err


def test_trace_cli_writes_trace_json(capsys, tmp_path):
    camp = _run_real_campaign(tmp_path, name="trace-sweep")
    capsys.readouterr()
    assert main(["campaign", "trace", "--dir", camp]) == 0
    out = capsys.readouterr().out
    assert "trace event(s)" in out
    payload = json.loads((tmp_path / "camp" / "trace.json").read_text())
    process_names = {
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert "campaign supervisor" in process_names
    assert sum(n.startswith("job ") for n in process_names) == 2
