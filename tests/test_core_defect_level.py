"""Unit tests for the defect-level models (eqs. 1, 2, 3, 11)."""

import math

import pytest

from repro.core import (
    agrawal,
    ppm,
    required_coverage,
    required_coverage_williams_brown,
    residual_defect_level,
    sousa_defect_level,
    weighted_defect_level,
    williams_brown,
)


def test_williams_brown_endpoints():
    assert williams_brown(0.75, 1.0) == 0.0
    assert williams_brown(0.75, 0.0) == pytest.approx(0.25)


def test_williams_brown_monotone_in_coverage():
    values = [williams_brown(0.5, t / 10) for t in range(11)]
    assert values == sorted(values, reverse=True)


def test_williams_brown_validation():
    with pytest.raises(ValueError):
        williams_brown(0.0, 0.5)
    with pytest.raises(ValueError):
        williams_brown(0.75, 1.5)


def test_agrawal_reduces_to_wb_shape_at_n1():
    # At n = 1 the Agrawal model is DL = (1-T)(1-Y) / (Y + (1-T)(1-Y)),
    # which still matches Williams-Brown at the endpoints.
    assert agrawal(0.75, 1.0, 1.0) == 0.0
    assert agrawal(0.75, 0.0, 1.0) == pytest.approx(0.25)


def test_agrawal_multiplicity_lowers_dl():
    for t in (0.3, 0.6, 0.9):
        assert agrawal(0.75, t, 5.0) < agrawal(0.75, t, 1.0)
    with pytest.raises(ValueError):
        agrawal(0.75, 0.5, 0.5)


def test_sousa_reduces_to_williams_brown():
    for t in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
        assert sousa_defect_level(0.75, t, 1.0, 1.0) == pytest.approx(
            williams_brown(0.75, t)
        )


def test_sousa_below_wb_at_mid_coverage_when_r_gt_1():
    # R > 1: realistic faults are covered faster, DL sits below WB until the
    # residual floor takes over near T = 1 (the paper's fig. 2).
    for t in (0.2, 0.5, 0.8):
        assert sousa_defect_level(0.75, t, 2.0, 0.96) < williams_brown(0.75, t)
    assert sousa_defect_level(0.75, 1.0, 2.0, 0.96) > williams_brown(0.75, 1.0)


def test_residual_defect_level():
    floor = residual_defect_level(0.75, 0.96)
    assert floor == pytest.approx(1 - 0.75**0.04)
    assert sousa_defect_level(0.75, 1.0, 2.0, 0.96) == pytest.approx(floor)


def test_paper_example_1():
    """Example 1: Y=0.75, theta_max=1, R=2.1, DL target 100 ppm -> T=97.7%."""
    t = required_coverage(0.75, 100e-6, susceptibility_ratio=2.1, theta_max=1.0)
    assert t == pytest.approx(0.9775, abs=5e-4)
    t_wb = required_coverage_williams_brown(0.75, 100e-6)
    assert t_wb == pytest.approx(0.99965, abs=5e-5)


def test_paper_example_2():
    """Example 2: Y=0.75, T=1, theta_max=0.99 -> DL = 1 - 0.75**0.01."""
    dl = sousa_defect_level(0.75, 1.0, 1.0, 0.99)
    assert ppm(dl) == pytest.approx(2872.7, abs=1.0)
    assert williams_brown(0.75, 1.0) == 0.0


def test_required_coverage_roundtrip():
    floor = residual_defect_level(0.8, 0.97)
    for target in (floor * 1.2, floor * 3, floor * 10):
        t = required_coverage(0.8, target, 1.7, 0.97)
        assert sousa_defect_level(0.8, t, 1.7, 0.97) == pytest.approx(target, rel=1e-9)
    # With a complete test (theta_max = 1) any positive target is reachable.
    for target in (1e-5, 1e-3):
        t = required_coverage(0.8, target, 1.7, 1.0)
        assert sousa_defect_level(0.8, t, 1.7, 1.0) == pytest.approx(target, rel=1e-9)


def test_required_coverage_below_floor_rejected():
    floor = residual_defect_level(0.75, 0.96)
    with pytest.raises(ValueError, match="residual"):
        required_coverage(0.75, floor / 10, 2.0, 0.96)


def test_weighted_defect_level_alias():
    assert weighted_defect_level(0.8, 0.9) == williams_brown(0.8, 0.9)


def test_ppm():
    assert ppm(0.001) == 1000.0


def test_clustered_reduces_to_poisson_at_large_alpha():
    import math

    from repro.core import clustered_defect_level

    w = 0.3
    y = math.exp(-w)
    for theta in (0.0, 0.4, 0.9, 1.0):
        poisson = williams_brown(y, theta)
        clustered = clustered_defect_level(w, theta, clustering=1e8)
        assert clustered == pytest.approx(poisson, rel=1e-5, abs=1e-9)


def test_clustering_lowers_defect_level():
    from repro.core import clustered_defect_level

    w = 0.3
    for theta in (0.3, 0.6, 0.9):
        strong = clustered_defect_level(w, theta, clustering=0.5)
        weak = clustered_defect_level(w, theta, clustering=50.0)
        assert strong < weak


def test_clustered_endpoints_and_validation():
    from repro.core import clustered_defect_level

    assert clustered_defect_level(0.3, 1.0, 2.0) == pytest.approx(0.0)
    assert clustered_defect_level(0.0, 0.2, 2.0) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        clustered_defect_level(-1.0, 0.5)
    with pytest.raises(ValueError):
        clustered_defect_level(0.3, 0.5, clustering=0.0)
