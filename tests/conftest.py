"""Shared fixtures: small circuits and their (expensive) layouts."""

from __future__ import annotations

import pytest

from repro.circuit import c17, c432_like, parity_tree, ripple_carry_adder
from repro.layout import build_layout


@pytest.fixture(scope="session")
def c17_circuit():
    return c17()


@pytest.fixture(scope="session")
def rca4_circuit():
    return ripple_carry_adder(4)


@pytest.fixture(scope="session")
def par8_circuit():
    return parity_tree(8)


@pytest.fixture(scope="session")
def c432_circuit():
    return c432_like()


@pytest.fixture(scope="session")
def c17_design(c17_circuit):
    return build_layout(c17_circuit)


@pytest.fixture(scope="session")
def rca4_design(rca4_circuit):
    return build_layout(rca4_circuit)
