"""Unit tests for realistic fault records and the aggregating FaultList."""

import math

import pytest

from repro.defects import (
    BridgeFault,
    DefectMechanism,
    FaultList,
    FloatingNetFault,
    TransistorGateOpen,
    TransistorStuckOn,
    TransistorStuckOpen,
)


def test_bridge_order_normalised():
    a = BridgeFault(weight=1.0, net_a="x", net_b="a")
    assert (a.net_a, a.net_b) == ("a", "x")
    b = BridgeFault(weight=2.0, net_a="a", net_b="x")
    assert a.key() == b.key()


def test_fault_list_aggregates_same_effect():
    faults = FaultList()
    faults.add(BridgeFault(weight=1.0, origin=(DefectMechanism.METAL1_SHORT,), net_a="a", net_b="b"))
    faults.add(BridgeFault(weight=2.0, origin=(DefectMechanism.METAL2_SHORT,), net_a="b", net_b="a"))
    assert len(faults) == 1
    merged = faults.faults[0]
    assert merged.weight == 3.0
    assert set(merged.origin) == {
        DefectMechanism.METAL1_SHORT,
        DefectMechanism.METAL2_SHORT,
    }


def test_zero_weight_dropped():
    faults = FaultList()
    faults.add(BridgeFault(weight=0.0, net_a="a", net_b="b"))
    assert len(faults) == 0


def test_distinct_effects_not_merged():
    faults = FaultList()
    faults.add(BridgeFault(weight=1.0, net_a="a", net_b="b"))
    faults.add(BridgeFault(weight=1.0, net_a="a", net_b="c"))
    faults.add(TransistorStuckOn(weight=1.0, transistor="g.N0"))
    faults.add(TransistorStuckOpen(weight=1.0, transistors=("g.N0",)))
    faults.add(TransistorGateOpen(weight=1.0, transistor="g.N0"))
    faults.add(FloatingNetFault(weight=1.0, net="n", floating_inputs=(("g", "n"),)))
    assert len(faults) == 6


def test_probability_weight_relation():
    fault = BridgeFault(weight=0.25, net_a="a", net_b="b")
    assert fault.probability == pytest.approx(1 - math.exp(-0.25))


def test_yield_prediction():
    faults = FaultList()
    faults.add(BridgeFault(weight=0.1, net_a="a", net_b="b"))
    faults.add(BridgeFault(weight=0.2, net_a="a", net_b="c"))
    assert faults.total_weight() == pytest.approx(0.3)
    assert faults.predicted_yield() == pytest.approx(math.exp(-0.3))


def test_scaling_to_target_yield():
    faults = FaultList()
    faults.add(BridgeFault(weight=0.05, net_a="a", net_b="b"))
    faults.add(FloatingNetFault(weight=0.02, net="n", floating_inputs=(("g", "n"),)))
    scaled = faults.scaled_to_yield(0.75)
    assert scaled.predicted_yield() == pytest.approx(0.75)
    # Relative weights preserved.
    w = scaled.weights()
    assert w[0] / w[1] == pytest.approx(0.05 / 0.02)
    # Original untouched.
    assert faults.total_weight() == pytest.approx(0.07)


def test_scaling_validation():
    faults = FaultList()
    with pytest.raises(ValueError):
        faults.scaled_to_yield(0.75)  # empty
    faults.add(BridgeFault(weight=1.0, net_a="a", net_b="b"))
    with pytest.raises(ValueError):
        faults.scaled_to_yield(1.5)


def test_by_class_and_describe():
    faults = FaultList()
    faults.add(BridgeFault(weight=1.0, net_a="a", net_b="b"))
    faults.add(TransistorStuckOn(weight=1.0, transistor="g.P1"))
    groups = faults.by_class()
    assert set(groups) == {"BridgeFault", "TransistorStuckOn"}
    for fault in faults:
        assert fault.describe()


def test_floating_net_key_includes_all_effects():
    a = FloatingNetFault(weight=1, net="n", floating_inputs=(("g", "n"),))
    b = FloatingNetFault(
        weight=1, net="n", floating_inputs=(("g", "n"),), floats_output_port=True
    )
    c = FloatingNetFault(
        weight=1, net="n", floating_inputs=(("g", "n"),), stuck_open=("g.N0",)
    )
    assert len({a.key(), b.key(), c.key()}) == 3


def test_json_roundtrip(tmp_path):
    faults = FaultList()
    faults.add(
        BridgeFault(
            weight=0.25,
            origin=(DefectMechanism.METAL1_SHORT,),
            net_a="a",
            net_b="b",
        )
    )
    faults.add(
        FloatingNetFault(
            weight=0.5,
            origin=(DefectMechanism.CONTACT_OPEN,),
            net="n",
            floating_inputs=(("g1", "n"), ("g2", "n")),
            stuck_open=("g1.N0",),
        )
    )
    faults.add(
        TransistorStuckOpen(
            weight=0.1,
            origin=(DefectMechanism.DIFF_OPEN,),
            transistors=("g1.N0", "g1.N1"),
            instance="g1",
        )
    )
    path = tmp_path / "faults.json"
    faults.save_json(path)
    loaded = FaultList.load_json(path)
    assert len(loaded) == len(faults)
    assert loaded.total_weight() == pytest.approx(faults.total_weight())
    original_keys = {f.key() for f in faults}
    loaded_keys = {f.key() for f in loaded}
    assert original_keys == loaded_keys
