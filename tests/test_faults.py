"""Unit tests for the stuck-at universe and equivalence collapsing."""


import pytest

from repro.circuit import Circuit, GateType, c17
from repro.simulation import (
    FaultSimulator,
    FaultSite,
    StuckAtFault,
    collapse_faults,
    full_fault_universe,
)


def test_universe_counts_c17(c17_circuit):
    universe = full_fault_universe(c17_circuit)
    # 11 nets x 2 stem faults, plus pin faults on fanout branches:
    # G1..G7, G10, G11, G16, G19, G22, G23 = 11 nets; G3, G11 and G16 fan
    # out to 2 pins each -> 2 nets... count directly instead:
    stems = [f for f in universe if f.site is FaultSite.NET]
    pins = [f for f in universe if f.site is FaultSite.GATE_INPUT]
    assert len(stems) == 2 * 11
    assert len(pins) % 2 == 0
    assert len(universe) == len(set(universe))


def test_collapsed_count_c17(c17_circuit):
    # The classic result: c17 collapses to 22 equivalence classes.
    assert len(collapse_faults(c17_circuit)) == 22


def test_stuck_value_validation():
    with pytest.raises(ValueError):
        StuckAtFault("n", 2)
    with pytest.raises(ValueError):
        StuckAtFault("n", 0, FaultSite.GATE_INPUT)  # missing gate/pin


def test_fault_str():
    assert str(StuckAtFault("a", 1)) == "a/sa1"
    pin = StuckAtFault("a", 0, FaultSite.GATE_INPUT, "g", 2)
    assert str(pin) == "g.in2(a)/sa0"


def _detection_signature(circuit: Circuit, fault: StuckAtFault) -> tuple:
    """Exhaustive detection signature of a fault (small circuits only)."""
    sim = FaultSimulator(circuit)
    n = len(circuit.primary_inputs)
    signature = []
    for code in range(2**n):
        vec = [(code >> i) & 1 for i in range(n)]
        signature.append(sim.detects(fault, vec))
    return tuple(signature)


@pytest.mark.parametrize(
    "builder",
    [
        lambda: c17(),
        lambda: _tiny_tree(),
    ],
)
def test_collapsing_preserves_detection_semantics(builder):
    """Every collapsed-away fault must share its representative's detection set."""
    circuit = builder()
    universe = full_fault_universe(circuit)
    collapsed = collapse_faults(circuit)
    collapsed_set = set(collapsed)

    signatures = {f: _detection_signature(circuit, f) for f in universe}
    collapsed_signatures = {signatures[f] for f in collapsed}
    # Each fault's signature must appear among the representatives.
    for fault, sig in signatures.items():
        assert sig in collapsed_signatures, f"{fault} lost by collapsing"
    assert len(collapsed_set) < len(universe)


def _tiny_tree() -> Circuit:
    ckt = Circuit(name="tiny")
    for net in ("a", "b", "c"):
        ckt.add_input(net)
    ckt.add_gate(GateType.AND, ["a", "b"], "d")
    ckt.add_gate(GateType.NOR, ["d", "c"], "e")
    ckt.add_gate(GateType.NOT, ["e"], "f")
    ckt.add_output("f")
    return ckt


def test_collapse_all_classes_detectable_somewhere():
    """For an irredundant circuit, every representative is detectable."""
    circuit = _tiny_tree()
    sim = FaultSimulator(circuit)
    n = len(circuit.primary_inputs)
    vectors = [[(code >> i) & 1 for i in range(n)] for code in range(2**n)]
    for fault in collapse_faults(circuit):
        assert sim.detects_any(fault, vectors), f"{fault} undetectable"


def test_po_stem_faults_kept():
    """A net that is a PO must keep its own stem fault despite masking gates."""
    ckt = Circuit(name="po")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.AND, ["a", "b"], "m")
    ckt.add_gate(GateType.AND, ["m", "b"], "z")
    ckt.add_output("m")  # m observable directly
    ckt.add_output("z")
    collapsed = collapse_faults(ckt)
    # m/sa0 must survive as its own class or as representative: a/sa0 is NOT
    # equivalent to m/sa0 here only through the AND; but since m is a PO,
    # they are distinguishable... verify semantics with signatures.
    for fault in full_fault_universe(ckt):
        sig = _detection_signature(ckt, fault)
        reps = {f: _detection_signature(ckt, f) for f in collapsed}
        assert sig in reps.values()
