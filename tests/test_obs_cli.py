"""The ``python -m repro obs`` run-history subcommands."""

import json

import pytest

from repro import obs
from repro.__main__ import main


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.disable_events()
    yield
    obs.disable()
    obs.disable_events()


@pytest.fixture()
def history(tmp_path):
    """A trace file with two recorded runs (different seeds)."""
    path = tmp_path / "runs.jsonl"
    assert main(["c17", "--seed", "101", "--trace", str(path)]) == 0
    assert main(["c17", "--seed", "202", "--trace", str(path)]) == 0
    return path


# ---------------------------------------------------------------------------
# list
# ---------------------------------------------------------------------------
def test_obs_list_tabulates_runs(history, capsys):
    code = main(["obs", "list", str(history)])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 recorded run(s)" in out
    assert out.count("c17") >= 2
    assert "theta_max" in out
    assert "wall s" in out


def test_obs_list_empty_file(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    code = main(["obs", "list", str(empty)])
    assert code == 0
    assert "no runs recorded" in capsys.readouterr().out


def test_obs_list_missing_file_exits_2(tmp_path, capsys):
    code = main(["obs", "list", str(tmp_path / "nope.jsonl")])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------
def test_obs_diff_defaults_to_last_two_runs(history, capsys):
    code = main(["obs", "diff", str(history)])
    out = capsys.readouterr().out
    assert code == 0
    # The seed differs between the two runs -> config section present.
    assert "config" in out
    assert "seed" in out
    assert "101" in out and "202" in out


def test_obs_diff_explicit_indices(history, capsys):
    code = main(["obs", "diff", str(history), "0", "1"])
    assert code == 0
    assert "A: run 0" in capsys.readouterr().out


def test_obs_diff_identical_runs(history, capsys):
    code = main(["obs", "diff", str(history), "0", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "identical" in out


def test_obs_diff_needs_two_runs(tmp_path, capsys):
    path = tmp_path / "one.jsonl"
    assert main(["c17", "--trace", str(path)]) == 0
    code = main(["obs", "diff", str(path)])
    assert code == 2
    assert "needs two" in capsys.readouterr().err


def test_obs_diff_rejects_one_index(history, capsys):
    code = main(["obs", "diff", str(history), "0"])
    assert code == 2
    assert "zero or two" in capsys.readouterr().err


def test_obs_diff_index_out_of_range(history, capsys):
    code = main(["obs", "diff", str(history), "0", "9"])
    assert code == 2
    assert "out of range" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# check-bench
# ---------------------------------------------------------------------------
def _bench(path, seconds):
    record = {
        "benchmark": "c432",
        "mode": "full",
        "serial": {"seconds": seconds, "coverage": 0.99},
        "parallel_seconds": seconds / 2,
    }
    path.write_text(json.dumps(record))
    return path


def test_check_bench_passes_within_tolerance(tmp_path, capsys):
    fresh = _bench(tmp_path / "fresh.json", 1.2)
    base = _bench(tmp_path / "base.json", 1.0)
    code = main(
        ["obs", "check-bench", str(fresh), "--baseline", str(base)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "OK: 2 timing key(s)" in out


def test_check_bench_fails_on_inflated_timing(tmp_path, capsys):
    fresh = _bench(tmp_path / "fresh.json", 10.0)
    base = _bench(tmp_path / "base.json", 1.0)
    code = main(
        ["obs", "check-bench", str(fresh), "--baseline", str(base)]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "REGRESSION" in captured.out
    assert "FAIL" in captured.err


def test_check_bench_tolerance_is_configurable(tmp_path):
    fresh = _bench(tmp_path / "fresh.json", 10.0)
    base = _bench(tmp_path / "base.json", 1.0)
    code = main(
        [
            "obs",
            "check-bench",
            str(fresh),
            "--baseline",
            str(base),
            "--tolerance",
            "20",
        ]
    )
    assert code == 0


def test_check_bench_only_compares_seconds_keys(tmp_path, capsys):
    # Non-timing drift (coverage) must not trip the gate.
    fresh = tmp_path / "fresh.json"
    fresh.write_text(json.dumps({"seconds": 1.0, "coverage": 0.5}))
    base = tmp_path / "base.json"
    base.write_text(json.dumps({"seconds": 1.0, "coverage": 0.99}))
    code = main(
        ["obs", "check-bench", str(fresh), "--baseline", str(base)]
    )
    assert code == 0
    assert "OK: 1 timing key(s)" in capsys.readouterr().out


def test_check_bench_no_shared_keys_exits_2(tmp_path, capsys):
    fresh = tmp_path / "fresh.json"
    fresh.write_text(json.dumps({"a_seconds": 1.0}))
    base = tmp_path / "base.json"
    base.write_text(json.dumps({"b_seconds": 1.0}))
    code = main(
        ["obs", "check-bench", str(fresh), "--baseline", str(base)]
    )
    assert code == 2
    assert "no shared timing keys" in capsys.readouterr().err


def test_check_bench_missing_fresh_file_exits_2(tmp_path, capsys):
    code = main(["obs", "check-bench", str(tmp_path / "nope.json")])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_check_bench_default_baseline_is_git_head(capsys):
    # The committed benchmark record gates against itself: always a pass.
    code = main(["obs", "check-bench", "BENCH_fault_sim.json"])
    out = capsys.readouterr().out
    assert code == 0
    assert "git:HEAD" in out
    assert "OK" in out


def test_obs_diff_old_schema_manifest_missing_optional_fields(
    tmp_path, capsys
):
    # Manifests written before engine/resilience/curves/attribution existed
    # carry only the original keys; diff must handle them without raising.
    old = {
        "type": "manifest",
        "schema": 1,
        "benchmark": "c17",
        "config": {"benchmark": "c17", "seed": 1},
        "config_hash": "aaaa",
        "seed": 1,
        "git": None,
        "cache": None,
        "stage_timings": {"pipeline.run": 0.4},
        "results": {"final_T": 0.9},
    }
    new = {
        **old,
        "config": {"benchmark": "c17", "seed": 2},
        "config_hash": "bbbb",
        "seed": 2,
        "engine": {"engine": "serial", "workers": 1},
        "resilience": {"chunk_retries": 0},
        "curves": {"k": [1], "T": [0.9]},
        "attribution": {"stage_wall_s": {"atpg": 0.1}},
        "results": {"final_T": 0.95},
    }
    path = tmp_path / "mixed.jsonl"
    with open(path, "w") as handle:
        for record in (old, new):
            handle.write(json.dumps(record) + "\n")
    code = main(["obs", "diff", str(path), "0", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "seed" in out
    assert "final_T" in out


def test_obs_html_renders_old_schema_history(tmp_path, capsys):
    # Same mixed-vintage file through the dashboard: panels degrade to
    # notes instead of raising on the missing optional sections.
    record = {
        "type": "manifest",
        "schema": 1,
        "benchmark": "c17",
        "config": {"benchmark": "c17", "seed": 1},
        "config_hash": "aaaa",
        "seed": 1,
        "git": None,
        "cache": None,
        "stage_timings": {"pipeline.run": 0.4},
        "results": {"final_T": 0.9},
    }
    path = tmp_path / "old.jsonl"
    path.write_text(json.dumps(record) + "\n")
    out = tmp_path / "dash.html"
    code = main(["obs", "html", "--manifests", str(path), "--out", str(out)])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    assert "no per-run curves" in out.read_text()


# ---------------------------------------------------------------------------
# list --campaign: discover per-job manifests from a campaign directory
# ---------------------------------------------------------------------------
def _run_campaign_dir(tmp_path):
    spec = tmp_path / "spec.json"
    spec.write_text(
        json.dumps(
            {
                "name": "obs-sweep",
                "base": {"benchmark": "c17", "max_random_patterns": 16},
                "grid": {"seed": [1, 2]},
            }
        )
    )
    camp = str(tmp_path / "camp")
    assert (
        main(["campaign", "run", str(spec), "--dir", camp, "--workers", "0"])
        == 0
    )
    return camp


def test_obs_list_campaign_discovers_job_manifests(tmp_path, capsys):
    camp = _run_campaign_dir(tmp_path)
    capsys.readouterr()
    assert main(["obs", "list", "--campaign", camp]) == 0
    out = capsys.readouterr().out
    assert "2 recorded run(s)" in out
    assert "job" in out  # the extra job-id column
    # Job ids are config hashes; both 12-char prefixes must appear.
    from repro.campaign import CampaignSpec
    from repro.experiments import ExperimentConfig

    spec = CampaignSpec(
        name="obs-sweep",
        base=ExperimentConfig(benchmark="c17", max_random_patterns=16),
        grid={"seed": (1, 2)},
    )
    for job in spec.expand():
        assert job.job_id[:12] in out


def test_obs_list_campaign_json_carries_job_and_campaign(tmp_path, capsys):
    camp = _run_campaign_dir(tmp_path)
    capsys.readouterr()
    assert main(["obs", "list", "--campaign", camp, "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 2
    assert all(row["campaign"] == "obs-sweep" for row in rows)
    assert all(row["job_id"] for row in rows)


def test_obs_list_campaign_empty_dir_exits_2(tmp_path, capsys):
    empty = tmp_path / "not-a-campaign"
    empty.mkdir()
    assert main(["obs", "list", "--campaign", str(empty)]) == 2
    assert "no manifest histories" in capsys.readouterr().err


def test_obs_list_without_files_or_campaign_exits_2(capsys):
    assert main(["obs", "list"]) == 2
    assert "no trace files" in capsys.readouterr().err
