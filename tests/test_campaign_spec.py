"""Unit tests: campaign spec parsing, sweep expansion, job identity."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignSpecError,
    JobSpec,
    config_from_dict,
    load_spec,
)
from repro.experiments import ExperimentConfig
from repro.obs.manifest import config_hash, config_to_dict


# ---------------------------------------------------------------------------
# config_from_dict
# ---------------------------------------------------------------------------
def test_config_from_dict_round_trips_config_to_dict():
    config = ExperimentConfig(benchmark="c17", seed=7, max_random_patterns=32)
    fields = config_to_dict(config)
    rebuilt = config_from_dict(fields)
    assert rebuilt == config
    assert config_hash(rebuilt) == config_hash(config)


def test_config_from_dict_rejects_unknown_field():
    with pytest.raises(CampaignSpecError, match="unknown ExperimentConfig"):
        config_from_dict({"benchmark": "c17", "warp_factor": 9})


def test_config_from_dict_rejects_custom_statistics():
    with pytest.raises(CampaignSpecError, match="statistics"):
        config_from_dict({"benchmark": "c17", "statistics": {"x": 1}})


def test_config_from_dict_rejects_invalid_value():
    with pytest.raises(CampaignSpecError, match="invalid experiment"):
        config_from_dict({"benchmark": "c17", "target_yield": 2.0})


# ---------------------------------------------------------------------------
# expansion
# ---------------------------------------------------------------------------
def test_grid_expansion_is_cartesian_product():
    spec = CampaignSpec(
        name="grid",
        base=ExperimentConfig(benchmark="c17", max_random_patterns=16),
        grid={"seed": (1, 2, 3), "target_yield": (0.75, 0.9)},
    )
    jobs = spec.expand()
    assert len(jobs) == 6
    points = {(j.config.seed, j.config.target_yield) for j in jobs}
    assert points == {(s, y) for s in (1, 2, 3) for y in (0.75, 0.9)}


def test_job_id_is_config_hash():
    spec = CampaignSpec(
        base=ExperimentConfig(benchmark="c17"), grid={"seed": (5,)}
    )
    (job,) = spec.expand()
    assert job.job_id == config_hash(job.config)
    assert job.config.seed == 5


def test_explicit_jobs_carry_priority_and_budget():
    spec = CampaignSpec(
        base=ExperimentConfig(benchmark="c17"),
        jobs=({"seed": 9, "priority": 5, "max_attempts": 4},),
    )
    (job,) = spec.expand()
    assert job.priority == 5
    assert job.max_attempts == 4
    # Job keys never leak into the configuration (or the hash).
    assert job.config == ExperimentConfig(benchmark="c17", seed=9)


def test_duplicate_jobs_collapse_keeping_strongest():
    spec = CampaignSpec(
        base=ExperimentConfig(benchmark="c17"),
        grid={"seed": (1,)},
        jobs=({"seed": 1, "priority": 3, "max_attempts": 5},),
        priority=0,
        max_attempts=2,
    )
    (job,) = spec.expand()
    assert job.priority == 3
    assert job.max_attempts == 5


def test_expansion_orders_by_priority_then_id():
    spec = CampaignSpec(
        base=ExperimentConfig(benchmark="c17"),
        jobs=(
            {"seed": 1, "priority": 0},
            {"seed": 2, "priority": 9},
            {"seed": 3, "priority": 0},
        ),
    )
    jobs = spec.expand()
    assert jobs[0].config.seed == 2
    low = [j.job_id for j in jobs[1:]]
    assert low == sorted(low)


def test_spec_validation_rejects_bad_shapes():
    base = ExperimentConfig(benchmark="c17")
    with pytest.raises(CampaignSpecError, match="no jobs"):
        CampaignSpec(base=base)
    with pytest.raises(CampaignSpecError, match="unknown field"):
        CampaignSpec(base=base, grid={"nope": (1,)})
    with pytest.raises(CampaignSpecError, match="no values"):
        CampaignSpec(base=base, grid={"seed": ()})
    with pytest.raises(CampaignSpecError, match="max_attempts"):
        CampaignSpec(base=base, grid={"seed": (1,)}, max_attempts=0)
    with pytest.raises(CampaignSpecError, match="name"):
        CampaignSpec(name="  ", base=base, grid={"seed": (1,)})


# ---------------------------------------------------------------------------
# JSON round trip
# ---------------------------------------------------------------------------
def test_spec_round_trips_through_json(tmp_path):
    spec = CampaignSpec(
        name="rt",
        base=ExperimentConfig(benchmark="c17", max_random_patterns=32),
        grid={"seed": (1, 2)},
        jobs=({"seed": 7, "priority": 1},),
        priority=2,
        max_attempts=3,
    )
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    loaded = load_spec(str(path))
    assert loaded.to_dict() == spec.to_dict()
    assert [j.job_id for j in loaded.expand()] == [
        j.job_id for j in spec.expand()
    ]


def test_load_spec_errors_are_typed(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(CampaignSpecError, match="cannot read"):
        load_spec(str(missing))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(CampaignSpecError, match="not valid JSON"):
        load_spec(str(bad))
    unknown = tmp_path / "unknown.json"
    unknown.write_text(json.dumps({"grid": {"seed": [1]}, "bogus": 1}))
    with pytest.raises(CampaignSpecError, match="unknown spec key"):
        load_spec(str(unknown))


def test_for_config_uses_hash():
    config = ExperimentConfig(benchmark="c17")
    job = JobSpec.for_config(config, priority=1, max_attempts=3)
    assert job.job_id == config_hash(config)
    assert job.config_dict() == config_to_dict(config)
