"""Unit tests for weighted-fault arithmetic (eqs. 4-6)."""

import math

import pytest

from repro.core import (
    probability_from_weight,
    unweighted_coverage,
    weight_from_probability,
    weighted_coverage,
    weights_for_yield,
    yield_from_weights,
)


def test_weight_probability_roundtrip():
    for p in (0.0, 0.01, 0.3, 0.9):
        w = weight_from_probability(p)
        assert probability_from_weight(w) == pytest.approx(p)


def test_weight_validation():
    with pytest.raises(ValueError):
        weight_from_probability(1.0)
    with pytest.raises(ValueError):
        probability_from_weight(-0.1)


def test_yield_from_weights():
    assert yield_from_weights([]) == 1.0
    assert yield_from_weights([0.1, 0.2]) == pytest.approx(math.exp(-0.3))
    with pytest.raises(ValueError):
        yield_from_weights([0.1, -0.2])


def test_weights_for_yield():
    weights = [0.1, 0.3, 0.6]
    scaled = weights_for_yield(weights, 0.75)
    assert yield_from_weights(scaled) == pytest.approx(0.75)
    # Ratios preserved.
    assert scaled[1] / scaled[0] == pytest.approx(3.0)
    with pytest.raises(ValueError):
        weights_for_yield([0.0], 0.75)
    with pytest.raises(ValueError):
        weights_for_yield(weights, 1.0)


def test_weighted_coverage_eq6():
    weights = [1.0, 2.0, 3.0, 4.0]
    detected = [True, False, True, False]
    assert weighted_coverage(weights, detected) == pytest.approx(4.0 / 10.0)
    assert unweighted_coverage(detected) == pytest.approx(0.5)


def test_weighted_vs_unweighted_differ():
    weights = [10.0, 0.1, 0.1]
    heavy_hit = weighted_coverage(weights, [True, False, False])
    light_hit = weighted_coverage(weights, [False, True, True])
    assert heavy_hit > 0.9
    assert light_hit < 0.1
    assert unweighted_coverage([True, False, False]) == pytest.approx(1 / 3)


def test_empty_edge_cases():
    assert weighted_coverage([], []) == 1.0
    assert unweighted_coverage([]) == 1.0
    with pytest.raises(ValueError):
        weighted_coverage([1.0], [True, False])
