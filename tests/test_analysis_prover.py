"""Tests for the proof-carrying redundancy prover and its certificate checker.

Three load-bearing contracts:

* **Soundness** — every fault the prover marks untestable really is
  undetectable.  Checked exhaustively (all ``2^n`` vectors) on the small
  builtins and on hypothesis-generated random circuits, under both the
  python and numpy simulation engines, and cross-checked against PODEM at a
  20k backtrack budget on the c432/c880-class benchmarks.
* **Strict superset** — the prover subsumes the PR 3 implication screen on
  every builtin, and on c432 proves strictly more (the recursive/learned
  machinery earns its keep).
* **Certificates** — every proved fault carries a certificate the
  *independent* checker validates, and the checker rejects tampered
  certificates (premises, steps, conflicts, and split cases alike).
"""

import copy
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_circuit, find_untestable_faults
from repro.analysis.check import (
    CertificateChecker,
    check_certificate,
    check_certificates,
)
from repro.analysis.prover import (
    CERTIFICATE_VERSION,
    RedundancyProver,
    netlist_hash,
    prove_untestable,
    static_learning,
)
from repro.atpg.podem import AtpgStatus, PodemAtpg
from repro.circuit import Circuit, GateType
from repro.circuit.iscas import BENCHMARKS
from repro.circuit.levelize import levelize
from repro.circuit.library import evaluate_gate
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.faults import full_fault_universe
from repro.simulation.numpy_sim import NumpyFaultSimulator


def all_vectors(circuit: Circuit) -> list[list[int]]:
    n = len(circuit.primary_inputs)
    return [list(bits) for bits in product((0, 1), repeat=n)]


def exhaustively_undetected(circuit: Circuit, engine: str = "python") -> set:
    """The ground-truth untestable set: faults no input vector detects."""
    sim_cls = FaultSimulator if engine == "python" else NumpyFaultSimulator
    universe = full_fault_universe(circuit)
    result = sim_cls(circuit).run(all_vectors(circuit), faults=universe)
    return set(universe) - set(result.detected)


def split_cert_circuit() -> Circuit:
    """A fixed 9-gate circuit whose g6/sa1 needs a recursive (split) proof.

    Found by seed search over the same random-circuit family the hypothesis
    strategy below draws from; kept verbatim so the split-certificate code
    paths (prover emission and checker recursion) have a deterministic test.
    """
    ckt = Circuit(name="split_example")
    for k in range(5):
        ckt.add_input(f"i{k}")
    ckt.add_gate(GateType.AND, ["i4", "i3", "i3"], "g0")
    ckt.add_gate(GateType.XOR, ["i2", "i4", "i1"], "g1")
    ckt.add_gate(GateType.OR, ["i1", "g1", "i0"], "g2")
    ckt.add_gate(GateType.XOR, ["i4", "i1"], "g3")
    ckt.add_gate(GateType.NAND, ["g2", "g3", "i1"], "g4")
    ckt.add_gate(GateType.XNOR, ["g0", "g4", "i3"], "g5")
    ckt.add_gate(GateType.BUF, ["g2"], "g6")
    ckt.add_gate(GateType.XOR, ["g3", "i0"], "g7")
    ckt.add_gate(GateType.NAND, ["g6", "g7", "g5"], "g8")
    ckt.add_output("g8")
    ckt.validate()
    return ckt


@pytest.fixture(scope="module")
def c432_proof():
    """One depth-0 prover run over the full c432 universe, shared."""
    circuit = BENCHMARKS["c432_like"]()
    return circuit, prove_untestable(circuit, depth=0)


@pytest.fixture(scope="module")
def c880_proof():
    """One depth-0 prover run over the full c880 universe, shared.

    Depth 0 proves the same 8 faults as depth 2 here (all close in the
    fire stage) without paying the recursive budget on the ~1.7k faults
    that stay unproved either way.
    """
    circuit = BENCHMARKS["c880_like"]()
    return circuit, prove_untestable(circuit, depth=0)


# ---------------------------------------------------------------------------
# Soundness against exhaustive simulation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "name", ["c17", "dec4", "mux8", "alu4", "mul4", "rca8"]
)
def test_prover_sound_on_builtins_exhaustive(name):
    circuit = BENCHMARKS[name]()
    result = prove_untestable(circuit, depth=2)
    undetected = exhaustively_undetected(circuit)
    assert set(result.proved) <= undetected, name
    assert result.certs_failed == 0
    assert len(result.certificates) == len(result.proved)


@pytest.mark.parametrize("engine", ["python", "numpy"])
def test_prover_complete_on_alu4_under_both_engines(engine):
    # alu4 is the one small builtin with genuinely untestable faults; the
    # prover finds exactly the exhaustive ground truth, and both simulation
    # engines agree on what that ground truth is.
    circuit = BENCHMARKS["alu4"]()
    result = prove_untestable(circuit, depth=2)
    assert set(result.proved) == exhaustively_undetected(circuit, engine)
    assert len(result.proved) == 4


@st.composite
def random_circuits(draw):
    gate_types = [
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.NOT,
        GateType.BUF,
    ]
    n_inputs = draw(st.integers(min_value=2, max_value=5))
    n_gates = draw(st.integers(min_value=1, max_value=14))
    ckt = Circuit(name="rand")
    nets = [ckt.add_input(f"i{k}") for k in range(n_inputs)]
    for g in range(n_gates):
        gt = draw(st.sampled_from(gate_types))
        fan = 1 if gt in (GateType.NOT, GateType.BUF) else draw(st.integers(2, 3))
        sources = [nets[draw(st.integers(0, len(nets) - 1))] for _ in range(fan)]
        out = f"g{g}"
        ckt.add_gate(gt, sources, out)
        nets.append(out)
    ckt.add_output(nets[-1])
    ckt.validate()
    return ckt


@settings(max_examples=40, deadline=None)
@given(ckt=random_circuits())
def test_prover_sound_on_random_circuits(ckt):
    result = prove_untestable(ckt, depth=2)
    undetected = exhaustively_undetected(ckt)
    assert set(result.proved) <= undetected
    assert result.certs_failed == 0
    # Every certificate survives a fresh, independent checker pass.
    n_ok, errors = check_certificates(ckt, result.certificates)
    assert not errors, errors
    assert n_ok == len(result.proved)


# ---------------------------------------------------------------------------
# Superset of the implication screen
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ["c17", "alu4", "mul4", "rca8", "mux8"])
def test_prover_subsumes_screen(name):
    circuit = BENCHMARKS[name]()
    screen = find_untestable_faults(circuit)
    result = prove_untestable(circuit, depth=2)
    assert set(screen.untestable) <= set(result.proved), name


def test_prover_subsumes_screen_on_c880(c880_proof):
    circuit, result = c880_proof
    screen = find_untestable_faults(circuit)
    assert set(screen.untestable) <= set(result.proved)
    assert len(result.proved) == 8
    assert result.by_method == {"fire": 8}


def test_prover_strictly_exceeds_screen_on_c432(c432_proof):
    circuit, result = c432_proof
    screen = find_untestable_faults(circuit)
    assert set(screen.untestable) < set(result.proved)
    extras = set(result.proved) - set(screen.untestable)
    assert {str(f) for f in extras} == {"SC8.in1(PC)/sa1"}
    (extra,) = extras
    assert result.methods[extra] == "static_learning"
    assert len(result.proved) == 49


# ---------------------------------------------------------------------------
# PODEM cross-check at 20k backtracks
# ---------------------------------------------------------------------------
def test_podem_never_tests_a_proved_fault_c880(c880_proof):
    circuit, result = c880_proof
    assert result.proved
    atpg = PodemAtpg(circuit, backtrack_limit=20_000)
    for fault in result.proved:
        outcome = atpg.generate(fault)
        assert outcome.status == AtpgStatus.REDUNDANT, str(fault)


def test_podem_never_tests_a_proved_fault_c432(c432_proof):
    # The XA/XB/XC parity-checker pin faults complete in milliseconds
    # under PODEM; the remaining proved faults need seconds-to-minutes of
    # search each, so they are covered by the certificate checker and the
    # exhaustive contracts instead.
    circuit, result = c432_proof
    sample = [
        f for f in result.proved
        if str(f).startswith(("XA", "XB", "XC"))
    ]
    assert len(sample) == 27
    atpg = PodemAtpg(circuit, backtrack_limit=20_000)
    for fault in sample:
        outcome = atpg.generate(fault)
        assert outcome.status != AtpgStatus.TESTED, str(fault)


# ---------------------------------------------------------------------------
# Split (recursive-learning) certificates
# ---------------------------------------------------------------------------
def test_split_certificate_emitted_and_checked():
    ckt = split_cert_circuit()
    result = prove_untestable(ckt, depth=2)
    split_certs = [
        c for c in result.certificates
        if c.get("proof") is not None and "split" in c["proof"]
    ]
    assert split_certs, "expected a recursive (split) certificate"
    cert = split_certs[0]
    assert cert["method"].startswith("recursive_")
    assert cert["fault"]["net"] == "g6" and cert["fault"]["value"] == 1
    # ...and the proved fault really is undetectable.
    assert set(result.proved) <= exhaustively_undetected(ckt)


# ---------------------------------------------------------------------------
# Certificate tampering: the checker must reject
# ---------------------------------------------------------------------------
def _first_cert_with(result, pred):
    for cert in result.certificates:
        if pred(cert):
            return copy.deepcopy(cert)
    raise AssertionError("fixture lacks the expected certificate shape")


def test_checker_rejects_flipped_fault_value(c432_proof):
    circuit, result = c432_proof
    cert = _first_cert_with(result, lambda c: c.get("proof") is not None)
    cert["fault"]["value"] = 1 - cert["fault"]["value"]
    assert not check_certificate(circuit, cert).ok


def test_checker_rejects_tampered_premise(c432_proof):
    circuit, result = c432_proof
    cert = _first_cert_with(
        result, lambda c: c.get("proof") is not None and c["premises"]
    )
    cert["premises"][0]["value"] = 1 - cert["premises"][0]["value"]
    assert not check_certificate(circuit, cert).ok


def test_checker_rejects_tampered_chain_step(c432_proof):
    circuit, result = c432_proof
    cert = _first_cert_with(
        result,
        lambda c: c.get("proof") is not None and c["proof"].get("chain"),
    )
    step = cert["proof"]["chain"][0]
    step["assign"][1] = 1 - step["assign"][1]
    assert not check_certificate(circuit, cert).ok


def test_checker_rejects_dropped_conflict(c432_proof):
    circuit, result = c432_proof
    cert = _first_cert_with(
        result,
        lambda c: c.get("proof") is not None and "conflict" in c["proof"],
    )
    del cert["proof"]["conflict"]
    assert not check_certificate(circuit, cert).ok


def test_checker_rejects_wrong_dominator_source(c432_proof):
    circuit, result = c432_proof
    cert = _first_cert_with(
        result, lambda c: c["reason"] == "unobservable" and not c["premises"]
    )
    # Claim a different (observable) net is the unobservable source.
    cert["fault"]["net"] = circuit.primary_inputs[0]
    cert["fault"]["site"] = "net"
    cert["fault"]["gate"] = None
    cert["fault"]["pin"] = None
    cert["source"] = circuit.primary_inputs[0]
    assert not check_certificate(circuit, cert).ok


def test_checker_rejects_tampered_split_case():
    ckt = split_cert_circuit()
    result = prove_untestable(ckt, depth=2)
    cert = _first_cert_with(
        result,
        lambda c: c.get("proof") is not None and "split" in c["proof"],
    )
    good = check_certificate(ckt, cert)
    assert good.ok, good
    # Corrupt one case of the split: replace it with an empty chain that
    # claims a conflict it never derived.
    tampered = copy.deepcopy(cert)
    tampered["proof"]["cases"][0] = {
        "chain": [],
        "conflict": tampered["proof"]["cases"][0].get("conflict")
        or {"assign": ["g0", 0], "by": "premise"},
    }
    assert not check_certificate(ckt, tampered).ok
    # Dropping a case entirely must fail too (both branches are required).
    truncated = copy.deepcopy(cert)
    truncated["proof"]["cases"] = truncated["proof"]["cases"][:1]
    assert not check_certificate(ckt, truncated).ok


def test_checker_rejects_unknown_version(c432_proof):
    circuit, result = c432_proof
    cert = copy.deepcopy(result.certificates[0])
    cert["version"] = CERTIFICATE_VERSION + 1
    assert not check_certificate(circuit, cert).ok


# ---------------------------------------------------------------------------
# Hashing, caching, result surface
# ---------------------------------------------------------------------------
def test_netlist_hash_is_structural():
    a, b = BENCHMARKS["c17"](), BENCHMARKS["c17"]()
    assert a is not b
    assert netlist_hash(a) == netlist_hash(b)
    assert netlist_hash(a) != netlist_hash(BENCHMARKS["alu4"]())


def test_static_learning_cache_hits_on_equal_netlists():
    a, b = BENCHMARKS["mux8"](), BENCHMARKS["mux8"]()
    assert static_learning(a) is static_learning(b)


@pytest.mark.parametrize("name", ["c17", "alu4", "mux8"])
def test_static_learning_is_sound(name):
    # Every learned implication (a, v) -> (b, w) must hold on all vectors.
    circuit = BENCHMARKS[name]()
    learned = static_learning(circuit)
    order = levelize(circuit)
    for vector in all_vectors(circuit):
        values = dict(zip(circuit.primary_inputs, vector))
        for gate in order:
            values[gate.output] = evaluate_gate(
                gate.gate_type, [values[n] for n in gate.inputs]
            )
        for (a, v), consequents in learned.items():
            if values[a] != v:
                continue
            for b, w in consequents:
                assert values[b] == w, (a, v, b, w)


def test_prover_result_to_dict_shape(c432_proof):
    circuit, result = c432_proof
    payload = result.to_dict()
    assert payload["n_proved"] == len(result.proved) == 49
    assert payload["n_screened"] == 820
    assert payload["depth"] == 0
    assert payload["netlist_sha256"] == netlist_hash(circuit)
    assert payload["by_method"] == {"fire": 48, "static_learning": 1}
    assert payload["certs_failed"] == 0
    assert sum(payload["by_reason"].values()) == 49
    assert len(payload["faults"]) == 49
    assert payload["work"]["closures"] >= 0
    assert result.proved[0] in result
    assert result.n_learned == payload["n_learned"] > 0


def test_checker_is_independent_of_prover_state(c432_proof):
    # A checker built from a *fresh* circuit object validates certificates
    # produced elsewhere: nothing in the certificate depends on prover
    # in-memory state.
    _, result = c432_proof
    fresh = BENCHMARKS["c432_like"]()
    checker = CertificateChecker(fresh)
    for cert in result.certificates:
        verdict = checker.check(cert)
        assert verdict.ok, verdict


# ---------------------------------------------------------------------------
# analyze_circuit integration
# ---------------------------------------------------------------------------
def test_analyze_circuit_prove_populates_prover():
    circuit = BENCHMARKS["alu4"]()
    analysis = analyze_circuit(circuit, prove=True, prover_depth=1)
    assert analysis.prover is not None
    assert analysis.prover.depth == 1
    assert len(analysis.prover.proved) == 4
    # Proved faults flow into the untestable set used by the pipeline.
    untestable = analysis.untestable_faults()
    assert set(analysis.prover.proved) <= set(untestable)
    payload = analysis.to_dict()
    assert payload["prover"]["n_proved"] == 4


def test_analyze_circuit_without_prove_has_no_prover():
    circuit = BENCHMARKS["c17"]()
    analysis = analyze_circuit(circuit)
    assert analysis.prover is None
    assert "prover" not in analysis.to_dict()
