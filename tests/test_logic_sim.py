"""Unit tests for the parallel-pattern logic simulator."""

import pytest

from repro.circuit import c17
from repro.simulation import LogicSimulator, pack_patterns, unpack_word
from repro.simulation.logic_sim import patterns_from_ints


def test_c17_known_vectors(c17_circuit):
    sim = LogicSimulator(c17_circuit)
    # G22 = NAND(G10, G16), with all inputs 0: G10=G11=1, G16=NAND(0,1)=1,
    # G19=NAND(1,0)=1 -> G22=NAND(1,1)=0, G23=NAND(1,1)=0.
    assert sim.outputs([0, 0, 0, 0, 0]) == [0, 0]
    assert sim.outputs([1, 1, 1, 1, 1]) == [1, 0]


def test_packed_matches_scalar(c17_circuit):
    sim = LogicSimulator(c17_circuit)
    patterns = patterns_from_ints(range(32), 5)
    rows = sim.run_patterns(patterns)
    for vec, row in zip(patterns, rows):
        assert sim.outputs(vec) == row


def test_pack_patterns_layout():
    groups = pack_patterns([[1, 0], [0, 1], [1, 1]], 2)
    assert len(groups) == 1
    words = groups[0]
    # Input 0 is high in patterns 0 and 2 -> bits 0b101.
    assert words[0] == 0b101
    assert words[1] == 0b110


def test_pack_patterns_multiple_groups():
    patterns = [[1]] * 130
    groups = pack_patterns(patterns, 1, width=64)
    assert len(groups) == 3
    assert groups[0][0] == (1 << 64) - 1
    assert groups[2][0] == 0b11


def test_pack_patterns_default_width_is_wide():
    # The engine default packs 256 patterns per word; 130 fit in one group.
    patterns = [[1]] * 130
    groups = pack_patterns(patterns, 1)
    assert len(groups) == 1
    assert groups[0][0] == (1 << 130) - 1


def test_pack_patterns_rejects_bad_width():
    with pytest.raises(ValueError, match="width"):
        pack_patterns([[1]], 1, width=0)


def test_simulator_width_equivalence(c17_circuit):
    wide = LogicSimulator(c17_circuit, width=256)
    narrow = LogicSimulator(c17_circuit, width=64)
    patterns = patterns_from_ints(range(32), 5)
    assert wide.run_patterns(patterns) == narrow.run_patterns(patterns)


def test_pack_patterns_width_mismatch():
    with pytest.raises(ValueError, match="pattern 0"):
        pack_patterns([[1, 0, 1]], 2)


def test_unpack_word_roundtrip():
    word = 0b1011
    assert unpack_word(word, 4) == [1, 1, 0, 1]


def test_simulate_packed_width_check(c17_circuit):
    sim = LogicSimulator(c17_circuit)
    with pytest.raises(ValueError, match="expected 5 input words"):
        sim.simulate_packed([0, 0])


def test_truth_table_small():
    ckt = c17()
    sim = LogicSimulator(ckt)
    rows = sim.truth_table()
    assert len(rows) == 32
    # spot check one row against scalar simulation
    vec, out = rows[19]
    assert sim.outputs(list(vec)) == list(out)


def test_truth_table_guard(c432_circuit):
    sim = LogicSimulator(c432_circuit)
    with pytest.raises(ValueError, match="20 inputs"):
        sim.truth_table()
