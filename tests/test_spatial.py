"""Unit tests for the spatial index."""

import itertools
import random

import pytest

from repro.layout import Layer, Rect, SpatialIndex


def _random_shapes(n: int, seed: int = 5, span: float = 200.0) -> list[Rect]:
    rng = random.Random(seed)
    shapes = []
    for _ in range(n):
        x = rng.uniform(0, span)
        y = rng.uniform(0, span)
        w = rng.uniform(0.5, 8)
        h = rng.uniform(0.5, 8)
        shapes.append(Rect(Layer.METAL1, x, y, x + w, y + h))
    return shapes


def test_near_finds_all_intersecting():
    shapes = _random_shapes(150)
    index = SpatialIndex(shapes, cell_size=20)
    probe = Rect(Layer.METAL1, 90, 90, 110, 110)
    brute = [s for s in shapes if s.intersects(probe)]
    near = index.near(probe)
    for s in brute:
        assert s in near


def test_candidate_pairs_superset_of_touching():
    shapes = _random_shapes(120, seed=9)
    index = SpatialIndex(shapes, cell_size=15)
    pairs = set()
    for a, b in index.candidate_pairs():
        pairs.add((id(a), id(b)))
        pairs.add((id(b), id(a)))
    for a, b in itertools.combinations(shapes, 2):
        if a.intersects(b):
            assert (id(a), id(b)) in pairs


def test_candidate_pairs_margin_covers_near_misses():
    a = Rect(Layer.METAL1, 0, 0, 1, 1)
    b = Rect(Layer.METAL1, 30, 0, 31, 1)  # 29 apart
    index = SpatialIndex([a, b], cell_size=10)
    plain = list(index.candidate_pairs())
    wide = list(index.candidate_pairs(margin=30))
    assert (a, b) not in plain and (b, a) not in plain
    assert len(wide) == 1


def test_pairs_emitted_once():
    shapes = [Rect(Layer.METAL1, 0, 0, 50, 50) for _ in range(3)]
    index = SpatialIndex(shapes, cell_size=10)
    pairs = list(index.candidate_pairs())
    assert len(pairs) == 3  # C(3,2), despite sharing many buckets


def test_invalid_cell_size():
    with pytest.raises(ValueError):
        SpatialIndex([], cell_size=0)
