"""Property-based tests (hypothesis) on core invariants.

These cover the model identities the paper's derivation rests on, plus
simulator-level invariants on randomly generated circuits.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    coverage_at,
    residual_defect_level,
    sousa_defect_level,
    susceptibility_ratio,
    theta_of_T,
    weighted_coverage_at,
    williams_brown,
    weight_from_probability,
    probability_from_weight,
    yield_from_weights,
    weights_for_yield,
)

yields = st.floats(min_value=0.05, max_value=0.99)
coverages = st.floats(min_value=0.0, max_value=1.0)
ratios = st.floats(min_value=0.2, max_value=8.0)
theta_maxes = st.floats(min_value=0.5, max_value=1.0)


@given(y=yields, t=coverages)
def test_wb_bounds(y, t):
    dl = williams_brown(y, t)
    assert 0.0 <= dl <= 1.0 - y + 1e-12


@given(y=yields, t=coverages, r=ratios, tm=theta_maxes)
def test_sousa_bounds_and_reduction(y, t, r, tm):
    dl = sousa_defect_level(y, t, r, tm)
    assert 0.0 <= dl < 1.0
    assert sousa_defect_level(y, t, 1.0, 1.0) == pytest.approx(williams_brown(y, t))


@given(y=yields, r=ratios, tm=theta_maxes, t1=coverages, t2=coverages)
def test_sousa_monotone_in_coverage(y, r, tm, t1, t2):
    lo, hi = sorted((t1, t2))
    assert sousa_defect_level(y, hi, r, tm) <= sousa_defect_level(y, lo, r, tm) + 1e-12


@given(y=yields, r=ratios, tm=theta_maxes)
def test_sousa_floor_is_residual(y, r, tm):
    assert sousa_defect_level(y, 1.0, r, tm) == pytest.approx(
        residual_defect_level(y, tm)
    )


@given(
    s_t=st.floats(min_value=1.1, max_value=50.0),
    s_r=st.floats(min_value=1.1, max_value=50.0),
    tm=theta_maxes,
    k=st.floats(min_value=1.0, max_value=1e8),
)
def test_eq9_eliminates_k(s_t, s_r, tm, k):
    """theta(k) == theta_of_T(T(k)) for every k — the paper's eq. 9."""
    from hypothesis import assume

    T = coverage_at(k, s_t)
    # Once T rounds to within float eps of 1, (1 - T) has no significant
    # bits left and the identity cannot be checked numerically.
    assume(T < 1 - 1e-9)
    theta = weighted_coverage_at(k, s_r, tm)
    r = susceptibility_ratio(s_t, s_r)
    assert theta == pytest.approx(theta_of_T(T, r, tm), rel=1e-6, abs=1e-9)


@given(p=st.floats(min_value=0.0, max_value=0.999999))
def test_weight_probability_bijection(p):
    assert probability_from_weight(weight_from_probability(p)) == pytest.approx(p)


@given(
    ws=st.lists(st.floats(min_value=1e-9, max_value=0.5), min_size=1, max_size=30),
    target=st.floats(min_value=0.05, max_value=0.95),
)
def test_yield_scaling_invariants(ws, target):
    scaled = weights_for_yield(ws, target)
    assert yield_from_weights(scaled) == pytest.approx(target)
    # Scaling preserves weight ordering.
    order = sorted(range(len(ws)), key=lambda i: ws[i])
    order_scaled = sorted(range(len(ws)), key=lambda i: scaled[i])
    assert order == order_scaled


# ----------------------------------------------------------------------
# Random-circuit simulator invariants
# ----------------------------------------------------------------------
@st.composite
def random_circuits(draw):
    from repro.circuit import Circuit, GateType

    rng_types = [
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.NOT,
    ]
    n_inputs = draw(st.integers(min_value=2, max_value=5))
    n_gates = draw(st.integers(min_value=1, max_value=12))
    ckt = Circuit(name="rand")
    nets = [ckt.add_input(f"i{k}") for k in range(n_inputs)]
    for g in range(n_gates):
        gt = draw(st.sampled_from(rng_types))
        fan = 1 if gt is GateType.NOT else draw(st.integers(2, 3))
        sources = [
            nets[draw(st.integers(0, len(nets) - 1))] for _ in range(fan)
        ]
        out = f"g{g}"
        ckt.add_gate(gt, sources, out)
        nets.append(out)
    ckt.add_output(nets[-1])
    ckt.validate()
    return ckt


@settings(max_examples=40, deadline=None)
@given(ckt=random_circuits(), code=st.integers(min_value=0, max_value=2**20))
def test_packed_equals_scalar_on_random_circuits(ckt, code):
    from repro.simulation import LogicSimulator

    sim = LogicSimulator(ckt)
    n = len(ckt.primary_inputs)
    vec = [(code >> i) & 1 for i in range(n)]
    scalar = sim.outputs(vec)
    packed_rows = sim.run_patterns([vec])
    assert packed_rows[0] == scalar


@settings(max_examples=25, deadline=None)
@given(ckt=random_circuits())
def test_collapsing_never_loses_detection_sets(ckt):
    from repro.simulation import FaultSimulator, collapse_faults, full_fault_universe

    sim = FaultSimulator(ckt)
    n = len(ckt.primary_inputs)
    vectors = [[(c >> i) & 1 for i in range(n)] for c in range(2**n)]

    def signature(fault):
        return tuple(sim.detects(fault, v) for v in vectors)

    collapsed_sigs = {signature(f) for f in collapse_faults(ckt)}
    for fault in full_fault_universe(ckt):
        assert signature(fault) in collapsed_sigs


@settings(max_examples=15, deadline=None)
@given(ckt=random_circuits())
def test_podem_agrees_with_exhaustive_detectability(ckt):
    from repro.atpg import AtpgStatus, PodemAtpg
    from repro.simulation import FaultSimulator, collapse_faults

    atpg = PodemAtpg(ckt, backtrack_limit=4000)
    sim = FaultSimulator(ckt)
    n = len(ckt.primary_inputs)
    vectors = [[(c >> i) & 1 for i in range(n)] for c in range(2**n)]
    for fault in collapse_faults(ckt):
        detectable = sim.detects_any(fault, vectors)
        outcome = atpg.generate(fault)
        if outcome.status == AtpgStatus.TESTED:
            assert detectable
            assert sim.detects(fault, outcome.pattern)
        elif outcome.status == AtpgStatus.REDUNDANT:
            assert not detectable, f"{fault} falsely proved redundant"
