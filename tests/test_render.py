"""Unit tests for the SVG layout renderer."""

import pytest

from repro.layout import Layer, Rect
from repro.layout.render import LAYER_STYLE, render_svg


def test_render_design(c17_design, tmp_path):
    out = tmp_path / "c17.svg"
    text = render_svg(c17_design, path=out)
    assert out.exists()
    assert text.startswith("<svg")
    assert text.endswith("</svg>")
    # Every populated layer produces a group.
    layers_present = {s.layer for s in c17_design.shapes}
    for layer in layers_present & set(LAYER_STYLE):
        assert LAYER_STYLE[layer][0] in text


def test_render_plain_shapes():
    shapes = [
        Rect(Layer.METAL1, 0, 0, 10, 2, "n1"),
        Rect(Layer.METAL2, 0, 4, 10, 6, "n2"),
    ]
    text = render_svg(shapes, tooltips=True)
    assert "<title>n1 [metal1]</title>" in text
    assert text.count("<rect") == 3  # background + 2 shapes


def test_render_tooltips_escape():
    shapes = [Rect(Layer.POLY, 0, 0, 1, 1, "a<b&c")]
    text = render_svg(shapes)
    assert "a&lt;b&amp;c" in text


def test_render_no_tooltips():
    shapes = [Rect(Layer.METAL1, 0, 0, 1, 1, "n1")]
    assert "<title>" not in render_svg(shapes, tooltips=False)


def test_render_empty_rejected():
    with pytest.raises(ValueError):
        render_svg([])


def test_y_axis_flipped():
    # The shape at larger y must appear at smaller SVG y (drawn higher up).
    low = Rect(Layer.METAL1, 0, 0, 1, 1, "low")
    high = Rect(Layer.METAL1, 0, 9, 1, 10, "high")
    text = render_svg([low, high], tooltips=True, scale=1.0)
    y_of = {}
    for line in text.splitlines():
        for name in ("low", "high"):
            if f"<title>{name} " in line:
                y_of[name] = float(line.split('y="')[1].split('"')[0])
    assert y_of["high"] < y_of["low"]
