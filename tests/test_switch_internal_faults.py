"""Focused switch-level tests: internal-node bridges and supply breaks."""

import pytest

from repro.atpg import random_patterns
from repro.defects import BridgeFault, FloatingNetFault
from repro.layout.cells import GND, VDD
from repro.switchsim import SwitchLevelFaultSimulator


@pytest.fixture(scope="module")
def sim(c17_design):
    return SwitchLevelFaultSimulator(
        c17_design, random_patterns(5, 128, seed=14)
    )


def _internal_net(design, polarity="n"):
    """Pick a chain-internal net from any multi-input cell."""
    for t in design.transistors:
        for net in (t.source, t.drain):
            if "#" in net:
                return net
    raise AssertionError("no internal nets found")


def test_internal_bridge_to_supply(c17_design, sim):
    internal = _internal_net(c17_design)
    det = sim._dispatch(BridgeFault(weight=1.0, net_a=internal, net_b=VDD))
    # Tying a NAND chain node to VDD fights the chain: at least IDDQ fires.
    assert det.iddq is not None


def test_internal_bridge_to_signal(c17_design, sim):
    internal = _internal_net(c17_design)
    other = c17_design.mapped.primary_inputs[0]
    det = sim._dispatch(BridgeFault(weight=1.0, net_a=internal, net_b=other))
    # Must complete without error and produce consistent ordering.
    if det.strict is not None:
        assert det.potential is not None
        assert det.potential <= det.strict


def test_internal_to_internal_bridge_iddq_only(c17_design, sim):
    nets = []
    for t in c17_design.transistors:
        for net in (t.source, t.drain):
            if "#" in net and net not in nets:
                nets.append(net)
        if len(nets) >= 2:
            break
    det = sim._dispatch(BridgeFault(weight=1.0, net_a=nets[0], net_b=nets[1]))
    assert det.strict is None
    assert det.iddq == 1


def test_supply_break_stuck_open(c17_design, sim):
    """A rail break severing a cell's GND supply = its NMOS stuck open."""
    cell = c17_design.mapped.gates[0]
    n_devices = tuple(
        t.name
        for t in c17_design.transistors
        if t.name.startswith(cell.name + ".") and t.polarity == "n"
    )
    fault = FloatingNetFault(weight=1.0, net=GND, stuck_open=n_devices)
    det = sim._dispatch(fault)
    # The cell can no longer pull low: detected once the output must fall.
    assert det.strict is not None
    assert det.iddq is None


def test_unknown_instance_handled(sim):
    det = sim._dispatch(
        BridgeFault(weight=1.0, net_a="ghost#n1", net_b="G1")
    )
    assert det.strict is None and det.potential is None


def test_dispatch_rejects_unknown_class(sim):
    class Mystery:
        weight = 1.0

    with pytest.raises(TypeError):
        sim._dispatch(Mystery())
