"""Pipeline checkpointing: stage persistence, resume, chaos interruption."""

import pytest

from repro import obs
from repro.experiments import ExperimentConfig, run_experiment
from repro.resilience import (
    ChaosInjectedError,
    ChaosPlan,
    ChaosRule,
    CheckpointStore,
    chaos,
)

STAGES = ["atpg", "stuck_sim", "extraction", "switch_sim"]


@pytest.fixture(autouse=True)
def _clean_state():
    chaos.uninstall()
    obs.disable()
    yield
    chaos.uninstall()
    obs.disable()


CONFIG = ExperimentConfig(benchmark="c17", seed=41)


def _assert_results_identical(a, b):
    """The paper's observables must be bit-identical across recovery paths."""
    assert a.test_patterns == b.test_patterns
    assert a.n_random == b.n_random
    assert a.stuck_faults == b.stuck_faults
    assert a.stuck_result.first_detection == b.stuck_result.first_detection
    assert a.stuck_result.coverage == b.stuck_result.coverage
    assert a.coverage.theta_max == b.coverage.theta_max
    assert a.sample_ks == b.sample_ks
    assert [a.theta_at(k) for k in a.sample_ks] == [
        b.theta_at(k) for k in b.sample_ks
    ]
    assert a.fit().theta_max == b.fit().theta_max
    assert a.fit().susceptibility_ratio == b.fit().susceptibility_ratio


def test_checkpointed_run_persists_every_stage(tmp_path):
    result = run_experiment(CONFIG, checkpoint_dir=tmp_path)
    assert result.stages_recomputed == STAGES
    assert result.stages_restored == []
    assert CheckpointStore(tmp_path, CONFIG).stages() == sorted(STAGES)


def test_resume_restores_every_stage_and_matches(tmp_path):
    first = run_experiment(CONFIG, checkpoint_dir=tmp_path)
    resumed = run_experiment(CONFIG, checkpoint_dir=tmp_path, resume=True)
    assert resumed.stages_restored == STAGES
    assert resumed.stages_recomputed == []
    _assert_results_identical(first, resumed)


def test_resume_after_mid_pipeline_crash(tmp_path):
    """Kill the run right after stuck-at simulation; resume finishes it."""
    reference = run_experiment(CONFIG)  # memoised clean run

    plan = ChaosPlan(
        rules=(
            ChaosRule(point="pipeline.stage", kind="exception", keys={"stuck_sim"}),
        )
    )
    with chaos.active(plan), pytest.raises(ChaosInjectedError):
        run_experiment(CONFIG, checkpoint_dir=tmp_path)
    # The completed stages survived the crash.
    store = CheckpointStore(tmp_path, CONFIG)
    assert store.has("atpg") and store.has("stuck_sim")
    assert not store.has("switch_sim")

    resumed = run_experiment(CONFIG, checkpoint_dir=tmp_path, resume=True)
    assert resumed.stages_restored == ["atpg", "stuck_sim"]
    assert resumed.stages_recomputed == ["extraction", "switch_sim"]
    _assert_results_identical(reference, resumed)


def test_resume_without_prior_run_recomputes_everything(tmp_path):
    result = run_experiment(CONFIG, checkpoint_dir=tmp_path, resume=True)
    assert result.stages_restored == []
    assert result.stages_recomputed == STAGES


def test_checkpoint_run_matches_memoised_run(tmp_path):
    _assert_results_identical(
        run_experiment(CONFIG),
        run_experiment(CONFIG, checkpoint_dir=tmp_path),
    )


def test_resume_counters_and_resilience_info(tmp_path):
    run_experiment(CONFIG, checkpoint_dir=tmp_path)
    _, registry = obs.enable()
    resumed = run_experiment(CONFIG, checkpoint_dir=tmp_path, resume=True)
    assert registry.counter("resilience.stages_restored").value == len(STAGES)
    info = resumed.resilience_info()
    assert info["stages_restored"] == STAGES
    assert info["stages_recomputed"] == []
    assert info["engine_degraded"] is False


def test_manifest_records_resilience(tmp_path):
    from repro.obs.manifest import RunManifest, read_manifests

    result = run_experiment(CONFIG, checkpoint_dir=tmp_path, resume=True)
    manifest = RunManifest.from_run(
        CONFIG, resilience=result.resilience_info()
    )
    path = tmp_path / "run.jsonl"
    manifest.write(str(path))
    (parsed,) = read_manifests(str(path))
    assert parsed.resilience["stages_recomputed"] == STAGES
    assert parsed.resilience["engine_degraded"] is False


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"target_yield": 0.0}, "target_yield"),
        ({"target_yield": 1.5}, "target_yield"),
        ({"random_coverage_target": -0.1}, "random_coverage_target"),
        ({"max_random_patterns": -1}, "max_random_patterns"),
        ({"backtrack_limit": -5}, "backtrack_limit"),
        ({"word_width": 0}, "word_width"),
        ({"fault_sim_workers": 0}, "fault_sim_workers"),
    ],
)
def test_config_validation_rejects_bad_knobs(kwargs, match):
    with pytest.raises(ValueError, match=match):
        ExperimentConfig(benchmark="c17", **kwargs)


def test_config_validation_accepts_boundaries():
    ExperimentConfig(
        benchmark="c17",
        target_yield=1.0,
        random_coverage_target=1.0,
        max_random_patterns=0,
        backtrack_limit=0,
        word_width=1,
        fault_sim_workers=1,
    )
