"""Unit tests for the transition (gate-delay) fault model."""

import pytest

from repro.circuit import Circuit, GateType
from repro.simulation import LogicSimulator
from repro.simulation.transition import (
    TransitionFault,
    TransitionFaultSimulator,
    transition_universe,
)


def test_universe_size(c17_circuit):
    universe = transition_universe(c17_circuit)
    assert len(universe) == 2 * len(c17_circuit.nets)
    assert len(set(universe)) == len(universe)


def test_slow_to_validation():
    with pytest.raises(ValueError):
        TransitionFault("n", 2)
    assert str(TransitionFault("n", 1)) == "n/STR"
    assert str(TransitionFault("n", 0)) == "n/STF"


def _buffer_chain():
    ckt = Circuit(name="buf")
    ckt.add_input("a")
    ckt.add_gate(GateType.BUF, ["a"], "z")
    ckt.add_output("z")
    return ckt


def test_known_pair_detection():
    ckt = _buffer_chain()
    sim = TransitionFaultSimulator(ckt)
    str_fault = TransitionFault("a", 1)
    stf_fault = TransitionFault("a", 0)

    # 0 -> 1 on vector 2 launches and detects the slow-to-rise.
    result = sim.run([[0], [1], [0]], faults=[str_fault, stf_fault])
    assert result.first_detection[str_fault] == 2
    # 1 -> 0 on vector 3 detects the slow-to-fall.
    assert result.first_detection[stf_fault] == 3


def test_first_vector_never_detects():
    ckt = _buffer_chain()
    sim = TransitionFaultSimulator(ckt)
    result = sim.run([[1]], faults=[TransitionFault("a", 1)])
    assert not result.first_detection


def test_constant_sequence_detects_nothing():
    ckt = _buffer_chain()
    sim = TransitionFaultSimulator(ckt)
    result = sim.run([[1]] * 20)
    assert not result.first_detection


def test_group_boundary_pairs():
    """Launch/capture pairs straddling the 64-pattern word boundary work."""
    ckt = _buffer_chain()
    sim = TransitionFaultSimulator(ckt)
    patterns = [[0]] * 64 + [[1]] + [[0]] * 5
    result = sim.run(patterns, faults=[TransitionFault("a", 1)])
    assert result.first_detection[TransitionFault("a", 1)] == 65


def test_coverage_on_c17(c17_circuit):
    from repro.atpg import random_patterns

    sim = TransitionFaultSimulator(c17_circuit)
    result = sim.run(random_patterns(5, 300, seed=6))
    # Transition coverage grows but is slower than stuck-at coverage.
    assert 0.8 <= result.coverage <= 1.0
    assert result.coverage_at(10) <= result.coverage_at(100) <= result.coverage


def test_transition_detection_cross_checked(c17_circuit):
    """Each reported detection satisfies the launch+capture definition."""
    from repro.atpg import random_patterns
    from repro.simulation import FaultSimulator, StuckAtFault

    patterns = random_patterns(5, 100, seed=8)
    sim = TransitionFaultSimulator(c17_circuit)
    logic = LogicSimulator(c17_circuit)
    stuck = FaultSimulator(c17_circuit)
    result = sim.run(patterns)
    for fault, k in result.first_detection.items():
        assert k >= 2
        before = logic.simulate(patterns[k - 2])[fault.net]
        after = logic.simulate(patterns[k - 1])[fault.net]
        assert before == 1 - fault.slow_to
        assert after == fault.slow_to
        assert stuck.detects(
            StuckAtFault(fault.net, 1 - fault.slow_to), patterns[k - 1]
        )
