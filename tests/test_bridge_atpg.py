"""Unit tests for miter-based bridging-fault ATPG."""

import itertools

import pytest

from repro.atpg.bridge_atpg import (
    build_bridge_miter,
    generate_bridge_tests,
)
from repro.circuit import Circuit, GateType, c17
from repro.simulation import LogicSimulator


def _bridged_reference(circuit, vec, net_a, net_b, dominance):
    """Reference faulty simulation with the bridge applied functionally."""
    from repro.circuit.levelize import levelize
    from repro.circuit.library import evaluate_gate

    values = dict(zip(circuit.primary_inputs, vec))
    order = levelize(circuit)

    def resolved(va, vb):
        if dominance == "wired-and":
            return va & vb, va & vb
        if dominance == "wired-or":
            return va | vb, va | vb
        if dominance == "a-dominates":
            return va, va
        return vb, vb

    # Iterate to a fixpoint (the bridge can feed back through the netlist;
    # two passes suffice for the acyclic test circuits used here).
    for _ in range(3):
        for gate in order:
            operands = []
            for net in gate.inputs:
                if net in (net_a, net_b) and net_a in values and net_b in values:
                    va, vb = values[net_a], values[net_b]
                    ra, rb = resolved(va, vb)
                    operands.append(ra if net == net_a else rb)
                else:
                    operands.append(values[net])
            values[gate.output] = evaluate_gate(gate.gate_type, operands)
    out = []
    for po in circuit.primary_outputs:
        if po in (net_a, net_b):
            va, vb = values[net_a], values[net_b]
            ra, rb = resolved(va, vb)
            out.append(ra if po == net_a else rb)
        else:
            out.append(values[po])
    return out


@pytest.mark.parametrize(
    "dominance", ["wired-and", "wired-or", "a-dominates", "b-dominates"]
)
def test_miter_diff_matches_reference(dominance):
    circuit = c17()
    net_a, net_b = "G10", "G19"
    miter = build_bridge_miter(circuit, net_a, net_b, dominance)
    good = LogicSimulator(circuit)
    msim = LogicSimulator(miter)
    for vec in itertools.product([0, 1], repeat=5):
        vec = list(vec)
        reference_good = good.outputs(vec)
        reference_bad = _bridged_reference(circuit, vec, net_a, net_b, dominance)
        expected_diff = int(reference_good != reference_bad)
        assert msim.outputs(vec) == [expected_diff], (vec, dominance)


def test_generate_finds_vectors_on_c17():
    circuit = c17()
    bridges = [("G10", "G19"), ("G11", "G16"), ("G1", "G23")]
    result = generate_bridge_tests(circuit, bridges)
    assert result.tested, "expected at least one testable bridge"
    # G16 lies in G11's fan-out cone: a feedback bridge, refused not solved.
    assert ("G11", "G16") in result.feedback
    # Each returned vector really sets the corresponding miter's DIFF.
    for (net_a, net_b), vec in zip(result.tested, result.vectors):
        miter = build_bridge_miter(circuit, net_a, net_b)
        assert LogicSimulator(miter).outputs(vec) == [1]


def test_untestable_bridge_proved():
    # Two reconvergent buffers of the same signal: bridging their outputs
    # can never produce a difference (the nets are always equal).
    ckt = Circuit(name="triv")
    ckt.add_input("a")
    ckt.add_gate(GateType.BUF, ["a"], "x")
    ckt.add_gate(GateType.BUF, ["a"], "y")
    ckt.add_gate(GateType.AND, ["x", "y"], "z")
    ckt.add_output("z")
    result = generate_bridge_tests(ckt, [("x", "y")])
    assert result.untestable == [("x", "y")]


def test_feedback_bridge_classified():
    ckt = Circuit(name="fb")
    ckt.add_input("a")
    ckt.add_gate(GateType.BUF, ["a"], "z")
    ckt.add_output("z")
    result = generate_bridge_tests(ckt, [("a", "z")])
    assert result.feedback == [("a", "z")]


def test_wired_and_equal_nets_rejected():
    circuit = c17()
    with pytest.raises(ValueError):
        build_bridge_miter(circuit, "G10", "G10")
    with pytest.raises(ValueError):
        build_bridge_miter(circuit, "G10", "NOPE")
    with pytest.raises(ValueError):
        build_bridge_miter(circuit, "G10", "G11", dominance="psychic")


def test_pi_pi_bridge_testable_wired_and():
    """A PI-PI bridge is testable under wired-AND (the high side flips)."""
    circuit = c17()
    result = generate_bridge_tests(circuit, [("G1", "G3")])
    assert result.tested == [("G1", "G3")]
    vec = result.vectors[0]
    # The detecting vector must set the two inputs to opposite values.
    i1 = circuit.primary_inputs.index("G1")
    i3 = circuit.primary_inputs.index("G3")
    assert vec[i1] != vec[i3]
