"""Unit tests for defect statistics and the size distribution."""

import math

import pytest

from repro.defects import (
    DefectMechanism,
    DefectStatistics,
    SizeDistribution,
    maly_like_statistics,
    open_heavy_statistics,
)


def test_size_distribution_normalised():
    size = SizeDistribution(x0=1.0, x_max=1e9)
    # Integral of 2 x0^2 / x^3 over [x0, inf) is 1.
    steps = 20000
    total = 0.0
    x = size.x0
    dx = 0.01
    for _ in range(steps):
        total += size.pdf(x) * dx
        x += dx
    assert total == pytest.approx(1.0, abs=0.02)


def test_cdf_matches_pdf():
    size = SizeDistribution(x0=1.0, x_max=50.0)
    assert size.cdf(1.0) == 0.0
    assert size.cdf(2.0) == pytest.approx(1 - 0.25)
    assert size.cdf(1e9) == size.cdf(size.x_max)


def test_inverse_sampling():
    size = SizeDistribution()
    for u in (0.0, 0.3, 0.75, 0.99):
        x = size.sample(u)
        assert x >= size.x0
        # Round-trip through the untruncated CDF.
        assert 1 - (size.x0 / x) ** 2 == pytest.approx(u)
    with pytest.raises(ValueError):
        size.sample(1.0)


def test_mean():
    assert SizeDistribution(x0=1.5).mean() == 3.0


def test_bad_parameters_rejected():
    with pytest.raises(ValueError):
        SizeDistribution(x0=0)
    with pytest.raises(ValueError):
        SizeDistribution(x0=10, x_max=5)


def test_mechanism_categories():
    assert DefectMechanism.METAL1_SHORT.is_bridge
    assert not DefectMechanism.METAL1_SHORT.is_open
    assert DefectMechanism.CONTACT_OPEN.is_open
    assert DefectMechanism.GATE_OXIDE_SHORT.is_bridge


def test_default_table_is_bridge_heavy():
    stats = maly_like_statistics()
    assert stats.bridge_fraction() > 0.5
    assert stats.density(DefectMechanism.METAL1_SHORT) > stats.density(
        DefectMechanism.METAL1_OPEN
    )


def test_open_heavy_table():
    stats = open_heavy_statistics()
    assert stats.bridge_fraction() < 0.5


def test_scaling():
    stats = maly_like_statistics()
    doubled = stats.scaled(2.0)
    for mech in DefectMechanism:
        assert doubled.density(mech) == pytest.approx(2 * stats.density(mech))
    # Original untouched (frozen semantics).
    assert stats.density(DefectMechanism.METAL1_SHORT) == pytest.approx(8.0e-7)


def test_missing_mechanism_density_zero():
    stats = DefectStatistics(densities={DefectMechanism.METAL1_SHORT: 1e-6})
    assert stats.density(DefectMechanism.VIA_OPEN) == 0.0
    assert stats.bridge_fraction() == 1.0


def test_general_exponent_distribution():
    size = SizeDistribution(x0=1.0, x_max=40.0, exponent=2.5)
    assert size.cdf(2.0) == pytest.approx(1 - 2 ** -1.5)
    for u in (0.1, 0.6, 0.9):
        x = size.sample(u)
        assert 1 - (size.x0 / x) ** 1.5 == pytest.approx(u)
    assert size.mean() == pytest.approx(1.0 * 1.5 / 0.5)
    assert SizeDistribution(exponent=2.0).mean() == math.inf
    with pytest.raises(ValueError):
        SizeDistribution(exponent=1.0)
