"""Crash-safety tests of the campaign write-ahead journal.

The core property — proved exhaustively for small journals and by
hypothesis for arbitrary crash prefixes — is *exact replay*: truncating the
journal at **any** byte boundary (what ``kill -9`` mid-append leaves
behind) yields replayed state equal to applying exactly the records whose
full lines survive, with at most a warning for the torn tail.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import Journal, JournalCorruptError
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan, ChaosRule


def _note(i: int) -> dict:
    return {"type": "note", "i": i, "payload": f"record-{i}"}


def _write_journal(directory, n: int) -> list[dict]:
    records = [_note(i) for i in range(n)]
    with Journal(directory) as journal:
        for record in records:
            journal.append(record)
    return records


# ---------------------------------------------------------------------------
# append / replay basics
# ---------------------------------------------------------------------------
def test_append_and_replay_round_trip(tmp_path):
    records = _write_journal(tmp_path, 5)
    replayed, last_seq = Journal(tmp_path).replay()
    assert replayed == records
    assert last_seq == 4


def test_fresh_journal_replays_empty(tmp_path):
    replayed, last_seq = Journal(tmp_path).replay()
    assert replayed == []
    assert last_seq == -1


def test_reopened_journal_continues_sequence(tmp_path):
    _write_journal(tmp_path, 3)
    with Journal(tmp_path) as journal:
        seq = journal.append(_note(99))
    assert seq == 3
    replayed, last_seq = Journal(tmp_path).replay()
    assert last_seq == 3
    assert replayed[-1]["i"] == 99


# ---------------------------------------------------------------------------
# torn tail: truncate at every byte boundary of the last record
# ---------------------------------------------------------------------------
def test_torn_tail_tolerated_at_every_byte_of_last_record(tmp_path):
    records = _write_journal(tmp_path, 3)
    data = (tmp_path / "journal.jsonl").read_bytes()
    last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
    for cut in range(last_line_start + 1, len(data)):
        scenario = tmp_path / f"cut{cut}"
        scenario.mkdir()
        (scenario / "journal.jsonl").write_bytes(data[:cut])
        if cut == len(data) - 1:
            # Only the trailing newline is missing: the frame still
            # verifies, so the record is salvaged without a warning.
            replayed, last_seq = Journal(scenario).replay()
            assert replayed == records
            assert last_seq == 2
        else:
            with pytest.warns(RuntimeWarning, match="torn tail"):
                replayed, last_seq = Journal(scenario).replay()
            assert replayed == records[:2]
            assert last_seq == 1


def test_append_after_torn_tail_repairs_and_reuses_sequence(tmp_path):
    """Opening for append truncates the torn bytes, so the journal heals."""
    records = _write_journal(tmp_path, 2)
    path = tmp_path / "journal.jsonl"
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 3])  # tear the last line
    with pytest.warns(RuntimeWarning, match="torn tail"):
        journal = Journal(tmp_path)
    assert journal.append(_note(7)) == 1  # seq of the torn record, reused
    journal.close()
    # The torn bytes were truncated before the append, so the healed
    # journal replays cleanly: first record intact, torn one replaced.
    replayed, last_seq = Journal(tmp_path).replay()
    assert replayed == [records[0], _note(7)]
    assert last_seq == 1


def test_mid_journal_corruption_raises(tmp_path):
    _write_journal(tmp_path, 4)
    path = tmp_path / "journal.jsonl"
    lines = path.read_text().splitlines(keepends=True)
    lines[1] = lines[1][:10] + "#" + lines[1][11:]
    path.write_text("".join(lines))
    with pytest.raises(JournalCorruptError):
        Journal(tmp_path).replay()


def test_out_of_order_sequence_raises(tmp_path):
    _write_journal(tmp_path, 2)
    path = tmp_path / "journal.jsonl"
    lines = path.read_text().splitlines()
    path.write_text(lines[0] + "\n" + lines[0] + "\n" + lines[1] + "\n")
    with pytest.raises(JournalCorruptError, match="seq"):
        Journal(tmp_path).replay()


# ---------------------------------------------------------------------------
# hypothesis: replay is exact under arbitrary crash prefixes
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data(), n=st.integers(min_value=1, max_value=8))
def test_replay_exact_under_arbitrary_crash_prefix(tmp_path_factory, data, n):
    tmp = tmp_path_factory.mktemp("wal")
    records = _write_journal(tmp, n)
    blob = (tmp / "journal.jsonl").read_bytes()
    cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
    scenario = tmp_path_factory.mktemp("cut")
    prefix = blob[:cut]
    (scenario / "journal.jsonl").write_bytes(prefix)
    # Records whose full line survives the crash; a final line missing
    # only its newline still verifies and is salvaged.
    complete = prefix.count(b"\n")
    partial = b"" if prefix.endswith(b"\n") or not prefix else (
        prefix.split(b"\n")[-1]
    )
    lines = blob.split(b"\n")
    salvaged = 1 if partial and partial == lines[complete] else 0
    survivors = complete + salvaged
    torn = bool(partial) and not salvaged
    if torn:
        with pytest.warns(RuntimeWarning, match="torn tail"):
            replayed, last_seq = Journal(scenario).replay()
    else:
        replayed, last_seq = Journal(scenario).replay()
    assert replayed == records[:survivors]
    assert last_seq == survivors - 1


# ---------------------------------------------------------------------------
# chaos-point mangling
# ---------------------------------------------------------------------------
def test_chaos_truncate_makes_torn_tail(tmp_path):
    plan = ChaosPlan(
        rules=(
            ChaosRule(point="campaign.journal", kind="truncate", keys={"stop"}),
        )
    )
    with Journal(tmp_path) as journal:
        journal.append(_note(0))
        with chaos.active(plan):
            journal.append({"type": "stop", "reason": "chaos"})
    with pytest.warns(RuntimeWarning, match="torn tail"):
        replayed, last_seq = Journal(tmp_path).replay()
    assert replayed == [_note(0)]
    assert last_seq == 0


def test_chaos_corrupt_makes_torn_tail(tmp_path):
    plan = ChaosPlan(
        rules=(
            ChaosRule(point="campaign.journal", kind="corrupt", keys={"note"}),
        )
    )
    with Journal(tmp_path) as journal:
        with chaos.active(plan):
            journal.append(_note(0))
    with pytest.warns(RuntimeWarning, match="torn tail"):
        replayed, _ = Journal(tmp_path).replay()
    assert replayed == []


# ---------------------------------------------------------------------------
# snapshot compaction
# ---------------------------------------------------------------------------
def test_compaction_round_trip(tmp_path):
    _write_journal(tmp_path, 4)
    journal = Journal(tmp_path)
    journal.compact({"answer": 42})
    assert (tmp_path / "snapshot.json").exists()
    assert (tmp_path / "journal.jsonl").read_text() == ""
    snapshot = journal.load_snapshot()
    assert snapshot["last_seq"] == 3
    assert snapshot["state"] == {"answer": 42}
    # Compaction stamps its wall clock (trace/report use it as a marker).
    assert isinstance(snapshot["compacted_ts"], float)
    # New appends continue the global sequence past the snapshot.
    assert journal.append(_note(50)) == 4
    replayed, last_seq = Journal(tmp_path).replay()
    assert replayed == [_note(50)]
    assert last_seq == 4


def test_compaction_crash_between_steps_is_idempotent(tmp_path):
    """Snapshot published but journal not yet truncated: replay dedups."""
    records = _write_journal(tmp_path, 3)
    journal_bytes = (tmp_path / "journal.jsonl").read_bytes()
    journal = Journal(tmp_path)
    journal.compact({"state": "folded"})
    # Simulate the crash: the pre-compaction journal is still on disk.
    (tmp_path / "journal.jsonl").write_bytes(journal_bytes)
    replayed, last_seq = Journal(tmp_path).replay()
    assert replayed == []  # every record is at or below snapshot.last_seq
    assert last_seq == 2
    del records


def test_corrupt_snapshot_always_raises(tmp_path):
    _write_journal(tmp_path, 2)
    journal = Journal(tmp_path)
    journal.compact({"x": 1})
    snapshot_path = tmp_path / "snapshot.json"
    payload = json.loads(snapshot_path.read_text())
    payload["state"] = {"x": 2}  # digest no longer matches
    snapshot_path.write_text(json.dumps(payload))
    with pytest.raises(JournalCorruptError, match="digest"):
        Journal(tmp_path).replay()


# ---------------------------------------------------------------------------
# readonly mode (status --follow / trace / report open the journal this way)
# ---------------------------------------------------------------------------
def test_readonly_replay_leaves_torn_tail_untouched(tmp_path):
    _write_journal(tmp_path, 2)
    path = tmp_path / "journal.jsonl"
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 3])  # tear the last line
    with pytest.warns(RuntimeWarning, match="torn tail"):
        replayed, last_seq = Journal(tmp_path, readonly=True).replay()
    assert last_seq == 0
    assert len(replayed) == 1
    # The observer must not heal the journal out from under the owner.
    assert path.read_bytes() == data[: len(data) - 3]


def test_readonly_journal_refuses_to_write(tmp_path):
    from repro.campaign import JournalError

    _write_journal(tmp_path, 1)
    journal = Journal(tmp_path, readonly=True)
    with pytest.raises(JournalError, match="read-only"):
        journal.append(_note(9))
    with pytest.raises(JournalError, match="read-only"):
        journal.compact({"x": 1})
