"""Integration tests of the end-to-end experiment pipeline (small circuit)."""

import math

import pytest

from repro.core import williams_brown
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.pipeline import scaled_weight_check


@pytest.fixture(scope="module")
def small_experiment():
    return run_experiment(
        ExperimentConfig(benchmark="c17", max_random_patterns=128, seed=7)
    )


def test_yield_scaled_to_target(small_experiment):
    assert scaled_weight_check(small_experiment) == pytest.approx(0.75)
    assert small_experiment.realistic_faults.predicted_yield() == pytest.approx(0.75)


def test_stuck_at_coverage_complete(small_experiment):
    # c17 is fully testable: no redundant faults, T reaches 1.
    assert not small_experiment.redundant_faults
    assert small_experiment.final_T == 1.0


def test_series_shape(small_experiment):
    rows = small_experiment.series()
    assert rows[0][0] == 1
    assert rows[-1][0] == len(small_experiment.test_patterns)
    for k, T, theta, gamma, dl in rows:
        assert 0 <= T <= 1 and 0 <= theta <= 1 and 0 <= gamma <= 1
        assert dl == pytest.approx(williams_brown(0.75, theta))
    # Monotone non-decreasing coverages.
    for col in (1, 2, 3):
        values = [row[col] for row in rows]
        assert values == sorted(values)


def test_dl_monotone_non_increasing(small_experiment):
    dls = [row[4] for row in small_experiment.series()]
    assert dls == sorted(dls, reverse=True)


def test_fit_runs_and_is_sane(small_experiment):
    fit = small_experiment.fit()
    assert 0.1 <= fit.susceptibility_ratio <= 10.0
    assert 0.5 <= fit.theta_max <= 1.0


def test_memoisation_returns_same_object(small_experiment):
    again = run_experiment(
        ExperimentConfig(benchmark="c17", max_random_patterns=128, seed=7)
    )
    assert again is small_experiment


def test_different_config_different_run(small_experiment):
    other = run_experiment(
        ExperimentConfig(benchmark="c17", max_random_patterns=64, seed=7)
    )
    assert other is not small_experiment


def test_detection_technique_config():
    strict = run_experiment(
        ExperimentConfig(
            benchmark="c17", max_random_patterns=128, seed=7, detection="voltage-strict"
        )
    )
    default = run_experiment(
        ExperimentConfig(benchmark="c17", max_random_patterns=128, seed=7)
    )
    assert strict.theta_max <= default.theta_max + 1e-12
