"""Integration tests of the end-to-end experiment pipeline (small circuit)."""


import pytest

from repro.core import williams_brown
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.pipeline import scaled_weight_check


@pytest.fixture(scope="module")
def small_experiment():
    return run_experiment(
        ExperimentConfig(benchmark="c17", max_random_patterns=128, seed=7)
    )


def test_yield_scaled_to_target(small_experiment):
    assert scaled_weight_check(small_experiment) == pytest.approx(0.75)
    assert small_experiment.realistic_faults.predicted_yield() == pytest.approx(0.75)


def test_stuck_at_coverage_complete(small_experiment):
    # c17 is fully testable: no redundant faults, T reaches 1.
    assert not small_experiment.redundant_faults
    assert small_experiment.final_T == 1.0


def test_series_shape(small_experiment):
    rows = small_experiment.series()
    assert rows[0][0] == 1
    assert rows[-1][0] == len(small_experiment.test_patterns)
    for k, T, theta, gamma, dl in rows:
        assert 0 <= T <= 1 and 0 <= theta <= 1 and 0 <= gamma <= 1
        assert dl == pytest.approx(williams_brown(0.75, theta))
    # Monotone non-decreasing coverages.
    for col in (1, 2, 3):
        values = [row[col] for row in rows]
        assert values == sorted(values)


def test_dl_monotone_non_increasing(small_experiment):
    dls = [row[4] for row in small_experiment.series()]
    assert dls == sorted(dls, reverse=True)


def test_fit_runs_and_is_sane(small_experiment):
    fit = small_experiment.fit()
    assert 0.1 <= fit.susceptibility_ratio <= 10.0
    assert 0.5 <= fit.theta_max <= 1.0


def test_memoisation_returns_same_object(small_experiment):
    again = run_experiment(
        ExperimentConfig(benchmark="c17", max_random_patterns=128, seed=7)
    )
    assert again is small_experiment


def test_different_config_different_run(small_experiment):
    other = run_experiment(
        ExperimentConfig(benchmark="c17", max_random_patterns=64, seed=7)
    )
    assert other is not small_experiment


def test_static_analysis_attached_to_result(small_experiment):
    # The default pipeline runs the static-analysis pass and records it.
    analysis = small_experiment.analysis
    assert analysis is not None
    assert analysis.ok
    # c17 is fully testable: the implication screen proves nothing redundant.
    assert small_experiment.static_untestable == []
    assert analysis.untestable is not None
    assert analysis.untestable.n_screened > 0


def test_static_analysis_can_be_disabled(small_experiment):
    plain = run_experiment(
        ExperimentConfig(
            benchmark="c17", max_random_patterns=128, seed=7, static_analysis=False
        )
    )
    # A distinct config keys a distinct (non-memoised) run...
    assert plain is not small_experiment
    assert plain.analysis is None
    assert plain.static_untestable == []
    # ...but the physics is untouched: identical coverage trajectory.
    assert plain.series() == small_experiment.series()


def test_static_analysis_config_hashes_distinctly():
    on = ExperimentConfig(benchmark="c17", static_analysis=True)
    off = ExperimentConfig(benchmark="c17", static_analysis=False)
    assert hash(on) != hash(off)
    assert on != off


def test_detection_technique_config():
    strict = run_experiment(
        ExperimentConfig(
            benchmark="c17", max_random_patterns=128, seed=7, detection="voltage-strict"
        )
    )
    default = run_experiment(
        ExperimentConfig(benchmark="c17", max_random_patterns=128, seed=7)
    )
    assert strict.theta_max <= default.theta_max + 1e-12


def test_prover_attached_by_default(small_experiment):
    # prove_redundancy defaults on: the analysis carries a prover result
    # even when (as on the fully-testable c17) it proves nothing.
    analysis = small_experiment.analysis
    assert analysis is not None
    assert analysis.prover is not None
    assert analysis.prover.depth == 2
    assert analysis.prover.proved == []
    assert analysis.prover.certs_failed == 0


def test_prove_redundancy_can_be_disabled(small_experiment):
    plain = run_experiment(
        ExperimentConfig(
            benchmark="c17",
            max_random_patterns=128,
            seed=7,
            prove_redundancy=False,
        )
    )
    assert plain is not small_experiment
    assert plain.analysis is not None
    assert plain.analysis.prover is None
    # Nothing provable on c17, so the physics is untouched either way.
    assert plain.series() == small_experiment.series()


def test_prover_config_hashes_distinctly():
    base = ExperimentConfig(benchmark="c17")
    no_prove = ExperimentConfig(benchmark="c17", prove_redundancy=False)
    deeper = ExperimentConfig(benchmark="c17", prover_depth=3)
    assert hash(base) != hash(no_prove) and base != no_prove
    assert hash(base) != hash(deeper) and base != deeper


def test_prover_depth_must_be_non_negative():
    with pytest.raises(ValueError, match="prover_depth"):
        ExperimentConfig(benchmark="c17", prover_depth=-1)


def test_podem_stats_recorded_on_topoff_run():
    # alu4 at a tiny random budget forces a deterministic top-off, which
    # runs PODEM with the prover's learned base and records its search
    # statistics on the result.
    result = run_experiment(
        ExperimentConfig(benchmark="alu4", max_random_patterns=8, seed=3)
    )
    assert set(result.podem_stats) == {
        "backtracks",
        "learned_prunes",
        "learned_conflicts",
    }
    prover = result.analysis.prover
    assert prover is not None
    assert len(prover.proved) == 4
    # The proved faults are exactly the statically-excluded ones: they
    # leave the coverage denominator before any vector is generated.
    assert set(prover.proved) <= set(result.static_untestable)
