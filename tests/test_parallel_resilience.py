"""Supervised fan-out under injected failure: bit-exact in every recovery path.

Per-fault independence makes chunk-level recovery provably exact: any chunk,
re-run anywhere (retry pool, fresh pool, serial engine), contributes the same
first-detection and detection-count entries.  These tests inject every
failure mode the supervisor handles — chunk exception, worker crash, slow
worker breaching the deadline, deterministic (fatal) error, pool-start
failure — and assert the merged result equals the serial engine exactly,
completed chunks are salvaged, and the degradation is named.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.circuit import c17
from repro.resilience import ChaosPlan, ChaosRule, RetryPolicy, chaos
from repro.simulation import (
    FaultSimulator,
    ParallelFaultSimulator,
    collapse_faults,
)

WORKERS = 2


@pytest.fixture(autouse=True)
def _clean_state():
    chaos.uninstall()
    obs.disable()
    yield
    chaos.uninstall()
    obs.disable()


def _patterns(seed, n=48):
    rng = random.Random(seed)
    return [[rng.randint(0, 1) for _ in range(5)] for _ in range(n)]


def _serial(ckt, patterns, faults, drop):
    return FaultSimulator(ckt).run(patterns, faults=faults, drop_detected=drop)


def _assert_bit_exact(result, reference):
    assert result.first_detection == reference.first_detection
    assert result.detection_counts == reference.detection_counts
    assert result.faults == reference.faults
    assert result.n_patterns == reference.n_patterns


def test_chunk_exception_is_retried_and_salvaged():
    ckt = c17()
    faults = collapse_faults(ckt)
    patterns = _patterns(1)
    plan = ChaosPlan(
        rules=(
            ChaosRule(
                point="parallel.chunk", kind="exception", keys={0}, attempts={0}
            ),
        )
    )
    pool = ParallelFaultSimulator(ckt, max_workers=WORKERS, crossover=0)
    pool._sleep = lambda s: None
    for drop in (True, False):
        with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
            result = pool.run(patterns, faults=faults, drop_detected=drop)
        _assert_bit_exact(result, _serial(ckt, patterns, faults, drop))
        info = pool.engine_info()
        assert info["degraded"] is True
        assert "ChaosInjectedError" in str(info["degraded_reason"])
        # The healthy chunk was salvaged; the failed one healed on retry.
        assert info["chunks_salvaged"] == WORKERS - 1
        assert info["chunk_retries"] == 1
        assert info["chunks_serial"] == 0
        assert pool.last_engine == "parallel"


def test_worker_crash_salvages_and_heals_on_retry():
    ckt = c17()
    faults = collapse_faults(ckt)
    patterns = _patterns(2)
    plan = ChaosPlan(
        rules=(
            ChaosRule(point="parallel.chunk", kind="crash", keys={1}, attempts={0}),
        )
    )
    pool = ParallelFaultSimulator(ckt, max_workers=WORKERS, crossover=0)
    pool._sleep = lambda s: None
    with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
        result = pool.run(patterns, faults=faults)
    _assert_bit_exact(result, _serial(ckt, patterns, faults, True))
    info = pool.engine_info()
    assert info["degraded"] is True
    assert "BrokenProcessPool" in str(info["degraded_reason"])
    assert pool.last_chunk_retries >= 1


def test_slow_worker_breaches_deadline_and_recovers():
    ckt = c17()
    faults = collapse_faults(ckt)
    patterns = _patterns(3)
    plan = ChaosPlan(
        rules=(
            ChaosRule(
                point="parallel.chunk",
                kind="sleep",
                sleep_s=1.0,
                keys={0},
                attempts={0},
            ),
        )
    )
    pool = ParallelFaultSimulator(
        ckt, max_workers=WORKERS, crossover=0, chunk_timeout=0.2
    )
    pool._sleep = lambda s: None
    _, registry = obs.enable()
    with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
        result = pool.run(patterns, faults=faults)
    _assert_bit_exact(result, _serial(ckt, patterns, faults, True))
    info = pool.engine_info()
    assert info["degraded"] is True
    assert "ChunkTimeoutError" in str(info["degraded_reason"])
    assert registry.counter("resilience.chunk_timeouts").value >= 1


def test_fatal_chunk_error_skips_pool_retry_and_runs_serially():
    ckt = c17()
    faults = collapse_faults(ckt)
    patterns = _patterns(4)
    plan = ChaosPlan(
        rules=(ChaosRule(point="parallel.chunk", kind="fatal", keys={0}),)
    )
    pool = ParallelFaultSimulator(ckt, max_workers=WORKERS, crossover=0)
    pool._sleep = lambda s: None
    with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
        result = pool.run(patterns, faults=faults)
    _assert_bit_exact(result, _serial(ckt, patterns, faults, True))
    info = pool.engine_info()
    assert "ChaosInjectedFatalError" in str(info["degraded_reason"])
    # No pool retry was spent on the deterministic failure.
    assert info["chunk_retries"] == 0
    assert info["chunks_serial"] == 1
    assert info["chunks_salvaged"] == WORKERS - 1


def test_persistent_transient_failure_exhausts_retries_then_serial():
    ckt = c17()
    faults = collapse_faults(ckt)
    patterns = _patterns(5)
    # Fails on every attempt: retries exhaust, the serial engine salvages.
    plan = ChaosPlan(
        rules=(ChaosRule(point="parallel.chunk", kind="exception", keys={1}),)
    )
    pool = ParallelFaultSimulator(
        ckt,
        max_workers=WORKERS,
        crossover=0,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
    )
    sleeps: list[float] = []
    pool._sleep = sleeps.append
    _, registry = obs.enable()
    with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
        result = pool.run(patterns, faults=faults)
    _assert_bit_exact(result, _serial(ckt, patterns, faults, True))
    info = pool.engine_info()
    assert info["chunk_retries"] == 2
    assert info["chunks_serial"] == 1
    assert registry.counter("resilience.degraded_runs").value == 1
    assert registry.counter("resilience.chunks_salvaged").value == WORKERS - 1


def test_backoff_delays_are_deterministic():
    ckt = c17()
    faults = collapse_faults(ckt)
    patterns = _patterns(6)
    policy = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_factor=3.0)
    plan = ChaosPlan(
        rules=(ChaosRule(point="parallel.chunk", kind="exception", keys={0}),)
    )
    pool = ParallelFaultSimulator(
        ckt, max_workers=WORKERS, crossover=0, retry=policy
    )
    sleeps: list[float] = []
    pool._sleep = sleeps.append
    with chaos.active(plan), pytest.warns(RuntimeWarning):
        pool.run(patterns, faults=faults)
    assert sleeps == policy.delays()


def test_clean_run_reports_no_degradation():
    ckt = c17()
    faults = collapse_faults(ckt)
    patterns = _patterns(7)
    pool = ParallelFaultSimulator(ckt, max_workers=WORKERS, crossover=0)
    result = pool.run(patterns, faults=faults)
    _assert_bit_exact(result, _serial(ckt, patterns, faults, True))
    info = pool.engine_info()
    assert info["degraded"] is False
    assert info["degraded_reason"] is None
    assert info["chunk_retries"] == 0
    assert info["chunks_salvaged"] == 0
    assert info["chunks_serial"] == 0


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    failing=st.sets(st.integers(min_value=0, max_value=WORKERS - 1), max_size=WORKERS),
    kind=st.sampled_from(["exception", "fatal"]),
    drop=st.booleans(),
)
def test_property_injected_chunk_failures_are_bit_exact(seed, failing, kind, drop):
    """Parallel with any injected chunk-failure set == serial, both drop modes."""
    chaos.uninstall()
    ckt = c17()
    faults = collapse_faults(ckt)
    patterns = _patterns(seed, n=40)
    reference = _serial(ckt, patterns, faults, drop)

    rules = tuple(
        ChaosRule(
            point="parallel.chunk",
            kind=kind,
            keys=frozenset(failing),
            attempts=frozenset({0}) if kind == "exception" else None,
        )
        for _ in range(1)
        if failing
    )
    pool = ParallelFaultSimulator(ckt, max_workers=WORKERS, crossover=0)
    pool._sleep = lambda s: None
    with chaos.active(ChaosPlan(rules=rules, seed=seed)):
        if failing:
            with pytest.warns(RuntimeWarning, match="degraded"):
                result = pool.run(patterns, faults=faults, drop_detected=drop)
        else:
            result = pool.run(patterns, faults=faults, drop_detected=drop)
    _assert_bit_exact(result, reference)
    if failing:
        assert pool.engine_info()["degraded"] is True
