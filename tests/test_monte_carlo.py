"""Cross-validation: Monte-Carlo defect injection vs analytic extraction."""

import pytest

from repro.defects import BridgeFault, extract_faults
from repro.defects.monte_carlo import sample_defects


@pytest.fixture(scope="module")
def campaign(c17_design):
    return sample_defects(c17_design, n_samples=30000, seed=3)


def test_some_defects_cause_faults(campaign):
    assert campaign.n_faults > 0
    assert campaign.benign > 0
    assert campaign.n_faults + campaign.benign == campaign.n_samples
    # Most random spot defects land on empty area or a single net.
    assert campaign.fault_fraction < 0.9


def test_bridges_dominate_hits(campaign):
    assert sum(campaign.bridge_hits.values()) > sum(campaign.open_hits.values())


def test_mc_frequencies_correlate_with_analytic_weights(c17_design, campaign):
    """Frequently-hit bridges must be the heavy analytic bridges."""
    faults = extract_faults(c17_design)
    analytic = {
        (f.net_a, f.net_b): f.weight
        for f in faults
        if isinstance(f, BridgeFault)
    }
    observed = campaign.bridge_hits.most_common(12)
    matched = [pair for pair, _ in observed if pair in analytic]
    # The sampled footprint classifier and the analytic facing-span pass use
    # slightly different geometry, but the populations must overlap heavily.
    assert len(matched) >= 0.6 * len(observed)

    # Rank correlation on the matched pairs (Spearman by hand).
    if len(matched) >= 5:
        mc_rank = {pair: i for i, pair in enumerate(matched)}
        by_weight = sorted(matched, key=lambda p: -analytic[p])
        an_rank = {pair: i for i, pair in enumerate(by_weight)}
        n = len(matched)
        d2 = sum((mc_rank[p] - an_rank[p]) ** 2 for p in matched)
        rho = 1 - 6 * d2 / (n * (n**2 - 1))
        assert rho > 0.3, rho


def test_open_hits_on_real_nets(c17_design, campaign):
    nets = set(c17_design.mapped.nets) | {"VDD", "GND"}
    internals = {t.source for t in c17_design.transistors} | {
        t.drain for t in c17_design.transistors
    }
    for net in campaign.open_hits:
        assert net in nets | internals


def test_reproducible(c17_design):
    a = sample_defects(c17_design, n_samples=2000, seed=11)
    b = sample_defects(c17_design, n_samples=2000, seed=11)
    assert a.bridge_hits == b.bridge_hits
    assert a.open_hits == b.open_hits
