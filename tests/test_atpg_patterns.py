"""Unit tests for pattern containers and the LFSR PRPG."""

import pytest

from repro.atpg import Lfsr, TestSet, random_patterns


def test_test_set_append_and_counts():
    ts = TestSet(n_inputs=3)
    ts.append([0, 1, 0], "random")
    ts.extend([[1, 1, 1], [0, 0, 0]], "deterministic")
    assert len(ts) == 3
    assert ts.n_random == 1
    assert ts.n_deterministic == 2
    assert ts[1] == [1, 1, 1]
    assert list(ts) == ts.patterns


def test_test_set_width_check():
    ts = TestSet(n_inputs=2)
    with pytest.raises(ValueError):
        ts.append([1, 0, 1])


def test_lfsr_maximal_length():
    lfsr = Lfsr(4, seed=1)
    states = set()
    for _ in range(15):
        states.add(lfsr.step())
    assert len(states) == 15  # 2^4 - 1 distinct nonzero states
    assert 0 not in states


@pytest.mark.parametrize("width", [3, 5, 8, 16])
def test_lfsr_period(width):
    lfsr = Lfsr(width, seed=1)
    first = lfsr.step()
    period = 1
    while lfsr.step() != first:
        period += 1
        assert period <= 2**width
    assert period == 2**width - 1


def test_lfsr_pattern_width():
    lfsr = Lfsr(7, seed=3)
    pattern = lfsr.pattern()
    assert len(pattern) == 7
    assert all(v in (0, 1) for v in pattern)
    assert len(lfsr.patterns(10)) == 10


def test_lfsr_unsupported_width_falls_back():
    lfsr = Lfsr(37, seed=42)
    pats = lfsr.patterns(5)
    assert all(len(p) == 37 for p in pats)


def test_lfsr_rejects_bad_width():
    with pytest.raises(ValueError):
        Lfsr(0)


def test_random_patterns_reproducible():
    a = random_patterns(8, 20, seed=7)
    b = random_patterns(8, 20, seed=7)
    c = random_patterns(8, 20, seed=8)
    assert a == b
    assert a != c
    assert all(len(p) == 8 for p in a)
