"""Unit tests for the classical yield models."""

import math

import pytest

from repro.core import (
    defects_for_yield,
    murphy_yield,
    negative_binomial_yield,
    poisson_yield,
    scale_yield_to_area,
)


def test_poisson_basics():
    assert poisson_yield(0.0, 10.0) == 1.0
    assert poisson_yield(0.01, 100.0) == pytest.approx(math.exp(-1))


def test_negative_binomial_limits():
    ad = 1.0
    nb_large_alpha = negative_binomial_yield(0.01, 100.0, clustering=1e7)
    assert nb_large_alpha == pytest.approx(math.exp(-ad), rel=1e-5)
    # Clustering raises yield at equal average defect count.
    assert negative_binomial_yield(0.01, 100.0, 0.5) > poisson_yield(0.01, 100.0)


def test_murphy_between_poisson_and_one():
    y_p = poisson_yield(0.02, 100.0)
    y_m = murphy_yield(0.02, 100.0)
    assert y_p < y_m < 1.0
    assert murphy_yield(0.0, 50.0) == 1.0


def test_defects_for_yield_roundtrip():
    d = defects_for_yield(0.75, 42.0)
    assert poisson_yield(d, 42.0) == pytest.approx(0.75)


def test_scale_yield_to_area():
    assert scale_yield_to_area(0.9, 2.0) == pytest.approx(0.81)
    assert scale_yield_to_area(0.9, 0.5) == pytest.approx(0.9**0.5)
    # The paper's scaling trick: pick the ratio that lands on Y = 0.75.
    ratio = math.log(0.75) / math.log(0.9)
    assert scale_yield_to_area(0.9, ratio) == pytest.approx(0.75)


def test_validation():
    with pytest.raises(ValueError):
        poisson_yield(-0.1, 10)
    with pytest.raises(ValueError):
        negative_binomial_yield(0.01, 10, clustering=0)
    with pytest.raises(ValueError):
        defects_for_yield(0.0, 10)
    with pytest.raises(ValueError):
        scale_yield_to_area(0.9, 0.0)
