"""Engine registry + cross-engine bit-exactness of the numpy bitslice kernel.

The numpy engine is only allowed to be *faster* than the python wide-word
reference, never different: every test here pins some slice of the
equivalence claim.

* registry — ``resolve_engine`` honours explicit requests, ``auto``
  degrades to python (with a recorded reason) instead of failing, and an
  explicit ``numpy`` request on a platform that fails the preflight raises
  up front;
* equivalence — a hypothesis property asserts identical
  ``FaultSimResult`` contents (first detections, detection counts,
  coverage curves) across benchmarks, word widths and both drop modes,
  serial and parallel;
* resilience — chunk salvage and the serial fallback stay bit-exact with
  the numpy engine active under injected chaos;
* attribution — the numpy kernel feeds the same counters work-additively
  (bucket totals reconcile with the stage total) and enabling attribution
  never changes results.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.circuit.iscas import load_benchmark
from repro.obs import attribution
from repro.resilience import ChaosPlan, ChaosRule, chaos
from repro.simulation import (
    ENGINE_KINDS,
    ENGINE_NAMES,
    EngineUnavailableError,
    FaultSimulator,
    NumpyFaultSimulator,
    ParallelFaultSimulator,
    collapse_faults,
    create_engine,
    numpy_preflight,
    resolve_engine,
)
from repro.simulation.numpy_sim import DEFAULT_NUMPY_WIDTH


@pytest.fixture(autouse=True)
def _clean_state():
    chaos.uninstall()
    obs.disable()
    attribution.disable()
    yield
    chaos.uninstall()
    obs.disable()
    attribution.disable()


def _patterns(circuit, n, seed=7):
    rng = random.Random(seed)
    n_pi = len(circuit.primary_inputs)
    return [[rng.randint(0, 1) for _ in range(n_pi)] for _ in range(n)]


def _assert_identical(result, reference):
    assert result.faults == reference.faults
    assert result.n_patterns == reference.n_patterns
    assert result.first_detection == reference.first_detection
    assert result.detection_counts == reference.detection_counts
    assert result.coverage_curve() == reference.coverage_curve()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_engine_name_constants():
    assert ENGINE_NAMES == ("python", "numpy", "auto")
    assert ENGINE_KINDS == ("python", "numpy")


def test_resolve_explicit_requests():
    assert resolve_engine("python") == ("python", "requested")
    # CI always has a healthy numpy; the preflight-failure path is forced
    # below by poisoning the cache.
    assert resolve_engine("numpy") == ("numpy", "requested")


def test_resolve_auto_picks_numpy_and_records_reason():
    kind, reason = resolve_engine("auto")
    assert kind == "numpy"
    assert reason.startswith("auto: ")


def test_resolve_auto_degrades_on_bad_width():
    kind, reason = resolve_engine("auto", width=100)
    assert kind == "python"
    assert "64" in reason


def test_resolve_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("fortran")


def test_explicit_numpy_rejects_bad_width():
    with pytest.raises(EngineUnavailableError, match="multiple of 64"):
        resolve_engine("numpy", width=100)


def test_explicit_numpy_fails_closed_when_preflight_fails(monkeypatch):
    from repro.simulation import engines

    monkeypatch.setattr(
        engines, "_preflight_cache", (False, "forced by test")
    )
    with pytest.raises(EngineUnavailableError, match="forced by test"):
        resolve_engine("numpy")
    kind, reason = resolve_engine("auto")
    assert kind == "python"
    assert reason == "auto: forced by test"


def test_preflight_passes_and_is_cached():
    first = numpy_preflight()
    assert first == (True, "uint64 bitslice probes passed")
    assert numpy_preflight() is first


def test_create_engine_defaults():
    ckt = load_benchmark("c17")
    python_engine = create_engine("python", ckt)
    assert isinstance(python_engine, FaultSimulator)
    assert python_engine.kind == "python"
    numpy_engine = create_engine("numpy", ckt)
    assert isinstance(numpy_engine, NumpyFaultSimulator)
    assert numpy_engine.kind == "numpy"
    assert numpy_engine.width == DEFAULT_NUMPY_WIDTH
    assert isinstance(create_engine("auto", ckt), NumpyFaultSimulator)


def test_numpy_engine_validates_width():
    ckt = load_benchmark("c17")
    with pytest.raises(ValueError):
        NumpyFaultSimulator(ckt, width=100)
    with pytest.raises(ValueError):
        NumpyFaultSimulator(ckt, width=0)


# ---------------------------------------------------------------------------
# Cross-engine equivalence
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("bench", ["c17", "c432_like", "c880_like"])
@pytest.mark.parametrize("drop", [False, True])
def test_numpy_matches_python_on_benchmarks(bench, drop):
    ckt = load_benchmark(bench)
    faults = collapse_faults(ckt)
    patterns = _patterns(ckt, 130, seed=11)
    # Same width for both engines: with fault dropping the detection
    # counts are defined per detection *group*, so group boundaries are
    # part of the contract.
    reference = FaultSimulator(ckt, width=128).run(
        patterns, faults=faults, drop_detected=drop
    )
    result = NumpyFaultSimulator(ckt, width=128, lane_batch=13).run(
        patterns, faults=faults, drop_detected=drop
    )
    _assert_identical(result, reference)


@settings(max_examples=20, deadline=None)
@given(
    bench=st.sampled_from(["c17", "c432_like"]),
    width_words=st.integers(min_value=1, max_value=4),
    n_patterns=st.integers(min_value=1, max_value=200),
    drop=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_cross_engine_equivalence_property(
    bench, width_words, n_patterns, drop, seed
):
    ckt = load_benchmark(bench)
    faults = collapse_faults(ckt)
    patterns = _patterns(ckt, n_patterns, seed=seed)
    width = 64 * width_words
    reference = FaultSimulator(ckt, width=width).run(
        patterns, faults=faults, drop_detected=drop
    )
    result = NumpyFaultSimulator(ckt, width=width, lane_batch=7).run(
        patterns, faults=faults, drop_detected=drop
    )
    _assert_identical(result, reference)


@pytest.mark.parametrize("engine", ["python", "numpy", "auto"])
def test_parallel_engines_match_serial_reference(engine):
    ckt = load_benchmark("c432_like")
    faults = collapse_faults(ckt)
    patterns = _patterns(ckt, 96, seed=3)
    reference = FaultSimulator(ckt, width=128).run(patterns, faults=faults)
    pool = ParallelFaultSimulator(
        ckt, width=128, max_workers=2, crossover=0, engine=engine
    )
    pool._sleep = lambda s: None
    result = pool.run(patterns, faults=faults)
    _assert_identical(result, reference)
    info = pool.engine_info()
    assert info["requested"] == engine
    assert info["kind"] in ENGINE_KINDS
    assert info["kind"] == ("python" if engine == "python" else "numpy")
    assert pool.last_engine == "parallel"


def test_engine_info_records_defaults_and_reason():
    from repro.simulation.engines import default_crossover

    ckt = load_benchmark("c17")
    pool = ParallelFaultSimulator(ckt, engine="auto")
    info = pool.engine_info()
    assert info["kind"] == "numpy"
    assert info["requested"] == "auto"
    assert str(info["reason"]).startswith("auto: ")
    assert info["word_width"] == DEFAULT_NUMPY_WIDTH
    assert info["crossover"] == default_crossover("numpy")
    python_pool = ParallelFaultSimulator(ckt, engine="python")
    assert python_pool.engine_info()["crossover"] == (
        default_crossover("python")
    )


# ---------------------------------------------------------------------------
# Resilience with the numpy engine active
# ---------------------------------------------------------------------------
def test_chaos_salvage_stays_bit_exact_with_numpy_engine():
    ckt = load_benchmark("c432_like")
    faults = collapse_faults(ckt)
    patterns = _patterns(ckt, 64, seed=5)
    reference = FaultSimulator(ckt, width=64).run(patterns, faults=faults)
    # Chunk 0 fails on every attempt: retries exhaust and the supervisor
    # must salvage the healthy chunk and re-run the failed one serially —
    # through the numpy engine's own _simulate_groups.
    plan = ChaosPlan(
        rules=(
            ChaosRule(
                point="parallel.chunk",
                kind="exception",
                keys={0},
                attempts={0, 1, 2, 3},
            ),
        )
    )
    pool = ParallelFaultSimulator(
        ckt, width=64, max_workers=2, crossover=0, engine="numpy"
    )
    pool._sleep = lambda s: None
    with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
        result = pool.run(patterns, faults=faults)
    _assert_identical(result, reference)
    info = pool.engine_info()
    assert info["kind"] == "numpy"
    assert info["degraded"] is True
    assert info["chunks_serial"] >= 1


def test_total_pool_failure_salvages_everything_through_numpy_serial():
    ckt = load_benchmark("c432_like")
    faults = collapse_faults(ckt)
    patterns = _patterns(ckt, 64, seed=9)
    reference = FaultSimulator(ckt, width=64).run(patterns, faults=faults)
    # Every chunk fails on every attempt: the pool contributes nothing and
    # the complete fault list re-runs through the numpy engine serially.
    plan = ChaosPlan(
        rules=(
            ChaosRule(point="parallel.chunk", kind="exception", keys={0, 1}),
        )
    )
    pool = ParallelFaultSimulator(
        ckt, width=64, max_workers=2, crossover=0, engine="numpy"
    )
    pool._sleep = lambda s: None
    with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
        result = pool.run(patterns, faults=faults)
    _assert_identical(result, reference)
    info = pool.engine_info()
    assert info["kind"] == "numpy"
    assert info["degraded"] is True
    assert info["chunks_serial"] == 2
    assert info["chunks_salvaged"] == 0


# ---------------------------------------------------------------------------
# Attribution through the numpy kernel
# ---------------------------------------------------------------------------
def test_numpy_attribution_counters_reconcile_and_stay_neutral():
    ckt = load_benchmark("c432_like")
    faults = collapse_faults(ckt)
    patterns = _patterns(ckt, 96, seed=13)
    sim = NumpyFaultSimulator(ckt, width=64, lane_batch=16)
    bare = sim.run(patterns, faults=faults)
    attribution.enable()
    attributed = sim.run(patterns, faults=faults)
    snap = attribution.collector().snapshot()
    attribution.disable()
    # Neutrality: the counters never change the simulation.
    _assert_identical(attributed, bare)
    stage = snap["stages"]["fault_sim"]
    assert stage["gate_evals"] > 0
    assert stage["good_gate_evals"] > 0
    assert stage["pattern_blocks"] == -(-96 // 64)
    # Work-additivity: cone-bucket totals are the same work re-binned.
    cones = snap["cone_buckets"]
    assert sum(b["gate_evals"] for b in cones.values()) == stage["gate_evals"]
    assert sum(b["faults"] for b in cones.values()) == len(faults)
