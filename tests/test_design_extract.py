"""Integration tests: full layout assembly + LVS-lite verification.

These are the strongest layout tests: for several circuits the generated
geometry must be electrically identical to the intended netlist — every net
one connected component, no shorts, and the transistor-level netlist
recoverable from pure geometry.
"""

import pytest

from repro.circuit import c17, mux_tree, parity_tree, ripple_carry_adder
from repro.layout import (
    Layer,
    build_layout,
    extract_transistors,
    find_shorts,
    verify_layout,
)


@pytest.fixture(scope="module", params=["c17", "rca4", "par8", "mux4"])
def design(request):
    builders = {
        "c17": c17,
        "rca4": lambda: ripple_carry_adder(4),
        "par8": lambda: parity_tree(8),
        "mux4": lambda: mux_tree(2),
    }
    return build_layout(builders[request.param]())


def test_layout_is_clean(design):
    report = verify_layout(design)
    assert not report.shorts, report.shorts[:3]
    assert not report.merged_nets, report.merged_nets[:3]
    assert not report.split_nets, dict(list(report.split_nets.items())[:3])
    assert report.clean


def test_transistor_extraction_matches_netlist(design):
    extracted = extract_transistors(design)
    assert len(extracted) == len(design.transistors)
    wanted = {
        (t.polarity, t.gate, frozenset((t.source, t.drain)))
        for t in design.transistors
    }
    got = {(t.polarity, t.gate_net, t.sd_nets) for t in extracted}
    assert got == wanted


def test_every_mapped_net_has_shapes(design):
    shaped = {s.net for s in design.shapes}
    for net in design.mapped.nets:
        assert net in shaped, net


def test_row_bases_monotone(design):
    bases = design.row_base
    assert all(b2 > b1 for b1, b2 in zip(bases, bases[1:]))


def test_die_metrics(design):
    assert design.area_mm2() > 0
    lengths = design.wire_length_by_layer()
    assert lengths[Layer.METAL1] > 0
    assert lengths[Layer.METAL2] > 0
    assert design.die.width > 0


def test_signal_nets_listed(design):
    nets = design.signal_nets
    assert "VDD" not in nets and "GND" not in nets
    for po in design.mapped.primary_outputs:
        assert po in nets


def test_find_shorts_detects_planted_short(design):
    from repro.layout import Rect

    sabotaged = list(design.shapes)
    # Plant a metal1 shape overlapping an existing one under another net.
    victim = next(
        s for s in sabotaged if s.layer is Layer.METAL1 and s.net == "VDD"
    )
    sabotaged.append(
        Rect(Layer.METAL1, victim.llx, victim.lly, victim.urx, victim.ury, "GND")
    )
    assert find_shorts(sabotaged)
