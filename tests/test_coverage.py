"""Unit tests for realistic coverage bookkeeping (theta/Gamma curves)."""

import pytest

from repro.defects import BridgeFault, FaultList
from repro.switchsim import SwitchSimResult, build_coverage
from repro.switchsim.coverage import CoverageCurves


def _result(faults, detections, potential=None, iddq=None, n=10):
    res = SwitchSimResult(faults=faults, n_patterns=n)
    for fault, k in detections:
        res.first_detection[id(fault)] = k
    for fault, k in (detections if potential is None else potential):
        res.first_detection_potential[id(fault)] = k
    for fault, k in (iddq or []):
        res.first_detection_iddq[id(fault)] = k
    return res


def _faults(weights):
    fl = FaultList()
    for i, w in enumerate(weights):
        fl.add(BridgeFault(weight=w, net_a=f"a{i}", net_b=f"b{i}"))
    return fl


def test_theta_weighted_vs_gamma_unweighted():
    faults = _faults([9.0, 0.5, 0.5])
    heavy, light1, light2 = faults.faults
    result = _result(faults.faults, [(heavy, 2)])
    curves = build_coverage(faults, result, "voltage")
    assert curves.theta_at(2) == pytest.approx(0.9)
    assert curves.gamma_at(2) == pytest.approx(1 / 3)
    assert curves.theta_at(1) == 0.0


def test_monotone_and_saturation():
    faults = _faults([1, 2, 3, 4])
    f = faults.faults
    result = _result(f, [(f[0], 1), (f[1], 3), (f[2], 7)])
    curves = build_coverage(faults, result, "voltage")
    thetas = [curves.theta_at(k) for k in range(0, 11)]
    assert thetas == sorted(thetas)
    assert curves.theta_max == pytest.approx(6 / 10)
    assert curves.gamma_max == pytest.approx(3 / 4)


def test_techniques_select_maps():
    faults = _faults([1, 1])
    a, b = faults.faults
    result = _result(
        faults.faults,
        [(a, 5)],
        potential=[(a, 2), (b, 9)],
        iddq=[(b, 1)],
    )
    strict = build_coverage(faults, result, "voltage-strict")
    potential = build_coverage(faults, result, "voltage")
    iddq = build_coverage(faults, result, "iddq")
    either = build_coverage(faults, result, "either")
    assert strict.theta_at(5) == pytest.approx(0.5)
    assert potential.theta_at(2) == pytest.approx(0.5)
    assert potential.theta_max == pytest.approx(1.0)
    assert iddq.theta_at(1) == pytest.approx(0.5)
    assert either.theta_at(1) == pytest.approx(0.5)
    assert either.theta_max == pytest.approx(1.0)
    with pytest.raises(ValueError):
        build_coverage(faults, result, "psychic")


def test_curve_rows():
    faults = _faults([1, 1])
    a, b = faults.faults
    result = _result(faults.faults, [(a, 2), (b, 6)])
    curves = build_coverage(faults, result, "voltage")
    rows = curves.curve()
    assert rows[-1][0] == 10
    ks = [k for k, _, _ in rows]
    assert ks == sorted(ks)
    explicit = curves.curve([1, 2, 6, 10])
    assert explicit[1][1] == pytest.approx(0.5)
    assert explicit[2][1] == pytest.approx(1.0)


def test_empty_fault_list():
    curves = CoverageCurves(n_patterns=5, total_weight=0.0, records=[])
    assert curves.theta_at(3) == 1.0
    assert curves.gamma_at(3) == 1.0
