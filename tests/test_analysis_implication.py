"""Tests for the implication engine, untestability screen, and dominance.

The load-bearing property throughout: soundness.  Every fault the static
screen flags must be undetectable by *any* vector (checked exhaustively
where the input space allows), and the dominance-collapsed universe must
preserve detection — a test set covering the survivors covers the dropped
classes too.
"""

from itertools import product

import pytest

from repro.analysis import (
    ImplicationEngine,
    analyze_circuit,
    dominance_collapse,
    find_untestable_faults,
    propagate_constants,
)
from repro.circuit import Circuit, GateType, c17
from repro.circuit.iscas import BENCHMARKS
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.faults import collapse_faults, full_fault_universe


def all_vectors(circuit: Circuit) -> list[list[int]]:
    n = len(circuit.primary_inputs)
    return [list(bits) for bits in product((0, 1), repeat=n)]


# ---------------------------------------------------------------------------
# Constant propagation
# ---------------------------------------------------------------------------
def test_tied_xor_is_constant_zero():
    ckt = Circuit(name="t")
    ckt.add_input("a")
    ckt.add_gate(GateType.XOR, ["a", "a"], "z")
    ckt.add_output("z")
    assert propagate_constants(ckt) == {"z": 0}


def test_complemented_and_is_constant_zero():
    ckt = Circuit(name="t")
    ckt.add_input("a")
    ckt.add_gate(GateType.NOT, ["a"], "na")
    ckt.add_gate(GateType.AND, ["a", "na"], "z")
    ckt.add_output("z")
    constants = propagate_constants(ckt)
    assert constants == {"z": 0}


def test_constants_propagate_forward():
    ckt = Circuit(name="t")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.XNOR, ["a", "a"], "one")   # constant 1
    ckt.add_gate(GateType.OR, ["one", "b"], "z")     # forced 1 by 'one'
    ckt.add_output("z")
    assert propagate_constants(ckt) == {"one": 1, "z": 1}


def test_no_false_constants_on_builtins():
    # Spot-check: declared constants must hold on a vector sample.
    for name in ("c17", "alu4", "mul4"):
        circuit = BENCHMARKS[name]()
        assert propagate_constants(circuit) == {}, name


# ---------------------------------------------------------------------------
# Implication closure
# ---------------------------------------------------------------------------
def test_and_output_one_forces_all_inputs():
    ckt = Circuit(name="t")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.AND, ["a", "b"], "z")
    ckt.add_output("z")
    closure = ImplicationEngine(ckt).closure([("z", 1)])
    assert closure == {"z": 1, "a": 1, "b": 1}


def test_last_free_input_justification():
    ckt = Circuit(name="t")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.NOR, ["a", "b"], "z")
    ckt.add_output("z")
    # z = 0 with a = 0 leaves b as the only way to control the NOR: b = 1.
    closure = ImplicationEngine(ckt).closure([("z", 0), ("a", 0)])
    assert closure is not None and closure["b"] == 1


def test_xor_parity_completion():
    ckt = Circuit(name="t")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.XOR, ["a", "b"], "z")
    ckt.add_output("z")
    closure = ImplicationEngine(ckt).closure([("z", 1), ("a", 1)])
    assert closure is not None and closure["b"] == 0


def test_contradiction_returns_none():
    ckt = Circuit(name="t")
    ckt.add_input("a")
    ckt.add_gate(GateType.NOT, ["a"], "z")
    ckt.add_output("z")
    engine = ImplicationEngine(ckt)
    assert engine.closure([("a", 1), ("z", 1)]) is None
    assert engine.closure([("a", 1), ("z", 0)]) is not None


def test_constant_net_not_justifiable_to_other_value():
    ckt = Circuit(name="t")
    ckt.add_input("a")
    ckt.add_gate(GateType.XOR, ["a", "a"], "z")
    ckt.add_output("z")
    engine = ImplicationEngine(ckt)
    assert not engine.is_justifiable("z", 1)
    assert engine.is_justifiable("z", 0)


def test_work_counters_accumulate():
    engine = ImplicationEngine(c17())
    engine.closure([("G22", 0)])
    assert engine.stats["closures"] == 1
    assert engine.stats["steps"] > 0


# ---------------------------------------------------------------------------
# Untestability screening: soundness
# ---------------------------------------------------------------------------
def test_tied_input_pin_faults_flagged_and_truly_untestable():
    ckt = Circuit(name="tied")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.AND, ["a", "a"], "m")
    ckt.add_gate(GateType.OR, ["m", "b"], "z")
    ckt.add_output("z")
    report = find_untestable_faults(ckt)
    flagged = set(report.untestable)
    # AND(a, a): forcing one pin to 1 while the tied sibling reads a = 0
    # never changes the output, so both pin s-a-1 faults are untestable.
    pin_sa1 = {f for f in full_fault_universe(ckt)
               if f.gate == "m" and f.value == 1}
    assert pin_sa1 <= flagged
    # Exhaustive confirmation: nothing flagged is ever detected.
    sim = FaultSimulator(ckt)
    detected = set(sim.run(all_vectors(ckt), faults=sorted(flagged, key=str)).detected)
    assert not detected


def test_unreachable_logic_faults_flagged():
    ckt = Circuit(name="island")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.AND, ["a", "b"], "z")
    ckt.add_gate(GateType.NOT, ["a"], "n1")
    ckt.add_gate(GateType.NOT, ["n1"], "n2")
    ckt.add_output("z")
    report = find_untestable_faults(ckt)
    reasons = {str(f): r for f, r in report.reasons.items()}
    assert reasons["n1/sa0"] == "unobservable"
    assert reasons["n2/sa1"] == "unobservable"


def test_constant_activation_conflict_flagged():
    ckt = Circuit(name="const")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.XOR, ["a", "a"], "zero")
    ckt.add_gate(GateType.OR, ["zero", "b"], "z")
    ckt.add_output("z")
    report = find_untestable_faults(ckt)
    by_name = {str(f): r for f, r in report.reasons.items()}
    # 'zero' is constant 0: stuck-at-0 has no activating vector (the good
    # value can never be 1).  Stuck-at-1 is testable — the faulty value
    # always differs — and must NOT be flagged.
    assert by_name.get("zero/sa0") == "activation"
    assert "zero/sa1" not in by_name
    sim = FaultSimulator(ckt)
    detected = set(
        sim.run(all_vectors(ckt), faults=list(report.untestable)).detected
    )
    assert not detected


@pytest.mark.parametrize("name", ["c17", "rca8", "mux8", "dec4", "alu4", "mul4"])
def test_flagged_faults_never_detected_exhaustively(name):
    """Soundness on every built-in with an enumerable input space."""
    circuit = BENCHMARKS[name]()
    report = find_untestable_faults(circuit)
    if not report.untestable:
        return
    assert len(circuit.primary_inputs) <= 17
    sim = FaultSimulator(circuit)
    result = sim.run(all_vectors(circuit), faults=list(report.untestable))
    assert result.detected == []


def test_c432_flagged_faults_survive_random_attack():
    """c432's input space is too wide to enumerate; attack with random

    vectors instead — any detection would disprove the untestability proof.
    """
    import random

    circuit = BENCHMARKS["c432_like"]()
    report = find_untestable_faults(circuit)
    assert report.untestable, "screen should find c432's redundant faults"
    rng = random.Random(99)
    n_pi = len(circuit.primary_inputs)
    vectors = [[rng.randint(0, 1) for _ in range(n_pi)] for _ in range(1024)]
    sim = FaultSimulator(circuit)
    assert sim.run(vectors, faults=list(report.untestable)).detected == []


def test_screen_subset_of_universe():
    circuit = BENCHMARKS["alu4"]()
    universe = full_fault_universe(circuit)
    report = find_untestable_faults(circuit, universe)
    assert report.n_screened == len(universe)
    assert set(report.untestable) <= set(universe)
    assert all(f in report for f in report.untestable)


# ---------------------------------------------------------------------------
# Dominance collapsing
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_dominance_never_larger_than_equivalence(name):
    circuit = BENCHMARKS[name]()
    equivalence = collapse_faults(circuit)
    dominance = dominance_collapse(circuit)
    assert set(dominance.collapsed) <= set(equivalence)
    assert len(dominance.collapsed) + dominance.n_dropped == len(equivalence)
    # Order of survivors is preserved.
    surviving = set(dominance.collapsed)
    assert dominance.collapsed == [f for f in equivalence if f in surviving]


def test_dominance_rep_of_covers_whole_universe():
    circuit = c17()
    dominance = dominance_collapse(circuit)
    surviving = set(dominance.collapsed)
    for fault in full_fault_universe(circuit):
        assert dominance.rep_of[fault] in surviving


@pytest.mark.parametrize("name", ["c17", "alu4", "mul4"])
def test_dominance_detection_bit_exact_on_shared_faults(name):
    """Per-fault detection must not depend on which universe it sits in."""
    circuit = BENCHMARKS[name]()
    vectors = all_vectors(circuit) if len(circuit.primary_inputs) <= 12 else None
    if vectors is None:
        import random

        rng = random.Random(5)
        n = len(circuit.primary_inputs)
        vectors = [[rng.randint(0, 1) for _ in range(n)] for _ in range(128)]
    sim = FaultSimulator(circuit)
    eq_result = sim.run(vectors, faults=collapse_faults(circuit))
    dom = dominance_collapse(circuit)
    dom_result = sim.run(vectors, faults=dom.collapsed)
    for fault in dom.collapsed:
        assert (
            eq_result.first_detection.get(fault)
            == dom_result.first_detection.get(fault)
        ), fault


def test_dominance_drop_is_detection_preserving_on_c17():
    """A test set detecting every survivor detects every dropped class."""
    circuit = c17()
    vectors = all_vectors(circuit)
    sim = FaultSimulator(circuit)
    dom = dominance_collapse(circuit)
    survivor_result = sim.run(vectors, faults=dom.collapsed)
    assert survivor_result.undetected == []  # c17 has no redundancy
    # Build a compact test set: one first-detecting vector per survivor.
    compact = sorted({survivor_result.first_detection[f] for f in dom.collapsed})
    test_set = [vectors[k] for k in compact]
    dropped_result = sim.run(test_set, faults=list(dom.dropped))
    assert dropped_result.undetected == []


def test_dominance_drops_on_c17_are_the_nand_outputs():
    # c17 is all NANDs, so the droppable faults are out/sa0 of internal
    # gates.  G10/sa0 and G19/sa0 survive because equivalence already merged
    # them with PO stem faults (G22/sa1, G23/sa1); G11/sa0 and G16/sa0 are
    # singleton classes and get dropped.
    dom = dominance_collapse(c17())
    dropped_names = {str(f) for f in dom.dropped}
    assert dropped_names == {"G11/sa0", "G16/sa0"}


# ---------------------------------------------------------------------------
# analyze_circuit façade
# ---------------------------------------------------------------------------
def test_analyze_circuit_quick_skips_implications():
    result = analyze_circuit(c17(), quick=True)
    assert result.ok
    assert result.scoap is not None
    assert result.untestable is None
    assert result.untestable_faults() == []


def test_analyze_circuit_screen_filters_universe():
    circuit = BENCHMARKS["alu4"]()
    result = analyze_circuit(circuit)
    universe = full_fault_universe(circuit)
    screened = result.screen(universe)
    flagged = set(result.untestable_faults())
    assert len(screened) == len(universe) - len(flagged)
    assert not flagged & set(screened)


def test_analyze_circuit_on_broken_circuit_skips_downstream():
    ckt = Circuit(name="broken")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "ghost"], "z")
    ckt.add_output("z")
    result = analyze_circuit(ckt)
    assert not result.ok
    assert result.scoap is None
    assert result.untestable is None


def test_analyze_to_dict_shape():
    payload = analyze_circuit(c17()).to_dict()
    assert payload["ok"] is True
    assert payload["lint"]["circuit"] == "c17"
    assert payload["untestable"]["n_untestable"] == 0
    assert payload["scoap"]["G10"] == {"cc0": 3, "cc1": 2, "co": 3}
