"""Unit tests for fault dictionaries and syndrome diagnosis."""

import pytest

from repro.atpg import random_patterns
from repro.circuit.levelize import levelize
from repro.circuit.library import evaluate_gate
from repro.diagnosis import FaultDictionary, Syndrome
from repro.simulation import StuckAtFault
from repro.simulation.faults import FaultSite


@pytest.fixture(scope="module")
def dictionary(c17_circuit):
    patterns = random_patterns(5, 48, seed=23)
    return FaultDictionary.build(c17_circuit, patterns)


def _faulty_responses(circuit, patterns, fault):
    """Reference faulty machine responses, scalar simulation."""
    rows = []
    order = levelize(circuit)
    for vec in patterns:
        values = dict(zip(circuit.primary_inputs, vec))
        if fault.site is FaultSite.NET and fault.net in values:
            values[fault.net] = fault.value
        for gate in order:
            operands = []
            for pin, net in enumerate(gate.inputs):
                if (
                    fault.site is FaultSite.GATE_INPUT
                    and gate.name == fault.gate
                    and pin == fault.pin
                ):
                    operands.append(fault.value)
                else:
                    operands.append(values[net])
            value = evaluate_gate(gate.gate_type, operands)
            if fault.site is FaultSite.NET and gate.output == fault.net:
                value = fault.value
            values[gate.output] = value
        rows.append([values[po] for po in circuit.primary_outputs])
    return rows


def test_self_diagnosis_top1(dictionary, c17_circuit):
    """Every modelled fault's own syndrome diagnoses back to itself (or an
    indistinguishable equivalent with an identical syndrome)."""
    for fault in dictionary.faults:
        syndrome = dictionary.syndrome_of(fault)
        if not syndrome.failures:
            continue  # undetected by this sequence: nothing to match
        best = dictionary.diagnose(syndrome, top=1)[0]
        assert best.score == 1.0
        assert dictionary.syndrome_of(best.fault).failures == syndrome.failures


def test_observe_matches_simulated_syndrome(dictionary, c17_circuit):
    fault = StuckAtFault("G10", 1)
    responses = _faulty_responses(c17_circuit, dictionary.patterns, fault)
    observed = dictionary.observe(responses)
    assert observed.failures == dictionary.syndrome_of(fault).failures


def test_observe_length_check(dictionary):
    with pytest.raises(ValueError):
        dictionary.observe([[0, 0]])


def test_good_machine_gives_empty_syndrome(dictionary, c17_circuit):
    from repro.simulation import LogicSimulator

    logic = LogicSimulator(c17_circuit)
    responses = logic.run_patterns(dictionary.patterns)
    observed = dictionary.observe(responses)
    assert len(observed) == 0


def test_jaccard_properties():
    a = Syndrome(frozenset({(1, 0), (2, 1)}))
    b = Syndrome(frozenset({(1, 0)}))
    empty = Syndrome(frozenset())
    assert a.jaccard(a) == 1.0
    assert a.jaccard(b) == pytest.approx(0.5)
    assert empty.jaccard(empty) == 1.0
    assert a.jaccard(empty) == 0.0
    assert a.failing_vectors == {1, 2}


def test_diagnose_ranks_related_faults_high(dictionary, c17_circuit):
    """A corrupted syndrome (one failure dropped) still finds the culprit."""
    fault = StuckAtFault("G16", 0)
    syndrome = dictionary.syndrome_of(fault)
    if len(syndrome) < 2:
        pytest.skip("syndrome too small to corrupt")
    corrupted = Syndrome(frozenset(list(syndrome.failures)[1:]))
    top = dictionary.diagnose(corrupted, top=3)
    assert any(
        dictionary.syndrome_of(m.fault).failures == syndrome.failures for m in top
    )
