"""Unit tests for layout fault extraction (the 'lift' role)."""

import pytest

from repro.defects import (
    BridgeFault,
    DefectMechanism,
    DefectStatistics,
    FloatingNetFault,
    TransistorGateOpen,
    TransistorStuckOn,
    TransistorStuckOpen,
    extract_faults,
)
from repro.layout.cells import GND, VDD


@pytest.fixture(scope="module")
def c17_faults(c17_design):
    return extract_faults(c17_design)


def test_all_classes_present(c17_faults):
    classes = {type(f).__name__ for f in c17_faults}
    assert classes == {
        "BridgeFault",
        "FloatingNetFault",
        "TransistorGateOpen",
        "TransistorStuckOn",
        "TransistorStuckOpen",
    }


def test_weights_positive_and_finite(c17_faults):
    for fault in c17_faults:
        assert fault.weight > 0
        assert fault.weight < 1.0


def test_bridge_endpoints_are_real_nets(c17_design, c17_faults):
    nets = set(c17_design.mapped.nets) | {VDD, GND}
    internal = {t.source for t in c17_design.transistors} | {
        t.drain for t in c17_design.transistors
    }
    for fault in c17_faults:
        if isinstance(fault, BridgeFault):
            assert fault.net_a in nets | internal, fault.net_a
            assert fault.net_b in nets | internal, fault.net_b
            assert fault.net_a != fault.net_b


def test_stuck_on_from_channel_bridges(c17_faults, c17_design):
    device_names = {t.name for t in c17_design.transistors}
    stuck_ons = [f for f in c17_faults if isinstance(f, TransistorStuckOn)]
    assert stuck_ons
    for fault in stuck_ons:
        assert fault.transistor in device_names


def test_gate_oxide_shorts_extracted(c17_faults):
    oxide = [
        f
        for f in c17_faults
        if isinstance(f, BridgeFault)
        and DefectMechanism.GATE_OXIDE_SHORT in f.origin
    ]
    assert oxide
    for fault in oxide:
        assert "#" not in fault.net_a and "#" not in fault.net_b


def test_floating_inputs_reference_real_cells(c17_faults, c17_design):
    instances = {g.name for g in c17_design.mapped.gates}
    for fault in c17_faults:
        if isinstance(fault, FloatingNetFault):
            for inst, net in fault.floating_inputs:
                assert inst in instances
                gate = next(g for g in c17_design.mapped.gates if g.name == inst)
                assert net in gate.inputs


def test_every_gate_input_has_floating_fault(c17_faults, c17_design):
    """Each cell input pin can be severed (pin contact open at minimum)."""
    floatable = set()
    for fault in c17_faults:
        if isinstance(fault, FloatingNetFault):
            floatable.update(fault.floating_inputs)
    for gate in c17_design.mapped.gates:
        for net in gate.inputs:
            assert (gate.name, net) in floatable, (gate.name, net)


def test_gate_open_per_device(c17_faults, c17_design):
    """Poly breaks between the two channels isolate the upper device."""
    gate_opens = {f.transistor for f in c17_faults if isinstance(f, TransistorGateOpen)}
    # The PMOS channel sits above the NMOS channel on every stripe, so each
    # stripe yields exactly one single-device gate-open fault (the PMOS).
    p_devices = {t.name for t in c17_design.transistors if t.polarity == "p"}
    assert gate_opens <= p_devices
    assert gate_opens  # present


def test_stuck_open_targets_exist(c17_faults, c17_design):
    device_names = {t.name for t in c17_design.transistors}
    for fault in c17_faults:
        if isinstance(fault, TransistorStuckOpen):
            assert fault.transistors
            assert set(fault.transistors) <= device_names


def test_vdd_gnd_bridge_extracted(c17_faults):
    """The power straps run side by side: a VDD-GND short must appear."""
    assert any(
        isinstance(f, BridgeFault) and {f.net_a, f.net_b} == {VDD, GND}
        for f in c17_faults
    )


def test_yield_scaling_roundtrip(c17_faults):
    scaled = c17_faults.scaled_to_yield(0.75)
    assert scaled.predicted_yield() == pytest.approx(0.75)
    assert len(scaled) == len(c17_faults)


def test_zero_density_suppresses_mechanism(c17_design):
    stats = DefectStatistics(
        densities={DefectMechanism.METAL1_SHORT: 1e-6}
    )
    faults = extract_faults(c17_design, stats)
    for fault in faults:
        assert fault.origin == (DefectMechanism.METAL1_SHORT,)


def test_bigger_spacing_smaller_weight(c17_design, c17_faults):
    """Bridge weight must decrease with spacing, other things equal."""
    from repro.defects.critical_area import average_critical_area
    from repro.defects.statistics import SizeDistribution

    size = SizeDistribution()
    w_close = average_critical_area(10, 1.5, size)
    w_far = average_critical_area(10, 6.0, size)
    assert w_close > w_far
