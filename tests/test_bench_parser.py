"""Unit tests for the .bench reader/writer."""

import pytest

from repro.circuit import (
    CircuitError,
    GateType,
    c17,
    parse_bench,
    write_bench,
)
from repro.circuit.iscas import C17_BENCH


def test_parse_c17():
    ckt = parse_bench(C17_BENCH, name="c17")
    assert len(ckt.primary_inputs) == 5
    assert len(ckt.primary_outputs) == 2
    assert ckt.gate_count == 6
    assert all(g.gate_type is GateType.NAND for g in ckt.gates)


def test_roundtrip():
    original = c17()
    text = write_bench(original)
    again = parse_bench(text, name=original.name)
    assert again.primary_inputs == original.primary_inputs
    assert again.primary_outputs == original.primary_outputs
    assert [(g.gate_type, g.inputs, g.output) for g in again.gates] == [
        (g.gate_type, g.inputs, g.output) for g in original.gates
    ]


def test_comments_and_blank_lines():
    text = """
    # a comment
    INPUT(x)   # trailing comment

    OUTPUT(y)
    y = NOT(x)
    """
    ckt = parse_bench(text)
    assert ckt.gate_count == 1


def test_case_insensitive_keywords():
    text = "input(a)\ninput(b)\noutput(z)\nz = nand(a, b)\n"
    ckt = parse_bench(text)
    assert ckt.gates[0].gate_type is GateType.NAND


def test_buff_alias():
    text = "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n"
    assert parse_bench(text).gates[0].gate_type is GateType.BUF


def test_dff_rejected():
    text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"
    with pytest.raises(CircuitError, match="unsupported gate type"):
        parse_bench(text)


def test_garbage_line_rejected():
    with pytest.raises(CircuitError, match="cannot parse"):
        parse_bench("INPUT(a)\nwhat is this\n")


def test_empty_arguments_rejected():
    with pytest.raises(CircuitError, match="no inputs"):
        parse_bench("INPUT(a)\nOUTPUT(z)\nz = AND()\n")


def test_structural_error_propagates():
    # Output net never driven.
    with pytest.raises(CircuitError):
        parse_bench("INPUT(a)\nOUTPUT(z)\n")


def test_duplicate_driver_rejected():
    text = "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\nz = OR(a, b)\n"
    with pytest.raises(CircuitError, match="multiple drivers"):
        parse_bench(text)


def test_gate_driving_an_input_rejected():
    text = "INPUT(a)\nINPUT(b)\nOUTPUT(b)\nb = NOT(a)\n"
    with pytest.raises(CircuitError, match="multiple drivers"):
        parse_bench(text)


def test_undeclared_net_rejected():
    text = "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n"
    with pytest.raises(CircuitError, match="undriven") as exc:
        parse_bench(text)
    assert "ghost" in str(exc.value)


def test_empty_circuit_round_trips():
    # No gates at all is structurally fine (no outputs to drive).
    ckt = parse_bench("INPUT(a)\n")
    assert ckt.gate_count == 0
    assert ckt.primary_inputs == ["a"]


def test_duplicate_input_declaration_rejected():
    with pytest.raises(CircuitError, match="duplicate primary input"):
        parse_bench("INPUT(a)\nINPUT(a)\n")


def test_cycle_in_bench_rejected_with_loop():
    text = "INPUT(a)\nOUTPUT(y)\nx = AND(a, y)\ny = NOT(x)\n"
    with pytest.raises(CircuitError, match="cycle") as exc:
        parse_bench(text)
    assert "->" in str(exc.value)


def test_roundtrip_large_benchmarks():
    """write_bench/parse_bench round-trips every registered benchmark."""
    from repro.circuit import load_benchmark

    for name in ("c432", "alu4", "rca8"):
        original = load_benchmark(name)
        again = parse_bench(write_bench(original), name=original.name)
        assert again.primary_inputs == original.primary_inputs
        assert again.primary_outputs == original.primary_outputs
        assert [(g.gate_type, g.inputs, g.output) for g in again.gates] == [
            (g.gate_type, g.inputs, g.output) for g in original.gates
        ]
