"""Unit tests for cell drive strengths and the tap solver."""

import pytest

from repro.circuit import GateType
from repro.switchsim import (
    N_STRENGTH,
    P_STRENGTH,
    cell_conductances,
    divider_value,
    resolve_contention,
    solve_with_tap,
)


def test_inverter_conductances():
    assert cell_conductances(GateType.NOT, (0,)) == (P_STRENGTH, 0.0)
    assert cell_conductances(GateType.NOT, (1,)) == (0.0, N_STRENGTH)


def test_nand_conductances():
    # All inputs high: series chain conducts at g/n; no pull-up.
    up, down = cell_conductances(GateType.NAND, (1, 1, 1))
    assert up == 0.0
    assert down == pytest.approx(N_STRENGTH / 3)
    # One input low: chain broken, one PMOS pulls up.
    up, down = cell_conductances(GateType.NAND, (0, 1, 1))
    assert up == pytest.approx(P_STRENGTH)
    assert down == 0.0
    # All low: every PMOS in parallel.
    up, down = cell_conductances(GateType.NAND, (0, 0, 0))
    assert up == pytest.approx(3 * P_STRENGTH)


def test_nor_conductances():
    up, down = cell_conductances(GateType.NOR, (0, 0))
    assert up == pytest.approx(P_STRENGTH / 2)
    assert down == 0.0
    up, down = cell_conductances(GateType.NOR, (1, 1))
    assert up == 0.0
    assert down == pytest.approx(2 * N_STRENGTH)


def test_mods_force_devices():
    # NMOS 0 forced on in a NAND2 with the other input high: chain conducts.
    up, down = cell_conductances(GateType.NAND, (0, 1), n_mods={0: "on"})
    assert down == pytest.approx(N_STRENGTH / 2)
    assert up == pytest.approx(P_STRENGTH)  # contention
    # Absent device kills the chain.
    up, down = cell_conductances(GateType.NAND, (1, 1), n_mods={1: "absent"})
    assert down == 0.0
    assert up == 0.0  # floating output


def test_x_inputs_rejected():
    with pytest.raises(ValueError):
        cell_conductances(GateType.NAND, (1, 2))


def test_divider_and_contention():
    assert resolve_contention(3.0, 0.0) == 1
    assert resolve_contention(0.0, 3.0) == 0
    assert resolve_contention(0.0, 0.0) == 2  # X / floating
    # Near-balanced fight is X.
    assert resolve_contention(1.0, 1.02) == 2
    # Exactly balanced resolves low (wired-AND).
    assert resolve_contention(1.0, 1.0) == 0
    # Decisive fights resolve.
    assert resolve_contention(4.0, 1.5) == 1
    assert resolve_contention(1.5, 4.0) == 0


def test_divider_multi_driver():
    assert divider_value([(10.0, 1.0), (1.0, 0.0)]) == 1
    assert divider_value([(1.0, 1.0), (10.0, 0.0)]) == 0
    assert divider_value([]) == 2


def test_tap_solver_matches_healthy_inverter():
    # Weak tap should not flip a driven inverter output.
    out, tap = solve_with_tap(GateType.NOT, (0,), 0, 0.0, 0.01)
    assert out == 1
    # Overwhelming tap drags the output to its value.
    out, tap = solve_with_tap(GateType.NOT, (0,), 0, 0.0, 1e4)
    assert out == 0


def test_tap_internal_nand_node():
    # NAND2 with inputs (1, 1): output low via the chain; tying the internal
    # chain node high with a strong external driver fights the chain.
    out_weak, tap_weak = solve_with_tap(GateType.NAND, (1, 1), 1, 1.0, 0.01)
    assert out_weak == 0
    out_strong, tap_strong = solve_with_tap(GateType.NAND, (1, 1), 1, 1.0, 1e5)
    assert tap_strong == 1  # the tap holds its node


def test_tap_floating_node_is_x():
    # NAND2 with inputs (0, 0): chain off; internal node floats when the tap
    # is attached to the output instead.
    out, tap = solve_with_tap(GateType.NAND, (0, 0), 1, 1.0, 0.0)
    assert tap == 2  # internal node undriven -> X
    assert out == 1  # output still pulled up


def test_tap_solver_caches():
    a = solve_with_tap(GateType.NOR, (0, 1), 0, 1.0, 2.0)
    b = solve_with_tap(GateType.NOR, (0, 1), 0, 1.0, 2.0)
    assert a == b
