"""Property-based tests for the cell strength model."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit import GateType
from repro.circuit.library import evaluate_gate
from repro.switchsim import cell_conductances, resolve_contention

_FAMILIES = [GateType.NOT, GateType.NAND, GateType.NOR]


@given(
    gt=st.sampled_from(_FAMILIES),
    n=st.integers(min_value=1, max_value=4),
    code=st.integers(min_value=0, max_value=15),
)
def test_healthy_cell_drives_its_logic_value(gt, n, code):
    """A fault-free cell's conductances resolve to its boolean function."""
    if gt is GateType.NOT:
        n = 1
    elif n < 2:
        n = 2
    inputs = tuple((code >> i) & 1 for i in range(n))
    up, down = cell_conductances(gt, inputs)
    expected = evaluate_gate(gt, list(inputs))
    # Exactly one network conducts.
    assert (up > 0) != (down > 0)
    assert resolve_contention(up, down) == expected


@given(
    gt=st.sampled_from([GateType.NAND, GateType.NOR]),
    n=st.integers(min_value=2, max_value=4),
    code=st.integers(min_value=0, max_value=15),
    index=st.integers(min_value=0, max_value=3),
)
def test_forcing_a_device_on_never_reduces_conductance(gt, n, code, index):
    index %= n
    inputs = tuple((code >> i) & 1 for i in range(n))
    base_up, base_down = cell_conductances(gt, inputs)
    for mods in ({"n_mods": {index: "on"}}, {"p_mods": {index: "on"}}):
        up, down = cell_conductances(gt, inputs, **mods)
        assert up >= base_up - 1e-12
        assert down >= base_down - 1e-12


@given(
    gt=st.sampled_from([GateType.NAND, GateType.NOR]),
    n=st.integers(min_value=2, max_value=4),
    code=st.integers(min_value=0, max_value=15),
    index=st.integers(min_value=0, max_value=3),
)
def test_removing_a_device_never_increases_conductance(gt, n, code, index):
    index %= n
    inputs = tuple((code >> i) & 1 for i in range(n))
    base_up, base_down = cell_conductances(gt, inputs)
    for mods in ({"n_mods": {index: "absent"}}, {"p_mods": {index: "absent"}}):
        up, down = cell_conductances(gt, inputs, **mods)
        assert up <= base_up + 1e-12
        assert down <= base_down + 1e-12


def test_nand_nor_duality():
    """NAND's pull-down mirrors NOR's pull-up at complemented inputs."""
    from repro.switchsim import N_STRENGTH, P_STRENGTH

    for n in (2, 3, 4):
        for inputs in itertools.product([0, 1], repeat=n):
            complemented = tuple(1 - v for v in inputs)
            nand_up, nand_down = cell_conductances(GateType.NAND, inputs)
            nor_up, nor_down = cell_conductances(GateType.NOR, complemented)
            # Series side conducts in both or neither.
            assert (nand_down > 0) == (nor_up > 0)
            # Parallel side: same device count, scaled by polarity strength.
            assert nand_up / P_STRENGTH == pytest.approx(nor_down / N_STRENGTH)
