"""End-to-end tests of ``python -m repro campaign ...`` via main()."""

import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.campaign import Journal
from repro.experiments import ExperimentConfig
from repro.resilience.checkpoint import CheckpointStore


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.disable_events()
    yield
    obs.disable()
    obs.disable_events()


def _write_spec(tmp_path, seeds=(1, 2), name="cli-sweep") -> str:
    path = tmp_path / "spec.json"
    path.write_text(
        json.dumps(
            {
                "name": name,
                "base": {"benchmark": "c17", "max_random_patterns": 16},
                "grid": {"seed": list(seeds)},
            }
        )
    )
    return str(path)


def _campaign(tmp_path) -> str:
    return str(tmp_path / "camp")


# ---------------------------------------------------------------------------
# run / resume
# ---------------------------------------------------------------------------
def test_campaign_run_inline_completes(capsys, tmp_path):
    code = main(
        [
            "campaign",
            "run",
            _write_spec(tmp_path),
            "--dir",
            _campaign(tmp_path),
            "--workers",
            "0",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2 new job(s) submitted" in out
    assert "2 done (0 from cache, 2 computed)" in out


def test_campaign_rerun_serves_everything_from_journal(capsys, tmp_path):
    spec = _write_spec(tmp_path)
    camp = _campaign(tmp_path)
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    capsys.readouterr()
    # Second submission of the same sweep: all jobs are already DONE.
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    out = capsys.readouterr().out
    assert "0 new job(s) submitted (2 total)" in out
    assert "2 done" in out


def test_campaign_shared_results_dir_serves_from_cache(capsys, tmp_path):
    spec = _write_spec(tmp_path)
    results = str(tmp_path / "shared-results")
    assert (
        main(
            [
                "campaign", "run", spec,
                "--dir", str(tmp_path / "a"),
                "--workers", "0",
                "--results-dir", results,
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(
            [
                "campaign", "run", spec,
                "--dir", str(tmp_path / "b"),
                "--workers", "0",
                "--results-dir", results,
            ]
        )
        == 0
    )
    assert "2 done (2 from cache, 0 computed)" in capsys.readouterr().out


def test_campaign_resume_continues_after_stop(capsys, tmp_path):
    spec = _write_spec(tmp_path)
    camp = _campaign(tmp_path)
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    capsys.readouterr()
    # Manually journal two fresh pending jobs by re-submitting a wider sweep
    # through resume's sibling: run with a superset spec.
    wider = _write_spec(tmp_path, seeds=(1, 2, 3))
    assert (
        main(["campaign", "run", wider, "--dir", camp, "--workers", "0"]) == 0
    )
    capsys.readouterr()
    assert main(["campaign", "resume", "--dir", camp, "--workers", "0"]) == 0
    assert "3 done" in capsys.readouterr().out


def test_campaign_resume_without_campaign_exits_2(capsys, tmp_path):
    code = main(
        ["campaign", "resume", "--dir", str(tmp_path / "void"), "--workers", "0"]
    )
    assert code == 2
    assert "no campaign journal" in capsys.readouterr().err


def test_campaign_run_bad_spec_exits_2(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"name": "x", "grid": {"nonsense": [1]}}))
    code = main(
        [
            "campaign", "run", str(bad),
            "--dir", _campaign(tmp_path),
            "--workers", "0",
        ]
    )
    assert code == 2
    assert "invalid campaign spec" in capsys.readouterr().err


def test_campaign_run_negative_workers_exits_2(capsys, tmp_path):
    code = main(
        [
            "campaign", "run", _write_spec(tmp_path),
            "--dir", _campaign(tmp_path),
            "--workers", "-1",
        ]
    )
    assert code == 2
    assert "--workers" in capsys.readouterr().err


def test_campaign_run_nonpositive_lease_timeout_exits_2(capsys, tmp_path):
    code = main(
        [
            "campaign", "run", _write_spec(tmp_path),
            "--dir", _campaign(tmp_path),
            "--workers", "0",
            "--lease-timeout", "0",
        ]
    )
    assert code == 2
    assert "--lease-timeout" in capsys.readouterr().err


def test_campaign_quarantine_exits_1(capsys, tmp_path):
    from repro.resilience import chaos
    from repro.resilience.chaos import ChaosPlan, ChaosRule

    plan = ChaosPlan(rules=(ChaosRule(point="campaign.job", kind="fatal"),))
    with chaos.active(plan):
        with pytest.warns(RuntimeWarning, match="quarantined"):
            code = main(
                [
                    "campaign", "run", _write_spec(tmp_path, seeds=(1,)),
                    "--dir", _campaign(tmp_path),
                    "--workers", "0",
                ]
            )
    assert code == 1
    assert "1 quarantined" in capsys.readouterr().out


def test_campaign_events_stream(capsys, tmp_path):
    events = tmp_path / "events.jsonl"
    code = main(
        [
            "campaign", "run", _write_spec(tmp_path, seeds=(1,)),
            "--dir", _campaign(tmp_path),
            "--workers", "0",
            "--events", str(events),
        ]
    )
    assert code == 0
    lines = [json.loads(line) for line in events.read_text().splitlines()]
    actions = [
        e.get("action") for e in lines if e.get("type") == "CampaignEvent"
    ]
    assert "lease" in actions
    assert "done" in actions


# ---------------------------------------------------------------------------
# status / compact / gc
# ---------------------------------------------------------------------------
def test_campaign_status_table(capsys, tmp_path):
    spec = _write_spec(tmp_path)
    camp = _campaign(tmp_path)
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    capsys.readouterr()
    assert main(["campaign", "status", "--dir", camp]) == 0
    out = capsys.readouterr().out
    assert "2 job(s)" in out
    assert "[finished]" in out
    assert "totals: 2 done, 0 pending, 0 leased, 0 quarantined" in out


def test_campaign_status_missing_dir_exits_2(capsys, tmp_path):
    assert main(["campaign", "status", "--dir", str(tmp_path / "void")]) == 2
    assert "no campaign journal" in capsys.readouterr().err


def test_campaign_compact_then_status(capsys, tmp_path):
    spec = _write_spec(tmp_path)
    camp = _campaign(tmp_path)
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    capsys.readouterr()
    assert main(["campaign", "compact", "--dir", camp]) == 0
    assert "compacted" in capsys.readouterr().out
    records, _ = Journal(tmp_path / "camp").replay()
    assert records == []  # everything folded into the snapshot
    assert main(["campaign", "status", "--dir", camp]) == 0
    assert "totals: 2 done" in capsys.readouterr().out


def test_campaign_gc_reclaims_unreferenced_results(capsys, tmp_path):
    from repro.campaign import ResultStore

    spec = _write_spec(tmp_path)
    camp = _campaign(tmp_path)
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    capsys.readouterr()
    store = ResultStore(tmp_path / "camp" / "results")
    store.save("feedfacedeadbeef", {"orphan": True})  # not in any history

    assert main(["campaign", "gc", "--dir", camp, "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "would remove 1 result dir(s)" in out
    assert store.has("feedfacedeadbeef")  # dry run deleted nothing

    assert main(["campaign", "gc", "--dir", camp]) == 0
    out = capsys.readouterr().out
    assert "removed 1 result dir(s)" in out
    assert "reclaimed" in out
    assert not store.has("feedfacedeadbeef")
    assert len(store.job_ids()) == 2  # live results kept


def test_campaign_gc_prunes_checkpoints_too(capsys, tmp_path):
    spec = _write_spec(tmp_path, seeds=(1,))
    camp = _campaign(tmp_path)
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    capsys.readouterr()
    ckpt_root = tmp_path / "ckpts"
    orphan = CheckpointStore(
        ckpt_root, ExperimentConfig(benchmark="c17", seed=424242)
    )
    orphan.save("stage_a", {"x": 1})
    assert (
        main(
            [
                "campaign", "gc",
                "--dir", camp,
                "--checkpoint-dir", str(ckpt_root),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "removed 1 checkpoint dir(s)" in out
    assert not (ckpt_root / orphan.config_hash).exists()


def test_campaign_status_stop_only_journal(capsys, tmp_path):
    """A journal holding nothing but a stop record (a campaign killed
    before its spec was submitted) must explain itself, not crash."""
    camp = tmp_path / "camp"
    camp.mkdir()
    with Journal(camp) as journal:
        journal.append({"type": "stop", "reason": "SIGTERM"})
    assert main(["campaign", "status", "--dir", str(camp)]) == 0
    out = capsys.readouterr().out
    assert "stopped before any job started" in out
    assert "SIGTERM" in out
    assert "resume will wait" in out


def test_campaign_status_follow_exits_when_complete(capsys, tmp_path):
    spec = _write_spec(tmp_path)
    camp = _campaign(tmp_path)
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    capsys.readouterr()
    # The campaign is already finished: --follow renders once and returns.
    assert main(
        ["campaign", "status", "--dir", camp, "--follow", "--interval", "0.05"]
    ) == 0
    out = capsys.readouterr().out
    assert "DONE" in out or "done" in out


def test_campaign_status_follow_rejects_bad_interval(capsys, tmp_path):
    spec = _write_spec(tmp_path)
    camp = _campaign(tmp_path)
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    capsys.readouterr()
    assert main(
        ["campaign", "status", "--dir", camp, "--follow", "--interval", "0"]
    ) == 2
    assert "--interval must be positive" in capsys.readouterr().err


def test_campaign_status_is_read_only(tmp_path):
    spec = _write_spec(tmp_path)
    camp = _campaign(tmp_path)
    assert main(["campaign", "run", spec, "--dir", camp, "--workers", "0"]) == 0
    journal_path = tmp_path / "camp" / "journal.jsonl"
    before = journal_path.read_bytes()
    # Tear the tail: an appendable open would heal (rewrite) the file.
    journal_path.write_bytes(before[:-3])
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        assert main(["campaign", "status", "--dir", camp]) == 0
    assert journal_path.read_bytes() == before[:-3]
