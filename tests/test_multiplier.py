"""Exhaustive verification of the 4x4 array multiplier benchmark."""

import pytest

from repro.circuit.multiplier import multiplier4
from repro.simulation import LogicSimulator


@pytest.fixture(scope="module")
def mul_sim():
    return LogicSimulator(multiplier4())


def test_multiplier_exhaustive(mul_sim):
    for a in range(16):
        for b in range(16):
            vec = [(a >> i) & 1 for i in range(4)]
            vec += [(b >> i) & 1 for i in range(4)]
            out = mul_sim.outputs(vec)
            product = sum(bit << i for i, bit in enumerate(out))
            assert product == a * b, (a, b, product)


def test_multiplier_interface():
    ckt = multiplier4()
    assert len(ckt.primary_inputs) == 8
    assert len(ckt.primary_outputs) == 8
    from repro.circuit import GateType

    kinds = {g.gate_type for g in ckt.gates}
    assert GateType.XOR in kinds  # carry-save structure


def test_multiplier_registered():
    from repro.circuit import load_benchmark

    ckt = load_benchmark("mul4")
    ckt.validate()


def test_multiplier_layout_clean():
    from repro.layout import build_layout, verify_layout
    from repro.layout.drc import check_spacing

    design = build_layout(multiplier4())
    assert verify_layout(design).clean
    assert check_spacing(design) == []


def test_multiplier_highly_testable():
    from repro.atpg import generate_random_tests
    from repro.simulation import collapse_faults

    ckt = multiplier4()
    result = generate_random_tests(
        ckt, collapse_faults(ckt), target_coverage=1.0, max_patterns=512, seed=3
    )
    assert result.coverage > 0.98  # multipliers are famously random-testable
