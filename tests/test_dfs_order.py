"""Unit tests for the DFS topological order used by placement."""

from repro.circuit import c17, ripple_carry_adder
from repro.circuit.levelize import dfs_topological, levelize


def _assert_topological(circuit, order):
    seen = set(circuit.primary_inputs)
    for gate in order:
        assert all(net in seen for net in gate.inputs), gate.name
        seen.add(gate.output)


def test_dfs_is_topological_c17():
    ckt = c17()
    order = dfs_topological(ckt)
    assert len(order) == ckt.gate_count
    _assert_topological(ckt, order)


def test_dfs_is_topological_c432(c432_circuit):
    order = dfs_topological(c432_circuit)
    assert len(order) == c432_circuit.gate_count
    _assert_topological(c432_circuit, order)


def test_dfs_covers_dangling_gates():
    from repro.circuit import Circuit, GateType

    ckt = Circuit(name="dangling")
    ckt.add_input("a")
    ckt.add_gate(GateType.NOT, ["a"], "z")
    ckt.add_gate(GateType.NOT, ["a"], "unused")  # drives nothing
    ckt.add_output("z")
    order = dfs_topological(ckt)
    assert {g.output for g in order} == {"z", "unused"}


def test_dfs_improves_locality_over_bfs():
    """Cone order keeps driver and consumer close, unlike level order."""
    ckt = ripple_carry_adder(8)

    def average_distance(order):
        position = {g.output: i for i, g in enumerate(order)}
        total = n = 0
        for gate in order:
            for net in gate.inputs:
                if net in position:
                    total += abs(position[gate.output] - position[net])
                    n += 1
        return total / n

    assert average_distance(dfs_topological(ckt)) < average_distance(levelize(ckt))
