"""Unit tests for the coverage-growth laws (eqs. 7-10)."""

import math

import pytest

from repro.core import (
    T_of_theta,
    coverage_at,
    susceptibility_from_point,
    susceptibility_ratio,
    theta_of_T,
    weighted_coverage_at,
)


def test_coverage_at_endpoints():
    s = math.e**3
    assert coverage_at(1, s) == 0.0
    assert coverage_at(1e12, s) > 0.99


def test_coverage_monotone_in_k():
    s = math.e**2
    values = [coverage_at(k, s) for k in (1, 2, 5, 20, 100, 1000)]
    assert values == sorted(values)


def test_lower_susceptibility_converges_faster():
    easy = coverage_at(100, math.e**1.5)
    hard = coverage_at(100, math.e**3)
    assert easy > hard


def test_paper_figure1_values():
    """Fig. 1 parameters: s_T=e^3, s_theta=e^1.5, theta_max=0.96."""
    s_T, s_th = math.e**3, math.e**1.5
    k = math.e**3
    assert coverage_at(k, s_T) == pytest.approx(1 - math.exp(-1))
    theta = weighted_coverage_at(k, s_th, 0.96)
    assert theta == pytest.approx(0.96 * (1 - math.exp(-2)))
    assert theta > coverage_at(k, s_T)  # realistic curve leads
    assert susceptibility_ratio(s_T, s_th) == pytest.approx(2.0)


def test_eq9_consistent_with_eq7_eq8():
    """Eliminating k between eqs. 7 and 8 must give eq. 9 exactly."""
    s_T, s_th, theta_max = math.e**2.4, math.e**1.2, 0.93
    r = susceptibility_ratio(s_T, s_th)
    for k in (2.0, 7.0, 55.0, 1234.0):
        T = coverage_at(k, s_T)
        theta_direct = weighted_coverage_at(k, s_th, theta_max)
        theta_via_T = theta_of_T(T, r, theta_max)
        assert theta_direct == pytest.approx(theta_via_T, rel=1e-12)


def test_T_of_theta_inverts_theta_of_T():
    for theta in (0.1, 0.4, 0.8):
        t = T_of_theta(theta, 1.9, 0.96)
        assert theta_of_T(t, 1.9, 0.96) == pytest.approx(theta, rel=1e-12)


def test_susceptibility_from_point_roundtrip():
    s = math.e**2.7
    k = 500
    t = coverage_at(k, s)
    assert susceptibility_from_point(k, t) == pytest.approx(s, rel=1e-9)


def test_validation():
    with pytest.raises(ValueError):
        coverage_at(0.5, math.e)
    with pytest.raises(ValueError):
        coverage_at(10, 1.0)
    with pytest.raises(ValueError):
        weighted_coverage_at(10, math.e, theta_max=1.5)
    with pytest.raises(ValueError):
        theta_of_T(0.5, -1.0)
    with pytest.raises(ValueError):
        susceptibility_ratio(0.9, math.e)
    with pytest.raises(ValueError):
        susceptibility_from_point(10, 1.0)
