"""Unit tests for levelization and cone extraction."""

import pytest

from repro.circuit import (
    Circuit,
    CircuitError,
    GateType,
    c17,
    circuit_depth,
    gate_levels,
    input_cone,
    levelize,
    output_cone,
    ripple_carry_adder,
)


def test_levelize_order_respects_dependencies(c432_circuit):
    seen = set(c432_circuit.primary_inputs)
    for gate in levelize(c432_circuit):
        assert all(net in seen for net in gate.inputs), gate.name
        seen.add(gate.output)


def test_levelize_covers_all_gates(c432_circuit):
    assert len(levelize(c432_circuit)) == c432_circuit.gate_count


def test_gate_levels_monotone():
    ckt = c17()
    levels = gate_levels(ckt)
    for gate in ckt.gates:
        assert levels[gate.output] == 1 + max(levels[n] for n in gate.inputs)
    assert all(levels[pi] == 0 for pi in ckt.primary_inputs)


def test_depth_of_chain():
    ckt = Circuit(name="chain")
    ckt.add_input("a")
    prev = "a"
    for i in range(5):
        ckt.add_gate(GateType.NOT, [prev], f"n{i}")
        prev = f"n{i}"
    ckt.add_output(prev)
    assert circuit_depth(ckt) == 5


def test_ripple_adder_depth_grows_linearly():
    assert circuit_depth(ripple_carry_adder(8)) > circuit_depth(
        ripple_carry_adder(4)
    )


def test_output_cone_c17():
    ckt = c17()
    cone = output_cone(ckt, "G11")
    # G11 feeds G16 and G19, which feed G22 and G23.
    assert cone == {"G11", "G16", "G19", "G22", "G23"}


def test_input_cone_c17():
    ckt = c17()
    cone = input_cone(ckt, "G22")
    assert cone == {"G22", "G10", "G16", "G1", "G2", "G3", "G6", "G11"}


def test_cone_of_pi_is_forward_only():
    ckt = c17()
    assert input_cone(ckt, "G1") == {"G1"}
    assert "G23" not in output_cone(ckt, "G1")


def test_levelize_detects_cycle():
    ckt = Circuit(name="bad")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "y"], "x")
    ckt.add_gate(GateType.NOT, ["x"], "y")
    ckt.add_output("y")
    with pytest.raises(CircuitError):
        levelize(ckt)


def test_levelize_cycle_error_names_the_loop():
    ckt = Circuit(name="bad")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "y"], "x")
    ckt.add_gate(GateType.NOT, ["x"], "y")
    ckt.add_output("y")
    with pytest.raises(CircuitError, match="cycle") as exc:
        levelize(ckt)
    message = str(exc.value)
    # The actual loop is reported, e.g. "x -> y -> x".
    assert "x" in message and "y" in message and "->" in message


def test_levelize_undriven_error_names_the_nets():
    ckt = Circuit(name="bad")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "ghost"], "x")
    ckt.add_output("x")
    with pytest.raises(CircuitError, match="undriven") as exc:
        levelize(ckt)
    assert "ghost" in str(exc.value)
    assert "cycle" not in str(exc.value)


def test_find_combinational_cycle_returns_ordered_loop():
    from repro.circuit.levelize import find_combinational_cycle

    ckt = Circuit(name="ring")
    ckt.add_input("a")
    ckt.add_gate(GateType.NOT, ["c3"], "c1")
    ckt.add_gate(GateType.NOT, ["c1"], "c2")
    ckt.add_gate(GateType.AND, ["c2", "a"], "c3")
    ckt.add_output("c3")
    cycle = find_combinational_cycle(ckt)
    assert cycle is not None and len(cycle) == 3
    # Consecutive nets must actually feed each other (closing the ring).
    driver = {g.output: g for g in ckt.gates}
    for here, nxt in zip(cycle, cycle[1:] + cycle[:1]):
        assert here in driver[nxt].inputs


def test_find_combinational_cycle_none_on_acyclic():
    from repro.circuit.levelize import find_combinational_cycle

    assert find_combinational_cycle(c17()) is None


def test_self_loop_detected():
    from repro.circuit.levelize import find_combinational_cycle

    ckt = Circuit(name="self")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "x"], "x")
    ckt.add_output("x")
    assert find_combinational_cycle(ckt) == ["x"]


def test_strongly_connected_components_on_acyclic():
    from repro.circuit.levelize import strongly_connected_components

    components = strongly_connected_components(c17())
    assert all(len(c) == 1 for c in components)
    assert len(components) == 6  # one per gate output


def test_undriven_nets_helper():
    from repro.circuit.levelize import undriven_nets

    ckt = Circuit(name="bad")
    ckt.add_input("a")
    ckt.add_gate(GateType.AND, ["a", "ghost"], "x")
    ckt.add_output("phantom")
    assert undriven_nets(ckt) == {"ghost", "phantom"}
