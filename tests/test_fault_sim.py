"""Unit tests for the parallel-pattern stuck-at fault simulator."""

import random


from repro.circuit import Circuit, GateType
from repro.simulation import (
    FaultSimulator,
    FaultSite,
    LogicSimulator,
    StuckAtFault,
    collapse_faults,
    full_fault_universe,
)


def brute_force_detects(circuit: Circuit, fault: StuckAtFault, vec: list[int]) -> bool:
    """Reference detection via two independent full simulations."""
    sim = LogicSimulator(circuit)
    good = sim.simulate(vec)

    faulty_circuit_values = dict(
        zip(circuit.primary_inputs, vec)
    )
    if fault.site is FaultSite.NET and fault.net in faulty_circuit_values:
        faulty_circuit_values[fault.net] = fault.value
    from repro.circuit.levelize import levelize
    from repro.circuit.library import evaluate_gate

    for gate in levelize(circuit):
        operands = []
        for pin, net in enumerate(gate.inputs):
            if (
                fault.site is FaultSite.GATE_INPUT
                and gate.name == fault.gate
                and pin == fault.pin
            ):
                operands.append(fault.value)
            else:
                operands.append(faulty_circuit_values[net])
        value = evaluate_gate(gate.gate_type, operands)
        if fault.site is FaultSite.NET and gate.output == fault.net:
            value = fault.value
        faulty_circuit_values[gate.output] = value

    return any(
        faulty_circuit_values[po] != good[po] for po in circuit.primary_outputs
    )


def test_detection_matches_brute_force_c17(c17_circuit):
    sim = FaultSimulator(c17_circuit)
    rng = random.Random(3)
    universe = full_fault_universe(c17_circuit)
    for _ in range(40):
        vec = [rng.randint(0, 1) for _ in range(5)]
        for fault in universe:
            assert sim.detects(fault, vec) == brute_force_detects(
                c17_circuit, fault, vec
            ), f"{fault} @ {vec}"


def test_first_detection_indices(c17_circuit):
    sim = FaultSimulator(c17_circuit)
    patterns = [[0, 0, 0, 0, 0], [1, 1, 1, 1, 1], [1, 0, 1, 0, 1]]
    result = sim.run(patterns)
    for fault, k in result.first_detection.items():
        assert 1 <= k <= 3
        assert sim.detects(fault, patterns[k - 1])
        for earlier in range(k - 1):
            assert not sim.detects(fault, patterns[earlier])


def test_drop_detected_equivalent_results(c17_circuit):
    sim = FaultSimulator(c17_circuit)
    rng = random.Random(9)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(50)]
    with_drop = sim.run(patterns, drop_detected=True)
    without_drop = sim.run(patterns, drop_detected=False)
    assert with_drop.first_detection == without_drop.first_detection


def test_coverage_curve_monotone(c17_circuit):
    sim = FaultSimulator(c17_circuit)
    rng = random.Random(11)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(64)]
    result = sim.run(patterns, faults=collapse_faults(c17_circuit))
    curve = result.coverage_curve()
    values = [cov for _, cov in curve]
    assert values == sorted(values)
    assert result.coverage == result.coverage_at(result.n_patterns)


def test_coverage_curve_matches_per_k_recount(c17_circuit):
    """The single-pass curve equals the old per-k O(F*K) recount."""
    sim = FaultSimulator(c17_circuit)
    rng = random.Random(17)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(96)]
    result = sim.run(patterns, faults=collapse_faults(c17_circuit))
    reference = [
        (k, result.coverage_at(k))
        for k in sorted(set(result.first_detection.values()))
    ]
    assert result.coverage_curve() == reference


def test_coverage_curve_empty_universe():
    ckt = Circuit(name="empty_curve")
    ckt.add_input("a")
    ckt.add_gate(GateType.BUF, ["a"], "z")
    ckt.add_output("z")
    sim = FaultSimulator(ckt)
    result = sim.run([[0], [1]], faults=[])
    assert result.coverage_curve() == []
    assert result.coverage == 1.0


def test_full_coverage_c17(c17_circuit):
    """c17 is fully testable; enough random vectors reach 100 %."""
    sim = FaultSimulator(c17_circuit)
    rng = random.Random(1)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(200)]
    result = sim.run(patterns, faults=collapse_faults(c17_circuit))
    assert result.coverage == 1.0
    assert result.undetected == []


def test_redundant_fault_never_detected():
    # z = OR(a, AND(a, b)) -- the AND gate is functionally redundant, and
    # m/sa0 cannot be observed.
    ckt = Circuit(name="red")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.AND, ["a", "b"], "m")
    ckt.add_gate(GateType.OR, ["a", "m"], "z")
    ckt.add_output("z")
    sim = FaultSimulator(ckt)
    fault = StuckAtFault("m", 0)
    for code in range(4):
        vec = [code & 1, (code >> 1) & 1]
        assert not sim.detects(fault, vec)


def test_multi_force_detection_matches_singles(c17_circuit):
    """detection_word_multi on one fault equals detection_word."""
    sim = FaultSimulator(c17_circuit)
    from repro.simulation.logic_sim import pack_patterns

    rng = random.Random(21)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(64)]
    words = pack_patterns(patterns, 5)[0]
    good = sim.logic.simulate_packed(words)
    for fault in full_fault_universe(c17_circuit):
        single = sim.detection_word(fault, good)
        multi = sim.detection_word_multi([fault], good)
        assert single == multi


def test_multi_force_two_pins(c17_circuit):
    """Forcing both branch pins of a stem equals the stem fault."""
    sim = FaultSimulator(c17_circuit)
    from repro.simulation.logic_sim import pack_patterns

    rng = random.Random(22)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(64)]
    words = pack_patterns(patterns, 5)[0]
    good = sim.logic.simulate_packed(words)

    # Net G11 branches into G16 and G19.
    stem = StuckAtFault("G11", 0)
    pins = [
        StuckAtFault("G11", 0, FaultSite.GATE_INPUT, "G16", 1),
        StuckAtFault("G11", 0, FaultSite.GATE_INPUT, "G19", 0),
    ]
    assert sim.detection_word_multi(pins, good) == sim.detection_word(stem, good)
