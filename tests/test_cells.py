"""Unit tests for the standard-cell generator."""

import pytest

from repro.circuit.netlist import Gate
from repro.circuit.library import GateType
from repro.layout import Layer, build_cell
from repro.layout.cells import CELL_HEIGHT, GND, VDD


def _gate(gt: GateType, inputs: list[str], out: str = "z") -> Gate:
    return Gate(out, gt, tuple(inputs), out)


@pytest.mark.parametrize(
    "gt,n_inputs,expected_devices",
    [
        (GateType.NOT, 1, 2),
        (GateType.NAND, 2, 4),
        (GateType.NAND, 3, 6),
        (GateType.NAND, 4, 8),
        (GateType.NOR, 2, 4),
        (GateType.NOR, 4, 8),
    ],
)
def test_device_counts(gt, n_inputs, expected_devices):
    cell = build_cell(_gate(gt, [f"i{k}" for k in range(n_inputs)]))
    assert len(cell.transistors) == expected_devices
    n_devs = [t for t in cell.transistors if t.polarity == "n"]
    p_devs = [t for t in cell.transistors if t.polarity == "p"]
    assert len(n_devs) == len(p_devs) == n_inputs


def test_inv_topology():
    cell = build_cell(_gate(GateType.NOT, ["a"]))
    n, p = cell.transistors[0], cell.transistors[1]
    assert {n.source, n.drain} == {GND, "z"}
    assert {p.source, p.drain} == {VDD, "z"}
    assert n.gate == p.gate == "a"


def test_nand_series_parallel():
    cell = build_cell(_gate(GateType.NAND, ["a", "b", "c"]))
    n_devs = [t for t in cell.transistors if t.polarity == "n"]
    p_devs = [t for t in cell.transistors if t.polarity == "p"]
    # PMOS all in parallel between VDD and the output.
    for t in p_devs:
        assert {t.source, t.drain} == {VDD, "z"}
    # NMOS form a chain GND -> out through internal nets.
    nets = [n_devs[0].source] + [t.drain for t in n_devs]
    assert nets[0] == GND
    assert nets[-1] == "z"
    assert all("#" in net for net in nets[1:-1])


def test_nor_series_parallel():
    cell = build_cell(_gate(GateType.NOR, ["a", "b"]))
    n_devs = [t for t in cell.transistors if t.polarity == "n"]
    p_devs = [t for t in cell.transistors if t.polarity == "p"]
    for t in n_devs:
        assert {t.source, t.drain} == {GND, "z"}
    chain = [p_devs[0].source] + [t.drain for t in p_devs]
    assert chain[0] == VDD
    assert chain[-1] == "z"


def test_pins_present():
    cell = build_cell(_gate(GateType.NAND, ["a", "b"]))
    assert set(cell.pins) == {"a", "b", "z"}
    # Input pads are metal1, the output pad metal2.
    assert cell.pins["a"].layer is Layer.METAL1
    assert cell.pins["z"].layer is Layer.METAL2
    # Pads hang below the cell (in the channel).
    for pad in cell.pins.values():
        assert pad.ury <= 0


def test_cell_dimensions():
    inv = build_cell(_gate(GateType.NOT, ["a"]))
    nand4 = build_cell(_gate(GateType.NAND, ["a", "b", "c", "d"]))
    assert inv.height == CELL_HEIGHT
    assert nand4.width > inv.width


def test_shapes_carry_nets():
    cell = build_cell(_gate(GateType.NOR, ["a", "b"]))
    nets = {s.net for s in cell.shapes}
    assert {"a", "b", "z", VDD, GND} <= nets


def test_unmapped_gate_rejected():
    with pytest.raises(ValueError, match="techmap"):
        build_cell(_gate(GateType.XOR, ["a", "b"]))
    with pytest.raises(ValueError, match="not in the cell library"):
        build_cell(_gate(GateType.NAND, [f"i{k}" for k in range(5)]))
    with pytest.raises(ValueError, match="exactly one"):
        build_cell(Gate("z", GateType.NOT, ("a", "b"), "z"))


def test_gate_strength_asymmetry():
    cell = build_cell(_gate(GateType.NOT, ["a"]))
    n = next(t for t in cell.transistors if t.polarity == "n")
    p = next(t for t in cell.transistors if t.polarity == "p")
    assert n.strength > p.strength  # NMOS mobility advantage


def test_no_overlapping_different_nets_within_cell():
    """No two same-layer shapes of different nets may overlap in a cell."""
    for gt, inputs in [
        (GateType.NOT, ["a"]),
        (GateType.NAND, ["a", "b"]),
        (GateType.NAND, ["a", "b", "c", "d"]),
        (GateType.NOR, ["a", "b", "c"]),
    ]:
        cell = build_cell(_gate(gt, inputs))
        conductors = [s for s in cell.shapes if s.layer.is_conductor]
        for i, s1 in enumerate(conductors):
            for s2 in conductors[i + 1 :]:
                if s1.layer == s2.layer and s1.net != s2.net:
                    assert s1.overlap_area(s2) == 0.0, (gt, s1, s2)
