"""Exhaustive verification of the 4-bit ALU benchmark."""

import pytest

from repro.circuit.alu import alu4, alu_reference
from repro.simulation import LogicSimulator


@pytest.fixture(scope="module")
def alu_sim():
    return LogicSimulator(alu4())


def _vector(a, b, cin, mode, select):
    vec = [(a >> i) & 1 for i in range(4)]
    vec += [(b >> i) & 1 for i in range(4)]
    vec += [cin, mode, select & 1, (select >> 1) & 1]
    return vec


@pytest.mark.parametrize("mode,select", [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (1, 3)])
def test_alu_exhaustive_per_op(alu_sim, mode, select):
    for a in range(16):
        for b in range(16):
            for cin in (0, 1):
                out = alu_sim.outputs(_vector(a, b, cin, mode, select))
                f = sum(bit << i for i, bit in enumerate(out[:4]))
                cout = out[4]
                ref_f, ref_cout = alu_reference(a, b, cin, mode, select)
                assert f == ref_f, (a, b, cin, mode, select)
                assert cout == ref_cout, (a, b, cin, mode, select)


def test_alu_interface():
    ckt = alu4()
    assert len(ckt.primary_inputs) == 12
    assert len(ckt.primary_outputs) == 5
    assert 70 <= ckt.gate_count <= 120


def test_alu_testability():
    """The ALU is highly random-testable (few resistant faults)."""
    from repro.atpg import generate_random_tests
    from repro.simulation import collapse_faults

    ckt = alu4()
    result = generate_random_tests(
        ckt, collapse_faults(ckt), target_coverage=1.0, max_patterns=1024, seed=5
    )
    assert result.coverage > 0.9


def test_alu_layout_clean():
    from repro.layout import build_layout, verify_layout

    design = build_layout(alu4())
    assert verify_layout(design).clean
