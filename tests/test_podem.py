"""Unit tests for PODEM deterministic ATPG."""


from repro.circuit import Circuit, GateType
from repro.simulation import FaultSimulator, StuckAtFault, collapse_faults
from repro.atpg import (
    AtpgStatus,
    PodemAtpg,
    generate_deterministic_tests,
    scoap_controllability,
)


def test_podem_covers_c17(c17_circuit):
    atpg = PodemAtpg(c17_circuit)
    sim = FaultSimulator(c17_circuit)
    for fault in collapse_faults(c17_circuit):
        outcome = atpg.generate(fault)
        assert outcome.status == AtpgStatus.TESTED, str(fault)
        assert sim.detects(fault, outcome.pattern), str(fault)


def test_podem_covers_adder(rca4_circuit):
    atpg = PodemAtpg(rca4_circuit)
    sim = FaultSimulator(rca4_circuit)
    for fault in collapse_faults(rca4_circuit):
        outcome = atpg.generate(fault)
        assert outcome.status == AtpgStatus.TESTED, str(fault)
        assert sim.detects(fault, outcome.pattern), str(fault)


def test_podem_proves_redundancy():
    # m/sa0 in z = OR(a, AND(a, b)) is undetectable.
    ckt = Circuit(name="red")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate(GateType.AND, ["a", "b"], "m")
    ckt.add_gate(GateType.OR, ["a", "m"], "z")
    ckt.add_output("z")
    atpg = PodemAtpg(ckt)
    outcome = atpg.generate(StuckAtFault("m", 0))
    assert outcome.status == AtpgStatus.REDUNDANT


def test_podem_redundancy_claims_sound(c432_circuit):
    """Spot-check: faults PODEM calls redundant resist heavy random testing."""
    import random

    atpg = PodemAtpg(c432_circuit, backtrack_limit=300)
    sim = FaultSimulator(c432_circuit)
    redundant = []
    for fault in collapse_faults(c432_circuit):
        outcome = atpg.generate(fault)
        if outcome.status == AtpgStatus.REDUNDANT:
            redundant.append(fault)
        if len(redundant) >= 5:
            break
    rng = random.Random(77)
    patterns = [
        [rng.randint(0, 1) for _ in range(36)] for _ in range(2000)
    ]
    result = sim.run(patterns, faults=redundant)
    assert not result.first_detection


def test_backtrack_limit_aborts():
    # A wide parity cone makes PODEM work hard; a tiny limit must abort
    # rather than hang (aborted or tested, never an infinite loop).
    from repro.circuit import parity_tree

    ckt = parity_tree(12)
    atpg = PodemAtpg(ckt, backtrack_limit=1)
    outcome = atpg.generate(StuckAtFault("PAR", 0))
    assert outcome.status in (AtpgStatus.TESTED, AtpgStatus.ABORTED)


def test_deterministic_flow_drops_faults(c17_circuit):
    faults = collapse_faults(c17_circuit)
    result = generate_deterministic_tests(c17_circuit, faults)
    assert not result.redundant
    assert not result.aborted
    assert set(result.tested) == set(faults)
    # Fault dropping keeps the vector count below one-per-fault.
    assert len(result.test_set) < len(faults)
    sim = FaultSimulator(c17_circuit)
    check = sim.run(result.test_set.patterns, faults=faults)
    assert check.coverage == 1.0


def test_scoap_controllability_basics(c17_circuit):
    cc = scoap_controllability(c17_circuit)
    for pi in c17_circuit.primary_inputs:
        assert cc[pi] == (1, 1)
    for gate in c17_circuit.gates:
        cc0, cc1 = cc[gate.output]
        assert cc0 >= 2 and cc1 >= 2  # strictly deeper than a PI


def test_scoap_nand_asymmetry():
    ckt = Circuit(name="nand4")
    for name in "abcd":
        ckt.add_input(name)
    ckt.add_gate(GateType.NAND, list("abcd"), "z")
    ckt.add_output("z")
    cc0, cc1 = scoap_controllability(ckt)["z"]
    # Output 0 needs ALL inputs high (expensive); output 1 needs one low.
    assert cc0 > cc1


def test_learned_implications_cut_backtracks_on_c432(c432_circuit):
    # The prover's static learned base hands PODEM contrapositive
    # implications; on the c432 LA/LB/LC bus faults every search closes in
    # one backtrack instead of two, with the saving visible in the
    # learned-conflict counter.  Outcomes (and pattern validity) must be
    # identical with and without the learned base.
    from repro.analysis.prover import static_learning

    learned = static_learning(c432_circuit)
    faults = [
        StuckAtFault(f"{group}{i}", 0)
        for group in ("LA", "LB", "LC")
        for i in range(9)
    ]
    plain = PodemAtpg(c432_circuit, backtrack_limit=300)
    smart = PodemAtpg(c432_circuit, backtrack_limit=300, learned=learned)
    sim = FaultSimulator(c432_circuit)
    total_plain = total_smart = 0
    for fault in faults:
        a = plain.generate(fault)
        b = smart.generate(fault)
        assert a.status == b.status, str(fault)
        assert b.backtracks <= a.backtracks, str(fault)
        total_plain += a.backtracks
        total_smart += b.backtracks
        if b.status == AtpgStatus.TESTED:
            assert sim.detects(fault, b.pattern), str(fault)
    assert total_smart < total_plain
    assert smart.learned_conflicts > 0
    assert plain.learned_conflicts == plain.learned_prunes == 0


def test_learned_implications_preserve_outcomes(c17_circuit):
    from repro.analysis.prover import static_learning

    learned = static_learning(c17_circuit)
    plain = PodemAtpg(c17_circuit)
    smart = PodemAtpg(c17_circuit, learned=learned)
    sim = FaultSimulator(c17_circuit)
    for fault in collapse_faults(c17_circuit):
        a = plain.generate(fault)
        b = smart.generate(fault)
        assert a.status == b.status == AtpgStatus.TESTED, str(fault)
        assert sim.detects(fault, b.pattern), str(fault)


def test_deterministic_flow_reports_learned_stats(c432_circuit):
    from repro.analysis.prover import static_learning

    learned = static_learning(c432_circuit)
    faults = [
        StuckAtFault(f"{group}{i}", 0)
        for group in ("LA", "LB", "LC")
        for i in range(9)
    ]
    without = generate_deterministic_tests(
        c432_circuit, faults, backtrack_limit=300
    )
    with_learned = generate_deterministic_tests(
        c432_circuit, faults, backtrack_limit=300, learned=learned
    )
    assert without.learned_conflicts == without.learned_prunes == 0
    assert with_learned.backtracks <= without.backtracks
    # Fault dropping retires most targets before PODEM sees them, but the
    # searches that do run report their learned-implication effects.
    assert with_learned.learned_conflicts >= 0
    assert set(with_learned.tested) == set(without.tested)
