"""Unit tests for ASCII reporting helpers."""

import pytest

from repro.experiments import format_histogram, format_series_plot, format_table


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [["alpha", 1.5], ["b", 0.000012]],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in lines[3]
    assert "1.200e-05" in text  # tiny floats rendered scientifically


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text


def test_format_histogram():
    text = format_histogram([0, 1, 2], [3, 6], label="weights")
    lines = text.splitlines()
    assert lines[0] == "weights"
    assert len(lines) == 3
    # The peak bin has the longest bar.
    assert lines[2].count("#") > lines[1].count("#")


def test_format_histogram_validation():
    with pytest.raises(ValueError):
        format_histogram([0, 1], [1, 2])


def test_format_series_plot():
    series = {
        "up": [(0.0, 0.0), (1.0, 1.0)],
        "down": [(0.0, 1.0), (1.0, 0.0)],
    }
    text = format_series_plot(series, x_label="x", y_label="y")
    assert "legend" in text
    assert "o=up" in text and "x=down" in text


def test_format_series_plot_log_scale():
    series = {"dl": [(0.1, 1e-4), (0.9, 1e-1)]}
    text = format_series_plot(series, "T", "DL", log_y=True)
    assert "log10" in text


def test_format_series_plot_empty():
    assert format_series_plot({}, "x", "y") == "(no data)"
