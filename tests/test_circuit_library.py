"""Unit tests for the gate library (scalar and packed evaluation)."""

import itertools

import pytest

from repro.circuit.library import (
    ALL_ONES_64,
    GateType,
    evaluate_gate,
    evaluate_gate_packed,
)

_REFERENCE = {
    GateType.AND: lambda vals: int(all(vals)),
    GateType.NAND: lambda vals: int(not all(vals)),
    GateType.OR: lambda vals: int(any(vals)),
    GateType.NOR: lambda vals: int(not any(vals)),
    GateType.XOR: lambda vals: sum(vals) % 2,
    GateType.XNOR: lambda vals: 1 - sum(vals) % 2,
}


@pytest.mark.parametrize("gate_type", list(_REFERENCE))
@pytest.mark.parametrize("n_inputs", [2, 3, 4])
def test_scalar_truth_tables(gate_type, n_inputs):
    for values in itertools.product([0, 1], repeat=n_inputs):
        assert evaluate_gate(gate_type, values) == _REFERENCE[gate_type](values)


def test_not_and_buf():
    assert evaluate_gate(GateType.NOT, [0]) == 1
    assert evaluate_gate(GateType.NOT, [1]) == 0
    assert evaluate_gate(GateType.BUF, [0]) == 0
    assert evaluate_gate(GateType.BUF, [1]) == 1


@pytest.mark.parametrize("gate_type", list(_REFERENCE))
def test_packed_matches_scalar(gate_type):
    # 64 random-ish patterns per word, derived deterministically.
    words = [0x5555_5555_5555_5555, 0x3333_3333_3333_3333, 0x0F0F_0F0F_0F0F_0F0F]
    packed = evaluate_gate_packed(gate_type, words)
    for bit in range(64):
        scalar_inputs = [(w >> bit) & 1 for w in words]
        assert (packed >> bit) & 1 == evaluate_gate(gate_type, scalar_inputs)


def test_packed_stays_in_word():
    packed = evaluate_gate_packed(GateType.NAND, [0, 0])
    assert packed == ALL_ONES_64
    packed = evaluate_gate_packed(GateType.NOT, [ALL_ONES_64])
    assert packed == 0


def test_arity_validation():
    with pytest.raises(ValueError):
        evaluate_gate(GateType.AND, [1])
    with pytest.raises(ValueError):
        evaluate_gate(GateType.NOT, [1, 0])


def test_inverting_property():
    assert GateType.NAND.is_inverting
    assert GateType.NOR.is_inverting
    assert GateType.NOT.is_inverting
    assert GateType.XNOR.is_inverting
    assert not GateType.AND.is_inverting
    assert not GateType.BUF.is_inverting


@pytest.mark.parametrize(
    "gate_type,n,expected",
    [
        (GateType.NOT, 1, 2),
        (GateType.BUF, 1, 4),
        (GateType.NAND, 2, 4),
        (GateType.NAND, 3, 6),
        (GateType.NOR, 2, 4),
        (GateType.AND, 2, 6),
        (GateType.OR, 3, 8),
        (GateType.XOR, 2, 12),
        (GateType.XNOR, 2, 14),
    ],
)
def test_transistor_counts(gate_type, n, expected):
    assert gate_type.transistor_count(n) == expected
