"""Unit tests for the switch-level fault simulator on small circuits."""

import pytest

from repro.atpg import random_patterns
from repro.defects import (
    BridgeFault,
    FloatingNetFault,
    TransistorGateOpen,
    TransistorStuckOn,
    TransistorStuckOpen,
    extract_faults,
)
from repro.layout.cells import GND, VDD
from repro.switchsim import SwitchLevelFaultSimulator, build_coverage


@pytest.fixture(scope="module")
def c17_sim(c17_design):
    patterns = random_patterns(5, 128, seed=4)
    return SwitchLevelFaultSimulator(c17_design, patterns)


def test_good_values_match_logic_sim(c17_design, c17_sim):
    from repro.simulation import LogicSimulator

    logic = LogicSimulator(c17_design.mapped)
    for k in (0, 17, 63, 100):
        vec = c17_sim.patterns[k]
        values = logic.simulate(vec)
        for net, bits in c17_sim.values.items():
            assert bits[k] == values[net], (net, k)


def test_vdd_gnd_bridge_always_detected(c17_sim):
    fault = BridgeFault(weight=1.0, net_a=VDD, net_b=GND)
    det = c17_sim._dispatch(fault)
    assert det.strict == 1
    assert det.iddq == 1


def test_rail_bridge_behaves_like_stuck_at(c17_design, c17_sim):
    """A signal-GND bridge is detected iff/when that net's sa0 is detected."""
    from repro.simulation import FaultSimulator, StuckAtFault

    fault = BridgeFault(weight=1.0, net_a="G22", net_b=GND)
    det = c17_sim._dispatch(fault)
    stuck = FaultSimulator(c17_design.mapped)
    result = stuck.run(c17_sim.patterns, faults=[StuckAtFault("G22", 0)])
    expected = result.first_detection.get(StuckAtFault("G22", 0))
    assert det.strict == expected


def test_bridge_never_excited_undetected(c17_design):
    # Bridge a net with itself-driving pattern: use two nets that are always
    # equal under an all-equal pattern set.
    patterns = [[0, 0, 0, 0, 0]] * 8
    sim = SwitchLevelFaultSimulator(c17_design, patterns)
    fault = BridgeFault(weight=1.0, net_a="G10", net_b="G11")
    det = sim._dispatch(fault)
    # Under constant-zero inputs G10 and G11 are both 1 -> never excited.
    assert det.strict is None
    assert det.iddq is None


def test_potential_not_later_than_strict(c17_design, c17_sim):
    faults = extract_faults(c17_design).faults
    result = c17_sim.run(faults)
    for fault in faults:
        strict = result.detected_voltage(fault)
        potential = result.detected_potential(fault)
        if strict is not None:
            assert potential is not None and potential <= strict


def test_stuck_on_iddq_detected(c17_design, c17_sim):
    device = c17_design.transistors[0].name
    det = c17_sim._dispatch(TransistorStuckOn(weight=1.0, transistor=device))
    # A stuck-on NAND device fights its complement eventually.
    assert det.iddq is not None


def test_stuck_open_needs_two_pattern_sequence(c17_design):
    """A stuck-open is undetectable when the output never has to switch."""
    constant = [[1, 1, 1, 1, 1]] * 10
    sim = SwitchLevelFaultSimulator(c17_design, constant)
    device = next(t.name for t in c17_design.transistors if t.polarity == "p")
    det = sim._dispatch(TransistorStuckOpen(weight=1.0, transistors=(device,)))
    # The output may float but never flips against its retained value.
    assert det.strict is None


def test_gate_open_strict_requires_both_assumptions(c17_design, c17_sim):
    device = c17_design.transistors[0].name
    det = c17_sim._dispatch(TransistorGateOpen(weight=1.0, transistor=device))
    det_on = c17_sim._stuck_on(device)
    if det.strict is not None:
        assert det_on.strict is not None
        assert det.strict >= det_on.strict


def test_floating_input_strict_max_semantics(c17_design, c17_sim):
    gate = c17_design.mapped.gates[0]
    fault = FloatingNetFault(
        weight=1.0,
        net=gate.inputs[0],
        floating_inputs=((gate.name, gate.inputs[0]),),
    )
    det = c17_sim._dispatch(fault)
    # With 128 random vectors the pin-stuck faults of c17 are all found:
    assert det.strict is not None
    assert det.potential is not None
    assert det.potential <= det.strict


def test_floating_po_only_potential(c17_design, c17_sim):
    fault = FloatingNetFault(weight=1.0, net="G23", floats_output_port=True)
    det = c17_sim._dispatch(fault)
    assert det.strict is None
    assert det.potential == 1


def test_full_extraction_coverage_sane(c17_design, c17_sim):
    faults = extract_faults(c17_design)
    result = c17_sim.run(faults.faults)
    cov_pot = build_coverage(faults, result, "voltage")
    cov_strict = build_coverage(faults, result, "voltage-strict")
    cov_iddq = build_coverage(faults, result, "either")
    assert 0 < cov_strict.theta_max <= cov_pot.theta_max <= 1
    assert cov_pot.theta_max <= cov_iddq.theta_max + 1e-9
    # theta(k) monotone non-decreasing
    values = [cov_pot.theta_at(k) for k in range(1, result.n_patterns + 1)]
    assert values == sorted(values)
