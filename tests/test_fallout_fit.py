"""Unit tests for joint (Y, R, theta_max) fallout fitting and test length."""

import math

import numpy as np
import pytest

from repro.core import coverage_at, fit_sousa_with_yield, sousa_defect_level
from repro.core import test_length_for_coverage as required_test_length


def test_fallout_fit_recovers_parameters():
    y, r, tm = 0.75, 1.9, 0.96
    coverages = np.linspace(0.02, 0.999, 60)
    dls = [sousa_defect_level(y, t, r, tm) for t in coverages]
    fit = fit_sousa_with_yield(coverages, dls)
    assert fit.yield_value == pytest.approx(y, abs=0.01)
    assert fit.susceptibility_ratio == pytest.approx(r, abs=0.05)
    assert fit.theta_max == pytest.approx(tm, abs=0.01)
    assert fit.residual < 1e-6


def test_fallout_fit_with_noise():
    rng = np.random.default_rng(17)
    y, r, tm = 0.6, 1.4, 0.93
    coverages = np.linspace(0.05, 0.995, 80)
    dls = np.array([sousa_defect_level(y, t, r, tm) for t in coverages])
    noisy = np.clip(dls * np.exp(rng.normal(0, 0.05, dls.shape)), 1e-9, 0.999)
    fit = fit_sousa_with_yield(coverages, noisy)
    assert fit.yield_value == pytest.approx(y, abs=0.05)
    assert fit.susceptibility_ratio == pytest.approx(r, abs=0.3)
    assert fit.theta_max == pytest.approx(tm, abs=0.03)


def test_fallout_fit_predict():
    y, r, tm = 0.8, 2.2, 0.97
    coverages = np.linspace(0.05, 0.99, 40)
    dls = [sousa_defect_level(y, t, r, tm) for t in coverages]
    fit = fit_sousa_with_yield(coverages, dls)
    assert fit.predict(0.5) == pytest.approx(
        sousa_defect_level(y, 0.5, r, tm), rel=0.05
    )


def test_fallout_fit_validation():
    with pytest.raises(ValueError):
        fit_sousa_with_yield([0.5, 0.6], [0.1, 0.05])


def test_test_length_roundtrip():
    s = math.e**2.2
    for target in (0.5, 0.9, 0.99):
        k = required_test_length(target, s)
        assert coverage_at(k, s) == pytest.approx(target, rel=1e-9)


def test_test_length_monotone():
    s = math.e**3
    lengths = [required_test_length(t, s) for t in (0.5, 0.8, 0.95, 0.99)]
    assert lengths == sorted(lengths)
    assert required_test_length(0.0, s) == 1.0


def test_test_length_validation():
    with pytest.raises(ValueError):
        required_test_length(1.0, math.e)
    with pytest.raises(ValueError):
        required_test_length(0.5, 1.0)
