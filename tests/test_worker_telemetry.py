"""Cross-process telemetry: worker counters and spans merge exactly once.

The acceptance property for the worker-telemetry envelope is equality with
the serial engine: a parallel run's merged ``fault_sim.*`` counters must be
*identical* to a serial run of the same job — patterns applied counted once
for the run (run-scoped), faults/detections summed across chunks — in the
clean path, under chaos-injected retries (no double-merge), and through the
serial-salvage path (no double-count).
"""

import random

import pytest

from repro import obs
from repro.circuit import c17, c432_like
from repro.obs.export import chrome_trace
from repro.resilience import ChaosPlan, ChaosRule, chaos
from repro.simulation import (
    FaultSimulator,
    ParallelFaultSimulator,
    collapse_faults,
)
from repro.simulation.parallel import RUN_SCOPED_COUNTERS

WORKERS = 2


@pytest.fixture(autouse=True)
def _clean_state():
    chaos.uninstall()
    obs.disable()
    obs.disable_events()
    yield
    chaos.uninstall()
    obs.disable()
    obs.disable_events()


def _patterns(circuit, n, seed=7):
    rng = random.Random(seed)
    n_pi = len(circuit.primary_inputs)
    return [[rng.randint(0, 1) for _ in range(n_pi)] for _ in range(n)]


def _fault_sim_counters(registry):
    return {
        name: value
        for name, value in registry.counter_values().items()
        if name.startswith("fault_sim.")
        and not name.startswith("fault_sim.pool_failure")
    }


def _serial_counters(circuit, patterns, faults, width=256):
    obs.enable()
    FaultSimulator(circuit, width=width).run(patterns, faults=faults)
    counters = _fault_sim_counters(obs.registry())
    obs.disable()
    return counters


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


def test_merged_parallel_counters_equal_serial_run(c432_circuit):
    patterns = _patterns(c432_circuit, 64)
    faults = collapse_faults(c432_circuit)
    serial = _serial_counters(c432_circuit, patterns, faults)

    obs.enable()
    pool = ParallelFaultSimulator(
        c432_circuit, width=256, max_workers=WORKERS, crossover=0
    )
    pool.run(patterns, faults=faults)
    merged = _fault_sim_counters(obs.registry())

    assert pool.last_engine == "parallel"
    assert merged == serial
    # The run-scoped counter equals the pattern count, not chunks x patterns.
    assert merged["fault_sim.patterns_applied"] == len(patterns)


def test_worker_spans_are_tagged_and_attached_under_parent(c432_circuit):
    patterns = _patterns(c432_circuit, 64)
    obs.enable()
    pool = ParallelFaultSimulator(
        c432_circuit, width=256, max_workers=WORKERS, crossover=0
    )
    pool.run(patterns)
    roots = obs.collector().roots

    parallel_roots = [r for r in roots if r.name == "fault_sim.parallel"]
    assert len(parallel_roots) == 1
    worker_spans = [
        s
        for s in _walk(parallel_roots[0])
        if "worker_pid" in s.attributes
    ]
    assert {s.attributes["chunk_id"] for s in worker_spans} == set(
        range(WORKERS)
    )
    for span in worker_spans:
        assert span.name == "fault_sim.run"
        assert isinstance(span.attributes["worker_pid"], int)
        assert span.wall_time > 0


def test_retried_chunks_merge_exactly_once(c17_circuit):
    patterns = _patterns(c17_circuit, 48, seed=3)
    faults = collapse_faults(c17_circuit)
    serial = _serial_counters(c17_circuit, patterns, faults, width=64)

    plan = ChaosPlan(
        rules=(
            ChaosRule(
                point="parallel.chunk", kind="exception", keys={0}, attempts={0}
            ),
        )
    )
    obs.enable()
    pool = ParallelFaultSimulator(
        c17_circuit, width=64, max_workers=WORKERS, crossover=0
    )
    pool._sleep = lambda s: None
    with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
        pool.run(patterns, faults=faults)
    merged = _fault_sim_counters(obs.registry())
    assert pool.last_chunk_retries == 1
    assert merged == serial


def test_serial_salvage_counts_chunks_exactly_once(c17_circuit):
    patterns = _patterns(c17_circuit, 48, seed=5)
    faults = collapse_faults(c17_circuit)
    serial = _serial_counters(c17_circuit, patterns, faults, width=64)

    # Chunk 0 fails on every pool attempt -> recovered by serial salvage.
    plan = ChaosPlan(
        rules=(ChaosRule(point="parallel.chunk", kind="exception", keys={0}),)
    )
    obs.enable()
    pool = ParallelFaultSimulator(
        c17_circuit, width=64, max_workers=WORKERS, crossover=0
    )
    pool._sleep = lambda s: None
    with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
        pool.run(patterns, faults=faults)
    merged = _fault_sim_counters(obs.registry())
    assert pool.last_chunks_serial == 1
    assert merged == serial


def test_chunk_progress_and_retry_events_are_published(c17_circuit):
    patterns = _patterns(c17_circuit, 48, seed=9)
    plan = ChaosPlan(
        rules=(
            ChaosRule(
                point="parallel.chunk", kind="exception", keys={0}, attempts={0}
            ),
        )
    )
    obs.enable()
    bus = obs.enable_events()
    sink = obs.ListSink(bus)
    pool = ParallelFaultSimulator(
        c17_circuit, width=64, max_workers=WORKERS, crossover=0
    )
    pool._sleep = lambda s: None
    with chaos.active(plan), pytest.warns(RuntimeWarning, match="degraded"):
        pool.run(patterns)

    progress = [
        e
        for e in sink.events
        if e.type == "ProgressEvent" and e.stage == "fault_sim.parallel"
    ]
    assert [e.completed for e in progress] == list(range(1, WORKERS + 1))
    assert all(e.total == WORKERS for e in progress)
    assert all(e.data["latency_s"] >= 0 for e in progress)
    retries = [e for e in sink.events if e.type == "RetryEvent"]
    assert len(retries) == 1
    assert retries[0].point == "parallel.chunk"
    assert retries[0].key == 0
    assert retries[0].attempt == 1
    assert "ChaosInjectedError" in retries[0].reason


def test_run_scoped_counter_set_names_patterns_applied():
    assert "fault_sim.patterns_applied" in RUN_SCOPED_COUNTERS


def test_render_profile_with_worker_spans_is_stable(c432_circuit):
    patterns = _patterns(c432_circuit, 64)
    obs.enable()
    pool = ParallelFaultSimulator(
        c432_circuit, width=256, max_workers=WORKERS, crossover=0
    )
    pool.run(patterns)
    collector, registry = obs.collector(), obs.registry()

    report_a = obs.render_profile(
        collector, registry, engine=pool.engine_info()
    )
    report_b = obs.render_profile(
        collector, registry, engine=pool.engine_info()
    )
    assert report_a == report_b  # stable across repeated rendering
    assert "fault_sim.parallel" in report_a
    assert "worker_pid=" in report_a
    assert "engine:" in report_a
    assert "workers: 2" in report_a
    tree = obs.render_span_tree(collector)
    assert "fault_sim.run" in tree


def test_obs_enabled_mid_run_does_not_crash(c432_circuit):
    # First run with obs off (workers collect nothing), then enabled:
    # both runs must complete and the second must carry telemetry.
    patterns = _patterns(c432_circuit, 64)
    pool = ParallelFaultSimulator(
        c432_circuit, width=256, max_workers=WORKERS, crossover=0
    )
    result_off = pool.run(patterns)
    obs.enable()
    result_on = pool.run(patterns)
    assert result_off.first_detection == result_on.first_detection
    assert _fault_sim_counters(obs.registry())["fault_sim.faults_simulated"]


def test_chrome_trace_has_one_lane_per_process(c432_circuit):
    patterns = _patterns(c432_circuit, 64)
    obs.enable()
    pool = ParallelFaultSimulator(
        c432_circuit, width=256, max_workers=WORKERS, crossover=0
    )
    pool.run(patterns)
    trace = chrome_trace(obs.collector())
    lanes = {e["pid"] for e in trace["traceEvents"]}
    assert len(lanes) >= WORKERS + 1  # main + one per worker
    names = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["name"] == "process_name"
    }
    assert "pipeline (main)" in names
    assert sum(1 for n in names if n.startswith("fault-sim worker")) >= WORKERS
