"""Campaign supervisor behaviour: cache serving, retries, leases, resume.

Inline mode (``max_workers=0``) keeps most scenarios deterministic and
fast; the pool-mode tests at the bottom exercise the real lease/heartbeat
machinery with small timeouts.
"""

import pytest

from repro import obs
from repro.campaign import (
    CampaignSpec,
    CampaignSupervisor,
    Journal,
    ResultStore,
    result_record,
)
from repro.campaign.state import DONE, QUARANTINED
from repro.experiments import ExperimentConfig, run_experiment
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan, ChaosRule
from repro.resilience.retry import RetryPolicy

#: Near-zero backoff so retry scenarios finish in milliseconds.
FAST_RETRY = RetryPolicy(
    max_attempts=2, backoff_base=0.001, backoff_factor=1.0, backoff_max=0.001
)


def _spec(seeds=(1, 2)) -> CampaignSpec:
    return CampaignSpec(
        name="t",
        base=ExperimentConfig(benchmark="c17", max_random_patterns=16),
        grid={"seed": tuple(seeds)},
    )


def _inline(tmp_path, **kwargs) -> CampaignSupervisor:
    kwargs.setdefault("max_workers", 0)
    kwargs.setdefault("retry", FAST_RETRY)
    return CampaignSupervisor(tmp_path / "camp", **kwargs)


def _journal_records(tmp_path, kind=None) -> list[dict]:
    records, _ = Journal(tmp_path / "camp").replay()
    if kind is None:
        return records
    return [r for r in records if r.get("type") == kind]


@pytest.fixture()
def metrics():
    _, registry = obs.enable()
    yield registry
    obs.disable()


# ---------------------------------------------------------------------------
# inline happy path + bit-identical results
# ---------------------------------------------------------------------------
def test_inline_run_computes_all_jobs(tmp_path):
    sup = _inline(tmp_path)
    new = sup.submit(_spec())
    assert len(new) == 2
    report = sup.run()
    assert report.jobs_computed == 2
    assert report.jobs_cached == 0
    assert report.n_done == 2
    assert report.finished
    assert not report.stopped
    # Journal narrative: campaign, two lease+done pairs, end.
    assert len(_journal_records(tmp_path, "lease")) == 2
    assert len(_journal_records(tmp_path, "done")) == 2
    assert len(_journal_records(tmp_path, "end")) == 1


def test_stored_results_bit_identical_to_direct_run(tmp_path):
    sup = _inline(tmp_path)
    spec = _spec(seeds=(3,))
    (job,) = spec.expand()
    sup.submit(spec)
    sup.run()
    stored = ResultStore(tmp_path / "camp" / "results").load(job.job_id)
    direct = result_record(run_experiment(job.config))
    assert stored == direct


def test_manifests_written_per_job(tmp_path):
    from repro.obs.manifest import read_manifests

    sup = _inline(tmp_path)
    sup.submit(_spec())
    sup.run()
    manifests = read_manifests(str(tmp_path / "camp" / "manifests.jsonl"))
    assert len(manifests) == 2
    assert all(m.results["campaign"] == "t" for m in manifests)
    assert {m.results["job_id"] for m in manifests} == {
        j.job_id for j in _spec().expand()
    }


# ---------------------------------------------------------------------------
# cache serving: zero recomputation on re-submission
# ---------------------------------------------------------------------------
def test_resubmission_serves_from_cache_with_zero_recompute(tmp_path, metrics):
    first = _inline(tmp_path)
    first.submit(_spec())
    first.run()
    leases_before = len(_journal_records(tmp_path, "lease"))
    hits_before = metrics.counter("pipeline.cache_hit").value

    second = _inline(tmp_path)
    second.submit(_spec())
    report = second.run()

    assert report.jobs_cached == 0  # already DONE in the journal: no work
    assert report.jobs_computed == 0
    # The same sweep in a *fresh* campaign directory sharing the result
    # store is the real cache test: every job serves from cache.
    third = CampaignSupervisor(
        tmp_path / "camp2",
        max_workers=0,
        retry=FAST_RETRY,
        results_dir=tmp_path / "camp" / "results",
    )
    third.submit(_spec())
    report3 = third.run()
    assert report3.jobs_cached == 2
    assert report3.jobs_computed == 0
    assert report3.finished
    # Zero recomputation, observable three ways: the cache-hit counter rose
    # once per job, no new lease was journalled anywhere, and the second
    # campaign's journal holds only cached completions.
    assert metrics.counter("pipeline.cache_hit").value == hits_before + 2
    assert len(_journal_records(tmp_path, "lease")) == leases_before
    records, _ = Journal(tmp_path / "camp2").replay()
    assert [r["type"] for r in records if r["type"] != "campaign"] == [
        "done",
        "done",
        "end",
    ]
    assert all(r["cached"] for r in records if r["type"] == "done")


def test_cached_results_identical_to_computed(tmp_path):
    spec = _spec()
    first = _inline(tmp_path)
    first.submit(spec)
    first.run()
    store = ResultStore(tmp_path / "camp" / "results")
    baseline = {j: store.load(j) for j in store.job_ids()}

    second = CampaignSupervisor(
        tmp_path / "other",
        max_workers=0,
        retry=FAST_RETRY,
        results_dir=tmp_path / "camp" / "results",
    )
    second.submit(spec)
    second.run()
    assert {j: store.load(j) for j in store.job_ids()} == baseline


def test_corrupt_cached_result_recomputes(tmp_path):
    sup = _inline(tmp_path)
    spec = _spec(seeds=(5,))
    (job,) = spec.expand()
    sup.submit(spec)
    sup.run()
    store = ResultStore(tmp_path / "camp" / "results")
    path = store.path_for(job.job_id)
    path.write_text(path.read_text().replace('"seed": 5', '"seed": 6'))

    fresh = CampaignSupervisor(
        tmp_path / "fresh",
        max_workers=0,
        retry=FAST_RETRY,
        results_dir=store.root,
    )
    fresh.submit(spec)
    with pytest.warns(RuntimeWarning, match="corrupt result"):
        report = fresh.run()
    assert report.jobs_computed == 1
    assert report.jobs_cached == 0
    assert store.load(job.job_id) == result_record(run_experiment(job.config))


# ---------------------------------------------------------------------------
# failure classification: retry vs quarantine
# ---------------------------------------------------------------------------
def test_transient_failure_retries_then_succeeds(tmp_path):
    plan = ChaosPlan(
        rules=(
            ChaosRule(point="campaign.job", kind="exception", attempts={0}),
        )
    )
    sup = _inline(tmp_path)
    sup.submit(_spec(seeds=(1,)))
    with chaos.active(plan):
        with pytest.warns(RuntimeWarning, match="retrying"):
            report = sup.run()
    assert report.jobs_retried == 1
    assert report.jobs_quarantined == 0
    assert report.n_done == 1
    assert report.finished
    fails = _journal_records(tmp_path, "fail")
    assert [f["kind"] for f in fails] == ["transient"]


def test_fatal_failure_quarantines_immediately(tmp_path):
    plan = ChaosPlan(
        rules=(ChaosRule(point="campaign.job", kind="fatal"),)
    )
    sup = _inline(tmp_path)
    sup.submit(_spec(seeds=(1,)))
    with chaos.active(plan):
        with pytest.warns(RuntimeWarning, match="quarantined"):
            report = sup.run()
    assert report.jobs_quarantined == 1
    assert report.jobs_retried == 0
    assert report.counts.get(QUARANTINED) == 1
    assert len(_journal_records(tmp_path, "lease")) == 1  # no retry burned
    assert ResultStore(tmp_path / "camp" / "results").job_ids() == []


def test_retry_budget_exhaustion_quarantines(tmp_path):
    plan = ChaosPlan(
        rules=(ChaosRule(point="campaign.job", kind="exception"),)
    )
    sup = _inline(tmp_path)
    sup.submit(_spec(seeds=(1,)))
    with chaos.active(plan):
        with pytest.warns(RuntimeWarning):
            report = sup.run()
    assert report.jobs_quarantined == 1
    assert len(_journal_records(tmp_path, "lease")) == 2  # full budget spent
    quarantine = _journal_records(tmp_path, "quarantine")
    assert "budget spent" in quarantine[0]["reason"]


def test_quarantine_leaves_other_jobs_unharmed(tmp_path):
    spec = _spec(seeds=(1, 2))
    bad = spec.expand()[0]
    plan = ChaosPlan(
        rules=(
            ChaosRule(point="campaign.job", kind="fatal", keys={bad.job_id}),
        )
    )
    sup = _inline(tmp_path)
    sup.submit(spec)
    with chaos.active(plan):
        with pytest.warns(RuntimeWarning, match="quarantined"):
            report = sup.run()
    assert report.jobs_quarantined == 1
    assert report.n_done == 1
    assert report.counts[DONE] == 1
    assert report.counts[QUARANTINED] == 1


# ---------------------------------------------------------------------------
# stop / resume
# ---------------------------------------------------------------------------
def test_request_stop_journals_clean_stop_and_resume_completes(tmp_path):
    sup = _inline(tmp_path)
    sup.submit(_spec())
    sup.request_stop("unit-test")
    report = sup.run()
    assert report.stopped
    assert report.stop_reason == "unit-test"
    assert not report.finished
    assert report.n_done == 0
    stops = _journal_records(tmp_path, "stop")
    # Records carry a wall-clock ``ts`` for the trace/report observers;
    # replay ignores it (unknown keys are forward-compatible).
    assert [
        {k: v for k, v in stop.items() if k != "ts"} for stop in stops
    ] == [{"type": "stop", "reason": "unit-test"}]

    resumed = _inline(tmp_path)
    report2 = resumed.run()  # no re-submission needed: jobs are journalled
    assert report2.n_done == 2
    assert report2.finished


def test_dead_lease_reclaimed_on_restart(tmp_path):
    sup = _inline(tmp_path)
    spec = _spec(seeds=(1,))
    (job,) = spec.expand()
    sup.submit(spec)
    # Simulate kill -9 mid-flight: a lease was journalled, no outcome.
    sup._append(
        {
            "type": "lease",
            "job": job.job_id,
            "lease_id": f"{job.job_id}.a0",
            "attempt": 0,
        }
    )
    sup.journal.close()

    resumed = _inline(tmp_path)
    report = resumed.run()
    reclaims = _journal_records(tmp_path, "reclaim")
    assert len(reclaims) == 1
    assert "restart" in reclaims[0]["reason"]
    assert report.n_done == 1
    assert report.finished


def test_resubmission_strengthens_budget_without_resetting_progress(tmp_path):
    sup = _inline(tmp_path)
    spec = _spec(seeds=(1,))
    (job,) = spec.expand()
    sup.submit(spec)
    sup.run()

    again = _inline(tmp_path)
    stronger = CampaignSpec(
        name="t",
        base=ExperimentConfig(benchmark="c17", max_random_patterns=16),
        grid={"seed": (1,)},
        max_attempts=5,
    )
    assert again.submit(stronger) == []  # no *new* jobs
    state_job = again.state.jobs[job.job_id]
    assert state_job.max_attempts == 5
    assert state_job.status == DONE  # progress survived the re-registration


# ---------------------------------------------------------------------------
# pool mode: real leases, heartbeats, reclaim
# ---------------------------------------------------------------------------
def test_pool_run_matches_inline_results(tmp_path):
    spec = _spec(seeds=(7,))
    (job,) = spec.expand()
    sup = CampaignSupervisor(
        tmp_path / "camp", max_workers=2, retry=FAST_RETRY
    )
    sup.submit(spec)
    report = sup.run()
    assert report.jobs_computed == 1
    assert report.finished
    stored = ResultStore(tmp_path / "camp" / "results").load(job.job_id)
    assert stored == result_record(run_experiment(job.config))
    done = _journal_records(tmp_path, "done")
    assert done[0]["worker_pid"] is not None


def test_forced_lease_expiry_reclaims_and_retries(tmp_path):
    plan = ChaosPlan(
        rules=(
            ChaosRule(point="campaign.lease", kind="expire", attempts={0}),
        )
    )
    sup = CampaignSupervisor(
        tmp_path / "camp",
        max_workers=1,
        lease_timeout=60.0,
        retry=FAST_RETRY,
        poll_interval=0.02,
    )
    sup.submit(_spec(seeds=(1,)))
    with chaos.active(plan):
        with pytest.warns(RuntimeWarning, match="reclaimed"):
            report = sup.run()
    assert report.leases_reclaimed == 1
    assert report.jobs_retried == 1
    assert report.n_done == 1
    assert report.finished
    reclaims = _journal_records(tmp_path, "reclaim")
    assert len(reclaims) == 1
    assert "expired" in reclaims[0]["reason"]


def test_hung_worker_lease_expires_and_job_recovers(tmp_path):
    # The chaos sleep fires *before* the worker's first heartbeat, so the
    # lease shows no progress at all — the worst-case hang.
    plan = ChaosPlan(
        rules=(
            ChaosRule(
                point="campaign.job",
                kind="sleep",
                attempts={0},
                sleep_s=30.0,
            ),
        )
    )
    sup = CampaignSupervisor(
        tmp_path / "camp",
        max_workers=1,
        lease_timeout=0.5,
        retry=FAST_RETRY,
        poll_interval=0.02,
    )
    sup.submit(_spec(seeds=(1,)))
    with chaos.active(plan):
        with pytest.warns(RuntimeWarning, match="hung lease"):
            report = sup.run()
    assert report.leases_reclaimed == 1
    assert report.n_done == 1
    assert report.finished
    # The reclaim is journalled before the retry's lease.
    kinds = [
        r["type"]
        for r in _journal_records(tmp_path)
        if r["type"] in ("lease", "reclaim", "done")
    ]
    assert kinds == ["lease", "reclaim", "lease", "done"]


def test_crashed_worker_is_retried(tmp_path):
    plan = ChaosPlan(
        rules=(ChaosRule(point="campaign.job", kind="crash", attempts={0}),)
    )
    sup = CampaignSupervisor(
        tmp_path / "camp",
        max_workers=1,
        retry=FAST_RETRY,
        poll_interval=0.02,
    )
    sup.submit(_spec(seeds=(1,)))
    with chaos.active(plan):
        with pytest.warns(RuntimeWarning):
            report = sup.run()
    assert report.n_done == 1
    assert report.finished
    fails = _journal_records(tmp_path, "fail")
    assert len(fails) == 1
    assert fails[0]["kind"] == "transient"  # a dead pool is retryable
