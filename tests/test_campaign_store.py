"""Unit tests: content-addressed result store, prune paths, checkpoint gc."""

import json

import pytest

from repro.campaign import (
    ResultCorruptError,
    ResultStore,
    record_sha256,
    result_record,
)
from repro.experiments import ExperimentConfig, run_experiment
from repro.resilience.checkpoint import CheckpointStore


def _record(i: int = 0) -> dict:
    return {"benchmark": "c17", "seed": i, "series": [[1, 0.5, 0.4, 0.1, 0.01]]}


# ---------------------------------------------------------------------------
# save / load
# ---------------------------------------------------------------------------
def test_save_load_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    sha = store.save("job0", _record())
    assert sha == record_sha256(_record())
    assert store.has("job0")
    assert store.load("job0") == _record()
    assert store.job_ids() == ["job0"]


def test_load_missing_returns_none(tmp_path):
    assert ResultStore(tmp_path).load("nope") is None


def test_corrupt_result_tolerant_mode_warns_and_recomputes(tmp_path):
    store = ResultStore(tmp_path)
    store.save("job0", _record())
    path = store.path_for("job0")
    text = path.read_text()
    path.write_text(text.replace('"seed": 0', '"seed": 1'))
    with pytest.warns(RuntimeWarning, match="corrupt result"):
        assert store.load("job0") is None


def test_corrupt_result_strict_mode_raises(tmp_path):
    store = ResultStore(tmp_path, strict=True)
    store.save("job0", _record())
    store.path_for("job0").write_text("{not json")
    with pytest.raises(ResultCorruptError):
        store.load("job0")


def test_truncated_result_detected(tmp_path):
    store = ResultStore(tmp_path, strict=True)
    store.save("job0", _record())
    path = store.path_for("job0")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(ResultCorruptError):
        store.load("job0")


def test_wrong_job_id_detected(tmp_path):
    store = ResultStore(tmp_path, strict=True)
    store.save("job0", _record())
    envelope = json.loads(store.path_for("job0").read_text())
    target = tmp_path / "job1"
    target.mkdir()
    (target / "result.json").write_text(json.dumps(envelope))
    with pytest.raises(ResultCorruptError, match="names job"):
        store.load("job1")


# ---------------------------------------------------------------------------
# determinism of result_record
# ---------------------------------------------------------------------------
def test_result_record_is_deterministic_and_json_safe():
    config = ExperimentConfig(benchmark="c17", max_random_patterns=16)
    result = run_experiment(config)
    a = result_record(result)
    b = result_record(run_experiment(config))
    assert a == b
    assert record_sha256(a) == record_sha256(b)
    json.dumps(a)  # must be JSON-able as-is
    assert "wall" not in json.dumps(a)  # no wall-clock facts


# ---------------------------------------------------------------------------
# prune (ResultStore + CheckpointStore)
# ---------------------------------------------------------------------------
def test_result_store_prune_removes_only_unkept(tmp_path):
    store = ResultStore(tmp_path)
    for i in range(3):
        store.save(f"job{i}", _record(i))
    (tmp_path / "unrelated").mkdir()  # no result.json: untouchable
    removed, reclaimed = store.prune(keep_hashes={"job1"})
    assert removed == 2
    assert reclaimed > 0
    assert store.job_ids() == ["job1"]
    assert (tmp_path / "unrelated").exists()


def test_checkpoint_store_prune(tmp_path):
    configs = [
        ExperimentConfig(benchmark="c17", seed=s, max_random_patterns=16)
        for s in (1, 2)
    ]
    stores = [CheckpointStore(tmp_path, c) for c in configs]
    for store in stores:
        store.save("stage_a", {"x": 1})
    (tmp_path / "not_a_store").mkdir()  # no config.json / *.ckpt: kept
    keep = {stores[0].config_hash}
    removed, reclaimed = CheckpointStore.prune(tmp_path, keep)
    assert removed == 1
    assert reclaimed > 0
    assert (tmp_path / stores[0].config_hash).exists()
    assert not (tmp_path / stores[1].config_hash).exists()
    assert (tmp_path / "not_a_store").exists()


def test_checkpoint_prune_missing_root_is_noop(tmp_path):
    assert CheckpointStore.prune(tmp_path / "ghost", set()) == (0, 0)
