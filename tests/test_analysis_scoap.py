"""Unit tests for SCOAP controllability/observability measures."""

from repro.analysis import UNOBSERVABLE, compute_scoap
from repro.circuit import Circuit, GateType, c17
from repro.circuit.iscas import BENCHMARKS


# Hand-computed SCOAP values for c17 (Goldstein's rules, PI cost 1):
#   G10 = NAND(G1, G3), G11 = NAND(G3, G6), G16 = NAND(G2, G11),
#   G19 = NAND(G11, G7), G22 = NAND(G10, G16) [PO], G23 = NAND(G16, G19) [PO]
C17_CC = {
    "G1": (1, 1), "G2": (1, 1), "G3": (1, 1), "G6": (1, 1), "G7": (1, 1),
    "G10": (3, 2), "G11": (3, 2), "G16": (4, 2), "G19": (4, 2),
    "G22": (5, 4), "G23": (5, 5),
}
C17_CO = {
    "G22": 0, "G23": 0,
    "G10": 3, "G16": 3, "G19": 3,
    "G11": 5, "G1": 5, "G3": 5,
    "G2": 6, "G7": 6, "G6": 7,
}


def test_c17_controllability_exact():
    measures = compute_scoap(c17())
    for net, (cc0, cc1) in C17_CC.items():
        assert measures.controllability(net) == (cc0, cc1), net


def test_c17_observability_exact():
    measures = compute_scoap(c17())
    for net, co in C17_CO.items():
        assert measures.co[net] == co, net


def test_c17_pin_observability():
    measures = compute_scoap(c17())
    # G19 = NAND(G11, G7) with CO(G19) = 3: pin costs are
    # CO + CC1(other) + 1 for a NAND.
    assert measures.co_pin[("G19", 0)] == 3 + 1 + 1  # side input G7, CC1=1
    assert measures.co_pin[("G19", 1)] == 3 + 2 + 1  # side input G11, CC1=2
    # Stem CO is the min over reader pins: G3 feeds G10.pin1 (cost 5)
    # and G11.pin0 (cost 7).
    assert measures.co["G3"] == min(
        measures.co_pin[("G10", 1)], measures.co_pin[("G11", 0)]
    )


def test_primary_inputs_cost_one_everywhere():
    for name in ("c17", "alu4", "rca8"):
        circuit = BENCHMARKS[name]()
        measures = compute_scoap(circuit)
        for pi in circuit.primary_inputs:
            assert measures.controllability(pi) == (1, 1)


def test_gate_outputs_cost_more_than_one():
    circuit = BENCHMARKS["c432_like"]()
    measures = compute_scoap(circuit)
    for gate in circuit.gates:
        cc0, cc1 = measures.controllability(gate.output)
        assert cc0 >= 2 and cc1 >= 2, gate.output


def test_xor_controllability_exact_for_three_inputs():
    # XOR3(a, b, c): odd parity needs exactly one (or all three) inputs at 1.
    # With unit PI costs: CC1 = 3x cost-1 picks + 1 = 4, CC0 = 0 picks + 1.
    ckt = Circuit(name="xor3")
    for net in ("a", "b", "c"):
        ckt.add_input(net)
    ckt.add_gate(GateType.XOR, ["a", "b", "c"], "y")
    ckt.add_output("y")
    measures = compute_scoap(ckt)
    # CC0: even parity, cheapest = all zeros, cost 3 -> 3+1 = 4.
    # CC1: odd parity, cheapest = one 1 and two 0s, cost 3 -> 3+1 = 4.
    assert measures.controllability("y") == (4, 4)


def test_unobservable_net_gets_sentinel():
    ckt = Circuit(name="dangling")
    ckt.add_input("a")
    ckt.add_gate(GateType.NOT, ["a"], "used")
    ckt.add_gate(GateType.NOT, ["a"], "dead")
    ckt.add_output("used")
    measures = compute_scoap(ckt)
    assert measures.co["dead"] == UNOBSERVABLE
    assert measures.co["used"] == 0


def test_observability_zero_exactly_at_primary_outputs():
    circuit = BENCHMARKS["alu4"]()
    measures = compute_scoap(circuit)
    po_set = set(circuit.primary_outputs)
    for net in measures.co:
        if net in po_set:
            assert measures.co[net] == 0
        else:
            assert measures.co[net] > 0


def test_hardest_nets_ranked_descending():
    measures = compute_scoap(BENCHMARKS["mul4"]())
    ranked = measures.hardest_nets(10)
    scores = [score for _, score in ranked]
    assert scores == sorted(scores, reverse=True)
    assert all(measures.testability(net) == s for net, s in ranked)


def test_to_dict_round_trip():
    measures = compute_scoap(c17())
    table = measures.to_dict()
    assert table["G10"] == {"cc0": 3, "cc1": 2, "co": 3}
    assert set(table) == set(measures.cc0)
