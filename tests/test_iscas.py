"""Unit tests for the embedded benchmark circuits and generators."""

import pytest

from repro.circuit import (
    BENCHMARKS,
    GateType,
    c17,
    circuit_depth,
    decoder,
    load_benchmark,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.simulation import LogicSimulator


def test_c17_interface():
    ckt = c17()
    assert len(ckt.primary_inputs) == 5
    assert len(ckt.primary_outputs) == 2
    assert ckt.gate_count == 6


def test_c432_like_interface(c432_circuit):
    # Matches the published c432 interface: 36 PIs, 7 POs, ~160+ gates.
    assert len(c432_circuit.primary_inputs) == 36
    assert len(c432_circuit.primary_outputs) == 7
    assert 150 <= c432_circuit.gate_count <= 260
    assert circuit_depth(c432_circuit) >= 15
    kinds = {g.gate_type for g in c432_circuit.gates}
    assert GateType.XOR in kinds  # the benchmark's XOR front layer


def test_c432_like_priority_function(c432_circuit):
    sim = LogicSimulator(c432_circuit)

    def run(a=(), b=(), c=(), e=range(9)):
        vec = [0] * 36
        for i in a:
            vec[i] = 1
        for i in b:
            vec[9 + i] = 1
        for i in c:
            vec[18 + i] = 1
        for i in e:
            vec[27 + i] = 1
        out = sim.outputs(vec)
        pos = c432_circuit.primary_outputs
        return dict(zip(pos, out))

    # No requests: nothing granted.
    quiet = run()
    assert quiet["PA"] == 0 and quiet["PB"] == 0 and quiet["PC"] == 0

    # A request on group A wins regardless of B/C.
    res = run(a=[3], b=[1], c=[7])
    assert res["PA"] == 1 and res["PB"] == 0 and res["PC"] == 0
    address = res["AD0"] + 2 * res["AD1"] + 4 * res["AD2"] + 8 * res["AD3"]
    assert address == 3

    # B wins when A is silent.
    res = run(b=[5], c=[2])
    assert res["PA"] == 0 and res["PB"] == 1 and res["PC"] == 0
    address = res["AD0"] + 2 * res["AD1"] + 4 * res["AD2"] + 8 * res["AD3"]
    assert address == 5

    # Disabled channels are masked.
    res = run(a=[4], e=[i for i in range(9) if i != 4])
    assert res["PA"] == 0

    # Lowest requesting channel of the winning group is encoded.
    res = run(c=[2, 6])
    assert res["PC"] == 1
    address = res["AD0"] + 2 * res["AD1"] + 4 * res["AD2"] + 8 * res["AD3"]
    assert address == 2


def test_ripple_carry_adder_exhaustive_small():
    ckt = ripple_carry_adder(3)
    sim = LogicSimulator(ckt)
    for a in range(8):
        for b in range(8):
            for cin in (0, 1):
                vec = [(a >> i) & 1 for i in range(3)]
                vec += [(b >> i) & 1 for i in range(3)]
                vec += [cin]
                out = sim.outputs(vec)
                total = sum(bit << i for i, bit in enumerate(out[:3]))
                total += out[3] << 3
                assert total == a + b + cin


def test_parity_tree():
    ckt = parity_tree(6)
    sim = LogicSimulator(ckt)
    for code in range(64):
        vec = [(code >> i) & 1 for i in range(6)]
        assert sim.outputs(vec) == [bin(code).count("1") % 2]


def test_mux_tree():
    ckt = mux_tree(2)
    sim = LogicSimulator(ckt)
    for sel in range(4):
        for data in range(16):
            vec = [(data >> i) & 1 for i in range(4)]
            vec += [(sel >> i) & 1 for i in range(2)]
            assert sim.outputs(vec) == [(data >> sel) & 1]


def test_decoder():
    ckt = decoder(3)
    sim = LogicSimulator(ckt)
    for code in range(8):
        vec = [(code >> i) & 1 for i in range(3)]
        out = sim.outputs(vec)
        assert sum(out) == 1
        assert out[code] == 1


def test_generator_argument_validation():
    with pytest.raises(ValueError):
        ripple_carry_adder(0)
    with pytest.raises(ValueError):
        parity_tree(1)
    with pytest.raises(ValueError):
        mux_tree(0)
    with pytest.raises(ValueError):
        decoder(0)


def test_benchmark_registry():
    for name in BENCHMARKS:
        ckt = load_benchmark(name)
        ckt.validate()
    with pytest.raises(KeyError, match="unknown benchmark"):
        load_benchmark("nonexistent")
