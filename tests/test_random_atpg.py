"""Unit tests for random-pattern generation with coverage tracking."""

from repro.circuit import parity_tree
from repro.simulation import FaultSimulator, collapse_faults
from repro.atpg import generate_random_tests


def test_random_reaches_full_coverage_on_c17(c17_circuit):
    result = generate_random_tests(
        c17_circuit, target_coverage=1.0, max_patterns=512, seed=3
    )
    assert result.coverage == 1.0
    assert not result.undetected
    assert result.test_set.n_random == len(result.test_set)


def test_coverage_accounting_consistent(c17_circuit):
    faults = collapse_faults(c17_circuit)
    result = generate_random_tests(c17_circuit, faults, target_coverage=0.8)
    assert len(result.detected) + len(result.undetected) == len(faults)
    sim = FaultSimulator(c17_circuit)
    check = sim.run(result.test_set.patterns, faults=faults)
    assert set(check.first_detection) == set(result.detected)


def test_target_coverage_stops_early(c17_circuit):
    low = generate_random_tests(c17_circuit, target_coverage=0.5, seed=3)
    high = generate_random_tests(c17_circuit, target_coverage=1.0, seed=3)
    assert low.coverage >= 0.5
    assert len(low.test_set) <= len(high.test_set)


def test_max_patterns_cap():
    ckt = parity_tree(16)
    result = generate_random_tests(
        ckt, target_coverage=1.0, max_patterns=128, patience=10_000
    )
    assert len(result.test_set) <= 128


def test_patience_terminates():
    # A tiny patience stops generation quickly even short of target.
    ckt = parity_tree(16)
    result = generate_random_tests(
        ckt, target_coverage=1.0, max_patterns=100_000, patience=64, seed=5
    )
    assert len(result.test_set) < 100_000


def test_reproducible_with_seed(c17_circuit):
    a = generate_random_tests(c17_circuit, seed=11)
    b = generate_random_tests(c17_circuit, seed=11)
    assert a.test_set.patterns == b.test_set.patterns
    assert a.coverage == b.coverage
