"""Property tests: the wide-word engine is bit-exact at every width.

The engine's correctness story rests on three invariants, proved here on
randomly generated circuits and pattern sets:

* packing is lossless — ``pack_patterns``/``unpack_word`` round-trip at any
  word width;
* logic simulation is width-invariant — ``output_words`` agrees across
  widths and with the scalar simulator;
* fault simulation is width- and engine-invariant — ``FaultSimResult`` is
  identical (first detections *and* detection counts) across widths
  {64, 256, 1024} and between the serial engine and the multi-process one.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, GateType, c17
from repro.circuit.iscas import c432_like
from repro.simulation import (
    FaultSimulator,
    LogicSimulator,
    ParallelFaultSimulator,
    collapse_faults,
    pack_patterns,
    unpack_word,
)

WIDTHS = [64, 256, 1024]

bits = st.integers(min_value=0, max_value=1)
widths = st.sampled_from(WIDTHS + [1, 7, 100])


@settings(max_examples=60, deadline=None)
@given(
    patterns=st.lists(
        st.lists(bits, min_size=3, max_size=3), min_size=1, max_size=80
    ),
    width=widths,
)
def test_pack_unpack_roundtrip(patterns, width):
    groups = pack_patterns(patterns, 3, width=width)
    rebuilt = []
    for g, words in enumerate(groups):
        n_here = min(width, len(patterns) - g * width)
        columns = [unpack_word(w, n_here) for w in words]
        rebuilt.extend([col[p] for col in columns] for p in range(n_here))
    assert rebuilt == patterns


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_patterns=st.integers(min_value=1, max_value=200),
)
def test_output_words_bit_exact_across_widths(seed, n_patterns):
    ckt = c17()
    rng = random.Random(seed)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(n_patterns)]

    scalar = [LogicSimulator(ckt).outputs(vec) for vec in patterns]
    for width in WIDTHS:
        sim = LogicSimulator(ckt, width=width)
        assert sim.run_patterns(patterns) == scalar


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_patterns=st.integers(min_value=1, max_value=150),
    drop=st.booleans(),
)
def test_fault_sim_result_bit_exact_across_widths(seed, n_patterns, drop):
    ckt = c17()
    rng = random.Random(seed)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(n_patterns)]
    faults = collapse_faults(ckt)

    reference = FaultSimulator(ckt, width=64).run(
        patterns, faults=faults, drop_detected=drop
    )
    for width in WIDTHS[1:]:
        result = FaultSimulator(ckt, width=width).run(
            patterns, faults=faults, drop_detected=drop
        )
        assert result.first_detection == reference.first_detection
        assert result.n_patterns == reference.n_patterns
        assert result.faults == reference.faults
        if not drop:
            # With dropping, counts cover the fault's last simulated group,
            # whose extent is the word width; without dropping they are
            # exact over the whole sequence and must agree.
            assert result.detection_counts == reference.detection_counts


@st.composite
def random_circuits(draw):
    gate_types = [
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.NOT,
        GateType.BUF,
    ]
    n_inputs = draw(st.integers(min_value=2, max_value=5))
    n_gates = draw(st.integers(min_value=1, max_value=14))
    ckt = Circuit(name="rand")
    nets = [ckt.add_input(f"i{k}") for k in range(n_inputs)]
    for g in range(n_gates):
        gt = draw(st.sampled_from(gate_types))
        fan = 1 if gt in (GateType.NOT, GateType.BUF) else draw(st.integers(2, 3))
        sources = [nets[draw(st.integers(0, len(nets) - 1))] for _ in range(fan)]
        out = f"g{g}"
        ckt.add_gate(gt, sources, out)
        nets.append(out)
    ckt.add_output(nets[-1])
    ckt.validate()
    return ckt


@settings(max_examples=25, deadline=None)
@given(
    ckt=random_circuits(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_patterns=st.integers(min_value=1, max_value=120),
)
def test_fault_sim_width_invariance_on_random_circuits(ckt, seed, n_patterns):
    rng = random.Random(seed)
    n = len(ckt.primary_inputs)
    patterns = [[rng.randint(0, 1) for _ in range(n)] for _ in range(n_patterns)]
    faults = collapse_faults(ckt)

    reference = FaultSimulator(ckt, width=64).run(
        patterns, faults=faults, drop_detected=False
    )
    for width in WIDTHS[1:]:
        result = FaultSimulator(ckt, width=width).run(
            patterns, faults=faults, drop_detected=False
        )
        assert result.first_detection == reference.first_detection
        assert result.detection_counts == reference.detection_counts


def test_fault_sim_result_bit_exact_serial_vs_parallel():
    ckt = c432_like()
    faults = collapse_faults(ckt)
    rng = random.Random(1234)
    n = len(ckt.primary_inputs)
    patterns = [[rng.randint(0, 1) for _ in range(n)] for _ in range(256)]

    for drop in (True, False):
        serial = FaultSimulator(ckt).run(
            patterns, faults=faults, drop_detected=drop
        )
        pool = ParallelFaultSimulator(ckt, max_workers=2, crossover=0)
        parallel = pool.run(patterns, faults=faults, drop_detected=drop)
        assert pool.last_engine == "parallel"
        assert pool.last_workers == 2
        assert parallel.first_detection == serial.first_detection
        assert parallel.detection_counts == serial.detection_counts
        assert parallel.faults == serial.faults
        assert parallel.n_patterns == serial.n_patterns


def test_parallel_pool_failure_degrades_loudly(monkeypatch):
    import concurrent.futures as cf

    class _BrokenPool:
        def __init__(self, *args, **kwargs):
            raise OSError("process pools unavailable")

    monkeypatch.setattr(cf, "ProcessPoolExecutor", _BrokenPool)

    ckt = c17()
    faults = collapse_faults(ckt)
    rng = random.Random(99)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(64)]

    pool = ParallelFaultSimulator(ckt, max_workers=2, crossover=0)
    with pytest.warns(RuntimeWarning, match="falling back"):
        result = pool.run(patterns, faults=faults)

    assert pool.last_engine == "serial"
    info = pool.engine_info()
    assert info["degraded"] is True
    assert "OSError" in str(info["degraded_reason"])
    serial = FaultSimulator(ckt).run(patterns, faults=faults)
    assert result.first_detection == serial.first_detection
    assert result.detection_counts == serial.detection_counts


def test_parallel_degrades_to_serial_below_crossover():
    ckt = c17()
    faults = collapse_faults(ckt)
    patterns = [[0, 0, 0, 0, 0], [1, 1, 1, 1, 1]]

    pool = ParallelFaultSimulator(ckt, max_workers=4)
    result = pool.run(patterns, faults=faults)
    assert pool.last_engine == "serial"
    assert pool.last_workers == 1
    serial = FaultSimulator(ckt).run(patterns, faults=faults)
    assert result.first_detection == serial.first_detection


def test_parallel_engine_info_reports_configuration():
    ckt = c17()
    pool = ParallelFaultSimulator(ckt, width=128, max_workers=3)
    info = pool.engine_info()
    assert info["word_width"] == 128
    assert {"engine", "word_width", "workers", "degraded", "degraded_reason"} <= set(
        info
    )
    assert info["degraded"] is False
    assert info["degraded_reason"] is None
