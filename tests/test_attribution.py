"""Cost attribution: kernel counters, stage timers, merge and reconcile.

The attribution layer's acceptance properties:

* exactness — with fault dropping disabled, gate-evals equal
  ``n_groups x sum(cone sizes)`` and every internal total reconciles
  (cone buckets sum to the stage total, block drops sum to the dropped
  count);
* work-additivity — a parallel run's merged counters equal the serial
  run's on the faulty-machine side (per-fault work is independent of the
  partition), while good-machine work may exceed serial (each chunk
  re-simulates the good circuit: that is real executed work, and the
  attribution layer reports executed work, not logical work);
* neutrality — enabling attribution never changes simulation results;
* isolation — disabled means no collector, no counters, no tracemalloc.
"""

import random

import pytest

from repro.obs import attribution
from repro.simulation import (
    FaultSimulator,
    ParallelFaultSimulator,
    collapse_faults,
)


@pytest.fixture(autouse=True)
def _clean_attribution():
    attribution.disable()
    yield
    attribution.disable()


def _patterns(circuit, n, seed=7):
    rng = random.Random(seed)
    n_pi = len(circuit.primary_inputs)
    return [[rng.randint(0, 1) for _ in range(n_pi)] for _ in range(n)]


# ---------------------------------------------------------------------------
# Cone buckets
# ---------------------------------------------------------------------------
def test_cone_bucket_index_and_labels():
    assert attribution.cone_bucket_index(1) == 0
    assert attribution.cone_bucket_index(4) == 0
    assert attribution.cone_bucket_index(5) == 1
    assert (
        attribution.cone_bucket_index(1024)
        == len(attribution.CONE_BUCKET_EDGES) - 1
    )  # last bounded bucket (le_1024)
    assert (
        attribution.cone_bucket_index(1025)
        == attribution.N_CONE_BUCKETS - 1
    )
    assert attribution.cone_bucket_label(0) == "le_0004"
    assert (
        attribution.cone_bucket_label(attribution.N_CONE_BUCKETS - 1)
        == "gt_1024"
    )
    # Labels are unique and sorted lexicographically == sorted by size,
    # so dashboards can sort on the string.
    labels = [
        attribution.cone_bucket_label(i)
        for i in range(attribution.N_CONE_BUCKETS)
    ]
    assert len(set(labels)) == attribution.N_CONE_BUCKETS


# ---------------------------------------------------------------------------
# Collector basics
# ---------------------------------------------------------------------------
def test_enable_disable_lifecycle():
    assert attribution.collector() is None
    assert not attribution.is_enabled()
    attribution.enable()
    assert attribution.is_enabled()
    assert attribution.collector() is not None
    attribution.disable()
    assert attribution.collector() is None


def test_snapshot_parses_dotted_keys():
    collector = attribution.AttributionCollector()
    collector.add("stage.fault_sim.gate_evals", 100)
    collector.add("stage.fault_sim.gate_evals", 20)
    collector.add("cone.le_0004.faults", 3)
    collector.add("cone.le_0004.gate_evals", 12)
    collector.add("block.0002.faults_dropped", 5)
    collector.add("oddball", 1)
    collector.record_stage_wall("atpg", 0.25)
    collector.record_stage_wall("atpg", 0.25)
    snap = collector.snapshot()
    assert snap["stages"]["fault_sim"]["gate_evals"] == 120
    assert snap["cone_buckets"]["le_0004"] == {
        "faults": 3,
        "gate_evals": 12,
    }
    assert snap["drops_per_block"] == {"0002": 5}
    assert snap["stages"]["other"]["oddball"] == 1
    assert snap["stage_wall_s"]["atpg"] == pytest.approx(0.5)


def test_reconcile_coverage():
    collector = attribution.AttributionCollector()
    collector.record_stage_wall("a", 0.6)
    collector.record_stage_wall("b", 0.3)
    rec = collector.reconcile(1.0)
    assert rec["attributed_wall_s"] == pytest.approx(0.9)
    assert rec["unattributed_wall_s"] == pytest.approx(0.1)
    assert rec["coverage"] == pytest.approx(0.9)


def test_merge_envelope_counters_add_memory_maxes():
    collector = attribution.AttributionCollector()
    collector.add("stage.fault_sim.gate_evals", 10)
    collector.record_memory_peak("stage", 100)
    collector.merge_envelope(
        {
            "counters": {"stage.fault_sim.gate_evals": 5, "new.key": 2},
            "memory_peaks": {"stage": 50, "other": 80},
        }
    )
    values = collector.counter_values()
    assert values["stage.fault_sim.gate_evals"] == 15
    assert values["new.key"] == 2
    snap = collector.snapshot()
    assert snap["memory_peak_bytes"] == {"stage": 100, "other": 80}


def test_stage_timer_noop_when_disabled():
    with attribution.stage("anything"):
        pass
    assert attribution.collector() is None


# ---------------------------------------------------------------------------
# Kernel accounting invariants
# ---------------------------------------------------------------------------
def _run_attributed(circuit, patterns, faults, drop_detected=True, width=64):
    attribution.enable()
    result = FaultSimulator(circuit, width=width).run(
        patterns, faults=faults, drop_detected=drop_detected
    )
    collector = attribution.collector()
    values = collector.counter_values()
    snap = collector.snapshot()
    attribution.disable()
    return result, values, snap


def test_no_drop_gate_evals_are_exact(c17_circuit):
    # Without fault dropping every fault runs every group, so gate-evals
    # are exactly n_groups x total cone size.
    width = 16
    patterns = _patterns(c17_circuit, 40)
    faults = collapse_faults(c17_circuit)
    sim = FaultSimulator(c17_circuit, width=width)
    cone_sizes = [sim._program(f).size for f in faults]
    n_groups = -(-len(patterns) // width)

    _, values, snap = _run_attributed(
        c17_circuit, patterns, faults, drop_detected=False, width=width
    )
    assert values["stage.fault_sim.gate_evals"] == n_groups * sum(cone_sizes)
    assert values["stage.fault_sim.good_gate_evals"] == n_groups * len(
        sim.logic.order
    )
    assert values["stage.fault_sim.pattern_blocks"] == n_groups
    # No drops recorded when nothing drops.
    assert snap["drops_per_block"] == {}


def test_cone_buckets_partition_the_totals(c17_circuit):
    patterns = _patterns(c17_circuit, 60)
    faults = collapse_faults(c17_circuit)
    result, values, snap = _run_attributed(c17_circuit, patterns, faults)
    buckets = snap["cone_buckets"]
    assert sum(b["faults"] for b in buckets.values()) == len(faults)
    assert (
        sum(b["gate_evals"] for b in buckets.values())
        == values["stage.fault_sim.gate_evals"]
    )
    # Every drop is charged to exactly one pattern block.
    assert sum(snap["drops_per_block"].values()) == len(
        result.first_detection
    )


def test_attribution_does_not_change_results(c17_circuit):
    patterns = _patterns(c17_circuit, 60)
    faults = collapse_faults(c17_circuit)
    baseline = FaultSimulator(c17_circuit, width=64).run(
        patterns, faults=faults
    )
    attributed, _, _ = _run_attributed(c17_circuit, patterns, faults)
    assert attributed.first_detection == baseline.first_detection
    assert attributed.detection_counts == baseline.detection_counts


def test_disabled_runs_record_nothing(c17_circuit):
    patterns = _patterns(c17_circuit, 20)
    FaultSimulator(c17_circuit, width=64).run(patterns)
    assert attribution.collector() is None


# ---------------------------------------------------------------------------
# Parallel merge
# ---------------------------------------------------------------------------
def test_parallel_faulty_work_matches_serial(c432_circuit):
    patterns = _patterns(c432_circuit, 64)
    faults = collapse_faults(c432_circuit)

    _, serial_values, _ = _run_attributed(
        c432_circuit, patterns, faults, width=256
    )

    attribution.enable()
    pool = ParallelFaultSimulator(
        c432_circuit, width=256, max_workers=2, crossover=0
    )
    result = pool.run(patterns, faults=faults)
    merged = attribution.collector().counter_values()
    attribution.disable()

    assert pool.last_engine == "parallel"
    assert result.first_detection  # the job actually detected something
    # Per-fault work is independent of the partition: faulty-machine
    # gate-evals merge to exactly the serial total.
    assert (
        merged["stage.fault_sim.gate_evals"]
        == serial_values["stage.fault_sim.gate_evals"]
    )
    # Good-machine work is executed per chunk — work-additive semantics
    # report MORE than serial, never less.
    assert (
        merged["stage.fault_sim.good_gate_evals"]
        >= serial_values["stage.fault_sim.good_gate_evals"]
    )


def test_memory_peaks_recorded_when_enabled():
    attribution.enable(memory=True)
    with attribution.stage("allocating"):
        blob = [0] * 200_000
        assert len(blob) == 200_000
        del blob
    snap = attribution.collector().snapshot()
    attribution.disable()
    peaks = snap.get("memory_peak_bytes", {})
    assert "allocating" in peaks
    assert peaks["allocating"] > 100_000
