"""The campaign event bridge and the live fleet renderer.

Covers the full path: worker-side :class:`BoundedEventBuffer` envelopes →
supervisor ``_pump_lease_events`` re-publication as tagged
:class:`JobEvent`\\ s (with drop counts surfaced, never swallowed) →
:class:`FleetRenderer` folding the merged stream into a fleet table.
"""

import io
import json
import os

import pytest

from repro import obs
from repro.campaign import CampaignSpec, CampaignSupervisor, FleetRenderer
from repro.campaign.supervisor import _Lease
from repro.experiments import ExperimentConfig
from repro.experiments.pipeline import _run_cached
from repro.obs.events import (
    CampaignEvent,
    JobEvent,
    ListSink,
    ProgressEvent,
    RetryEvent,
    StageEvent,
)
from repro.resilience.retry import RetryPolicy

FAST_RETRY = RetryPolicy(
    max_attempts=2, backoff_base=0.001, backoff_factor=1.0, backoff_max=0.001
)


@pytest.fixture(autouse=True)
def _clean_events_state():
    obs.disable_events()
    obs.disable()
    _run_cached.cache_clear()
    yield
    obs.disable_events()
    obs.disable()
    _run_cached.cache_clear()


def _spec(seeds=(1, 2)) -> CampaignSpec:
    return CampaignSpec(
        name="t",
        base=ExperimentConfig(benchmark="c17", max_random_patterns=16),
        grid={"seed": tuple(seeds)},
    )


def _run_campaign(directory, max_workers=0, seeds=(1, 2)) -> ListSink:
    """Run a fresh campaign with the event bus on; return the sink."""
    bus = obs.enable_events()
    sink = ListSink(bus)
    sup = CampaignSupervisor(
        directory, max_workers=max_workers, retry=FAST_RETRY
    )
    sup.submit(_spec(seeds=seeds))
    report = sup.run()
    assert report.finished
    return sink


# ---------------------------------------------------------------------------
# bridge: merged stream carries tagged job events + campaign narration
# ---------------------------------------------------------------------------
def test_inline_campaign_publishes_tagged_job_events(tmp_path):
    sink = _run_campaign(tmp_path / "camp")
    job_ids = {j.job_id for j in _spec().expand()}

    job_events = [e for e in sink.events if isinstance(e, JobEvent)]
    assert job_events, "no worker events bridged onto the supervisor bus"
    assert {e.job for e in job_events} == job_ids
    assert all(e.config_hash == e.job for e in job_events)
    # The wrapped records are real pipeline telemetry, not opaque blobs.
    stages = {
        e.inner.get("stage")
        for e in job_events
        if e.inner_type in ("StageEvent", "ProgressEvent")
    }
    assert "fault_sim" in stages

    campaign_events = [e for e in sink.events if isinstance(e, CampaignEvent)]
    actions = [e.action for e in campaign_events]
    assert actions.count("lease") == 2
    assert actions.count("done") == 2
    # One counters snapshot per *computed* job, keyed by job id.
    counters = [e for e in campaign_events if e.action == "counters"]
    assert {e.job for e in counters} == job_ids
    assert all(e.data["counters"] for e in counters)


def test_per_job_counters_bit_identical_across_fresh_campaigns(tmp_path):
    """Acceptance core: the merged stream's per-job counters are stable."""

    def counters_by_job(sink: ListSink) -> dict[str, dict]:
        return {
            e.job: e.data["counters"]
            for e in sink.events
            if isinstance(e, CampaignEvent) and e.action == "counters"
        }

    first = counters_by_job(_run_campaign(tmp_path / "a"))
    obs.disable_events()
    _run_cached.cache_clear()  # second run must recompute, not memo-hit
    second = counters_by_job(_run_campaign(tmp_path / "b"))
    assert first == second
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_pool_mode_bridges_worker_events_with_real_pids(tmp_path):
    sink = _run_campaign(tmp_path / "camp", max_workers=2)
    pids = {
        e.worker_pid
        for e in sink.events
        if isinstance(e, JobEvent) and e.worker_pid is not None
    }
    assert pids, "pool workers shipped no events"
    assert os.getpid() not in pids
    # Channels are drained and removed once their leases settle.
    assert list((tmp_path / "camp" / "leases").glob("*.events.jsonl")) == []


def test_pump_publishes_drop_counts_never_silently(tmp_path):
    """A worker that overflowed its buffer must be visible upstream."""
    bus = obs.enable_events()
    sink = ListSink(bus)
    _, registry = obs.enable()
    sup = CampaignSupervisor(
        tmp_path / "camp", max_workers=0, retry=FAST_RETRY
    )
    channel = tmp_path / "camp" / "chan.jsonl"
    envelope = {
        "tags": {"job": "j1", "worker_pid": 999},
        "dropped": 4,
        "events": [StageEvent(stage="s", status="start").to_record()],
    }
    channel.write_text(json.dumps(envelope) + "\n")
    lease = _Lease(
        job_id="j1",
        lease_id="L1",
        attempt=0,
        granted_mono=0.0,
        hb_path=None,
        events_path=channel,
    )
    sup._pump_lease_events(lease)
    dropped = [
        e
        for e in sink.events
        if isinstance(e, CampaignEvent) and e.action == "events_dropped"
    ]
    assert [e.data["dropped"] for e in dropped] == [4]
    assert [e.data["new"] for e in dropped] == [4]
    assert registry.counter("campaign.worker_events_dropped").value == 4
    assert lease.events_dropped == 4
    # Re-pumping the same envelope offset publishes nothing twice.
    sup._pump_lease_events(lease)
    assert len(dropped) == 1


# ---------------------------------------------------------------------------
# fleet renderer
# ---------------------------------------------------------------------------
def _progress(job, stage="fault_sim", completed=4, total=8):
    inner = ProgressEvent(
        stage=stage, completed=completed, total=total, unit="patterns"
    )
    return JobEvent(job=job, worker_pid=123, inner=inner.to_record())


def test_fleet_renderer_footer_counts_and_throughput():
    stream = io.StringIO()
    renderer = FleetRenderer(
        total_jobs=2, stream=stream, min_interval=0.0
    )
    renderer(CampaignEvent(job="job-a", action="lease", data={"attempt": 0}))
    renderer(_progress("job-a"))
    renderer(
        CampaignEvent(job="job-a", action="done", data={"wall_s": 0.5})
    )
    renderer(CampaignEvent(job="job-b", action="lease", data={"attempt": 0}))
    renderer(
        CampaignEvent(job="job-b", action="cached", data={"result_sha": "x"})
    )
    renderer.close()
    out = stream.getvalue()
    assert "2/2 done" in out
    assert "1 cached" in out
    assert "jobs/s" in out


def test_fleet_renderer_eta_appears_while_jobs_remain():
    stream = io.StringIO()
    now = {"t": 0.0}
    renderer = FleetRenderer(
        total_jobs=3,
        stream=stream,
        min_interval=0.0,
        clock=lambda: now["t"],
    )
    renderer(CampaignEvent(job="a", action="lease", data={"attempt": 0}))
    renderer(CampaignEvent(job="a", action="done", data={"wall_s": 2.0}))
    renderer(CampaignEvent(job="b", action="lease", data={"attempt": 0}))
    assert "eta" in stream.getvalue()


def test_fleet_renderer_surfaces_drops_and_retries():
    stream = io.StringIO()
    renderer = FleetRenderer(stream=stream, min_interval=0.0)
    renderer(CampaignEvent(job="a", action="lease", data={"attempt": 0}))
    renderer(
        CampaignEvent(job="a", action="events_dropped", data={"dropped": 3})
    )
    renderer(
        RetryEvent(
            point="campaign.job",
            key="a",
            attempt=1,
            reason="TimeoutError",
            delay_s=0.01,
        )
    )
    renderer.close()
    out = stream.getvalue()
    assert "3 worker event(s) dropped" in out


def test_fleet_renderer_tty_redraws_in_place():
    class _Tty(io.StringIO):
        def isatty(self):
            return True

    stream = _Tty()
    renderer = FleetRenderer(
        total_jobs=1, stream=stream, min_interval=0.0
    )
    renderer(CampaignEvent(job="job-a", action="lease", data={"attempt": 0}))
    renderer(_progress("job-a"))
    renderer.close()
    out = stream.getvalue()
    assert "\x1b[2K" in out  # clear-line redraw
    assert "\x1b[" in out and "A" in out  # cursor-up over previous frame
    assert "job-a" in out
    assert "[fault_sim] 4/8 patterns" in out


def test_fleet_renderer_ignores_untagged_pipeline_events():
    """Inline mode shares one bus: raw (untagged) worker events are the
    ProgressRenderer's job, not the fleet table's."""
    stream = io.StringIO()
    renderer = FleetRenderer(stream=stream, min_interval=0.0)
    renderer(ProgressEvent(stage="fault_sim", completed=1, total=2))
    renderer(StageEvent(stage="fault_sim", status="start"))
    assert stream.getvalue() == ""
    assert renderer._jobs == {}


def test_fleet_renderer_never_raises_into_the_bus():
    class _Broken(io.StringIO):
        def write(self, *_):
            raise OSError("terminal gone")

    renderer = FleetRenderer(stream=_Broken(), min_interval=0.0)
    renderer(CampaignEvent(job="a", action="lease", data={"attempt": 0}))
    renderer.close()  # must not raise
