"""Unit tests for critical-area computation (closed form vs Monte Carlo)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defects import (
    SizeDistribution,
    average_critical_area,
    bridge_critical_area,
    monte_carlo_average,
    open_critical_area,
)


def test_kernels_zero_below_gap():
    assert bridge_critical_area(10, 2.0, 1.5) == 0.0
    assert open_critical_area(10, 2.0, 2.0) == 0.0


def test_kernels_linear_above_gap():
    assert bridge_critical_area(10, 2.0, 5.0) == 30.0
    assert open_critical_area(8, 1.5, 2.5) == 8.0


def test_average_zero_when_gap_exceeds_xmax():
    size = SizeDistribution(x0=1, x_max=10)
    assert average_critical_area(100, 12, size) == 0.0


def test_average_scales_linearly_with_length():
    size = SizeDistribution()
    one = average_critical_area(1.0, 2.0, size)
    ten = average_critical_area(10.0, 2.0, size)
    assert ten == pytest.approx(10 * one)


def test_average_decreases_with_gap():
    size = SizeDistribution()
    values = [average_critical_area(10, g, size) for g in (1, 2, 4, 8, 16)]
    assert values == sorted(values, reverse=True)
    assert all(v >= 0 for v in values)


def test_closed_form_matches_quadrature():
    from scipy.integrate import quad

    size = SizeDistribution(x0=1.0, x_max=30.0)
    for gap in (0.5, 1.0, 2.5, 7.0, 20.0):
        numeric, _ = quad(
            lambda x: 10 * max(0.0, x - gap) * size.pdf(x), size.x0, size.x_max
        )
        closed = average_critical_area(10, gap, size)
        assert closed == pytest.approx(numeric, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    gap=st.floats(min_value=0.2, max_value=12.0),
    length=st.floats(min_value=1.0, max_value=50.0),
)
def test_monte_carlo_agrees_with_closed_form(gap, length):
    size = SizeDistribution(x0=1.0, x_max=30.0)
    closed = average_critical_area(length, gap, size)
    mc = monte_carlo_average(length, gap, size, samples=40000, seed=11)
    assert mc == pytest.approx(closed, rel=0.15, abs=length * 0.02)


def test_small_gaps_clamp_at_x0():
    # Gaps below x0 all behave like gap relative to the x0 floor: finite.
    size = SizeDistribution(x0=1.0, x_max=30.0)
    a = average_critical_area(10, 0.0, size)
    b = average_critical_area(10, 0.5, size)
    assert a > b > 0


@pytest.mark.parametrize("exponent", [1.5, 2.0, 2.5, 3.0, 4.0])
def test_general_exponent_matches_quadrature(exponent):
    from scipy.integrate import quad

    size = SizeDistribution(x0=1.0, x_max=30.0, exponent=exponent)
    for gap in (0.5, 2.0, 9.0):
        numeric, _ = quad(
            lambda x: 7.5 * max(0.0, x - gap) * size.pdf(x),
            size.x0,
            size.x_max,
            points=[gap] if size.x0 < gap < size.x_max else None,
        )
        closed = average_critical_area(7.5, gap, size)
        assert closed == pytest.approx(numeric, rel=1e-9)


def test_smaller_exponent_weights_large_defects_more():
    heavy_tail = SizeDistribution(exponent=2.0)
    light_tail = SizeDistribution(exponent=4.0)
    wide_gap = 10.0
    assert average_critical_area(5, wide_gap, heavy_tail) > average_critical_area(
        5, wide_gap, light_tail
    )
