"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs to build an editable wheel (PEP 660), which the
offline environment cannot do; ``python setup.py develop`` achieves the same
editable install through plain setuptools.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
