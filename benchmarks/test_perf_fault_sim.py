"""Wall-clock benchmark: the three-way engine race, seed vs python vs numpy.

The seed fault simulator (64-bit words, name-keyed dicts, eager cone
extraction, no compilation) is embedded below *verbatim in structure* so the
comparison is against the actual pre-optimization engine, not a strawman.
The benchmark races three generations of the inner loop over the full
collapsed stuck-at universe and asserts:

* the python wide-word compiled engine is **bit-exact** against the seed
  and at least **3x faster** on the c880-class benchmark;
* the numpy uint64 bitslice engine is **bit-exact** against both and at
  least **3x faster again** than the python wide-word engine;
* the multi-core engine produces results identical to the serial engine,
  and — run at its *default* work crossover — correctly declines the pool
  for this workload (the pool only pays off past the calibrated
  fault x pattern crossover; see ``repro.simulation.engines``).

Results (full trajectory, per-engine seconds and patterns/sec) are written
to ``BENCH_fault_sim.json`` at the repo root and gated in CI by
``obs check-bench``.

Modes
-----
Full mode (default) runs c880.  Quick mode — ``FAULT_SIM_BENCH_QUICK=1`` —
runs c432 with fewer patterns and skips the speedup floors (CI smoke:
shared runners make wall-clock ratios flaky); it still checks bit-exactness
and serial/parallel equality and still writes the JSON artifact.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.atpg import random_patterns
from repro.circuit.iscas import load_benchmark
from repro.circuit.levelize import levelize, output_cone
from repro.circuit.library import ALL_ONES_64, evaluate_gate_packed
from repro.circuit.netlist import Circuit, Gate
from repro.simulation import (
    FaultSimulator,
    NumpyFaultSimulator,
    ParallelFaultSimulator,
    StuckAtFault,
    collapse_faults,
)
from repro.simulation.faults import FaultSite

QUICK = bool(os.environ.get("FAULT_SIM_BENCH_QUICK"))
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fault_sim.json"


# ---------------------------------------------------------------------------
# The seed engine, frozen.  64 patterns per word, name-keyed value dicts,
# per-fault cone re-walk with no compiled schedule — the baseline every
# optimization in repro.simulation.fault_sim is measured against.
# ---------------------------------------------------------------------------


def _seed_pack_patterns(
    patterns: Sequence[Sequence[int]], n_inputs: int
) -> list[list[int]]:
    groups: list[list[int]] = []
    for start in range(0, len(patterns), 64):
        chunk = patterns[start : start + 64]
        words = [0] * n_inputs
        for bit, vector in enumerate(chunk):
            for i, value in enumerate(vector):
                if value:
                    words[i] |= 1 << bit
        groups.append(words)
    return groups


class _SeedLogicSimulator:
    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.order: list[Gate] = levelize(circuit)
        self._n_inputs = len(circuit.primary_inputs)

    def simulate_packed(self, input_words: Sequence[int]) -> dict[str, int]:
        values: dict[str, int] = dict(
            zip(self.circuit.primary_inputs, input_words)
        )
        for gate in self.order:
            operands = [values[net] for net in gate.inputs]
            values[gate.output] = evaluate_gate_packed(
                gate.gate_type, operands, ALL_ONES_64
            )
        return values


@dataclass
class _SeedConeInfo:
    gates: list[Gate] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)


class SeedFaultSimulator:
    """The seed repo's cone-restricted 64-bit fault simulator."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.logic = _SeedLogicSimulator(circuit)
        self._order = levelize(circuit)
        self._cones: dict[str, _SeedConeInfo] = {}
        po_set = set(circuit.primary_outputs)
        for net in circuit.nets:
            cone_nets = output_cone(circuit, net)
            info = _SeedConeInfo(
                gates=[g for g in self._order if g.output in cone_nets],
                outputs=[
                    po for po in circuit.primary_outputs if po in cone_nets
                ],
            )
            if net in po_set and net not in info.outputs:
                info.outputs.append(net)
            self._cones[net] = info

    def detection_word(
        self, fault: StuckAtFault, good_values: dict[str, int]
    ) -> int:
        stuck_word = ALL_ONES_64 if fault.value else 0
        cone = self._cones[fault.net]
        faulty: dict[str, int] = {}
        if fault.site is FaultSite.NET:
            faulty[fault.net] = stuck_word
        diff = 0
        for gate in cone.gates:
            operands = []
            for pin, net in enumerate(gate.inputs):
                if (
                    fault.site is FaultSite.GATE_INPUT
                    and gate.name == fault.gate
                    and pin == fault.pin
                ):
                    operands.append(stuck_word)
                else:
                    operands.append(faulty.get(net, good_values[net]))
            value = evaluate_gate_packed(gate.gate_type, operands, ALL_ONES_64)
            if fault.site is FaultSite.NET and gate.output == fault.net:
                value = stuck_word
            faulty[gate.output] = value
        for po in cone.outputs:
            diff |= faulty.get(po, good_values[po]) ^ good_values[po]
        return diff & ALL_ONES_64

    def run(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault],
        drop_detected: bool = True,
    ) -> tuple[dict[StuckAtFault, int], dict[StuckAtFault, int]]:
        n_inputs = len(self.circuit.primary_inputs)
        groups = _seed_pack_patterns(patterns, n_inputs)
        first_detection: dict[StuckAtFault, int] = {}
        detection_counts: dict[StuckAtFault, int] = {}
        active = list(faults)
        for group_index, words in enumerate(groups):
            if not active:
                break
            base = group_index * 64
            n_here = min(64, len(patterns) - base)
            group_mask = (1 << n_here) - 1
            good = self.logic.simulate_packed(words)
            survivors: list[StuckAtFault] = []
            for fault in active:
                diff = self.detection_word(fault, good) & group_mask
                if diff:
                    first = base + ((diff & -diff).bit_length() - 1) + 1
                    if (
                        fault not in first_detection
                        or first < first_detection[fault]
                    ):
                        first_detection[fault] = first
                    detection_counts[fault] = (
                        detection_counts.get(fault, 0) + diff.bit_count()
                    )
                    if not drop_detected:
                        survivors.append(fault)
                else:
                    survivors.append(fault)
            active = survivors
        return first_detection, detection_counts


# ---------------------------------------------------------------------------
# The benchmark proper.
# ---------------------------------------------------------------------------


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_engine_race_seed_vs_python_vs_numpy():
    benchmark = "c432" if QUICK else "c880"
    n_patterns = 256 if QUICK else 1024
    circuit = load_benchmark(benchmark)
    faults = collapse_faults(circuit)
    patterns = random_patterns(
        len(circuit.primary_inputs), n_patterns, seed=42
    )

    # Full-universe run: every fault against every pattern, no dropping —
    # the exact n-detection telemetry workload.  Construction is inside the
    # timed region for every engine: the seed engine's eager per-net cone
    # extraction and the compiled engines' compilation are real costs.
    def run_seed():
        sim = SeedFaultSimulator(circuit)
        return sim.run(patterns, faults, drop_detected=False)

    (seed_first, seed_counts), seed_seconds = _timed(run_seed)

    def run_wide():
        sim = FaultSimulator(circuit)  # default wide width, single process
        return sim.run(patterns, faults=faults, drop_detected=False)

    wide_result, wide_seconds = _timed(run_wide)

    def run_numpy():
        sim = NumpyFaultSimulator(circuit)  # default bitslice width
        return sim.run(patterns, faults=faults, drop_detected=False)

    numpy_result, numpy_seconds = _timed(run_numpy)

    # Bit-exact across all three generations, detection counts included.
    assert wide_result.first_detection == seed_first
    assert wide_result.detection_counts == seed_counts
    assert numpy_result.first_detection == seed_first
    assert numpy_result.detection_counts == seed_counts

    # Fault dropping changes only how much work is skipped, never the
    # first-detection indices.
    wide = FaultSimulator(circuit)
    assert wide.run(patterns, faults=faults).first_detection == seed_first
    numpy_sim = NumpyFaultSimulator(circuit)
    assert (
        numpy_sim.run(patterns, faults=faults).first_detection == seed_first
    )

    # The multi-core engine at its *default* crossover: this workload
    # (n_faults x n_patterns) sits below the calibrated breakeven, so the
    # pool must decline and serial timing must win — the regression the
    # crossover recalibration fixed.
    parallel = ParallelFaultSimulator(circuit, max_workers=2, engine="auto")
    parallel_result, parallel_seconds = _timed(
        lambda: parallel.run(patterns, faults=faults, drop_detected=False)
    )
    work = len(faults) * n_patterns
    expected_path = "serial" if work < parallel.crossover else "parallel"
    assert parallel.last_engine == expected_path
    assert parallel_result.first_detection == seed_first
    assert parallel_result.detection_counts == seed_counts

    # Forced fan-out stays bit-exact (untimed: with the pool overhead below
    # the crossover this measures process start-up, not simulation).
    forced = ParallelFaultSimulator(
        circuit, max_workers=2, crossover=0, engine="auto"
    )
    forced_result = forced.run(patterns, faults=faults, drop_detected=False)
    assert forced.last_engine == "parallel"
    assert forced_result.first_detection == seed_first
    assert forced_result.detection_counts == seed_counts

    def _pps(seconds):
        return round(n_patterns / seconds, 1) if seconds > 0 else None

    speedup = seed_seconds / wide_seconds if wide_seconds > 0 else float("inf")
    numpy_speedup = (
        seed_seconds / numpy_seconds if numpy_seconds > 0 else float("inf")
    )
    numpy_vs_wide = (
        wide_seconds / numpy_seconds if numpy_seconds > 0 else float("inf")
    )
    parallel_speedup = (
        seed_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    )
    record = {
        "benchmark": benchmark,
        "mode": "quick" if QUICK else "full",
        "n_patterns": n_patterns,
        "n_faults": len(faults),
        "seed_engine": {
            "word_width": 64,
            "seconds": round(seed_seconds, 4),
            "patterns_per_second": _pps(seed_seconds),
        },
        "wide_engine": {
            "word_width": wide.width,
            "seconds": round(wide_seconds, 4),
            "speedup_vs_seed": round(speedup, 2),
            "patterns_per_second": _pps(wide_seconds),
        },
        "numpy_engine": {
            "word_width": numpy_sim.width,
            "lane_batch": numpy_sim.lane_batch,
            "seconds": round(numpy_seconds, 4),
            "speedup_vs_seed": round(numpy_speedup, 2),
            "speedup_vs_wide": round(numpy_vs_wide, 2),
            "patterns_per_second": _pps(numpy_seconds),
        },
        "parallel_engine": {
            **parallel.engine_info(),
            "chosen_path": parallel.last_engine,
            "seconds": round(parallel_seconds, 4),
            "speedup_vs_seed": round(parallel_speedup, 2),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if not QUICK:
        assert speedup >= 3.0, (
            f"wide-word engine speedup {speedup:.2f}x < 3x "
            f"(seed {seed_seconds:.3f}s, wide {wide_seconds:.3f}s)"
        )
        assert numpy_vs_wide >= 3.0, (
            f"numpy bitslice speedup {numpy_vs_wide:.2f}x < 3x vs python "
            f"wide-word (wide {wide_seconds:.3f}s, numpy {numpy_seconds:.3f}s)"
        )


def test_parallel_matches_serial_quick():
    """CI smoke: the pool path is bit-exact vs serial for both engines."""
    circuit = load_benchmark("c432")
    faults = collapse_faults(circuit)
    patterns = random_patterns(len(circuit.primary_inputs), 192, seed=7)

    serial = FaultSimulator(circuit).run(patterns, faults=faults)
    for engine in ("python", "numpy"):
        pooled_sim = ParallelFaultSimulator(
            circuit, width=256, max_workers=2, crossover=0, engine=engine
        )
        pooled = pooled_sim.run(patterns, faults=faults)

        assert pooled_sim.last_engine == "parallel"
        assert pooled_sim.engine_info()["kind"] == engine
        assert pooled.first_detection == serial.first_detection
        assert pooled.detection_counts == serial.detection_counts
        assert pooled.n_patterns == serial.n_patterns
        assert pooled.coverage == serial.coverage
