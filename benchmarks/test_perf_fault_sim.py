"""Wall-clock benchmark: wide-word compiled engine vs the seed engine.

The seed fault simulator (64-bit words, name-keyed dicts, eager cone
extraction, no compilation) is embedded below *verbatim in structure* so the
comparison is against the actual pre-optimization engine, not a strawman.
The benchmark asserts:

* the wide-word compiled engine (single process) produces **bit-exact**
  results and is at least **3x faster** on the c880-class benchmark over the
  full collapsed stuck-at universe;
* the multi-core engine produces results identical to the serial engine.

Results are written to ``BENCH_fault_sim.json`` at the repo root.

Modes
-----
Full mode (default) runs c880.  Quick mode — ``FAULT_SIM_BENCH_QUICK=1`` —
runs c432 with fewer patterns and skips the speedup floor (CI smoke: shared
runners make wall-clock ratios flaky); it still checks bit-exactness and
serial/parallel equality and still writes the JSON artifact.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.atpg import random_patterns
from repro.circuit.iscas import load_benchmark
from repro.circuit.levelize import levelize, output_cone
from repro.circuit.library import ALL_ONES_64, evaluate_gate_packed
from repro.circuit.netlist import Circuit, Gate
from repro.simulation import (
    FaultSimulator,
    ParallelFaultSimulator,
    StuckAtFault,
    collapse_faults,
)
from repro.simulation.faults import FaultSite

QUICK = bool(os.environ.get("FAULT_SIM_BENCH_QUICK"))
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fault_sim.json"


# ---------------------------------------------------------------------------
# The seed engine, frozen.  64 patterns per word, name-keyed value dicts,
# per-fault cone re-walk with no compiled schedule — the baseline every
# optimization in repro.simulation.fault_sim is measured against.
# ---------------------------------------------------------------------------


def _seed_pack_patterns(
    patterns: Sequence[Sequence[int]], n_inputs: int
) -> list[list[int]]:
    groups: list[list[int]] = []
    for start in range(0, len(patterns), 64):
        chunk = patterns[start : start + 64]
        words = [0] * n_inputs
        for bit, vector in enumerate(chunk):
            for i, value in enumerate(vector):
                if value:
                    words[i] |= 1 << bit
        groups.append(words)
    return groups


class _SeedLogicSimulator:
    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.order: list[Gate] = levelize(circuit)
        self._n_inputs = len(circuit.primary_inputs)

    def simulate_packed(self, input_words: Sequence[int]) -> dict[str, int]:
        values: dict[str, int] = dict(
            zip(self.circuit.primary_inputs, input_words)
        )
        for gate in self.order:
            operands = [values[net] for net in gate.inputs]
            values[gate.output] = evaluate_gate_packed(
                gate.gate_type, operands, ALL_ONES_64
            )
        return values


@dataclass
class _SeedConeInfo:
    gates: list[Gate] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)


class SeedFaultSimulator:
    """The seed repo's cone-restricted 64-bit fault simulator."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.logic = _SeedLogicSimulator(circuit)
        self._order = levelize(circuit)
        self._cones: dict[str, _SeedConeInfo] = {}
        po_set = set(circuit.primary_outputs)
        for net in circuit.nets:
            cone_nets = output_cone(circuit, net)
            info = _SeedConeInfo(
                gates=[g for g in self._order if g.output in cone_nets],
                outputs=[
                    po for po in circuit.primary_outputs if po in cone_nets
                ],
            )
            if net in po_set and net not in info.outputs:
                info.outputs.append(net)
            self._cones[net] = info

    def detection_word(
        self, fault: StuckAtFault, good_values: dict[str, int]
    ) -> int:
        stuck_word = ALL_ONES_64 if fault.value else 0
        cone = self._cones[fault.net]
        faulty: dict[str, int] = {}
        if fault.site is FaultSite.NET:
            faulty[fault.net] = stuck_word
        diff = 0
        for gate in cone.gates:
            operands = []
            for pin, net in enumerate(gate.inputs):
                if (
                    fault.site is FaultSite.GATE_INPUT
                    and gate.name == fault.gate
                    and pin == fault.pin
                ):
                    operands.append(stuck_word)
                else:
                    operands.append(faulty.get(net, good_values[net]))
            value = evaluate_gate_packed(gate.gate_type, operands, ALL_ONES_64)
            if fault.site is FaultSite.NET and gate.output == fault.net:
                value = stuck_word
            faulty[gate.output] = value
        for po in cone.outputs:
            diff |= faulty.get(po, good_values[po]) ^ good_values[po]
        return diff & ALL_ONES_64

    def run(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault],
        drop_detected: bool = True,
    ) -> tuple[dict[StuckAtFault, int], dict[StuckAtFault, int]]:
        n_inputs = len(self.circuit.primary_inputs)
        groups = _seed_pack_patterns(patterns, n_inputs)
        first_detection: dict[StuckAtFault, int] = {}
        detection_counts: dict[StuckAtFault, int] = {}
        active = list(faults)
        for group_index, words in enumerate(groups):
            if not active:
                break
            base = group_index * 64
            n_here = min(64, len(patterns) - base)
            group_mask = (1 << n_here) - 1
            good = self.logic.simulate_packed(words)
            survivors: list[StuckAtFault] = []
            for fault in active:
                diff = self.detection_word(fault, good) & group_mask
                if diff:
                    first = base + ((diff & -diff).bit_length() - 1) + 1
                    if (
                        fault not in first_detection
                        or first < first_detection[fault]
                    ):
                        first_detection[fault] = first
                    detection_counts[fault] = (
                        detection_counts.get(fault, 0) + diff.bit_count()
                    )
                    if not drop_detected:
                        survivors.append(fault)
                else:
                    survivors.append(fault)
            active = survivors
        return first_detection, detection_counts


# ---------------------------------------------------------------------------
# The benchmark proper.
# ---------------------------------------------------------------------------


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_wide_word_engine_speedup_vs_seed():
    benchmark = "c432" if QUICK else "c880"
    n_patterns = 256 if QUICK else 1024
    circuit = load_benchmark(benchmark)
    faults = collapse_faults(circuit)
    patterns = random_patterns(
        len(circuit.primary_inputs), n_patterns, seed=42
    )

    # Full-universe run: every fault against every pattern, no dropping —
    # the exact n-detection telemetry workload.  Construction is inside the
    # timed region: the seed engine's eager per-net cone extraction is one
    # of the costs the compiled engine's lazy memoization removes.
    def run_seed():
        sim = SeedFaultSimulator(circuit)
        return sim.run(patterns, faults, drop_detected=False)

    (seed_first, seed_counts), seed_seconds = _timed(run_seed)

    def run_wide():
        sim = FaultSimulator(circuit)  # default wide width, single process
        return sim.run(patterns, faults=faults, drop_detected=False)

    wide_result, wide_seconds = _timed(run_wide)

    # Bit-exact against the seed engine, detection counts included.
    assert wide_result.first_detection == seed_first
    assert wide_result.detection_counts == seed_counts

    # Fault dropping changes only how much work is skipped, never the
    # first-detection indices.
    wide = FaultSimulator(circuit)
    dropped = wide.run(patterns, faults=faults)
    assert dropped.first_detection == seed_first

    parallel = ParallelFaultSimulator(circuit, max_workers=2, crossover=0)
    parallel_result, parallel_seconds = _timed(
        lambda: parallel.run(patterns, faults=faults, drop_detected=False)
    )
    assert parallel.last_engine == "parallel"
    assert parallel_result.first_detection == seed_first
    assert parallel_result.detection_counts == seed_counts

    speedup = seed_seconds / wide_seconds if wide_seconds > 0 else float("inf")
    parallel_speedup = (
        seed_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    )
    record = {
        "benchmark": benchmark,
        "mode": "quick" if QUICK else "full",
        "n_patterns": n_patterns,
        "n_faults": len(faults),
        "seed_engine": {"word_width": 64, "seconds": round(seed_seconds, 4)},
        "wide_engine": {
            "word_width": wide.width,
            "seconds": round(wide_seconds, 4),
            "speedup_vs_seed": round(speedup, 2),
        },
        "parallel_engine": {
            **parallel.engine_info(),
            "seconds": round(parallel_seconds, 4),
            "speedup_vs_seed": round(parallel_speedup, 2),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if not QUICK:
        assert speedup >= 3.0, (
            f"wide-word engine speedup {speedup:.2f}x < 3x "
            f"(seed {seed_seconds:.3f}s, wide {wide_seconds:.3f}s)"
        )


def test_parallel_matches_serial_quick():
    """CI smoke: the pool path is bit-exact vs serial on a small workload."""
    circuit = load_benchmark("c432")
    faults = collapse_faults(circuit)
    patterns = random_patterns(len(circuit.primary_inputs), 192, seed=7)

    serial = FaultSimulator(circuit).run(patterns, faults=faults)
    pooled_sim = ParallelFaultSimulator(circuit, max_workers=2, crossover=0)
    pooled = pooled_sim.run(patterns, faults=faults)

    assert pooled_sim.last_engine == "parallel"
    assert pooled.first_detection == serial.first_detection
    assert pooled.detection_counts == serial.detection_counts
    assert pooled.n_patterns == serial.n_patterns
    assert pooled.coverage == serial.coverage
