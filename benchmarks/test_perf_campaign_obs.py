"""Guard: the campaign event bridge is cheap when on, free when off.

The campaign observatory's contract (issue acceptance criteria): running a
sweep with full telemetry — event bus enabled, every event mirrored to a
``--events`` JSONL sink, the fleet renderer folding the stream — must cost
under **2%** wall-clock overhead against the identical sweep with
telemetry off.

The measurement mirrors ``test_perf_attribution.py``: interleaved pairs
with alternating order cancel first-mover bias, and the bound is
``ceiling + noise`` where ``noise`` is the baseline's own relative spread,
so a noisy shared runner degrades the guard instead of flaking it.  Every
run starts from a fresh campaign directory with the pipeline memo cleared,
so each sweep recomputes all six jobs for real.

Results are written to ``BENCH_campaign_obs.json`` at the repo root.

Quick mode — ``CAMPAIGN_OBS_BENCH_QUICK=1`` — runs fewer pairs and skips
the wall-clock assertion (the artifact is still written).
"""

from __future__ import annotations

import io
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.campaign import CampaignSpec, CampaignSupervisor, FleetRenderer
from repro.experiments import ExperimentConfig
from repro.experiments.pipeline import _run_cached
from repro.obs.events import JsonlEventSink

QUICK = bool(os.environ.get("CAMPAIGN_OBS_BENCH_QUICK"))
BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_campaign_obs.json"
)

SEEDS = (1, 2, 3, 4, 5, 6)
N_PATTERNS = 32
PAIRS = 2 if QUICK else 6
WALL_CEILING = 0.02


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="obs-bench",
        base=ExperimentConfig(
            benchmark="c17", max_random_patterns=N_PATTERNS
        ),
        grid={"seed": SEEDS},
    )


def _timed_sweep(root: Path, telemetry: bool) -> float:
    """One full six-job sweep in a fresh directory; returns wall seconds."""
    directory = root / ("on" if telemetry else "off")
    shutil.rmtree(directory, ignore_errors=True)
    _run_cached.cache_clear()  # every job recomputes: real work, not memo
    sink = renderer = None
    if telemetry:
        bus = obs.enable_events()
        sink = JsonlEventSink(str(root / "events.jsonl"), bus)
        renderer = FleetRenderer(
            total_jobs=len(SEEDS), stream=io.StringIO(), min_interval=0.0
        )
        bus.subscribe(renderer)
    try:
        supervisor = CampaignSupervisor(directory, max_workers=0)
        supervisor.submit(_spec())
        t0 = time.perf_counter()
        report = supervisor.run()
        seconds = time.perf_counter() - t0
        assert report.jobs_computed == len(SEEDS), report
    finally:
        if sink is not None:
            sink.close()
        if renderer is not None:
            renderer.close()
        obs.disable_events()
    return seconds


def test_event_bridge_overhead_under_ceiling():
    obs.disable_events()
    obs.disable()
    with tempfile.TemporaryDirectory(prefix="campaign-obs-bench-") as tmp:
        root = Path(tmp)
        # Warm both paths outside the timed region (imports, circuit
        # parses, fresh-directory filesystem costs).
        _timed_sweep(root, telemetry=False)
        _timed_sweep(root, telemetry=True)

        base_times: list[float] = []
        on_times: list[float] = []
        for i in range(PAIRS):
            order = (False, True) if i % 2 == 0 else (True, False)
            for telemetry in order:
                seconds = _timed_sweep(root, telemetry)
                (on_times if telemetry else base_times).append(seconds)

        events_bytes = (root / "events.jsonl").stat().st_size

    baseline = min(base_times)
    telemetry_s = min(on_times)
    overhead = telemetry_s / baseline - 1.0
    noise = max(base_times) / baseline - 1.0

    record = {
        "benchmark": "c17",
        "mode": "quick" if QUICK else "full",
        "jobs": len(SEEDS),
        "n_patterns": N_PATTERNS,
        "pairs": PAIRS,
        "baseline_seconds": round(baseline, 6),
        "telemetry_seconds": round(telemetry_s, 6),
        "overhead_fraction": round(overhead, 6),
        "baseline_noise_fraction": round(noise, 6),
        "wall_ceiling": WALL_CEILING,
        "events_jsonl_bytes": events_bytes,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    assert events_bytes > 0, "telemetry run produced no event stream"
    if not QUICK:
        allowed = WALL_CEILING + noise
        assert overhead < allowed, (
            f"event-bridge overhead {100 * overhead:.2f}% exceeds "
            f"{100 * WALL_CEILING:.0f}% ceiling + {100 * noise:.2f}% "
            f"measured machine noise (baseline {baseline:.4f}s, "
            f"telemetry {telemetry_s:.4f}s over {len(SEEDS)} jobs)"
        )


def test_telemetry_off_publishes_nothing():
    obs.disable_events()
    obs.disable()
    with tempfile.TemporaryDirectory(prefix="campaign-obs-off-") as tmp:
        _run_cached.cache_clear()
        supervisor = CampaignSupervisor(Path(tmp) / "camp", max_workers=0)
        supervisor.submit(
            CampaignSpec(
                name="off",
                base=ExperimentConfig(
                    benchmark="c17", max_random_patterns=N_PATTERNS
                ),
                grid={"seed": (1,)},
            )
        )
        supervisor.run()
    assert obs.event_bus() is None
    assert not obs.events_enabled()
