"""Performance benchmarks of the substrate components.

These are honest pytest-benchmark timings (multiple rounds) of the hot
paths: packed logic simulation, stuck-at fault simulation, PODEM, layout
generation and fault extraction.  They track the cost structure of the
pipeline rather than a paper figure.
"""

import pytest

from repro.atpg import PodemAtpg, random_patterns
from repro.circuit import c432_like
from repro.defects import extract_faults
from repro.layout import build_layout
from repro.simulation import FaultSimulator, LogicSimulator, collapse_faults


@pytest.fixture(scope="module")
def c432():
    return c432_like()


@pytest.fixture(scope="module")
def c432_patterns(c432):
    return random_patterns(len(c432.primary_inputs), 256, seed=9)


def test_perf_logic_sim(benchmark, c432, c432_patterns):
    sim = LogicSimulator(c432)
    benchmark(sim.run_patterns, c432_patterns)


def test_perf_fault_sim(benchmark, c432, c432_patterns):
    sim = FaultSimulator(c432)
    faults = collapse_faults(c432)
    benchmark.pedantic(
        sim.run, args=(c432_patterns,), kwargs={"faults": faults}, rounds=3
    )


def test_perf_podem_single_fault(benchmark, c432):
    from repro.simulation import StuckAtFault

    atpg = PodemAtpg(c432)
    benchmark(atpg.generate, StuckAtFault("AD3", 0))


def test_perf_layout_generation(benchmark, c432):
    benchmark.pedantic(build_layout, args=(c432,), rounds=2, iterations=1)


def test_perf_fault_extraction(benchmark, c432):
    design = build_layout(c432)
    benchmark.pedantic(extract_faults, args=(design,), rounds=2, iterations=1)
