"""Ablation — logic-threshold band vs bridge detectability.

A wider forbidden band (V_LOW .. V_HIGH) means more bridge contentions
resolve to an intermediate level the voltage test cannot rely on: theta_max
must fall monotonically as the band widens.  This isolates the sensitivity
of the paper's theta_max to the one analogue modelling constant the
reproduction introduces.
"""

import pytest

from repro.experiments import format_table
from repro.switchsim import SwitchLevelFaultSimulator, build_coverage


@pytest.mark.paper
def test_threshold_band_ablation(benchmark, paper_experiment):
    result = paper_experiment
    bands = [(0.49, 0.51), (0.45, 0.55), (0.40, 0.60), (0.30, 0.70)]

    def sweep():
        outcomes = {}
        for v_low, v_high in bands:
            sim = SwitchLevelFaultSimulator(
                result.design, result.test_patterns, v_low=v_low, v_high=v_high
            )
            res = sim.run(result.realistic_faults.faults)
            strict = build_coverage(result.realistic_faults, res, "voltage-strict")
            potential = build_coverage(result.realistic_faults, res, "voltage")
            outcomes[(v_low, v_high)] = (strict.theta_max, potential.theta_max)
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [f"[{lo:.2f}, {hi:.2f}]", f"{strict:.4f}", f"{potential:.4f}"]
        for (lo, hi), (strict, potential) in outcomes.items()
    ]
    print(
        "\n"
        + format_table(
            ["forbidden band", "theta_max (strict)", "theta_max (potential)"],
            rows,
            title="Threshold-band ablation",
        )
    )

    strict_values = [outcomes[band][0] for band in bands]
    potential_values = [outcomes[band][1] for band in bands]
    # Widening the band makes fewer fights decisive: *guaranteed* detections
    # fall monotonically...
    assert all(
        a >= b - 1e-9 for a, b in zip(strict_values, strict_values[1:])
    ), strict_values
    assert strict_values[0] > strict_values[-1]
    # ...while *potential* detections (X reaching an output) can only grow.
    assert all(
        a <= b + 1e-9 for a, b in zip(potential_values, potential_values[1:])
    ), potential_values
