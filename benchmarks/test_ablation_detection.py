"""Ablation — detection technique vs theta_max and residual defect level.

The paper argues that steady-state voltage testing alone cannot reach 100 %
defect coverage and that "more elaborated tests, such as current or delay
tests, must be developed to aim a zero-defect strategy".  This bench
quantifies that claim on the reproduced experiment: IDDQ-augmented testing
must raise theta_max substantially and cut the residual defect level.
"""

import pytest

from repro.core import ppm, residual_defect_level
from repro.experiments import format_table
from repro.switchsim import build_coverage


@pytest.mark.paper
def test_detection_technique_ablation(benchmark, paper_experiment):
    result = paper_experiment

    def build_all():
        return {
            tech: build_coverage(
                result.realistic_faults, result.switch_result, tech
            )
            for tech in ("voltage-strict", "voltage", "iddq", "either")
        }

    curves = benchmark.pedantic(build_all, rounds=1, iterations=1)

    y = result.config.target_yield
    rows = []
    for tech, cov in curves.items():
        rows.append(
            [
                tech,
                f"{cov.theta_max:.4f}",
                f"{ppm(residual_defect_level(y, cov.theta_max)):.0f}",
            ]
        )
    print(
        "\n"
        + format_table(
            ["technique", "theta_max", "residual DL (ppm)"],
            rows,
            title="Detection-technique ablation (Y = 0.75)",
        )
    )

    strict = curves["voltage-strict"].theta_max
    voltage = curves["voltage"].theta_max
    either = curves["either"].theta_max
    assert strict <= voltage <= either
    # Adding IDDQ must recover most of the voltage-undetectable weight.
    assert either > voltage
    assert residual_defect_level(y, either) < 0.5 * residual_defect_level(
        y, voltage
    )
