"""Wall-clock cost of the resilience layer: supervision, recovery, resume.

Robustness must not tax the happy path.  This benchmark measures

* the **supervision overhead** of the per-chunk-futures supervisor on a
  clean run against the serial engine on the same workload (the supervisor
  adds bookkeeping, not simulation work);
* the **recovery cost** of one injected chunk failure (one retry round on
  half the fault universe) relative to the clean supervised run;
* the **resume speedup** of a checkpointed pipeline re-run over a cold run.

Results are written to ``BENCH_resilience.json`` at the repo root.  Quick
mode — ``RESILIENCE_BENCH_QUICK=1`` — shrinks the workload for CI smoke and
skips the wall-clock floors (shared runners make ratios flaky); it still
checks bit-exactness everywhere and still writes the JSON artifact.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

from repro.atpg import random_patterns
from repro.circuit.iscas import load_benchmark
from repro.experiments import ExperimentConfig, run_experiment
from repro.resilience import ChaosPlan, ChaosRule, chaos
from repro.simulation import (
    FaultSimulator,
    ParallelFaultSimulator,
    collapse_faults,
)

QUICK = bool(os.environ.get("RESILIENCE_BENCH_QUICK"))
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_resilience_overhead_and_resume(tmp_path):
    benchmark = "c432"
    n_patterns = 192 if QUICK else 768
    circuit = load_benchmark(benchmark)
    faults = collapse_faults(circuit)
    patterns = random_patterns(len(circuit.primary_inputs), n_patterns, seed=13)

    serial_result, serial_seconds = _timed(
        lambda: FaultSimulator(circuit).run(patterns, faults=faults)
    )

    supervised = ParallelFaultSimulator(circuit, max_workers=2, crossover=0)
    clean_result, clean_seconds = _timed(
        lambda: supervised.run(patterns, faults=faults)
    )
    assert supervised.last_engine == "parallel"
    assert clean_result.first_detection == serial_result.first_detection
    assert supervised.engine_info()["degraded"] is False

    fail_once = ChaosPlan(
        rules=(
            ChaosRule(
                point="parallel.chunk", kind="exception", keys={0}, attempts={0}
            ),
        )
    )
    recovering = ParallelFaultSimulator(circuit, max_workers=2, crossover=0)
    recovering._sleep = lambda s: None  # measure work, not backoff waiting

    def run_recovering():
        with chaos.active(fail_once), warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return recovering.run(patterns, faults=faults)

    recovered_result, recovered_seconds = _timed(run_recovering)
    assert recovered_result.first_detection == serial_result.first_detection
    info = recovering.engine_info()
    assert info["chunks_salvaged"] == 1 and info["chunk_retries"] == 1

    # Pipeline: cold checkpointed run vs full resume.
    config = ExperimentConfig(benchmark="c17", seed=777)
    ckpt = tmp_path / "ckpt"
    cold, cold_seconds = _timed(
        lambda: run_experiment(config, checkpoint_dir=ckpt)
    )
    resumed, resume_seconds = _timed(
        lambda: run_experiment(config, checkpoint_dir=ckpt, resume=True)
    )
    assert resumed.stages_restored == cold.stages_recomputed
    assert resumed.fit().theta_max == cold.fit().theta_max

    record = {
        "benchmark": benchmark,
        "mode": "quick" if QUICK else "full",
        "n_patterns": n_patterns,
        "n_faults": len(faults),
        "serial_seconds": round(serial_seconds, 4),
        "supervised_clean": {
            **supervised.engine_info(),
            "seconds": round(clean_seconds, 4),
        },
        "supervised_one_failure": {
            **info,
            "seconds": round(recovered_seconds, 4),
            "recovery_cost_vs_clean": round(
                recovered_seconds / clean_seconds, 2
            )
            if clean_seconds > 0
            else None,
        },
        "pipeline_resume": {
            "cold_seconds": round(cold_seconds, 4),
            "resume_seconds": round(resume_seconds, 4),
            "speedup": round(cold_seconds / resume_seconds, 2)
            if resume_seconds > 0
            else None,
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if not QUICK:
        # Restoring four pickles must beat recomputing four stages.
        assert resume_seconds < cold_seconds
