"""Fig. 2 — DL(T): Williams-Brown vs the proposed model (eq. 11).

Paper setting: Y = 0.75, R = 2, theta_max = 0.96.  Expected shape: eq. 11
runs *below* Williams-Brown through the mid-coverage range and crosses above
it near T = 1, ending at the residual defect level 1 - 0.75**0.04.
"""

import pytest

from repro.core import residual_defect_level, ppm
from repro.experiments import figure2_model_curves


@pytest.mark.paper
def test_fig2_model_curves(benchmark):
    data = benchmark.pedantic(figure2_model_curves, rounds=1, iterations=1)
    print("\n" + data.render)
    floor_ppm = ppm(residual_defect_level(0.75, 0.96))
    print(f"paper: eq.11 below W-B at mid T, crossover near T=1, floor != 0")
    print(
        f"repro: crossover_T = {data.scalars['crossover_T']:.2f}, "
        f"residual = {data.scalars['residual_dl_ppm']:.0f} ppm "
        f"(analytic {floor_ppm:.0f} ppm)"
    )

    wb = dict(data.series["Williams-Brown"])
    eq11 = dict(data.series["eq11"])
    # Below WB through the mid range...
    for t in (0.2, 0.4, 0.6, 0.8):
        assert eq11[t] < wb[t]
    # ...crossing above close to full coverage, with a non-zero floor.
    assert eq11[1.0] > wb[1.0] == 0.0
    assert data.scalars["residual_dl_ppm"] == pytest.approx(floor_ppm, rel=1e-6)
    assert 0.9 <= data.scalars["crossover_T"] <= 1.0
