"""Ablation — weighted *stuck-at* surrogates as a cheap DL predictor.

The paper's accurate predictor needs layout fault extraction *and*
switch-level fault simulation.  A natural shortcut keeps the extraction
(which supplies the weights) but skips the switch-level simulation: weight
each net by the extracted fault mass touching it, and declare that mass
covered when either stuck-at fault on the net is detected.  This bench
measures how much of the paper's accuracy that shortcut retains —
substantially better than Williams-Brown, though it systematically
*overestimates* coverage (bridges need excitation and winner resolution a
stuck-at test doesn't guarantee), so the full switch-level step remains the
reference.
"""

import math
from collections import defaultdict

import pytest

from repro.core import williams_brown
from repro.defects import BridgeFault, FloatingNetFault
from repro.experiments import format_table


@pytest.mark.paper
def test_surrogate_weighting_ablation(benchmark, paper_experiment):
    result = paper_experiment
    y = result.config.target_yield
    nets = set(result.circuit.nets)

    def evaluate():
        net_weight = defaultdict(float)
        for fault in result.realistic_faults:
            if isinstance(fault, BridgeFault):
                for net in (fault.net_a, fault.net_b):
                    if net in nets:
                        net_weight[net] += fault.weight / 2
            elif isinstance(fault, FloatingNetFault) and fault.net in nets:
                net_weight[fault.net] += fault.weight

        first_on_net: dict[str, int] = {}
        for fault, k in result.stuck_result.first_detection.items():
            if fault.net in net_weight:
                first_on_net[fault.net] = min(
                    first_on_net.get(fault.net, 10**9), k
                )
        total = sum(net_weight.values())

        def theta_surrogate(k: int) -> float:
            covered = sum(
                w
                for net, w in net_weight.items()
                if first_on_net.get(net, 10**9) <= k
            )
            return covered / total

        err_surrogate, err_wb, rows = [], [], []
        for k in result.sample_ks:
            actual = result.dl_at(k)
            surrogate = williams_brown(y, theta_surrogate(k))
            wb = williams_brown(y, result.T_at(k))
            if actual > 0:
                err_surrogate.append(
                    abs(math.log(max(surrogate, 1e-9) / actual))
                )
                err_wb.append(abs(math.log(max(wb, 1e-9) / actual)))
            rows.append(
                [k, f"{actual:.4f}", f"{surrogate:.4f}", f"{wb:.4f}"]
            )
        return (
            sum(err_surrogate) / len(err_surrogate),
            sum(err_wb) / len(err_wb),
            rows,
        )

    mean_surrogate, mean_wb, rows = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )

    print(
        "\n"
        + format_table(
            ["k", "actual DL", "surrogate DL", "W-B DL"],
            rows[::3],
            title="Weighted-stuck-at-surrogate DL prediction",
        )
    )
    print(
        f"mean |log error|: surrogate = {mean_surrogate:.3f}, "
        f"Williams-Brown = {mean_wb:.3f}"
    )

    # The shortcut must clearly beat the unweighted prediction...
    assert mean_surrogate < mean_wb
    # ...while remaining imperfect (the switch-level step still matters).
    assert mean_surrogate > 0.05
