"""Guard: cost attribution is off by default and cheap when enabled.

The attribution layer's contract (acceptance criteria):

* **off by default** — a plain run records nothing and pays nothing;
* **cheap when enabled** — under **2%** overhead on a full
  c880-class fault-simulation run;
* **neutral** — results are bit-exact with attribution on or off.

The 2% ceiling is enforced two ways, because shared CI runners routinely
show >10% run-to-run wall-clock dispersion on sub-second jobs — larger
than the effect being guarded:

1. **Deterministic op-count bound** (always enforced, exact): the
   bookkeeping the kernel executes with attribution on — O(buckets) adds
   per pattern block, O(1) per dropped fault, O(faults) setup — is counted
   against the kernel's word-evaluation work for the same run.  The ratio
   must stay under 0.5%, a 4x margin below the wall-clock ceiling even if
   every accounting op were as expensive as a packed gate evaluation.
2. **Wall-clock bound** (noise-aware): interleaved pairs with alternating
   order (base-first, attr-first, ...) cancel first-mover bias; the
   measured overhead must stay under ``ceiling + noise`` where ``noise``
   is the baseline's own relative spread.  On a quiet machine this
   enforces ~2-4%; on a noisy runner the guard degrades instead of
   flaking, and the JSON artifact records both numbers for the history.

Results are written to ``BENCH_attribution.json`` at the repo root.

Modes
-----
Full mode (default) runs c880 without fault dropping (a steady workload —
with dropping the active list collapses within a few blocks and the timed
region is all noise).  Quick mode — ``ATTRIBUTION_BENCH_QUICK=1`` — runs
c432 with fewer patterns and skips the wall-clock bound (the op-count
bound and bit-exactness still hold); it still writes the JSON artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.atpg import random_patterns
from repro.circuit.iscas import load_benchmark
from repro.obs import attribution
from repro.simulation import FaultSimulator, collapse_faults

QUICK = bool(os.environ.get("ATTRIBUTION_BENCH_QUICK"))
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_attribution.json"

BENCHMARK = "c432" if QUICK else "c880"
# Enough pattern blocks in both modes to amortise the O(faults) setup —
# on a single-block job the fixed setup dominates the op-count ratio.
N_PATTERNS = 2048
PAIRS = 2 if QUICK else 6
WALL_CEILING = 0.02
OPS_CEILING = 0.005


def _job():
    circuit = load_benchmark(BENCHMARK)
    patterns = random_patterns(
        len(circuit.primary_inputs), N_PATTERNS, seed=11
    )
    faults = collapse_faults(circuit)
    return circuit, patterns, faults


def _timed_run(circuit, patterns, faults, attributed):
    if attributed:
        attribution.enable()
    sim = FaultSimulator(circuit, width=256)
    t0 = time.perf_counter()
    result = sim.run(patterns, faults=faults, drop_detected=False)
    seconds = time.perf_counter() - t0
    snapshot = None
    if attributed:
        snapshot = attribution.collector().snapshot()
        attribution.disable()
    return seconds, result, snapshot


def test_attribution_overhead_and_exactness():
    attribution.disable()
    circuit, patterns, faults = _job()

    # Warm-up both paths outside the timed region.
    _timed_run(circuit, patterns, faults, attributed=False)
    _, base_result, _ = _timed_run(circuit, patterns, faults, False)
    _, attr_result, snapshot = _timed_run(circuit, patterns, faults, True)

    # Neutrality: identical detections with attribution on.
    assert attr_result.first_detection == base_result.first_detection
    assert attr_result.detection_counts == base_result.detection_counts

    # --- deterministic op-count bound -----------------------------------
    # What the kernel executes per run with attribution on:
    #   setup: one bucket classification per fault;
    #   per pattern block: N_CONE_BUCKETS sums + a handful of scalar adds;
    #   final flush: one attr.add per counter key.
    # Weighed against the packed word evaluations the same run performs.
    n_blocks = snapshot["stages"]["fault_sim"]["pattern_blocks"]
    word_evals = snapshot["stages"]["fault_sim"]["words_simulated"]
    accounting_ops = (
        len(faults)
        + n_blocks * (attribution.N_CONE_BUCKETS + 8)
        + 2 * attribution.N_CONE_BUCKETS
        + 8
    )
    ops_ratio = accounting_ops / word_evals
    assert ops_ratio < OPS_CEILING, (
        f"attribution accounting is {accounting_ops} ops against "
        f"{word_evals} word evals ({100 * ops_ratio:.3f}% > "
        f"{100 * OPS_CEILING:.1f}% ceiling)"
    )

    # --- wall-clock bound (noise-aware) ---------------------------------
    base_times: list[float] = []
    attr_times: list[float] = []
    for i in range(PAIRS):
        order = (False, True) if i % 2 == 0 else (True, False)
        for attributed in order:
            seconds, _, _ = _timed_run(circuit, patterns, faults, attributed)
            (attr_times if attributed else base_times).append(seconds)
    baseline = min(base_times)
    attributed_s = min(attr_times)
    overhead = attributed_s / baseline - 1.0
    noise = max(base_times) / baseline - 1.0

    record = {
        "benchmark": BENCHMARK,
        "mode": "quick" if QUICK else "full",
        "n_patterns": N_PATTERNS,
        "n_faults": len(faults),
        "pairs": PAIRS,
        "baseline_seconds": round(baseline, 6),
        "attributed_seconds": round(attributed_s, 6),
        "overhead_fraction": round(overhead, 6),
        "baseline_noise_fraction": round(noise, 6),
        "wall_ceiling": WALL_CEILING,
        "accounting_ops": accounting_ops,
        "word_evals": word_evals,
        "ops_ratio": round(ops_ratio, 8),
        "ops_ceiling": OPS_CEILING,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    if not QUICK:
        allowed = WALL_CEILING + noise
        assert overhead < allowed, (
            f"attribution overhead {100 * overhead:.2f}% exceeds "
            f"{100 * WALL_CEILING:.0f}% ceiling + {100 * noise:.2f}% "
            f"measured machine noise (baseline {baseline:.4f}s, "
            f"attributed {attributed_s:.4f}s)"
        )


def test_disabled_attribution_records_nothing():
    attribution.disable()
    circuit, patterns, faults = _job()
    FaultSimulator(circuit, width=256).run(
        patterns[:32], faults=faults
    )
    assert attribution.collector() is None
    assert not attribution.is_enabled()
