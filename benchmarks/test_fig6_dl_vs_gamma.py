"""Fig. 6 — defect level vs the *unweighted* realistic coverage Gamma.

The paper's control experiment: even with a complete realistic fault list,
predicting DL from the unweighted coverage (``1 - Y**(1 - Gamma)``) shows the
same kind of deviation as using stuck-at coverage — the fault set must be
*weighted* (eq. 4) before eq. 3 predicts DL accurately.
"""

import pytest

from repro.core import williams_brown
from repro.experiments import figure6_dl_vs_gamma


@pytest.mark.paper
def test_fig6_dl_vs_gamma(benchmark, paper_experiment):
    data = benchmark.pedantic(figure6_dl_vs_gamma, rounds=1, iterations=1)
    print("\n" + data.render)
    print("paper: unweighted-coverage prediction deviates like fig. 5's")
    print(
        f"repro: at final Gamma = {data.scalars['final_gamma']:.3f}, "
        f"Gamma-predicted DL = {data.scalars['dl_predicted_by_gamma_ppm'] / 1e4:.2f} % vs "
        f"actual DL = {data.scalars['dl_actual_ppm'] / 1e4:.2f} %"
    )

    # The unweighted prediction deviates from the weighted (actual) DL.
    points = data.series["simulated"]
    deviations = [
        abs(dl - williams_brown(0.75, g)) / max(dl, 1e-12)
        for g, dl in points
        if 0.2 < g < 0.95
    ]
    assert max(deviations) > 0.15
    # The terminal mismatch is substantial in relative terms.
    ratio = data.scalars["underprediction_factor"]
    assert abs(ratio - 1.0) > 0.1
