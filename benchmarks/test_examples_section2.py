"""Worked examples 1 and 2 from the paper's section 2.

Example 1: Y = 0.75, theta_max = 1, R = 2.1, target DL = 100 ppm
           -> required T = 97.7 % under eq. 11 vs 99.97 % under W-B.
Example 2: Y = 0.75, T = 100 %, theta_max = 0.99, R = 1
           -> DL = 1 - 0.75**0.01 = 2873 ppm (the paper prints 2279 ppm,
           a typesetting slip; its own formula with its own parameters
           gives 2873) vs 0 under W-B.
"""

import pytest

from repro.experiments import example1_required_coverage, example2_residual_dl


@pytest.mark.paper
def test_example1_required_coverage(benchmark):
    data = benchmark.pedantic(example1_required_coverage, rounds=1, iterations=1)
    print("\n" + data.render)
    print("paper: T = 97.7 % (eq. 11) vs 99.97 % (Williams-Brown)")
    assert data.scalars["T_eq11"] == pytest.approx(0.977, abs=0.001)
    assert data.scalars["T_williams_brown"] == pytest.approx(0.9997, abs=0.0001)
    # The headline claim: the realistic model relaxes the requirement.
    assert data.scalars["T_eq11"] < data.scalars["T_williams_brown"]


@pytest.mark.paper
def test_example2_residual_dl(benchmark):
    data = benchmark.pedantic(example2_residual_dl, rounds=1, iterations=1)
    print("\n" + data.render)
    print("paper: DL = 2279 ppm printed; eq. 11 with its parameters = 2873 ppm")
    assert data.scalars["dl_eq11_ppm"] == pytest.approx(2872.7, abs=1.0)
    assert data.scalars["dl_wb_ppm"] == 0.0
