"""Extension — bridge-targeted ATPG closes the coverage gap (beyond the paper).

The paper stops at the observation that the stuck-at test set leaves
theta < theta_max; this bench runs the natural next step: miter-based PODEM
targeted at the heaviest still-undetected bridges, with candidates confirmed
by the switch-level simulator.  The recovered coverage quantifies how much
of the gap is *test-set* incompleteness versus genuinely
*technique*-untestable defects (the paper's residual).
"""

import pytest

from repro.atpg import generate_bridge_tests
from repro.defects import BridgeFault
from repro.experiments import format_table
from repro.switchsim import SwitchLevelFaultSimulator, build_coverage


@pytest.mark.paper
def test_bridge_atpg_topoff(benchmark, paper_experiment):
    result = paper_experiment
    faults = result.realistic_faults
    mapped_nets = set(result.design.mapped.nets)

    escapes = [
        f
        for f in faults
        if isinstance(f, BridgeFault)
        and result.switch_result.detected_potential(f) is None
        and f.net_a in mapped_nets
        and f.net_b in mapped_nets
    ]
    escapes.sort(key=lambda f: -f.weight)
    targets = [(f.net_a, f.net_b) for f in escapes[:40]]

    def run_topoff():
        atpg = generate_bridge_tests(result.design.mapped, targets)
        extended = list(result.test_patterns) + atpg.vectors
        sim = SwitchLevelFaultSimulator(result.design, extended)
        res = sim.run(faults.faults)
        return atpg, build_coverage(faults, res, "voltage")

    atpg, topped = benchmark.pedantic(run_topoff, rounds=1, iterations=1)
    baseline = build_coverage(faults, result.switch_result, "voltage")

    rows = [
        ["targets", len(targets), ""],
        ["new vectors found", len(atpg.vectors), ""],
        ["proven untestable", len(atpg.untestable), ""],
        ["feedback (skipped)", len(atpg.feedback), ""],
        ["aborted", len(atpg.aborted), ""],
        ["theta_max before", f"{baseline.theta_max:.4f}", ""],
        ["theta_max after", f"{topped.theta_max:.4f}", ""],
    ]
    print("\n" + format_table(["quantity", "value", ""], rows,
                              title="Bridge-ATPG top-off"))

    # Most targets are resolved (found, proven untestable, or feedback);
    # bridges whose DIFF support exceeds the exhaustive limit stay aborted.
    assert len(atpg.aborted) <= 0.6 * len(targets)
    # Coverage never degrades, and any found vector must help.
    assert topped.theta_max >= baseline.theta_max - 1e-12
    if atpg.vectors:
        assert topped.theta_max > baseline.theta_max
