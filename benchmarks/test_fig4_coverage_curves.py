"""Fig. 4 — measured coverage curves T(k), theta(k), Gamma(k).

Paper observations for its c432 experiment (in susceptibility terms,
``s_Gamma > s_T > s_theta``):

* the *weighted* realistic coverage theta(k) converges fastest — the defect
  statistics put the weight on bridging faults, which are easier than the
  average stuck-at fault;
* the *unweighted* Gamma(k) converges slowest and stays below T(k) at high k
  "because of the presence of open faults, which are harder to detect than
  bridging faults, and are considered with equal likelihood";
* theta saturates visibly below 1 (incomplete detection technique).
"""

import pytest

from repro.experiments import figure4_coverage_curves


@pytest.mark.paper
def test_fig4_coverage_curves(benchmark, paper_experiment):
    data = benchmark.pedantic(figure4_coverage_curves, rounds=1, iterations=1)
    print("\n" + data.render)
    print("paper: s_Gamma > s_T > s_theta; theta_max < 1; T -> 1")
    print(
        f"repro: final T = {data.scalars['final_T']:.3f}, "
        f"theta_max = {data.scalars['theta_max']:.3f}, "
        f"final Gamma = {data.scalars['final_gamma']:.3f}"
    )

    t = dict((k, v) for k, v in data.series["T(k)"])
    theta = dict((k, v) for k, v in data.series["theta(k)"])
    gamma = dict((k, v) for k, v in data.series["Gamma(k)"])
    ks = sorted(t)
    mid = [k for k in ks if 5 <= k <= 0.6 * ks[-1]]

    # theta leads T over the bulk of the run (weighted bridges are easy);
    # T catches up only as theta nears its ceiling.
    lead = sum(1 for k in mid if theta[k] > t[k])
    assert lead >= 0.7 * len(mid)
    # Gamma trails T at high vector counts (equal-weighted hard opens).
    tail = [k for k in ks if k >= 0.5 * ks[-1]]
    assert all(gamma[k] < t[k] for k in tail)
    # Saturation below 1; the stuck-at set is fully covered.
    assert data.scalars["theta_max"] < 0.97
    assert data.scalars["final_T"] >= 0.999
    assert data.scalars["final_gamma"] < data.scalars["final_T"]
    # The random prefix dominates the sequence, as in the paper ("more than
    # 80% fault coverage is in general achieved with random vectors").
    assert data.scalars["n_random"] > 0.8 * data.scalars["n_patterns"]
