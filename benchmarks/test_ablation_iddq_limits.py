"""Ablation — IDDQ pass/fail limit setting (beyond the paper).

The paper points at current testing as the complement that removes the
voltage-test residual; in practice an IDDQ screen has a *threshold*, and
raising it (to tolerate background leakage) surrenders the weak-current
defects first.  Using the per-fault peak quiescent currents from the
switch-level simulation, this bench sweeps the limit and reports the
combined (voltage + IDDQ>limit) defect coverage — the model-based
limit-setting curve.
"""

import pytest

from repro.core import ppm, residual_defect_level
from repro.experiments import format_table


@pytest.mark.paper
def test_iddq_limit_ablation(benchmark, paper_experiment):
    result = paper_experiment
    faults = result.realistic_faults
    total = faults.total_weight()
    y = result.config.target_yield

    def sweep():
        outcomes = []
        for limit in (0.0, 0.05, 0.5, 1.0, 2.5):
            covered = 0.0
            for fault in faults:
                by_voltage = (
                    result.switch_result.detected_potential(fault) is not None
                )
                by_iddq = (
                    result.switch_result.detected_iddq(fault) is not None
                    and result.switch_result.iddq_peak_current(fault) > limit
                )
                if by_voltage or by_iddq:
                    covered += fault.weight
            outcomes.append((limit, covered / total))
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            "voltage only" if limit is None else f"IDDQ limit > {limit:.2f}",
            f"{theta:.4f}",
            f"{ppm(residual_defect_level(y, theta)):8.0f}",
        ]
        for limit, theta in outcomes
    ]
    print(
        "\n"
        + format_table(
            ["screen", "theta", "residual DL (ppm)"],
            rows,
            title="IDDQ limit-setting ablation (voltage + IDDQ > limit)",
        )
    )

    thetas = [theta for _, theta in outcomes]
    # Raising the limit monotonically surrenders coverage...
    assert all(a >= b - 1e-12 for a, b in zip(thetas, thetas[1:])), thetas
    # ...and an ideal (zero-limit) IDDQ screen recovers most of the
    # voltage-test residual.
    voltage_only = sum(
        f.weight
        for f in faults
        if result.switch_result.detected_potential(f) is not None
    ) / total
    assert thetas[0] > voltage_only
