"""Robustness — the model's shape holds beyond the paper's benchmark.

The paper demonstrates eq. 11 on one circuit (c432).  This bench repeats the
full pipeline on two circuits with very different structure — an arithmetic
carry-chain (rca16) and a multiplexed ALU (alu4) — and checks that the
qualitative findings survive: theta_max < 1 under voltage testing, and the
defect level at full stuck-at coverage stays above zero (the residual),
while Williams-Brown predicts zero.
"""

import pytest

from repro.core import ppm, williams_brown
from repro.experiments import ExperimentConfig, format_table, run_experiment


# pytest-benchmark owns the fixture name `benchmark`; the circuit under
# test is parametrised under a different argument name.
@pytest.mark.paper
@pytest.mark.parametrize("circuit_name", ["rca16", "alu4"])
def test_model_shape_on_other_circuits(benchmark, circuit_name):
    def run():
        return run_experiment(ExperimentConfig(benchmark=circuit_name))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    fit = result.fit()

    final_k = result.sample_ks[-1]
    rows = [
        ["final T", f"{result.final_T:.4f}"],
        ["theta_max", f"{result.theta_max:.4f}"],
        ["fitted R", f"{fit.susceptibility_ratio:.2f}"],
        ["fitted theta_max", f"{fit.theta_max:.4f}"],
        ["residual DL (ppm)", f"{ppm(result.dl_at(final_k)):.0f}"],
    ]
    print("\n" + format_table(["quantity", circuit_name], rows))

    # The residual effect is universal: theta saturates below 1 while the
    # stuck-at set is (essentially) fully covered.
    assert result.final_T > 0.97
    assert result.theta_max < 0.99
    assert result.dl_at(final_k) > 0
    assert williams_brown(0.75, 1.0) == 0.0
    # The fit stays in a sane region.
    assert 0.5 <= fit.susceptibility_ratio <= 5.0
    assert fit.theta_max <= 1.0
