"""Ablation — defect clustering vs the Poisson assumption of eq. 3.

The paper takes its yield model from Stapper [2], whose negative-binomial
statistics include defect *clustering*; eq. 3/11 then assume the Poisson
limit.  This bench evaluates the clustered generalisation of eq. 3 on the
measured pipeline data: at the same fault weights and the same coverage
curve, clustering concentrates undetected defects on chips that already
failed the test, so the projected defect level drops — i.e. the Poisson
assumption in the paper's model is *conservative*.
"""

import pytest

from repro.core import clustered_defect_level, ppm
from repro.experiments import format_table


@pytest.mark.paper
def test_clustering_ablation(benchmark, paper_experiment):
    result = paper_experiment
    total_w = result.realistic_faults.total_weight()

    def evaluate():
        rows = []
        for alpha in (0.5, 2.0, 10.0, None):  # None = Poisson (eq. 3)
            dls = []
            for k in result.sample_ks:
                theta = result.theta_at(k)
                if alpha is None:
                    dls.append(result.dl_at(k))
                else:
                    dls.append(clustered_defect_level(total_w, theta, alpha))
            rows.append((alpha, dls))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    final_index = len(result.sample_ks) - 1
    table = [
        [
            "Poisson (paper, eq. 3)" if alpha is None else f"alpha = {alpha}",
            f"{ppm(dls[final_index]):8.0f}",
            f"{ppm(dls[len(dls) // 2]):8.0f}",
        ]
        for alpha, dls in rows
    ]
    print(
        "\n"
        + format_table(
            ["defect statistics", "final DL (ppm)", "mid-run DL (ppm)"],
            table,
            title="Clustering ablation (same weights, same coverage)",
        )
    )

    dl_by_alpha = {alpha: dls for alpha, dls in rows}
    poisson = dl_by_alpha[None]
    # Stronger clustering -> lower DL, Poisson is the conservative bound.
    for i in range(len(result.sample_ks)):
        assert dl_by_alpha[0.5][i] <= dl_by_alpha[2.0][i] + 1e-12
        assert dl_by_alpha[2.0][i] <= dl_by_alpha[10.0][i] + 1e-12
        assert dl_by_alpha[10.0][i] <= poisson[i] + 1e-12
