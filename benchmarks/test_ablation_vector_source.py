"""Ablation — random-only vs random+deterministic vector sources.

The paper's experiment uses an ATPG top-off so T reaches 100 %; it remarks
that a random-only sequence "would be longer and eventually more non-modeled
faults could be detected; however, the main limitation seems to reside in
the detection technique rather than in the test length".  This bench checks
that claim quantitatively: dropping the deterministic tail barely changes
theta_max (the residual defect level is technique-bound, not length-bound).
"""

import pytest

from repro.experiments import ExperimentConfig, format_table, run_experiment


@pytest.mark.paper
def test_vector_source_ablation(benchmark, paper_experiment):
    full = paper_experiment

    def run_random_only():
        return run_experiment(
            ExperimentConfig(deterministic_topoff=False)
        )

    random_only = benchmark.pedantic(run_random_only, rounds=1, iterations=1)

    rows = [
        [
            "random + PODEM (paper)",
            len(full.test_patterns),
            f"{full.final_T:.4f}",
            f"{full.theta_max:.4f}",
        ],
        [
            "random only",
            len(random_only.test_patterns),
            f"{random_only.final_T:.4f}",
            f"{random_only.theta_max:.4f}",
        ],
    ]
    print(
        "\n"
        + format_table(
            ["vector source", "vectors", "final T", "theta_max"],
            rows,
            title="Vector-source ablation",
        )
    )

    # The deterministic tail lifts stuck-at coverage...
    assert full.final_T > random_only.final_T
    # ...but the defect-coverage ceiling is technique-bound: theta_max moves
    # by only a few points.
    assert abs(full.theta_max - random_only.theta_max) < 0.08
