"""Shared fixtures for the benchmark harness.

The c432-class end-to-end pipeline run (ATPG + layout + extraction + gate-
and switch-level fault simulation) takes a couple of minutes; it is built
once per session and shared by all figure benches through the pipeline's own
memoisation.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_experiment


@pytest.fixture(scope="session")
def paper_experiment():
    """The paper's main experiment: c432-class circuit, Y scaled to 0.75."""
    return run_experiment(ExperimentConfig())


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: reproduces a specific paper figure/table"
    )
