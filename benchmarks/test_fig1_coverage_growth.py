"""Fig. 1 — analytic coverage-growth curves T(k) and theta(k).

Paper setting: ``s_T = e^3``, ``s_theta = e^(3/2)``, ``theta_max = 0.96``,
k up to 1e6.  Expected shape: theta(k) rises faster than T(k) (R = 2) and
saturates at theta_max while T keeps creeping toward 1.
"""


import pytest

from repro.experiments import figure1_coverage_growth


@pytest.mark.paper
def test_fig1_coverage_growth(benchmark):
    data = benchmark.pedantic(
        figure1_coverage_growth, rounds=1, iterations=1
    )
    print("\n" + data.render)
    print(f"paper: R = 2.0, theta_max = 0.96")
    print(
        f"repro: R = {data.scalars['R']:.2f}, theta_max = {data.scalars['theta_max']:.2f}"
    )

    assert data.scalars["R"] == pytest.approx(2.0)
    t_curve = dict(data.series["T(k)"])
    theta_curve = dict(data.series["theta(k)"])
    # theta leads T until T itself approaches the theta_max ceiling (R > 1)...
    for k in t_curve:
        if 1 < k and t_curve[k] < 0.93:
            assert theta_curve[k] > t_curve[k]
    # ...but saturates at theta_max while T overtakes it in the far tail.
    ks = sorted(t_curve)
    assert theta_curve[ks[-1]] <= 0.96 + 1e-9
    # T(1e6) = 1 - e^(-ln(1e6)/3) = 0.990: T has overtaken theta_max.
    assert t_curve[ks[-1]] > theta_curve[ks[-1]]
    assert t_curve[ks[-1]] > 0.985
