"""Ablation — defect-statistics sensitivity of (R, theta_max).

The paper: "When bridging faults are dominant ... the global fault
susceptibility is lower than the susceptibility exhibited by stuck-at faults
and thus, R is greater than 1", and conversely the model "can be used ... to
tune assumed defect statistics in a process line".

This bench reruns the full pipeline under an *open-heavy* density table and
compares the fitted (R, theta_max) under both voltage-detection semantics.
The discriminating regime is **strict** (guaranteed-flip) detection: opens
are sequence-dependent, two-assumption faults there, so shifting weight onto
them pulls R below the bridge-heavy value and collapses theta_max.  Under
*potential* semantics an open's unknown level reaching an output already
counts, which masks the contrast — also reported for completeness.
"""

import pytest

from repro.core import fit_sousa_model, weighted_defect_level
from repro.defects import open_heavy_statistics
from repro.experiments import ExperimentConfig, format_table, run_experiment
from repro.switchsim import build_coverage


def _fit(result, technique):
    cov = build_coverage(result.realistic_faults, result.switch_result, technique)
    y = result.config.target_yield
    points = [
        (result.T_at(k), weighted_defect_level(y, cov.theta_at(k)))
        for k in result.sample_ks
        if result.T_at(k) > 0
    ]
    fit = fit_sousa_model([p[0] for p in points], [p[1] for p in points], y)
    return fit, cov.theta_max


@pytest.mark.paper
def test_defect_statistics_ablation(benchmark, paper_experiment):
    bridge_heavy = paper_experiment

    def run_open_heavy():
        return run_experiment(
            ExperimentConfig(statistics=open_heavy_statistics())
        )

    open_heavy = benchmark.pedantic(run_open_heavy, rounds=1, iterations=1)

    rows = []
    results = {}
    for label, experiment in (
        ("bridge-heavy (paper)", bridge_heavy),
        ("open-heavy", open_heavy),
    ):
        for technique in ("voltage", "voltage-strict"):
            fit, theta_max = _fit(experiment, technique)
            results[(label, technique)] = (fit, theta_max)
            rows.append(
                [
                    label,
                    technique,
                    f"{fit.susceptibility_ratio:.2f}",
                    f"{theta_max:.4f}",
                ]
            )
    print(
        "\n"
        + format_table(
            ["defect statistics", "technique", "fitted R", "measured theta_max"],
            rows,
            title="Defect-statistics ablation",
        )
    )

    # Bridging dominance drives R above 1 under either semantics.
    assert results[("bridge-heavy (paper)", "voltage")][0].susceptibility_ratio > 1.2
    assert results[("bridge-heavy (paper)", "voltage-strict")][0].susceptibility_ratio > 1.2
    # Under strict semantics, open-domination pulls R down and theta_max down
    # — the paper's "R tracks the defect mix" claim.
    fit_open, theta_open = results[("open-heavy", "voltage-strict")]
    fit_bridge, theta_bridge = results[("bridge-heavy (paper)", "voltage-strict")]
    assert fit_open.susceptibility_ratio < fit_bridge.susceptibility_ratio
    assert theta_open < theta_bridge
