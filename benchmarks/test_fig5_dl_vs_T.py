"""Fig. 5 — defect level vs stuck-at coverage: the paper's headline result.

The simulated points ``(T(k), DL(theta(k)))`` must reproduce the concavity
of measured fallout data: *below* the Williams-Brown curve through the mid
coverage range (realistic faults are covered faster than stuck-at faults,
R > 1) and *above* it near T = 1 (residual defect level, theta_max < 1).
The paper's fit on its layout: R = 1.9, theta_max = 0.96.
"""

import pytest

from repro.core import williams_brown
from repro.experiments import figure5_dl_vs_T


@pytest.mark.paper
def test_fig5_dl_vs_T(benchmark, paper_experiment):
    data = benchmark.pedantic(figure5_dl_vs_T, rounds=1, iterations=1)
    print("\n" + data.render)
    print("paper: fitted R = 1.9, theta_max = 0.96; concave below W-B")
    print(
        f"repro: fitted R = {data.scalars['R_fit']:.2f}, "
        f"theta_max = {data.scalars['theta_max_fit']:.3f} "
        f"(measured theta_max = {data.scalars['measured_theta_max']:.3f}); "
        f"residual DL = {data.scalars['residual_dl_ppm'] / 1e4:.2f} %"
    )

    # Susceptibility ratio above 1 — the paper's central qualitative claim.
    assert data.scalars["R_fit"] > 1.2
    # Incomplete detection: theta_max < 1 both fitted and measured.
    assert data.scalars["theta_max_fit"] < 0.99
    assert data.scalars["measured_theta_max"] < 0.99

    # The simulated points sit below Williams-Brown over mid coverage and
    # end above it (the residual floor).
    points = data.series["simulated"]
    below = [
        dl < williams_brown(0.75, t) for t, dl in points if 0.15 < t < 0.85
    ]
    assert sum(below) >= 0.8 * len(below)
    final_t, final_dl = points[-1]
    assert final_dl > williams_brown(0.75, final_t)
    assert data.scalars["residual_dl_ppm"] > 0

    # The fit describes the simulation well.
    assert data.scalars["fit_residual"] < 0.05
