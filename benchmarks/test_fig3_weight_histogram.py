"""Fig. 3 — histogram of extracted fault weights.

Paper observation on its c432 layout: occurrence probabilities range over
roughly three decades (~1e-9 .. 1e-6), a dispersion far too wide to treat
realistic faults as equally likely (the Huisman rebuttal).

Shape targets here: a right-skewed log-weight histogram whose mass-carrying
population (top 99 % of weight) spans >= 2 decades and whose full range
spans >= 3.
"""

import pytest

from repro.experiments import figure3_weight_histogram


@pytest.mark.paper
def test_fig3_weight_histogram(benchmark, paper_experiment):
    data = benchmark.pedantic(figure3_weight_histogram, rounds=1, iterations=1)
    print("\n" + data.render)
    print("paper: weights spread ~3 decades; equal likelihood untenable")
    print(
        f"repro: {data.scalars['n_faults']} faults, full spread "
        f"{data.scalars['log10_spread']:.1f} decades, main-mass spread "
        f"{data.scalars['main_mass_spread']:.1f} decades"
    )

    assert data.scalars["n_faults"] > 1000
    assert data.scalars["log10_spread"] >= 3.0
    assert data.scalars["main_mass_spread"] >= 2.0
    counts = [c for _, c in data.series["histogram"]]
    assert sum(counts) == data.scalars["n_faults"]
    # Right-skew: the heaviest bin is far from the heaviest faults.
    peak_index = counts.index(max(counts))
    assert peak_index < len(counts) - 1
