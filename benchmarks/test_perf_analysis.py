"""Performance guards for the static-analysis subsystem.

The implication screen is the only super-linear piece of the analysis
pass, so these benches pin its work counters (closures computed, queue
steps taken) on the largest built-in circuit and time the full
``analyze_circuit`` facade.  The dominance-collapsing guard is a pure
invariant: layering dominance on top of equivalence must never grow the
collapsed fault list.
"""

import pytest

from repro.analysis import (
    ImplicationEngine,
    analyze_circuit,
    compute_scoap,
    dominance_collapse,
    find_untestable_faults,
)
from repro.circuit import BENCHMARKS, load_benchmark
from repro.circuit.iscas import c880_like
from repro.simulation import collapse_faults

# Measured on c880_like: ~1.9k closures / ~203k queue steps.  The bounds
# leave ~2.5x headroom so refactors fail loudly only on real regressions.
MAX_CLOSURES = 5_000
MAX_QUEUE_STEPS = 1_000_000


@pytest.fixture(scope="module")
def c880():
    return c880_like()


def test_perf_scoap_c880(benchmark, c880):
    measures = benchmark(compute_scoap, c880)
    assert len(measures.cc0) == len(c880.nets)


def test_perf_implication_screen_c880(benchmark, c880):
    def screen():
        engine = ImplicationEngine(c880)
        return find_untestable_faults(c880, engine=engine), engine

    report, engine = benchmark.pedantic(screen, rounds=2, iterations=1)
    # Work-bound guard: the screen must stay within a fixed budget even
    # as heuristics evolve, or the pre-simulation pass stops being cheap.
    assert engine.stats["closures"] <= MAX_CLOSURES
    assert engine.stats["steps"] <= MAX_QUEUE_STEPS
    assert report.n_screened > 0


def test_perf_analyze_facade_c880(benchmark, c880):
    result = benchmark.pedantic(analyze_circuit, args=(c880,), rounds=2, iterations=1)
    assert result.ok
    assert result.untestable is not None


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_dominance_never_grows_fault_list(name):
    circuit = load_benchmark(name)
    equivalence_only = collapse_faults(circuit)
    dominance = dominance_collapse(circuit)
    assert len(dominance.collapsed) <= len(equivalence_only)
    assert set(dominance.collapsed) <= set(equivalence_only)
