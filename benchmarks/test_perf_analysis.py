"""Performance guards for the static-analysis subsystem.

The implication screen is the only super-linear piece of the analysis
pass, so these benches pin its work counters (closures computed, queue
steps taken) on the largest built-in circuit and time the full
``analyze_circuit`` facade.  The dominance-collapsing guard is a pure
invariant: layering dominance on top of equivalence must never grow the
collapsed fault list.
"""

import pytest

from repro.analysis import (
    ImplicationEngine,
    analyze_circuit,
    compute_scoap,
    dominance_collapse,
    find_untestable_faults,
    prove_untestable,
    static_learning,
)
from repro.atpg import PodemAtpg
from repro.circuit import BENCHMARKS, load_benchmark
from repro.circuit.iscas import c880_like
from repro.simulation import StuckAtFault, collapse_faults

# Measured on c880_like: ~1.9k closures / ~203k queue steps.  The bounds
# leave ~2.5x headroom so refactors fail loudly only on real regressions.
MAX_CLOSURES = 5_000
MAX_QUEUE_STEPS = 1_000_000

# Prover budget on c432_like at depth 2 / fault budget 32 (see
# test_perf_prover_c432 for the measured values the caps derive from).
MAX_PROVER_CLOSURES = 33_000
MAX_PROVER_STEPS = 6_000_000


@pytest.fixture(scope="module")
def c880():
    return c880_like()


def test_perf_scoap_c880(benchmark, c880):
    measures = benchmark(compute_scoap, c880)
    assert len(measures.cc0) == len(c880.nets)


def test_perf_implication_screen_c880(benchmark, c880):
    def screen():
        engine = ImplicationEngine(c880)
        return find_untestable_faults(c880, engine=engine), engine

    report, engine = benchmark.pedantic(screen, rounds=2, iterations=1)
    # Work-bound guard: the screen must stay within a fixed budget even
    # as heuristics evolve, or the pre-simulation pass stops being cheap.
    assert engine.stats["closures"] <= MAX_CLOSURES
    assert engine.stats["steps"] <= MAX_QUEUE_STEPS
    assert report.n_screened > 0


def test_perf_analyze_facade_c880(benchmark, c880):
    result = benchmark.pedantic(analyze_circuit, args=(c880,), rounds=2, iterations=1)
    assert result.ok
    assert result.untestable is not None


def test_perf_prover_c432(benchmark):
    # The full proof-carrying run on c432: 49 faults proved (the screen's
    # 48 plus the static-learning extra), every certificate checked.
    # Measured at depth 2 / fault budget 32: ~16.4k traced closures and
    # ~2.8M closure steps; the caps leave ~2x headroom so only a real
    # budget blow-up (e.g. the per-fault budget stops binding) fails.
    circuit = load_benchmark("c432_like")

    result = benchmark.pedantic(
        prove_untestable, args=(circuit,), kwargs={"depth": 2},
        rounds=1, iterations=1,
    )
    assert len(result.proved) == 49
    assert result.certs_failed == 0
    assert result.by_method == {"fire": 48, "static_learning": 1}
    assert result.work["closures"] <= MAX_PROVER_CLOSURES
    assert result.work["steps"] <= MAX_PROVER_STEPS


def test_perf_podem_learned_backtrack_delta_c432(benchmark):
    # The learned base must keep paying for itself in the ATPG search:
    # on the c432 LA/LB/LC bus faults each two-backtrack search closes in
    # one, cutting total backtracks in half (54 -> 27, deterministic).
    circuit = load_benchmark("c432_like")
    learned = static_learning(circuit)
    faults = [
        StuckAtFault(f"{group}{i}", 0)
        for group in ("LA", "LB", "LC")
        for i in range(9)
    ]

    def search(base):
        atpg = PodemAtpg(circuit, backtrack_limit=300, learned=base)
        outcomes = [atpg.generate(f) for f in faults]
        return atpg, outcomes

    plain_atpg, plain = search(None)
    smart_atpg, smart = benchmark.pedantic(
        search, args=(learned,), rounds=1, iterations=1
    )
    assert [o.status for o in smart] == [o.status for o in plain]
    total_plain = sum(o.backtracks for o in plain)
    total_smart = sum(o.backtracks for o in smart)
    assert total_smart < total_plain
    assert total_smart <= total_plain // 2 + len(faults) // 4
    assert smart_atpg.learned_conflicts > 0


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_dominance_never_grows_fault_list(name):
    circuit = load_benchmark(name)
    equivalence_only = collapse_faults(circuit)
    dominance = dominance_collapse(circuit)
    assert len(dominance.collapsed) <= len(equivalence_only)
    assert set(dominance.collapsed) <= set(equivalence_only)
