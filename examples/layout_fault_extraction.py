#!/usr/bin/env python3
"""Layout fault extraction end to end (the *lift* flow).

Takes a gate-level circuit, builds a complete 2-metal CMOS standard-cell
layout (tech mapping, cells, placement, routing), verifies it electrically
(LVS-lite), and extracts the weighted realistic fault list from spot-defect
statistics — printing the per-class and per-mechanism breakdown and the
fault-weight histogram of the paper's fig. 3.

Run:  python examples/layout_fault_extraction.py [benchmark]
      (default benchmark: rca8 — an 8-bit ripple-carry adder; try "c432")
"""

import sys
from collections import defaultdict

import numpy as np

from repro.circuit import load_benchmark
from repro.defects import extract_faults, maly_like_statistics
from repro.experiments import format_histogram, format_table
from repro.layout import build_layout, extract_transistors, verify_layout


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "rca8"
    circuit = load_benchmark(name)
    print(f"=== {circuit.name}: {circuit.stats()} ===\n")

    print("building layout (techmap -> cells -> placement -> routing)...")
    design = build_layout(circuit)
    die = design.die
    print(
        f"  {design.mapped.gate_count} cells in {design.placement.n_rows} rows, "
        f"{len(design.transistors)} transistors, "
        f"die {die.width:.0f} x {die.height:.0f} um "
        f"({design.area_mm2():.3f} mm^2)"
    )
    lengths = design.wire_length_by_layer()
    print(
        "  wire length: "
        + ", ".join(f"{layer.value} {total / 1000:.2f} mm" for layer, total in lengths.items())
    )

    print("\nverifying geometry against the netlist (LVS-lite)...")
    report = verify_layout(design)
    assert report.clean, "layout verification failed!"
    devices = extract_transistors(design)
    print(
        f"  clean: every net one component, no shorts; "
        f"{len(devices)}/{len(design.transistors)} transistors recovered from geometry"
    )

    print("\nextracting weighted realistic faults (IFA)...")
    faults = extract_faults(design, maly_like_statistics())
    total_weight = faults.total_weight()
    print(
        f"  {len(faults)} aggregated faults, total weight {total_weight:.4g}, "
        f"predicted yield {faults.predicted_yield():.4f}"
    )

    by_class = defaultdict(lambda: [0, 0.0])
    for fault in faults:
        entry = by_class[type(fault).__name__]
        entry[0] += 1
        entry[1] += fault.weight
    rows = [
        [cls, count, f"{weight / total_weight:.3f}"]
        for cls, (count, weight) in sorted(by_class.items())
    ]
    print(
        "\n"
        + format_table(["fault class", "count", "weight share"], rows)
    )

    logs = np.log10(np.array(faults.weights()))
    counts, edges = np.histogram(logs, bins=12)
    print(
        "\n"
        + format_histogram(
            list(edges), list(counts), label="log10(fault weight) histogram (fig. 3)"
        )
    )

    heaviest = sorted(faults, key=lambda f: -f.weight)[:5]
    print("\nheaviest faults:")
    for fault in heaviest:
        print(f"  {fault.describe():55s} w = {fault.weight:.3e}")


if __name__ == "__main__":
    main()
