#!/usr/bin/env python3
"""Chaos smoke: crash the pipeline mid-run, resume it, verify bit-exactness.

The deterministic chaos harness (:mod:`repro.resilience.chaos`) injects a
crash immediately after the stuck-at fault-simulation stage of a
checkpointed run.  The script then resumes from the surviving checkpoints
and asserts the recovered result is identical — same test sequence, same
first-detection indices, same fitted ``(R, theta_max)`` — to an
uninterrupted run.  It also injects a chunk failure into the parallel
fault-simulation engine and asserts the salvaged result matches the serial
engine exactly.

This is the CI chaos-smoke gate.  Run:  PYTHONPATH=src python examples/chaos_smoke.py
"""

import sys
import tempfile

from repro.circuit import c17
from repro.experiments import ExperimentConfig, run_experiment
from repro.resilience import ChaosInjectedError, ChaosPlan, ChaosRule, chaos
from repro.simulation import FaultSimulator, ParallelFaultSimulator, collapse_faults


def check_resume_after_crash() -> None:
    config = ExperimentConfig(benchmark="c17", seed=2026)
    reference = run_experiment(config)

    crash_after_stuck_sim = ChaosPlan(
        rules=(
            ChaosRule(point="pipeline.stage", kind="exception", keys={"stuck_sim"}),
        )
    )
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        try:
            with chaos.active(crash_after_stuck_sim):
                run_experiment(config, checkpoint_dir=checkpoint_dir)
        except ChaosInjectedError:
            print("pipeline crashed after stuck_sim (injected), as planned")
        else:
            raise AssertionError("chaos injection did not fire")

        resumed = run_experiment(config, checkpoint_dir=checkpoint_dir, resume=True)

    assert resumed.stages_restored == ["atpg", "stuck_sim"], resumed.stages_restored
    assert resumed.stages_recomputed == ["extraction", "switch_sim"]
    assert resumed.test_patterns == reference.test_patterns
    assert resumed.stuck_result.first_detection == reference.stuck_result.first_detection
    assert resumed.fit().theta_max == reference.fit().theta_max
    assert resumed.fit().susceptibility_ratio == reference.fit().susceptibility_ratio
    print(
        "resume ok: restored "
        + ", ".join(resumed.stages_restored)
        + "; recomputed "
        + ", ".join(resumed.stages_recomputed)
        + "; results bit-identical"
    )


def check_salvage_under_chunk_failure() -> None:
    import random
    import warnings

    circuit = c17()
    faults = collapse_faults(circuit)
    rng = random.Random(99)
    patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(64)]
    reference = FaultSimulator(circuit).run(patterns, faults=faults)

    fail_first_chunk_once = ChaosPlan(
        rules=(
            ChaosRule(
                point="parallel.chunk", kind="exception", keys={0}, attempts={0}
            ),
        )
    )
    pool = ParallelFaultSimulator(circuit, max_workers=2, crossover=0)
    with chaos.active(fail_first_chunk_once), warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = pool.run(patterns, faults=faults)

    assert result.first_detection == reference.first_detection
    assert result.detection_counts == reference.detection_counts
    info = pool.engine_info()
    assert info["degraded"] is True
    assert info["chunks_salvaged"] == 1, info
    print(
        "salvage ok: chunk failure injected, "
        f"{info['chunks_salvaged']} chunk salvaged, "
        f"{info['chunk_retries']} retry, result == serial engine"
    )


def main() -> int:
    check_resume_after_crash()
    check_salvage_under_chunk_failure()
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
