#!/usr/bin/env python3
"""Quickstart: defect-level projection with the paper's model (eq. 11).

Shows the core API in under a minute: the classical Williams-Brown formula,
the Agrawal multiplicity model, and the proposed two-parameter model with
its two effects — a susceptibility ratio R > 1 (realistic faults covered
faster than stuck-at faults) and an incomplete-detection ceiling
theta_max < 1 (residual defect level).

Run:  python examples/quickstart.py
"""

from repro.core import (
    agrawal,
    ppm,
    required_coverage,
    required_coverage_williams_brown,
    residual_defect_level,
    sousa_defect_level,
    williams_brown,
)
from repro.experiments import format_table


def main() -> None:
    yield_value = 0.75
    r, theta_max = 1.9, 0.96  # the paper's fitted values for its c432 layout

    print("=== DL(T) under three models (Y = 0.75) ===\n")
    rows = []
    for t_pct in (0, 50, 80, 90, 95, 99, 100):
        t = t_pct / 100
        rows.append(
            [
                f"{t_pct}%",
                f"{ppm(williams_brown(yield_value, t)):9.0f}",
                f"{ppm(agrawal(yield_value, t, 3.0)):9.0f}",
                f"{ppm(sousa_defect_level(yield_value, t, r, theta_max)):9.0f}",
            ]
        )
    print(
        format_table(
            ["T", "Williams-Brown (ppm)", "Agrawal n=3 (ppm)", "eq.11 R=1.9 tmax=.96 (ppm)"],
            rows,
        )
    )

    print("\n=== How much coverage do I need for 100 ppm? ===\n")
    t_wb = required_coverage_williams_brown(yield_value, 100e-6)
    t_eq11 = required_coverage(yield_value, 100e-6, susceptibility_ratio=2.1)
    print(f"Williams-Brown says: T = {100 * t_wb:.2f}%  (very stringent)")
    print(f"eq. 11 (R = 2.1)  says: T = {100 * t_eq11:.2f}%  (the paper's Example 1)")

    print("\n=== And what if my test technique can't see every defect? ===\n")
    floor = residual_defect_level(yield_value, theta_max)
    print(
        f"With theta_max = {theta_max}, even 100% stuck-at coverage leaves a\n"
        f"residual defect level of {ppm(floor):.0f} ppm "
        "(the paper's argument for IDDQ/delay tests)."
    )


if __name__ == "__main__":
    main()
