#!/usr/bin/env python3
"""Stacking test techniques toward zero defects.

The paper closes: "Transistor-level bridging and open faults and more
sophisticated detection techniques, like delay and/or current testing, must
become part of the production routine, if a zero defect level strategy is
aimed."  This example quantifies that ladder on the reproduced experiment:

1. steady-state voltage testing (the baseline, theta_max < 1);
2. + a two-pattern *delay* screen — catches stuck-open devices, whose
   charge-retention behaviour makes them gross gate-delay faults;
3. + an *IDDQ* screen — catches bridges and stuck-ons that only produce
   intermediate levels.

Run:  python examples/zero_defect_strategy.py [benchmark]
      (default: rca8)
"""

import sys

from repro.core import ppm, residual_defect_level
from repro.defects import TransistorGateOpen, TransistorStuckOpen
from repro.experiments import ExperimentConfig, format_table, run_experiment
from repro.simulation.transition import TransitionFault, TransitionFaultSimulator


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "rca8"
    result = run_experiment(ExperimentConfig(benchmark=name))
    faults = result.realistic_faults
    total = faults.total_weight()
    y = result.config.target_yield

    # Delay screen: a stuck-open (or floating-gate) device turns its cell
    # into a gross delay fault on the cell output; a two-pattern transition
    # test on that net catches it.
    transition = TransitionFaultSimulator(result.design.mapped)
    tr_result = transition.run(result.test_patterns)

    def delay_catches(fault) -> bool:
        if isinstance(fault, (TransistorStuckOpen, TransistorGateOpen)):
            devices = (
                fault.transistors
                if isinstance(fault, TransistorStuckOpen)
                else (fault.transistor,)
            )
            for device in devices:
                instance = device.rsplit(".", 1)[0]
                cell = next(
                    (g for g in result.design.mapped.gates if g.name == instance),
                    None,
                )
                if cell is None:
                    continue
                for slow_to in (0, 1):
                    if TransitionFault(cell.output, slow_to) in tr_result.first_detection:
                        return True
        return False

    ladder = []
    caught_weight = 0.0
    screens = [
        ("voltage", lambda f: result.switch_result.detected_potential(f) is not None),
        ("+ delay screen", delay_catches),
        ("+ IDDQ screen", lambda f: result.switch_result.detected_iddq(f) is not None),
    ]
    remaining = list(faults)
    for label, catches in screens:
        newly = [f for f in remaining if catches(f)]
        caught_weight += sum(f.weight for f in newly)
        newly_ids = {id(f) for f in newly}
        remaining = [f for f in remaining if id(f) not in newly_ids]
        theta = caught_weight / total
        ladder.append(
            [
                label,
                f"{theta:.4f}",
                f"{ppm(residual_defect_level(y, min(theta, 1.0))):8.0f}",
            ]
        )

    print(f"=== zero-defect ladder for {name} (Y = 0.75) ===\n")
    print(
        format_table(
            ["screen stack", "cumulative theta", "escape rate (ppm)"],
            ladder,
        )
    )
    escaped = sum(f.weight for f in remaining)
    print(
        f"\nafter all three screens, {100 * escaped / total:.2f}% of the defect "
        f"mass still escapes ({len(remaining)} fault classes) — "
        "mostly never-excited bridges this particular test set cannot reach."
    )


if __name__ == "__main__":
    main()
