#!/usr/bin/env python3
"""Closing the defect-coverage gap with bridge-targeted vectors.

The paper's experiment stops at theta_max < 1 because the *stuck-at* test
set misses part of the bridge population.  This example extends the flow the
way later industrial practice did: take the heaviest still-undetected
bridges, generate vectors targeted at each (miter-based PODEM under the
wired-AND model), confirm the candidates against the switch-level simulator,
and measure how much of the remaining defect mass they recover.

Run:  python examples/bridge_test_topoff.py [benchmark] [n_targets]
      (default: rca8, 60 targets)
"""

import sys

from repro.atpg import generate_bridge_tests
from repro.core import ppm, residual_defect_level
from repro.defects import BridgeFault
from repro.experiments import ExperimentConfig, format_table, run_experiment
from repro.switchsim import SwitchLevelFaultSimulator, build_coverage


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "rca8"
    n_targets = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    result = run_experiment(ExperimentConfig(benchmark=name))
    faults = result.realistic_faults
    y = result.config.target_yield

    baseline = build_coverage(faults, result.switch_result, "voltage")
    print(
        f"baseline: theta_max = {baseline.theta_max:.4f} after "
        f"{len(result.test_patterns)} stuck-at vectors"
    )

    # The heaviest undetected, gate-level bridges (internal-node and supply
    # bridges have no gate-level miter).
    mapped_nets = set(result.design.mapped.nets)
    escapes = [
        f
        for f in faults
        if isinstance(f, BridgeFault)
        and result.switch_result.detected_potential(f) is None
        and f.net_a in mapped_nets
        and f.net_b in mapped_nets
    ]
    escapes.sort(key=lambda f: -f.weight)
    targets = [(f.net_a, f.net_b) for f in escapes[:n_targets]]
    print(f"targeting the {len(targets)} heaviest undetected bridges with ATPG...")

    atpg = generate_bridge_tests(result.design.mapped, targets)
    print(
        f"  tested {len(atpg.tested)}, proven untestable {len(atpg.untestable)}, "
        f"feedback {len(atpg.feedback)}, aborted {len(atpg.aborted)}"
    )

    # Confirm with the switch-level simulator on the extended sequence.
    extended = list(result.test_patterns) + atpg.vectors
    sim = SwitchLevelFaultSimulator(result.design, extended)
    extended_result = sim.run(faults.faults)
    topped = build_coverage(faults, extended_result, "voltage")

    rows = [
        [
            "stuck-at set (paper)",
            len(result.test_patterns),
            f"{baseline.theta_max:.4f}",
            f"{ppm(residual_defect_level(y, baseline.theta_max)):8.0f}",
        ],
        [
            "+ bridge-targeted vectors",
            len(extended),
            f"{topped.theta_max:.4f}",
            f"{ppm(residual_defect_level(y, topped.theta_max)):8.0f}",
        ],
    ]
    print(
        "\n"
        + format_table(
            ["test set", "vectors", "theta_max", "residual DL (ppm)"],
            rows,
        )
    )

    recovered = topped.theta_max - baseline.theta_max
    print(
        f"\nbridge ATPG recovered {100 * recovered:.2f} points of defect "
        "coverage; what remains is untestable under voltage testing "
        "(the technique-bound residual the paper's theta_max captures)."
    )


if __name__ == "__main__":
    main()
