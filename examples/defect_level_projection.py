#!/usr/bin/env python3
"""The paper's full experiment on a smaller circuit, in a few minutes.

Runs the complete section-3 pipeline on an 8-bit ripple-carry adder:
stuck-at ATPG (random prefix + PODEM top-off), layout + fault extraction,
switch-level fault simulation, yield scaling to Y = 0.75, and finally the
(R, theta_max) fit of eq. 11 against the simulated DL(T) points.

Run:  python examples/defect_level_projection.py [benchmark]
      (default: rca8; "c432" reproduces the paper's own scale, ~2 min)
"""

import sys

from repro.core import ppm, williams_brown
from repro.experiments import ExperimentConfig, format_table, run_experiment


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "rca8"
    config = ExperimentConfig(benchmark=name)
    print(f"running the end-to-end pipeline on {name} (Y scaled to 0.75)...")
    result = run_experiment(config)

    print(
        f"  {len(result.test_patterns)} vectors "
        f"({result.n_random} random + {len(result.test_patterns) - result.n_random} PODEM), "
        f"{len(result.stuck_faults)} testable stuck-at faults "
        f"({len(result.redundant_faults)} redundant/aborted excluded), "
        f"{len(result.realistic_faults.faults)} realistic faults"
    )

    rows = []
    for k, T, theta, gamma, dl in result.series()[::2]:
        rows.append(
            [
                k,
                f"{T:.4f}",
                f"{theta:.4f}",
                f"{gamma:.4f}",
                f"{100 * dl:.2f}%",
                f"{100 * williams_brown(0.75, T):.2f}%",
            ]
        )
    print(
        "\n"
        + format_table(
            ["k", "T(k)", "theta(k)", "Gamma(k)", "DL(theta)", "W-B DL(T)"],
            rows,
            title="Coverage growth and defect level (figs. 4-5)",
        )
    )

    fit = result.fit()
    print("\nfitting eq. 11 to the simulated (T, DL) points:")
    print(
        f"  R = {fit.susceptibility_ratio:.2f}, theta_max = {fit.theta_max:.3f} "
        f"(paper's c432 layout: R = 1.9, theta_max = 0.96)"
    )
    print(
        f"  measured theta_max = {result.theta_max:.3f} -> residual defect level "
        f"{ppm(result.dl_at(result.sample_ks[-1])):.0f} ppm at T = "
        f"{100 * result.final_T:.1f}%"
    )


if __name__ == "__main__":
    main()
