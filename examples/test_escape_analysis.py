#!/usr/bin/env python3
"""Test-escape analysis: which defects slip past a production test?

A product-engineering scenario the paper's framework enables: given a chip,
its test program and a detection technique, list the *escapes* — the
realistic faults the test never catches — ranked by occurrence weight, and
quantify the shipped-defect rate each technique leaves on the table.

Run:  python examples/test_escape_analysis.py [benchmark]
      (default: rca8)
"""

import sys
from collections import defaultdict

from repro.core import ppm, residual_defect_level
from repro.experiments import ExperimentConfig, format_table, run_experiment
from repro.switchsim import build_coverage


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "rca8"
    result = run_experiment(ExperimentConfig(benchmark=name))
    faults = result.realistic_faults
    y = result.config.target_yield

    print(f"=== escape analysis for {name} ({len(result.test_patterns)} vectors) ===\n")
    rows = []
    for technique in ("voltage-strict", "voltage", "either"):
        coverage = build_coverage(faults, result.switch_result, technique)
        floor = residual_defect_level(y, coverage.theta_max)
        rows.append(
            [
                technique,
                f"{coverage.theta_max:.4f}",
                f"{ppm(floor):8.0f}",
            ]
        )
    print(
        format_table(
            ["technique", "defect coverage (theta)", "escape rate (ppm)"],
            rows,
            title="Escape rate by detection technique (Y = 0.75)",
        )
    )

    print("\nworst escapes under (potential) voltage testing:")
    escapes = [
        f
        for f in faults
        if result.switch_result.detected_potential(f) is None
    ]
    escapes.sort(key=lambda f: -f.weight)
    total = faults.total_weight()
    for fault in escapes[:10]:
        print(
            f"  {fault.describe():58s} "
            f"w = {fault.weight:.2e} ({100 * fault.weight / total:.2f}% of defect mass)"
        )

    by_class = defaultdict(float)
    for fault in escapes:
        by_class[type(fault).__name__] += fault.weight
    print("\nescaped weight by fault class:")
    for cls, weight in sorted(by_class.items(), key=lambda kv: -kv[1]):
        print(f"  {cls:22s} {100 * weight / total:6.2f}%")

    iddq_catches = [
        f
        for f in escapes
        if result.switch_result.detected_iddq(f) is not None
    ]
    caught_w = sum(f.weight for f in iddq_catches)
    escaped_w = sum(f.weight for f in escapes)
    if escaped_w:
        print(
            f"\nadding an IDDQ screen would catch "
            f"{100 * caught_w / escaped_w:.1f}% of the escaped defect mass "
            "(the paper's closing argument)."
        )


if __name__ == "__main__":
    main()
