#!/usr/bin/env python3
"""Campaign smoke: SIGKILL a live campaign, resume it, verify bit-exactness.

A six-job c17 sweep runs under ``python -m repro campaign`` in a child
process; the moment the write-ahead journal records its first completed
job (with another job's lease still open, so the kill leaves a reclaim
for the observatory to show) the child is killed with SIGKILL — the one
signal nothing can handle.  ``campaign resume`` then replays the journal
and finishes the sweep, and the script asserts:

* every result is **bit-identical** to an uninterrupted reference campaign
  (the result records carry no wall-clock facts, so equality is exact);
* jobs completed before the kill were not recomputed (no second lease);
* a fresh campaign sharing the result store serves **all** jobs from cache
  with zero simulation — its journal holds cached completions only;
* the merged ``--events`` stream of the killed-then-resumed campaign
  carries per-job counters **bit-identical** to the reference stream;
* ``campaign trace`` rebuilds a Chrome trace from the journal alone:
  one process group per job plus the reclaimed-lease marker;
* ``campaign report`` renders a self-contained HTML report (gantt, sweep
  small multiples, cache economics, regression strip vs the reference).

This is the CI campaign-smoke gate.  The campaign directory (journal,
events, trace and report included) survives at ``campaign-smoke/`` for
artifact upload.

Run:  PYTHONPATH=src python examples/campaign_smoke.py
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.campaign import Journal, ResultStore
from repro.obs.campaign_html import CAMPAIGN_PANEL_IDS

HOME = Path("campaign-smoke")
SEEDS = (1, 2, 3, 4, 5, 6)
KILL_ATTEMPTS = 3


def write_spec() -> Path:
    spec_path = HOME / "spec.json"
    spec_path.write_text(
        json.dumps(
            {
                "name": "smoke-sweep",
                "base": {"benchmark": "c17", "max_random_patterns": 32},
                "grid": {"seed": list(SEEDS)},
            }
        )
    )
    return spec_path


def campaign_cmd(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro", "campaign", *args]


def run_campaign(*args: str) -> None:
    env = dict(os.environ, PYTHONPATH="src")
    rc = subprocess.run(campaign_cmd(*args), env=env).returncode
    assert rc == 0, f"campaign {args[0]} exited {rc}"


def reference_records(spec_path: Path) -> dict[str, dict]:
    """An uninterrupted campaign: the ground truth every path must match."""
    run_campaign(
        "run", str(spec_path),
        "--dir", str(HOME / "reference"),
        "--workers", "0",
        "--events", str(HOME / "reference_events.jsonl"),
    )
    store = ResultStore(HOME / "reference" / "results")
    reference = {job_id: store.load(job_id) for job_id in store.job_ids()}
    assert len(reference) == len(SEEDS), sorted(reference)
    return reference


def _journal_counts(camp: Path) -> tuple[int, int]:
    """(done records, still-open leases) — tolerating a torn tail."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        records, _ = Journal(camp, readonly=True).replay()
    done = sum(1 for r in records if r.get("type") == "done")
    leases = sum(1 for r in records if r.get("type") == "lease")
    closed = sum(
        1
        for r in records
        if r.get("type") in ("done", "fail", "reclaim", "quarantine")
    )
    return done, leases - closed


def kill_mid_flight(spec_path: Path) -> int:
    """SIGKILL the campaign after a ``done`` with another lease still open.

    The open lease is what resume reclaims — the observatory's trace and
    report must show it.  The kill window is narrow, so retry with a fresh
    directory if the child slips through it.
    """
    camp = HOME / "camp"
    events = HOME / "camp_events.jsonl"
    env = dict(os.environ, PYTHONPATH="src")
    for attempt in range(KILL_ATTEMPTS):
        shutil.rmtree(camp, ignore_errors=True)
        events.unlink(missing_ok=True)
        child = subprocess.Popen(
            campaign_cmd(
                "run", str(spec_path),
                "--dir", str(camp),
                "--workers", "0",
                "--events", str(events),
            ),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 120.0
        armed = False
        while time.monotonic() < deadline:
            if child.poll() is not None:
                break  # finished before we fired: retry
            try:
                done, open_leases = _journal_counts(camp)
            except Exception:
                done, open_leases = 0, 0
            if done >= 1 and open_leases >= 1:
                armed = True
                break
            time.sleep(0.01)
        if not armed:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
            print(f"kill window missed (attempt {attempt + 1}); retrying")
            continue
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
        done_before, open_leases = _journal_counts(camp)
        if done_before < 1 or open_leases < 1 or done_before >= len(SEEDS):
            print(
                f"kill landed outside the window (attempt {attempt + 1}: "
                f"{done_before} done, {open_leases} open); retrying"
            )
            continue
        print(
            f"killed campaign with SIGKILL after {done_before} completed "
            f"job(s), {open_leases} lease(s) left open"
        )
        return done_before
    raise AssertionError(
        f"could not land SIGKILL inside the window in {KILL_ATTEMPTS} tries"
    )


def resume_and_verify(reference: dict[str, dict], done_before: int) -> None:
    camp = HOME / "camp"
    # The resumed supervisor appends to the same --events stream: the file
    # ends up holding the *merged* telemetry of both lives of the campaign.
    run_campaign(
        "resume", "--dir", str(camp), "--workers", "0",
        "--events", str(HOME / "camp_events.jsonl"),
    )

    records, _ = Journal(camp).replay()
    leases: dict[str, int] = {}
    for record in records:
        if record.get("type") == "lease":
            leases[record["job"]] = leases.get(record["job"], 0) + 1
    done_jobs = [r["job"] for r in records if r.get("type") == "done"]
    assert len(done_jobs) == len(SEEDS), done_jobs
    # The resume reclaimed the lease the SIGKILL orphaned.
    assert any(r.get("type") == "reclaim" for r in records), (
        "no reclaim journalled on resume"
    )
    # Jobs finished before the kill must not have been recomputed: exactly
    # one lease each, journalled before their completion.
    survivors = done_jobs[:done_before]
    for job_id in survivors:
        assert leases.get(job_id) == 1, (job_id, leases)

    store = ResultStore(camp / "results")
    resumed = {job_id: store.load(job_id) for job_id in store.job_ids()}
    assert resumed == reference, "resumed results differ from reference"
    print(
        f"resume ok: {len(done_jobs)} jobs done, survivors kept their single "
        "lease, all results bit-identical to the uninterrupted reference"
    )


def verify_cache_serving(reference: dict[str, dict]) -> None:
    """A fresh campaign over the same store must do zero simulation."""
    run_campaign(
        "run", str(HOME / "spec.json"),
        "--dir", str(HOME / "cached"),
        "--workers", "0",
        "--results-dir", str(HOME / "camp" / "results"),
    )
    records, _ = Journal(HOME / "cached").replay()
    kinds = [r["type"] for r in records]
    assert kinds.count("lease") == 0, kinds  # zero simulation
    dones = [r for r in records if r["type"] == "done"]
    assert len(dones) == len(SEEDS) and all(r["cached"] for r in dones), dones
    store = ResultStore(HOME / "camp" / "results")
    assert {j: store.load(j) for j in store.job_ids()} == reference
    print(
        f"cache ok: {len(dones)} jobs served from cache with zero leases, "
        "store untouched"
    )


def _counters_by_job(events_path: Path) -> dict[str, dict]:
    """Per-job counters snapshots from a merged --events JSONL stream."""
    counters: dict[str, dict] = {}
    with open(events_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of the SIGKILLed writer
            if (
                record.get("type") == "CampaignEvent"
                and record.get("action") == "counters"
            ):
                counters[record["job"]] = record["data"]["counters"]
    return counters


def verify_event_stream() -> None:
    """Acceptance (a): merged per-job counters match the reference stream."""
    reference = _counters_by_job(HOME / "reference_events.jsonl")
    merged = _counters_by_job(HOME / "camp_events.jsonl")
    assert len(reference) == len(SEEDS), sorted(reference)
    assert set(merged) == set(reference), (
        sorted(merged), sorted(reference)
    )
    for job_id, expected in reference.items():
        got = merged[job_id]
        assert got == expected, (
            f"job {job_id[:12]} counters diverge from reference:\n"
            f"  reference: {json.dumps(expected, sort_keys=True)}\n"
            f"  merged:    {json.dumps(got, sort_keys=True)}"
        )
    assert json.dumps(merged, sort_keys=True) == json.dumps(
        reference, sort_keys=True
    )
    print(
        f"events ok: merged stream's per-job counters bit-identical to the "
        f"reference for all {len(merged)} job(s)"
    )


def verify_trace() -> None:
    """Acceptance (b): a Chrome trace rebuilds from the journal alone."""
    trace_path = HOME / "camp" / "trace.json"
    run_campaign(
        "trace", "--dir", str(HOME / "camp"), "--out", str(trace_path)
    )
    trace = json.loads(trace_path.read_text())
    process_names = [
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    ]
    job_groups = [n for n in process_names if n.startswith("job ")]
    assert len(job_groups) == len(SEEDS), process_names
    assert "campaign supervisor" in process_names
    markers = {
        e["name"] for e in trace["traceEvents"] if e.get("ph") == "i"
    }
    assert "lease reclaimed" in markers, sorted(markers)
    assert trace["otherData"]["timebase"].startswith("journal wall clock")
    print(
        f"trace ok: {len(job_groups)} job lane groups + supervisor, "
        "reclaimed-lease marker present, journal-only timebase"
    )


def verify_report() -> None:
    """Acceptance (c): self-contained report with every panel rendered."""
    report_path = HOME / "camp" / "report.html"
    run_campaign(
        "report",
        "--dir", str(HOME / "camp"),
        "--out", str(report_path),
        "--baseline", str(HOME / "reference"),
    )
    html = report_path.read_text()
    for panel_id in CAMPAIGN_PANEL_IDS:
        assert f'id="{panel_id}"' in html, f"missing panel {panel_id}"
    assert "<script" not in html, "report must not carry scripts"
    assert "http://" not in html and "https://" not in html, (
        "report must not reference external URLs"
    )
    assert "reclaimed" in html, "gantt must show the reclaimed lease"
    assert "seed" in html, "sweep small multiples must name the swept axis"
    print(
        f"report ok: {len(CAMPAIGN_PANEL_IDS)} panels, self-contained, "
        "reclaimed lease visible in the gantt"
    )


def main() -> int:
    shutil.rmtree(HOME, ignore_errors=True)
    HOME.mkdir(parents=True)
    spec_path = write_spec()
    reference = reference_records(spec_path)
    print(f"reference campaign complete ({len(reference)} results)")
    done_before = kill_mid_flight(spec_path)
    resume_and_verify(reference, done_before)
    verify_cache_serving(reference)
    verify_event_stream()
    verify_trace()
    verify_report()
    print("campaign smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
