#!/usr/bin/env python3
"""Campaign smoke: SIGKILL a live campaign, resume it, verify bit-exactness.

A six-job c17 sweep runs under ``python -m repro campaign`` in a child
process; the moment the write-ahead journal records its first completed
job the child is killed with SIGKILL — the one signal nothing can handle.
``campaign resume`` then replays the journal and finishes the sweep, and
the script asserts:

* every result is **bit-identical** to an uninterrupted reference campaign
  (the result records carry no wall-clock facts, so equality is exact);
* jobs completed before the kill were not recomputed (no second lease);
* a fresh campaign sharing the result store serves **all** jobs from cache
  with zero simulation — its journal holds cached completions only.

This is the CI campaign-smoke gate.  The campaign directory (journal
included) survives at ``campaign-smoke/`` for artifact upload.

Run:  PYTHONPATH=src python examples/campaign_smoke.py
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.campaign import CampaignSpec, CampaignSupervisor, Journal, ResultStore
from repro.experiments import ExperimentConfig

HOME = Path("campaign-smoke")
SEEDS = (1, 2, 3, 4, 5, 6)


def write_spec() -> Path:
    spec_path = HOME / "spec.json"
    spec_path.write_text(
        json.dumps(
            {
                "name": "smoke-sweep",
                "base": {"benchmark": "c17", "max_random_patterns": 32},
                "grid": {"seed": list(SEEDS)},
            }
        )
    )
    return spec_path


def reference_records() -> dict[str, dict]:
    """An uninterrupted campaign: the ground truth every path must match."""
    sup = CampaignSupervisor(HOME / "reference", max_workers=0)
    sup.submit(
        CampaignSpec(
            name="smoke-sweep",
            base=ExperimentConfig(benchmark="c17", max_random_patterns=32),
            grid={"seed": SEEDS},
        )
    )
    report = sup.run()
    assert report.n_done == len(SEEDS), report
    store = ResultStore(HOME / "reference" / "results")
    return {job_id: store.load(job_id) for job_id in store.job_ids()}


def campaign_cmd(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro", "campaign", *args]


def kill_mid_flight(spec_path: Path) -> int:
    """Start the campaign, SIGKILL it after the first journalled ``done``."""
    camp = HOME / "camp"
    env = dict(os.environ, PYTHONPATH="src")
    child = subprocess.Popen(
        campaign_cmd("run", str(spec_path), "--dir", str(camp), "--workers", "0"),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    journal_path = camp / "journal.jsonl"
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if child.poll() is not None:
            raise AssertionError(
                f"campaign finished (rc={child.returncode}) before the kill"
            )
        try:
            text = journal_path.read_text(encoding="utf-8")
        except OSError:
            text = ""
        if '"type": "done"' in text:
            break
        time.sleep(0.02)
    else:
        child.kill()
        raise AssertionError("no job completed within 120s")
    child.send_signal(signal.SIGKILL)
    child.wait(timeout=30)
    records, _ = Journal(camp).replay()
    done_before = sum(1 for r in records if r.get("type") == "done")
    assert 1 <= done_before < len(SEEDS), f"{done_before} jobs done before kill"
    print(f"killed campaign with SIGKILL after {done_before} completed job(s)")
    return done_before


def resume_and_verify(reference: dict[str, dict], done_before: int) -> None:
    camp = HOME / "camp"
    env = dict(os.environ, PYTHONPATH="src")
    rc = subprocess.run(
        campaign_cmd("resume", "--dir", str(camp), "--workers", "0"), env=env
    ).returncode
    assert rc == 0, f"campaign resume exited {rc}"

    records, _ = Journal(camp).replay()
    leases: dict[str, int] = {}
    for record in records:
        if record.get("type") == "lease":
            leases[record["job"]] = leases.get(record["job"], 0) + 1
    done_jobs = [r["job"] for r in records if r.get("type") == "done"]
    assert len(done_jobs) == len(SEEDS), done_jobs
    # Jobs finished before the kill must not have been recomputed: exactly
    # one lease each, journalled before their completion.
    survivors = done_jobs[:done_before]
    for job_id in survivors:
        assert leases.get(job_id) == 1, (job_id, leases)

    store = ResultStore(camp / "results")
    resumed = {job_id: store.load(job_id) for job_id in store.job_ids()}
    assert resumed == reference, "resumed results differ from reference"
    print(
        f"resume ok: {len(done_jobs)} jobs done, survivors kept their single "
        "lease, all results bit-identical to the uninterrupted reference"
    )


def verify_cache_serving(reference: dict[str, dict]) -> None:
    """A fresh campaign over the same store must do zero simulation."""
    env = dict(os.environ, PYTHONPATH="src")
    rc = subprocess.run(
        campaign_cmd(
            "run",
            str(HOME / "spec.json"),
            "--dir",
            str(HOME / "cached"),
            "--workers",
            "0",
            "--results-dir",
            str(HOME / "camp" / "results"),
        ),
        env=env,
    ).returncode
    assert rc == 0, f"cached campaign exited {rc}"
    records, _ = Journal(HOME / "cached").replay()
    kinds = [r["type"] for r in records]
    assert kinds.count("lease") == 0, kinds  # zero simulation
    dones = [r for r in records if r["type"] == "done"]
    assert len(dones) == len(SEEDS) and all(r["cached"] for r in dones), dones
    store = ResultStore(HOME / "camp" / "results")
    assert {j: store.load(j) for j in store.job_ids()} == reference
    print(
        f"cache ok: {len(dones)} jobs served from cache with zero leases, "
        "store untouched"
    )


def main() -> int:
    shutil.rmtree(HOME, ignore_errors=True)
    HOME.mkdir(parents=True)
    spec_path = write_spec()
    reference = reference_records()
    print(f"reference campaign complete ({len(reference)} results)")
    done_before = kill_mid_flight(spec_path)
    resume_and_verify(reference, done_before)
    verify_cache_serving(reference)
    print("campaign smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
