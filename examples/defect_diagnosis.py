#!/usr/bin/env python3
"""Diagnosing a layout defect through stuck-at surrogates.

The scenario: a chip fails the production test; which *physical defect* is
on it?  The observed syndrome comes from a **bridge** (simulated with the
switch-level engine), but the tester's dictionary only knows single
stuck-at faults.  Surrogate diagnosis still works: the bridge behaves,
vector by vector, like a stuck-at on whichever net loses the fight — so the
top dictionary matches land on the bridged nets, localising the defect.

Run:  python examples/defect_diagnosis.py [benchmark]
      (default: c17)
"""

import sys

import numpy as np

from repro.atpg import random_patterns
from repro.circuit import load_benchmark
from repro.circuit.levelize import input_cone, output_cone
from repro.defects import BridgeFault, extract_faults
from repro.diagnosis import FaultDictionary, Syndrome
from repro.layout import build_layout
from repro.switchsim import SwitchLevelFaultSimulator
from repro.switchsim.strengths import V_HIGH, V_LOW


def bridge_syndrome(sim, circuit, fault):
    """Observed (vector, output) failures of a bridge, via the switch model."""
    a, b = fault.net_a, fault.net_b
    va = sim._rail_or_values(a)
    vb = sim._rail_or_values(b)
    diff = va != vb
    ga = sim._rail_or_drive(a)
    gb = sim._rail_or_drive(b)
    v_node = (ga * va + gb * vb) / (ga + gb)
    low_wins = (v_node <= V_LOW) | (v_node == 0.5)
    a_wins = diff & np.where(va == 1, v_node >= V_HIGH, low_wins)
    b_wins = diff & np.where(vb == 1, v_node >= V_HIGH, low_wins)

    from repro.circuit.levelize import levelize
    from repro.circuit.library import evaluate_gate
    from repro.simulation import LogicSimulator

    logic = LogicSimulator(circuit)
    order = levelize(circuit)
    failures = set()
    for k, vec in enumerate(sim.patterns):
        if not diff[k]:
            continue
        forced = {}
        if a_wins[k]:
            forced[b] = int(va[k])
        elif b_wins[k]:
            forced[a] = int(vb[k])
        else:
            continue  # intermediate level: assume the comparator passes it
        values = dict(zip(circuit.primary_inputs, vec))
        values.update({n: v for n, v in forced.items() if n in values})
        for gate in order:
            operands = [
                forced.get(net, values[net]) if net in forced else values[net]
                for net in gate.inputs
            ]
            value = evaluate_gate(gate.gate_type, operands)
            if gate.output in forced:
                value = forced[gate.output]
            values[gate.output] = value
        good_row = logic.outputs(vec)
        for j, po in enumerate(circuit.primary_outputs):
            if values[po] != good_row[j]:
                failures.add((k + 1, j))
    return Syndrome(frozenset(failures))


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c17"
    circuit = load_benchmark(name)
    design = build_layout(circuit)
    patterns = random_patterns(len(circuit.primary_inputs), 96, seed=31)

    print(f"building the stuck-at fault dictionary for {name}...")
    dictionary = FaultDictionary.build(circuit, patterns)

    # Pick a real extracted bridge between two gate-level nets as the
    # "defect on the chip".
    sim = SwitchLevelFaultSimulator(design, patterns)
    nets = set(circuit.nets)
    bridges = [
        f
        for f in extract_faults(design)
        if isinstance(f, BridgeFault) and f.net_a in nets and f.net_b in nets
    ]
    bridges.sort(key=lambda f: -f.weight)
    culprit = None
    syndrome = Syndrome(frozenset())
    for candidate in bridges:
        syndrome = bridge_syndrome(sim, circuit, candidate)
        if len(syndrome) >= 2:
            culprit = candidate
            break
    assert culprit is not None, "no bridge produced a usable syndrome"

    print(
        f"injected defect: {culprit.describe()} "
        f"({len(syndrome)} failing (vector, output) positions)\n"
    )
    print("top dictionary matches (stuck-at surrogates):")
    suspects = input_cone(circuit, culprit.net_a) | input_cone(circuit, culprit.net_b)
    suspects |= output_cone(circuit, culprit.net_a) | output_cone(circuit, culprit.net_b)
    hit = False
    for match in dictionary.diagnose(syndrome, top=5):
        related = match.fault.net in suspects
        hit = hit or related
        print(
            f"  {str(match.fault):24s} score {match.score:.3f}"
            + ("   <-- on/near the bridged nets" if related else "")
        )
    print(
        "\ndiagnosis localises the defect to the bridged nets' neighbourhood: "
        + ("YES" if hit else "NO")
    )


if __name__ == "__main__":
    main()
