#!/usr/bin/env python3
"""Production-side parameter recovery from fallout data.

The paper closes: "the proposed model can be used, together with DL(T)
experimental curves, to tune assumed defect statistics in a process line."
This example plays the production engineer: given only *observed fallout*
(coverage, shipped-defect-rate) pairs from the tester — here synthesised by
the full simulation pipeline — recover Y, R and theta_max jointly, and read
off what they say about the line.

Run:  python examples/process_tuning.py [benchmark]
      (default: rca8)
"""

import sys

from repro.core import fit_sousa_with_yield, ppm, residual_defect_level
from repro.experiments import ExperimentConfig, format_table, run_experiment


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "rca8"
    result = run_experiment(ExperimentConfig(benchmark=name))

    # "Measured" fallout: the per-k (coverage, DL) points the tester would
    # log as the test program grows.
    points = [
        (result.T_at(k), result.dl_at(k))
        for k in result.sample_ks
        if 0 < result.T_at(k)
    ]
    print(f"fitting (Y, R, theta_max) to {len(points)} fallout points...")
    fit = fit_sousa_with_yield([p[0] for p in points], [p[1] for p in points])

    rows = [
        ["yield Y", f"{fit.yield_value:.4f}", f"{result.config.target_yield:.4f}"],
        ["susceptibility ratio R", f"{fit.susceptibility_ratio:.2f}", "—"],
        ["theta_max", f"{fit.theta_max:.4f}", f"{result.theta_max:.4f}"],
    ]
    print(
        "\n"
        + format_table(
            ["parameter", "recovered from fallout", "ground truth"],
            rows,
        )
    )

    print("\nwhat the parameters say about the line:")
    if fit.susceptibility_ratio > 1.1:
        print(
            f"  R = {fit.susceptibility_ratio:.2f} > 1: bridging defects dominate "
            "(positive-photoresist signature) — stuck-at coverage targets can be "
            "relaxed relative to Williams-Brown."
        )
    else:
        print(
            f"  R = {fit.susceptibility_ratio:.2f} <= 1: opens carry unusual weight "
            "- investigate contact/via and metallisation steps."
        )
    floor = residual_defect_level(fit.yield_value, fit.theta_max)
    print(
        f"  theta_max = {fit.theta_max:.3f}: the voltage test program leaves a "
        f"{ppm(floor):.0f} ppm residual — budget an IDDQ or delay screen."
    )


if __name__ == "__main__":
    main()
