"""Command-line entry point: run the paper's experiment on a benchmark.

Usage::

    python -m repro [benchmark] [--svg layout.svg] [--technique voltage]
                    [--seed N] [--max-random-patterns N]
                    [--profile] [--trace run.jsonl] [--trace-format jsonl]
                    [--progress] [--events events.jsonl]
                    [--checkpoint-dir DIR] [--resume]
    python -m repro analyze [circuit ...] [--quick] [--json FILE]
                    [--fail-on-error]
    python -m repro obs {list,diff,check-bench} ...

The default command prints the coverage-growth table (fig. 4), the
defect-level comparison (fig. 5) and the fitted eq.-11 parameters;
optionally renders the generated layout to SVG.  ``--profile`` prints a
per-stage timing tree and a metric table after the run; ``--trace FILE``
appends a JSON-lines run manifest (config hash, stage durations, metrics,
fitted parameters) to ``FILE``, or — with ``--trace-format chrome`` —
writes a Chrome/Perfetto trace instead (one lane per worker process; load
it in ``chrome://tracing`` or https://ui.perfetto.dev).  ``--progress``
renders live progress on stderr (patterns applied, faults remaining,
detection rate, chunk completions, ETA) and ``--events FILE`` streams
every pipeline event to FILE as JSON lines.  ``--checkpoint-dir DIR``
persists every completed pipeline stage under ``DIR`` (keyed by
configuration hash) and ``--resume`` restores the stages a previous,
interrupted run already completed; a corrupt checkpoint exits non-zero
with a one-line message.

``analyze`` runs the static-analysis subsystem (lint, SCOAP testability,
implication-based untestable-fault screening) over one or more built-in
circuits without simulating anything; ``--quick`` skips the implication
screen, ``--json FILE`` writes the machine-readable report, and
``--fail-on-error`` exits non-zero when any circuit has ERROR-severity
findings (the CI gate).

``obs`` inspects recorded history (see :mod:`repro.obs.cli`): ``list``
tabulates the runs in trace files, ``diff`` compares two runs field by
field, and ``check-bench`` gates fresh ``BENCH_*.json`` timings against a
committed baseline.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.circuit.iscas import BENCHMARKS
from repro.core import ppm, williams_brown
from repro.experiments import (
    ExperimentConfig,
    cache_info,
    format_table,
    run_experiment,
)
from repro.resilience import CheckpointError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the DATE'94 defect-level experiment.",
    )
    parser.add_argument(
        "benchmark",
        nargs="?",
        default="c432",
        choices=sorted(BENCHMARKS),
        help="circuit to run (default: c432)",
    )
    parser.add_argument(
        "--technique",
        default="voltage",
        choices=["voltage", "voltage-strict", "iddq", "either"],
        help="detection technique for theta (default: voltage)",
    )
    parser.add_argument(
        "--yield",
        dest="target_yield",
        type=float,
        default=0.75,
        help="yield to scale the fault weights to (default: 0.75)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=ExperimentConfig.seed,
        help=f"PRNG seed for the random prefix (default: {ExperimentConfig.seed})",
    )
    parser.add_argument(
        "--max-random-patterns",
        type=int,
        default=ExperimentConfig.max_random_patterns,
        help=(
            "cap on random vectors before the PODEM top-off "
            f"(default: {ExperimentConfig.max_random_patterns})"
        ),
    )
    parser.add_argument(
        "--svg", metavar="FILE", help="also render the layout to this SVG file"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing tree and metric table after the run",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help=(
            "write a trace to FILE: a JSON-lines run manifest (default "
            "format, appended) or a Chrome trace (--trace-format chrome)"
        ),
    )
    parser.add_argument(
        "--trace-format",
        default="jsonl",
        choices=["jsonl", "chrome"],
        help=(
            "trace file format: 'jsonl' run manifest (default) or 'chrome' "
            "trace-event JSON for chrome://tracing / Perfetto"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render live progress (ETA, detection rate, chunks) on stderr",
    )
    parser.add_argument(
        "--events",
        metavar="FILE",
        help="stream pipeline events to FILE as JSON lines (tailable)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help=(
            "persist each completed pipeline stage under DIR (keyed by the "
            "configuration hash) so an interrupted run can be resumed"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "restore stages already checkpointed by an identical "
            "configuration instead of recomputing them "
            "(requires --checkpoint-dir)"
        ),
    )
    return parser


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Static netlist analysis: lint, SCOAP, untestable faults.",
    )
    parser.add_argument(
        "circuits",
        nargs="*",
        metavar="circuit",
        help="circuits to analyze (default: every built-in benchmark)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the implication-based untestable-fault screen",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the full machine-readable report to FILE",
    )
    parser.add_argument(
        "--fail-on-error",
        action="store_true",
        help="exit 1 when any circuit has ERROR-severity lint findings",
    )
    return parser


def analyze_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro analyze``."""
    import json

    from repro.analysis import analyze_circuit
    from repro.circuit.iscas import load_benchmark

    args = build_analyze_parser().parse_args(argv)
    names = args.circuits or sorted(BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        print(
            f"error: unknown circuit(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(BENCHMARKS))})",
            file=sys.stderr,
        )
        return 2

    reports = []
    any_errors = False
    for name in names:
        circuit = load_benchmark(name)
        result = analyze_circuit(circuit, quick=args.quick)
        reports.append(result.to_dict())
        any_errors = any_errors or not result.ok
        print(result.lint.render_text())
        if result.scoap is not None:
            from repro.analysis import UNOBSERVABLE

            hardest = ", ".join(
                f"{net} ({'unobservable' if score >= UNOBSERVABLE else score})"
                for net, score in result.scoap.hardest_nets(3)
            )
            print(f"  scoap: hardest nets {hardest}")
        if result.untestable is not None:
            n_flagged = len(result.untestable.untestable)
            print(
                f"  untestable: {n_flagged} of "
                f"{result.untestable.n_screened} faults proved untestable"
            )
            for fault in result.untestable.untestable[:10]:
                reason = result.untestable.reasons[fault]
                print(f"    {fault}  [{reason}]")
            if n_flagged > 10:
                print(f"    ... and {n_flagged - 10} more")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as sink:
            json.dump({"circuits": reports}, sink, indent=2, sort_keys=True)
            sink.write("\n")
        print(f"report written to {args.json}")

    if args.fail_on_error and any_errors:
        print("error: ERROR-severity lint findings present", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        return analyze_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.cli import obs_main

        return obs_main(argv[1:])
    args = build_parser().parse_args(argv)

    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.trace_format == "chrome" and not args.trace:
        print(
            "error: --trace-format chrome requires --trace FILE",
            file=sys.stderr,
        )
        return 2

    if args.trace:
        # Fail fast on an unwritable sink rather than after a full run.
        try:
            with open(args.trace, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace file {args.trace}: {exc}", file=sys.stderr)
            return 2

    instrumented = args.profile or args.trace
    if instrumented:
        collector, metrics = obs.enable()

    # The event bus runs whenever any consumer wants live events: the
    # progress renderer, the JSONL event stream, or the Chrome exporter
    # (which places retry/checkpoint instant markers on the timeline).
    chrome = bool(args.trace) and args.trace_format == "chrome"
    streaming = args.progress or bool(args.events) or chrome
    renderer = event_sink = marker_sink = None
    if streaming:
        bus = obs.enable_events()
        if args.progress:
            renderer = obs.ProgressRenderer()
            bus.subscribe(renderer)
        if args.events:
            try:
                event_sink = obs.JsonlEventSink(args.events, bus)
            except OSError as exc:
                print(
                    f"error: cannot write events file {args.events}: {exc}",
                    file=sys.stderr,
                )
                obs.disable_events()
                if instrumented:
                    obs.disable()
                return 2
        if chrome:
            marker_sink = obs.ListSink(bus)

    try:
        config = ExperimentConfig(
            benchmark=args.benchmark,
            target_yield=args.target_yield,
            detection=args.technique,
            seed=args.seed,
            max_random_patterns=args.max_random_patterns,
        )
    except ValueError as exc:
        print(f"error: invalid configuration: {exc}", file=sys.stderr)
        return 2
    print(f"running pipeline on {args.benchmark} (Y = {args.target_yield})...")
    hits_before = cache_info().hits
    try:
        result = run_experiment(
            config,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            # From the CLI a corrupt checkpoint is a hard error: exit
            # non-zero with one line rather than silently recomputing work
            # the user explicitly asked to reuse.
            strict_checkpoints=bool(args.checkpoint_dir),
        )
    except CheckpointError as exc:
        print(f"error: checkpoint failure: {exc}", file=sys.stderr)
        if streaming:
            if renderer is not None:
                renderer.close()
            if event_sink is not None:
                event_sink.close()
            obs.disable_events()
        if instrumented:
            obs.disable()
        return 2
    if args.checkpoint_dir:
        restored = ", ".join(result.stages_restored) or "none"
        recomputed = ", ".join(result.stages_recomputed) or "none"
        print(f"checkpoints: restored {restored}; recomputed {recomputed}")
        cache_status = None
    else:
        cache_status = "hit" if cache_info().hits > hits_before else "miss"
        print(
            f"pipeline cache: {cache_status} "
            + (
                "(reusing memoised result)"
                if cache_status == "hit"
                else "(full run)"
            )
        )

    if args.svg:
        from repro.layout.render import render_svg

        render_svg(result.design, path=args.svg)
        print(f"layout written to {args.svg}")

    rows = []
    y = args.target_yield
    for k, T, theta, gamma, dl in result.series():
        rows.append(
            [
                k,
                f"{T:.4f}",
                f"{theta:.4f}",
                f"{gamma:.4f}",
                f"{100 * dl:.2f}%",
                f"{100 * williams_brown(y, T):.2f}%",
            ]
        )
    print(
        "\n"
        + format_table(
            ["k", "T(k)", "theta(k)", "Gamma(k)", "DL(theta)", "W-B DL(T)"],
            rows,
            title="Coverage growth and defect level",
        )
    )

    fit = result.fit()
    final_dl = result.dl_at(result.sample_ks[-1])
    print(
        f"\nfit of eq. 11:  R = {fit.susceptibility_ratio:.2f}, "
        f"theta_max = {fit.theta_max:.3f}  (paper: 1.9 / 0.96)"
    )
    print(
        f"measured theta_max = {result.theta_max:.3f}; residual DL = "
        f"{ppm(final_dl):.0f} ppm"
    )

    if streaming:
        # Close the live consumers before the post-run reports print.
        if renderer is not None:
            renderer.close()
        if event_sink is not None:
            event_sink.close()
            print(
                f"{event_sink.written} events streamed to {args.events}"
            )
        obs.disable_events()

    if args.profile:
        print("\n" + obs.render_profile(collector, metrics, engine=result.engine))

    if chrome:
        n_events = obs.write_chrome_trace(
            args.trace,
            collector,
            marker_sink.events if marker_sink is not None else None,
        )
        print(
            f"\nchrome trace ({n_events} events) written to {args.trace}; "
            "load it in chrome://tracing or https://ui.perfetto.dev"
        )
    elif args.trace:
        manifest = obs.RunManifest.from_run(
            config,
            collector=collector,
            registry=metrics,
            cache=cache_status,
            engine=result.engine,
            resilience=result.resilience_info(),
            results={
                "R": fit.susceptibility_ratio,
                "theta_max_fit": fit.theta_max,
                "fit_residual": fit.residual,
                "theta_max_measured": result.theta_max,
                "final_T": result.final_T,
                "final_theta": result.theta_at(result.sample_ks[-1]),
                "final_DL": final_dl,
                "n_patterns": len(result.test_patterns),
                "n_random": result.n_random,
                "n_redundant": len(result.redundant_faults),
                "n_untestable_static": len(result.static_untestable),
            },
        )
        n_records = manifest.write(args.trace)
        print(f"\nmanifest ({n_records} records) appended to {args.trace}")

    if instrumented:
        obs.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
