"""Command-line entry point: run the paper's experiment on a benchmark.

Usage::

    python -m repro [benchmark] [--svg layout.svg] [--technique voltage]
                    [--seed N] [--max-random-patterns N]
                    [--profile] [--trace run.jsonl]

Prints the coverage-growth table (fig. 4), the defect-level comparison
(fig. 5) and the fitted eq.-11 parameters; optionally renders the generated
layout to SVG.  ``--profile`` prints a per-stage timing tree and a metric
table after the run; ``--trace FILE`` appends a JSON-lines run manifest
(config hash, stage durations, metrics, fitted parameters) to ``FILE``.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.circuit.iscas import BENCHMARKS
from repro.core import ppm, williams_brown
from repro.experiments import (
    ExperimentConfig,
    cache_info,
    format_table,
    run_experiment,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the DATE'94 defect-level experiment.",
    )
    parser.add_argument(
        "benchmark",
        nargs="?",
        default="c432",
        choices=sorted(BENCHMARKS),
        help="circuit to run (default: c432)",
    )
    parser.add_argument(
        "--technique",
        default="voltage",
        choices=["voltage", "voltage-strict", "iddq", "either"],
        help="detection technique for theta (default: voltage)",
    )
    parser.add_argument(
        "--yield",
        dest="target_yield",
        type=float,
        default=0.75,
        help="yield to scale the fault weights to (default: 0.75)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=ExperimentConfig.seed,
        help=f"PRNG seed for the random prefix (default: {ExperimentConfig.seed})",
    )
    parser.add_argument(
        "--max-random-patterns",
        type=int,
        default=ExperimentConfig.max_random_patterns,
        help=(
            "cap on random vectors before the PODEM top-off "
            f"(default: {ExperimentConfig.max_random_patterns})"
        ),
    )
    parser.add_argument(
        "--svg", metavar="FILE", help="also render the layout to this SVG file"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing tree and metric table after the run",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="append a JSON-lines run manifest to FILE",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.trace:
        # Fail fast on an unwritable sink rather than after a full run.
        try:
            with open(args.trace, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace file {args.trace}: {exc}", file=sys.stderr)
            return 2

    instrumented = args.profile or args.trace
    if instrumented:
        collector, metrics = obs.enable()

    config = ExperimentConfig(
        benchmark=args.benchmark,
        target_yield=args.target_yield,
        detection=args.technique,
        seed=args.seed,
        max_random_patterns=args.max_random_patterns,
    )
    print(f"running pipeline on {args.benchmark} (Y = {args.target_yield})...")
    hits_before = cache_info().hits
    result = run_experiment(config)
    cache_status = "hit" if cache_info().hits > hits_before else "miss"
    print(
        f"pipeline cache: {cache_status} "
        + (
            "(reusing memoised result)"
            if cache_status == "hit"
            else "(full run)"
        )
    )

    if args.svg:
        from repro.layout.render import render_svg

        render_svg(result.design, path=args.svg)
        print(f"layout written to {args.svg}")

    rows = []
    y = args.target_yield
    for k, T, theta, gamma, dl in result.series():
        rows.append(
            [
                k,
                f"{T:.4f}",
                f"{theta:.4f}",
                f"{gamma:.4f}",
                f"{100 * dl:.2f}%",
                f"{100 * williams_brown(y, T):.2f}%",
            ]
        )
    print(
        "\n"
        + format_table(
            ["k", "T(k)", "theta(k)", "Gamma(k)", "DL(theta)", "W-B DL(T)"],
            rows,
            title="Coverage growth and defect level",
        )
    )

    fit = result.fit()
    final_dl = result.dl_at(result.sample_ks[-1])
    print(
        f"\nfit of eq. 11:  R = {fit.susceptibility_ratio:.2f}, "
        f"theta_max = {fit.theta_max:.3f}  (paper: 1.9 / 0.96)"
    )
    print(
        f"measured theta_max = {result.theta_max:.3f}; residual DL = "
        f"{ppm(final_dl):.0f} ppm"
    )

    if args.profile:
        print("\n" + obs.render_profile(collector, metrics))

    if args.trace:
        manifest = obs.RunManifest.from_run(
            config,
            collector=collector,
            registry=metrics,
            cache=cache_status,
            engine=result.engine,
            results={
                "R": fit.susceptibility_ratio,
                "theta_max_fit": fit.theta_max,
                "fit_residual": fit.residual,
                "theta_max_measured": result.theta_max,
                "final_T": result.final_T,
                "final_theta": result.theta_at(result.sample_ks[-1]),
                "final_DL": final_dl,
                "n_patterns": len(result.test_patterns),
                "n_random": result.n_random,
            },
        )
        n_records = manifest.write(args.trace)
        print(f"\nmanifest ({n_records} records) appended to {args.trace}")

    if instrumented:
        obs.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
