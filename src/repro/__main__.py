"""Command-line entry point: run the paper's experiment on a benchmark.

Usage::

    python -m repro [benchmark] [--svg layout.svg] [--technique voltage]
                    [--seed N] [--max-random-patterns N]
                    [--profile] [--trace run.jsonl] [--trace-format jsonl]
                    [--attribution] [--attribution-memory]
                    [--progress] [--events events.jsonl]
                    [--checkpoint-dir DIR] [--resume]
    python -m repro analyze [circuit ...] [--quick] [--json FILE]
                    [--fail-on-error]
    python -m repro obs {list,diff,check-bench,html} ...
    python -m repro campaign {run,resume,status,trace,report,gc,compact} ...

The default command prints the coverage-growth table (fig. 4), the
defect-level comparison (fig. 5) and the fitted eq.-11 parameters;
optionally renders the generated layout to SVG.  ``--profile`` prints a
per-stage timing tree and a metric table after the run; ``--trace FILE``
appends a JSON-lines run manifest (config hash, stage durations, metrics,
fitted parameters) to ``FILE``, or — with ``--trace-format chrome`` —
writes a Chrome/Perfetto trace instead (one lane per worker process; load
it in ``chrome://tracing`` or https://ui.perfetto.dev).  ``--attribution``
turns on the cost-attribution layer (:mod:`repro.obs.attribution`): kernel
work counters by pipeline stage and cone-size bucket, rendered in the
``--profile`` report and recorded into the run manifest;
``--attribution-memory`` additionally traces each stage's ``tracemalloc``
peak (slower).  ``--progress``
renders live progress on stderr (patterns applied, faults remaining,
detection rate, chunk completions, ETA) and ``--events FILE`` streams
every pipeline event to FILE as JSON lines.  ``--checkpoint-dir DIR``
persists every completed pipeline stage under ``DIR`` (keyed by
configuration hash) and ``--resume`` restores the stages a previous,
interrupted run already completed; a corrupt checkpoint exits non-zero
with a one-line message.

``analyze`` runs the static-analysis subsystem (lint, SCOAP testability,
implication-based untestable-fault screening) over one or more built-in
circuits without simulating anything; ``--quick`` skips the implication
screen, ``--json FILE`` writes the machine-readable report, and
``--fail-on-error`` exits non-zero when any circuit has ERROR-severity
findings (the CI gate).

``obs`` inspects recorded history (see :mod:`repro.obs.cli`): ``list``
tabulates the runs in trace files, ``diff`` compares two runs field by
field, and ``check-bench`` gates fresh ``BENCH_*.json`` timings against a
committed baseline.

``campaign`` orchestrates *many* experiments as one crash-safe unit (see
:mod:`repro.campaign.cli`): a JSON spec expands into content-addressed
jobs, a write-ahead journal makes ``kill -9`` recoverable via ``campaign
resume``, and completed configurations are served from the result cache
with zero recomputation.  ``campaign run --progress`` renders a live
per-job fleet table, ``status --follow`` watches a campaign read-only from
another terminal, ``trace`` exports a Chrome/Perfetto trace built from the
journal alone (one lane group per job), and ``report`` renders a
self-contained HTML sweep report with gantt, sweep-axis, cache-economics
and regression panels.

A single run interrupted with Ctrl-C exits ``130`` after flushing its
stage checkpoints (when ``--checkpoint-dir`` is active) and appending an
interrupted-run manifest line (when ``--trace`` is active), with a
one-line hint on how to resume.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.circuit.iscas import BENCHMARKS
from repro.obs import attribution
from repro.core import ppm, williams_brown
from repro.experiments import (
    ExperimentConfig,
    cache_info,
    format_table,
    run_experiment,
)
from repro.resilience import CheckpointError
from repro.simulation import engines


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the DATE'94 defect-level experiment.",
    )
    parser.add_argument(
        "benchmark",
        nargs="?",
        default="c432",
        choices=sorted(BENCHMARKS),
        help="circuit to run (default: c432)",
    )
    parser.add_argument(
        "--technique",
        default="voltage",
        choices=["voltage", "voltage-strict", "iddq", "either"],
        help="detection technique for theta (default: voltage)",
    )
    parser.add_argument(
        "--yield",
        dest="target_yield",
        type=float,
        default=0.75,
        help="yield to scale the fault weights to (default: 0.75)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=ExperimentConfig.seed,
        help=f"PRNG seed for the random prefix (default: {ExperimentConfig.seed})",
    )
    parser.add_argument(
        "--max-random-patterns",
        type=int,
        default=ExperimentConfig.max_random_patterns,
        help=(
            "cap on random vectors before the PODEM top-off "
            f"(default: {ExperimentConfig.max_random_patterns})"
        ),
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=list(engines.ENGINE_NAMES),
        help=(
            "fault-simulation engine: 'python' wide-word reference, "
            "'numpy' uint64 bitslice kernel, or 'auto' to pick numpy "
            "when the platform preflight passes (default: auto; the "
            "choice and its reason are recorded in the run manifest)"
        ),
    )
    parser.add_argument(
        "--fault-sim-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "total pool attempts per fault chunk before serial salvage "
            "(default: the retry policy's budget of 2)"
        ),
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "per-chunk deadline in seconds for the parallel fault-sim "
            "stage (default: no deadline)"
        ),
    )
    parser.add_argument(
        "--svg", metavar="FILE", help="also render the layout to this SVG file"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing tree and metric table after the run",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help=(
            "write a trace to FILE: a JSON-lines run manifest (default "
            "format, appended) or a Chrome trace (--trace-format chrome)"
        ),
    )
    parser.add_argument(
        "--trace-format",
        default="jsonl",
        choices=["jsonl", "chrome"],
        help=(
            "trace file format: 'jsonl' run manifest (default) or 'chrome' "
            "trace-event JSON for chrome://tracing / Perfetto"
        ),
    )
    parser.add_argument(
        "--attribution",
        action="store_true",
        help=(
            "collect kernel cost attribution (gate-evals by stage and cone "
            "bucket, pattern bytes, fault-drop drain); rendered by "
            "--profile and recorded in the --trace manifest"
        ),
    )
    parser.add_argument(
        "--attribution-memory",
        action="store_true",
        help=(
            "with --attribution: also trace each pipeline stage's "
            "tracemalloc memory peak (slows allocation; implies "
            "--attribution)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render live progress (ETA, detection rate, chunks) on stderr",
    )
    parser.add_argument(
        "--events",
        metavar="FILE",
        help="stream pipeline events to FILE as JSON lines (tailable)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help=(
            "persist each completed pipeline stage under DIR (keyed by the "
            "configuration hash) so an interrupted run can be resumed"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "restore stages already checkpointed by an identical "
            "configuration instead of recomputing them "
            "(requires --checkpoint-dir)"
        ),
    )
    return parser


#: Version of the ``analyze --json`` / ``--certificates`` payload shape.
#: Bumped when keys are renamed or removed; additions keep the version.
_ANALYZE_SCHEMA_VERSION = 2


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Static netlist analysis: lint, SCOAP, untestable faults.",
    )
    parser.add_argument(
        "circuits",
        nargs="*",
        metavar="circuit",
        help="circuits to analyze (default: every built-in benchmark)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the implication-based untestable-fault screen",
    )
    parser.add_argument(
        "--prove",
        action="store_true",
        help=(
            "run the proof-carrying redundancy prover on top of the screen "
            "(static + recursive learning; every verdict carries a "
            "certificate re-verified by the independent checker)"
        ),
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=2,
        metavar="N",
        help="recursive-learning depth bound for --prove (default: 2)",
    )
    parser.add_argument(
        "--certificates",
        metavar="FILE",
        help="with --prove, write every checked certificate to FILE as JSON",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the full machine-readable report to FILE",
    )
    parser.add_argument(
        "--fail-on-error",
        action="store_true",
        help="exit 1 when any circuit has ERROR-severity lint findings",
    )
    return parser


def analyze_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro analyze``."""
    import json

    from repro.analysis import analyze_circuit
    from repro.circuit.iscas import load_benchmark

    args = build_analyze_parser().parse_args(argv)
    names = args.circuits or sorted(BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        print(
            f"error: unknown circuit(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(BENCHMARKS))})",
            file=sys.stderr,
        )
        return 2

    if args.depth < 0:
        print("error: --depth must be non-negative", file=sys.stderr)
        return 2
    if args.certificates and not args.prove:
        print("error: --certificates requires --prove", file=sys.stderr)
        return 2

    reports = []
    certificates: dict[str, list[dict[str, object]]] = {}
    any_errors = False
    for name in names:
        circuit = load_benchmark(name)
        result = analyze_circuit(
            circuit,
            quick=args.quick,
            prove=args.prove,
            prover_depth=args.depth,
        )
        reports.append(result.to_dict())
        if result.prover is not None:
            certificates[name] = list(result.prover.certificates)
        any_errors = any_errors or not result.ok
        print(result.lint.render_text())
        if result.scoap is not None:
            from repro.analysis import UNOBSERVABLE

            hardest = ", ".join(
                f"{net} ({'unobservable' if score >= UNOBSERVABLE else score})"
                for net, score in result.scoap.hardest_nets(3)
            )
            print(f"  scoap: hardest nets {hardest}")
        if result.untestable is not None:
            n_flagged = len(result.untestable.untestable)
            print(
                f"  untestable: {n_flagged} of "
                f"{result.untestable.n_screened} faults proved untestable"
            )
            for fault in result.untestable.untestable[:10]:
                reason = result.untestable.reasons[fault]
                print(f"    {fault}  [{reason}]")
            if n_flagged > 10:
                print(f"    ... and {n_flagged - 10} more")
        if result.prover is not None:
            prover = result.prover
            methods = ", ".join(
                f"{m}={n}" for m, n in sorted(prover.by_method.items())
            )
            print(
                f"  prover: {len(prover.proved)} of {prover.n_screened} "
                f"faults proved untestable (depth {prover.depth}"
                f"{', ' + methods if methods else ''}); "
                f"{len(prover.certificates)} certificates checked, "
                f"{prover.certs_failed} failed"
            )

    if args.certificates:
        with open(args.certificates, "w", encoding="utf-8") as sink:
            json.dump(
                {
                    "schema_version": _ANALYZE_SCHEMA_VERSION,
                    "certificates": certificates,
                },
                sink,
                indent=1,
                sort_keys=True,
            )
            sink.write("\n")
        n_certs = sum(len(c) for c in certificates.values())
        print(f"{n_certs} certificates written to {args.certificates}")

    if args.json:
        from repro.simulation import engines

        preflight_ok, preflight_reason = engines.numpy_preflight()
        payload = {
            "schema_version": _ANALYZE_SCHEMA_VERSION,
            "engine_preflight": {
                "numpy": {"ok": preflight_ok, "reason": preflight_reason},
                "names": sorted(engines.ENGINE_NAMES),
            },
            "circuits": reports,
        }
        with open(args.json, "w", encoding="utf-8") as sink:
            json.dump(payload, sink, indent=2, sort_keys=True)
            sink.write("\n")
        print(f"report written to {args.json}")

    if args.fail_on_error and any_errors:
        print("error: ERROR-severity lint findings present", file=sys.stderr)
        return 1
    return 0


def _prover_summary(result) -> dict[str, object] | None:
    """Redundancy-prover facts for the run manifest (None when it didn't run).

    Alongside the proved counts this records the PODEM search statistics so
    the manifest shows what the learned implications bought the ATPG stage.
    """
    analysis = result.analysis
    if analysis is None or analysis.prover is None:
        return None
    prover = analysis.prover
    return {
        "n_proved": len(prover.proved),
        "n_screened": prover.n_screened,
        "depth": prover.depth,
        "by_method": dict(prover.by_method),
        "n_learned": prover.n_learned,
        "certs_failed": prover.certs_failed,
        "podem": dict(result.podem_stats),
    }


#: n-detection depths beyond this collapse into one ">= cap" bin.
_N_DETECTION_CAP = 16


def _build_curves(result, fit) -> dict[str, object]:
    """Sampled per-run curves for the manifest (dashboard source data).

    The dashboard renderer (:mod:`repro.obs.html`) is stdlib-only and must
    not import :mod:`repro.core` (numpy/scipy), so the fitted eq.-11 DL(T)
    curve is sampled *here*, where the fit object already exists, and stored
    as plain points.
    """
    y = result.config.target_yield
    ks: list[int] = []
    t_series: list[float] = []
    theta_series: list[float] = []
    dl_series: list[float] = []
    for k, t, theta, _gamma, dl in result.series():
        ks.append(k)
        t_series.append(round(t, 6))
        theta_series.append(round(theta, 6))
        dl_series.append(round(dl, 9))
    t_lo = min(t_series) if t_series else 0.0
    fit_t = [t_lo + (1.0 - t_lo) * i / 40.0 for i in range(41)]
    fit_dl = [round(float(fit.predict(y, t)), 9) for t in fit_t]
    # n-detection depth histogram (Pomeranz/Reddy): how many faults the
    # sequence detected exactly d times; depth 0 is the undetected set.
    stuck = result.stuck_result
    depth_counts = [0] * (_N_DETECTION_CAP + 1)
    for count in stuck.detection_counts.values():
        depth_counts[min(count, _N_DETECTION_CAP)] += 1
    depth_counts[0] += len(stuck.faults) - len(stuck.detection_counts)
    return {
        "k": ks,
        "T": t_series,
        "theta": theta_series,
        "DL": dl_series,
        "fit_T": [round(t, 6) for t in fit_t],
        "fit_DL": fit_dl,
        "n_detection": {
            "depth_cap": _N_DETECTION_CAP,
            "counts": depth_counts,
            "coverage_ge": [
                round(stuck.n_detection_coverage(n), 6)
                for n in range(1, 11)
            ],
        },
    }


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        return analyze_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.cli import obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import campaign_main

        return campaign_main(argv[1:])
    args = build_parser().parse_args(argv)

    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.trace_format == "chrome" and not args.trace:
        print(
            "error: --trace-format chrome requires --trace FILE",
            file=sys.stderr,
        )
        return 2
    if args.engine == "numpy":
        # Fail the explicit request up front with one line instead of a
        # traceback mid-pipeline; ``auto`` degrades to python silently (the
        # manifest records the reason).
        ok, reason = engines.numpy_preflight()
        if not ok:
            print(
                f"error: --engine numpy unavailable: {reason}",
                file=sys.stderr,
            )
            return 2

    if args.trace:
        # Fail fast on an unwritable sink rather than after a full run.
        try:
            with open(args.trace, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace file {args.trace}: {exc}", file=sys.stderr)
            return 2

    instrumented = args.profile or args.trace
    if instrumented:
        collector, metrics = obs.enable()

    attributing = args.attribution or args.attribution_memory
    if attributing:
        attribution.enable(memory=args.attribution_memory)

    # The event bus runs whenever any consumer wants live events: the
    # progress renderer, the JSONL event stream, or the Chrome exporter
    # (which places retry/checkpoint instant markers on the timeline).
    chrome = bool(args.trace) and args.trace_format == "chrome"
    streaming = args.progress or bool(args.events) or chrome
    renderer = event_sink = marker_sink = None
    if streaming:
        bus = obs.enable_events()
        if args.progress:
            renderer = obs.ProgressRenderer()
            bus.subscribe(renderer)
        if args.events:
            try:
                event_sink = obs.JsonlEventSink(args.events, bus)
            except OSError as exc:
                print(
                    f"error: cannot write events file {args.events}: {exc}",
                    file=sys.stderr,
                )
                obs.disable_events()
                if instrumented:
                    obs.disable()
                if attributing:
                    attribution.disable()
                return 2
        if chrome:
            marker_sink = obs.ListSink(bus)

    try:
        config = ExperimentConfig(
            benchmark=args.benchmark,
            target_yield=args.target_yield,
            detection=args.technique,
            seed=args.seed,
            max_random_patterns=args.max_random_patterns,
            engine=args.engine,
            fault_sim_retries=args.fault_sim_retries,
            chunk_timeout=args.chunk_timeout,
        )
    except ValueError as exc:
        print(f"error: invalid configuration: {exc}", file=sys.stderr)
        return 2
    print(f"running pipeline on {args.benchmark} (Y = {args.target_yield})...")
    hits_before = cache_info().hits
    def close_consumers() -> None:
        if streaming:
            if renderer is not None:
                renderer.close()
            if event_sink is not None:
                event_sink.close()
            obs.disable_events()
        if instrumented:
            obs.disable()
        if attributing:
            attribution.disable()

    try:
        result = run_experiment(
            config,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            # From the CLI a corrupt checkpoint is a hard error: exit
            # non-zero with one line rather than silently recomputing work
            # the user explicitly asked to reuse.
            strict_checkpoints=bool(args.checkpoint_dir),
        )
    except CheckpointError as exc:
        print(f"error: checkpoint failure: {exc}", file=sys.stderr)
        close_consumers()
        return 2
    except KeyboardInterrupt:
        # Completed stages are already checkpointed (each stage flushes at
        # its boundary), so all that remains is to record the interruption
        # and say how to pick the run back up.
        print("\ninterrupted", file=sys.stderr)
        if args.trace and args.trace_format == "jsonl":
            try:
                manifest = obs.RunManifest.from_run(
                    config,
                    collector=collector if instrumented else None,
                    registry=metrics if instrumented else None,
                    results={"interrupted": True},
                )
                manifest.write(args.trace)
                print(
                    f"interrupted-run manifest appended to {args.trace}",
                    file=sys.stderr,
                )
            except OSError as exc:
                print(
                    f"warning: cannot append manifest {args.trace}: {exc}",
                    file=sys.stderr,
                )
        if args.checkpoint_dir:
            print(
                "completed stages are checkpointed; resume with: "
                f"python -m repro {args.benchmark} "
                f"--checkpoint-dir {args.checkpoint_dir} --resume",
                file=sys.stderr,
            )
        else:
            print(
                "hint: run with --checkpoint-dir DIR to make interrupted "
                "runs resumable (--resume)",
                file=sys.stderr,
            )
        close_consumers()
        return 130
    if args.checkpoint_dir:
        restored = ", ".join(result.stages_restored) or "none"
        recomputed = ", ".join(result.stages_recomputed) or "none"
        print(f"checkpoints: restored {restored}; recomputed {recomputed}")
        cache_status = None
    else:
        cache_status = "hit" if cache_info().hits > hits_before else "miss"
        print(
            f"pipeline cache: {cache_status} "
            + (
                "(reusing memoised result)"
                if cache_status == "hit"
                else "(full run)"
            )
        )

    if args.svg:
        from repro.layout.render import render_svg

        render_svg(result.design, path=args.svg)
        print(f"layout written to {args.svg}")

    rows = []
    y = args.target_yield
    for k, T, theta, gamma, dl in result.series():
        rows.append(
            [
                k,
                f"{T:.4f}",
                f"{theta:.4f}",
                f"{gamma:.4f}",
                f"{100 * dl:.2f}%",
                f"{100 * williams_brown(y, T):.2f}%",
            ]
        )
    print(
        "\n"
        + format_table(
            ["k", "T(k)", "theta(k)", "Gamma(k)", "DL(theta)", "W-B DL(T)"],
            rows,
            title="Coverage growth and defect level",
        )
    )

    fit = result.fit()
    final_dl = result.dl_at(result.sample_ks[-1])
    print(
        f"\nfit of eq. 11:  R = {fit.susceptibility_ratio:.2f}, "
        f"theta_max = {fit.theta_max:.3f}  (paper: 1.9 / 0.96)"
    )
    print(
        f"measured theta_max = {result.theta_max:.3f}; residual DL = "
        f"{ppm(final_dl):.0f} ppm"
    )

    if streaming:
        # Close the live consumers before the post-run reports print.
        if renderer is not None:
            renderer.close()
        if event_sink is not None:
            event_sink.close()
            print(
                f"{event_sink.written} events streamed to {args.events}"
            )
        obs.disable_events()

    attribution_snapshot: dict[str, object] = {}
    if attributing:
        attr = attribution.collector()
        if attr is not None:
            if instrumented:
                pipeline_wall = collector.stage_timings().get(
                    "pipeline.run", 0.0
                )
                if pipeline_wall:
                    reconcile = attr.reconcile(pipeline_wall)
            attribution_snapshot = attr.snapshot()
            if instrumented and pipeline_wall:
                attribution_snapshot["reconcile"] = reconcile

    if args.profile:
        print("\n" + obs.render_profile(collector, metrics, engine=result.engine))
        if attribution_snapshot:
            from repro.obs.report import render_attribution

            print("\n" + render_attribution(attribution_snapshot))

    if chrome:
        n_events = obs.write_chrome_trace(
            args.trace,
            collector,
            marker_sink.events if marker_sink is not None else None,
        )
        print(
            f"\nchrome trace ({n_events} events) written to {args.trace}; "
            "load it in chrome://tracing or https://ui.perfetto.dev"
        )
    elif args.trace:
        manifest = obs.RunManifest.from_run(
            config,
            collector=collector,
            registry=metrics,
            cache=cache_status,
            engine=result.engine,
            resilience=result.resilience_info(),
            curves=_build_curves(result, fit),
            attribution=attribution_snapshot,
            results={
                "R": fit.susceptibility_ratio,
                "theta_max_fit": fit.theta_max,
                "fit_residual": fit.residual,
                "theta_max_measured": result.theta_max,
                "final_T": result.final_T,
                "final_theta": result.theta_at(result.sample_ks[-1]),
                "final_DL": final_dl,
                "n_patterns": len(result.test_patterns),
                "n_random": result.n_random,
                "n_redundant": len(result.redundant_faults),
                "n_untestable_static": len(result.static_untestable),
                "prover": _prover_summary(result),
            },
        )
        n_records = manifest.write(args.trace)
        print(f"\nmanifest ({n_records} records) appended to {args.trace}")

    if instrumented:
        obs.disable()
    if attributing:
        attribution.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
