"""Command-line entry point: run the paper's experiment on a benchmark.

Usage::

    python -m repro [benchmark] [--svg layout.svg] [--technique voltage]

Prints the coverage-growth table (fig. 4), the defect-level comparison
(fig. 5) and the fitted eq.-11 parameters; optionally renders the generated
layout to SVG.
"""

from __future__ import annotations

import argparse
import sys

from repro.circuit.iscas import BENCHMARKS
from repro.core import ppm, williams_brown
from repro.experiments import ExperimentConfig, format_table, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the DATE'94 defect-level experiment.",
    )
    parser.add_argument(
        "benchmark",
        nargs="?",
        default="c432",
        choices=sorted(BENCHMARKS),
        help="circuit to run (default: c432)",
    )
    parser.add_argument(
        "--technique",
        default="voltage",
        choices=["voltage", "voltage-strict", "iddq", "either"],
        help="detection technique for theta (default: voltage)",
    )
    parser.add_argument(
        "--yield",
        dest="target_yield",
        type=float,
        default=0.75,
        help="yield to scale the fault weights to (default: 0.75)",
    )
    parser.add_argument(
        "--svg", metavar="FILE", help="also render the layout to this SVG file"
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig(
        benchmark=args.benchmark,
        target_yield=args.target_yield,
        detection=args.technique,
    )
    print(f"running pipeline on {args.benchmark} (Y = {args.target_yield})...")
    result = run_experiment(config)

    if args.svg:
        from repro.layout.render import render_svg

        render_svg(result.design, path=args.svg)
        print(f"layout written to {args.svg}")

    rows = []
    y = args.target_yield
    for k, T, theta, gamma, dl in result.series():
        rows.append(
            [
                k,
                f"{T:.4f}",
                f"{theta:.4f}",
                f"{gamma:.4f}",
                f"{100 * dl:.2f}%",
                f"{100 * williams_brown(y, T):.2f}%",
            ]
        )
    print(
        "\n"
        + format_table(
            ["k", "T(k)", "theta(k)", "Gamma(k)", "DL(theta)", "W-B DL(T)"],
            rows,
            title="Coverage growth and defect level",
        )
    )

    fit = result.fit()
    print(
        f"\nfit of eq. 11:  R = {fit.susceptibility_ratio:.2f}, "
        f"theta_max = {fit.theta_max:.3f}  (paper: 1.9 / 0.96)"
    )
    print(
        f"measured theta_max = {result.theta_max:.3f}; residual DL = "
        f"{ppm(result.dl_at(result.sample_ks[-1])):.0f} ppm"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
