"""Layout fault extraction — the fault-extraction half of the paper's *lift*.

Walks the full-design geometry and produces the weighted realistic fault
list:

* **bridges** from same-layer proximity (facing parallel runs), with
  diffusion bridges across a transistor channel classified as stuck-on
  devices and gate-oxide shorts added per transistor channel area;
* **opens** from wire-segment breaks (each gap between a wire's connection
  points is a separate fault site), missing contacts/vias, broken diffusion
  source/drain segments, and poly gate-stripe breaks — each classified by its
  electrical consequence (floating gate inputs, floating PO observers,
  stuck-open devices, single floating transistor gates).

Every fault's weight is ``density x size-averaged critical area`` (eq. 4's
``w_j = A_j D_j``); behaviourally identical faults aggregate by summing
weights (:class:`repro.defects.fault_types.FaultList`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro import obs
from repro.defects.critical_area import average_critical_area
from repro.defects.fault_types import (
    BridgeFault,
    FaultList,
    FloatingNetFault,
    TransistorGateOpen,
    TransistorStuckOn,
    TransistorStuckOpen,
)
from repro.defects.statistics import (
    LAYER_MECHANISMS,
    DefectMechanism,
    DefectStatistics,
)
from repro.layout.cells import GND, VDD
from repro.layout.design import LayoutDesign
from repro.layout.extract import build_connectivity
from repro.layout.geometry import Layer, Rect, facing_span
from repro.layout.spatial import SpatialIndex

__all__ = ["FaultExtractor", "extract_faults"]

_SUPPLIES = (VDD, GND)
_DIFF_LAYERS = (Layer.NDIFF, Layer.PDIFF)
_GENERIC_OPEN_LAYERS = (Layer.METAL1, Layer.METAL2)


def extract_faults(
    design: LayoutDesign, statistics: DefectStatistics | None = None
) -> FaultList:
    """One-call extraction: all weighted realistic faults of ``design``."""
    return FaultExtractor(design, statistics or DefectStatistics()).extract()


@dataclass
class _NetContext:
    """Per-net working data for open-fault analysis."""

    name: str
    nodes: list[int] = field(default_factory=list)
    adjacency: dict[int, list[int]] = field(default_factory=dict)
    anchors: set[int] = field(default_factory=set)
    gate_shapes: set[int] = field(default_factory=set)
    po_ports: set[int] = field(default_factory=set)
    diff_shapes: set[int] = field(default_factory=set)


class FaultExtractor:
    """Stateful extractor bound to one design and one defect-density table."""

    def __init__(self, design: LayoutDesign, statistics: DefectStatistics):
        self.design = design
        self.stats = statistics
        self.size = statistics.size
        self.shapes = design.shapes
        self.graph = build_connectivity(self.shapes)
        self._adjacent_transistors = self._map_seg_transistors()
        self._sd_pair_transistor = self._map_sd_pairs()
        self._instance_of = {t.name: t.name.rsplit(".", 1)[0] for t in design.transistors}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def extract(self) -> FaultList:
        """Run all extraction passes and return the aggregated fault list."""
        faults = FaultList()
        with obs.span(
            "defects.extract", n_shapes=len(self.shapes)
        ) as extract_span:
            with obs.span("defects.extract.bridges"):
                self.extract_bridges(faults)
            with obs.span("defects.extract.oxide_shorts"):
                self.extract_oxide_shorts(faults)
            with obs.span("defects.extract.opens"):
                self.extract_opens(faults)
            extract_span.set(n_faults=len(faults))
        obs.inc("extraction.faults_extracted", len(faults))
        if obs.is_enabled():
            for fault in faults:
                obs.observe("extraction.weights", fault.weight)
                obs.inc(f"extraction.{type(fault).__name__}")
        return faults

    # ------------------------------------------------------------------
    # Bridge extraction
    # ------------------------------------------------------------------
    def extract_bridges(self, faults: FaultList) -> None:
        """Same-layer proximity bridges (plus channel stuck-on shorts)."""
        margin = self.size.x_max
        index = SpatialIndex(self.shapes)
        for a, b in index.candidate_pairs(margin=margin):
            if a.layer != b.layer or not a.layer.is_conductor:
                continue
            if not a.net or not b.net or a.net == b.net:
                continue
            span = facing_span(a, b)
            if span is None:
                continue
            spacing, run = span
            if spacing >= margin or run <= 0:
                continue
            mech = LAYER_MECHANISMS[a.layer][0]
            weight = self.stats.density(mech) * average_critical_area(
                run, spacing, self.size
            )
            if weight <= 0:
                continue
            fault = self._classify_bridge(a, b, weight, mech)
            faults.add(fault)

    def _classify_bridge(
        self, a: Rect, b: Rect, weight: float, mech: DefectMechanism
    ):
        # A diffusion bridge across a transistor channel conducts regardless
        # of the gate: a stuck-on device, not a node-to-node bridge.
        if (
            a.layer in _DIFF_LAYERS
            and a.owner
            and a.owner == b.owner
        ):
            t_name = self._sd_pair_transistor.get(
                (a.owner, frozenset((a.net, b.net)))
            )
            if t_name is not None:
                return TransistorStuckOn(
                    weight=weight,
                    origin=(mech,),
                    transistor=t_name,
                    instance=a.owner,
                )
        return BridgeFault(weight=weight, origin=(mech,), net_a=a.net, net_b=b.net)

    def extract_oxide_shorts(self, faults: FaultList) -> None:
        """Gate-oxide pinholes: gate net bridged to the channel region.

        Modelled as a bridge between the gate net and the device's most
        external source/drain terminal (drain preferred; falls back through
        source to the driving cell's output net for fully internal devices).
        """
        density = self.stats.density(DefectMechanism.GATE_OXIDE_SHORT)
        if density <= 0:
            return
        for t in self.design.transistors:
            weight = density * t.channel.area
            other = t.drain if "#" not in t.drain else t.source
            if "#" in other:
                other = self._cell_output_of(t.name)
            if other == t.gate:
                continue
            faults.add(
                BridgeFault(
                    weight=weight,
                    origin=(DefectMechanism.GATE_OXIDE_SHORT,),
                    net_a=t.gate,
                    net_b=other,
                )
            )

    # ------------------------------------------------------------------
    # Open extraction
    # ------------------------------------------------------------------
    def extract_opens(self, faults: FaultList) -> None:
        """All open mechanisms, classified per electrical consequence."""
        contexts = self._build_net_contexts()
        for ctx in contexts.values():
            self._opens_for_net(ctx, faults)

    # -- net context construction ---------------------------------------
    def _build_net_contexts(self) -> dict[str, _NetContext]:
        contexts: dict[str, _NetContext] = {}
        po_set = set(self.design.mapped.primary_outputs)
        pi_set = set(self.design.mapped.primary_inputs)

        for i, shape in enumerate(self.shapes):
            if not shape.net:
                continue
            ctx = contexts.setdefault(shape.net, _NetContext(name=shape.net))
            ctx.nodes.append(i)
            ctx.adjacency[i] = [
                j for j in self.graph.neighbors(i) if self.shapes[j].net == shape.net
            ]
            if shape.purpose == "gate":
                ctx.gate_shapes.add(i)
            if shape.purpose == "port" and shape.net in po_set:
                ctx.po_ports.add(i)
            if shape.layer in _DIFF_LAYERS and shape.owner:
                ctx.diff_shapes.add(i)

        for net, ctx in contexts.items():
            if net in _SUPPLIES:
                ctx.anchors = {
                    i
                    for i in ctx.nodes
                    if self.shapes[i].layer is Layer.METAL2 and not self.shapes[i].owner
                }
            elif net in pi_set:
                ctx.anchors = {
                    i for i in ctx.nodes if self.shapes[i].purpose == "port"
                }
            else:
                driver = self.design.cell_of_net.get(net)
                if driver is not None:
                    ctx.anchors = {
                        i
                        for i in ctx.diff_shapes
                        if self.shapes[i].owner == driver.instance
                    }
            # Internal cell nets have no anchors; they are handled by the
            # diffusion-segment pass, not the graph pass.
        return contexts

    # -- per-net analysis --------------------------------------------------
    def _opens_for_net(self, ctx: _NetContext, faults: FaultList) -> None:
        internal = "#" in ctx.name
        for i in ctx.nodes:
            shape = self.shapes[i]
            if shape.layer in _DIFF_LAYERS:
                self._diff_open(shape, faults)
            elif shape.layer.is_cut:
                self._cut_open(ctx, i, faults)
            elif shape.layer is Layer.POLY and shape.purpose == "gate":
                self._gate_stripe_opens(shape, faults)
            elif shape.layer in _GENERIC_OPEN_LAYERS and not internal:
                self._wire_opens(ctx, i, faults)

    def _diff_open(self, shape: Rect, faults: FaultList) -> None:
        """A broken source/drain segment severs its adjacent devices."""
        mech = LAYER_MECHANISMS[shape.layer][1]
        weight = self.stats.density(mech) * average_critical_area(
            shape.length, shape.min_dimension, self.size
        )
        if weight <= 0:
            return
        affected = self._adjacent_transistors.get(id(shape), ())
        if affected:
            faults.add(
                TransistorStuckOpen(
                    weight=weight,
                    origin=(mech,),
                    transistors=tuple(sorted(affected)),
                    instance=shape.owner,
                )
            )

    def _gate_stripe_opens(self, shape: Rect, faults: FaultList) -> None:
        """Breaks along a poly gate stripe.

        Connection points: the pin contact plus each transistor channel the
        stripe forms.  A break below the lowest channel floats the whole
        input pin; a break between channels floats only the devices above it.
        """
        mech = DefectMechanism.POLY_OPEN
        density = self.stats.density(mech)
        if density <= 0:
            return
        devices = [
            t
            for t in self.design.transistors
            if t.gate == shape.net
            and t.channel.llx >= shape.llx - 1e-9
            and t.channel.urx <= shape.urx + 1e-9
            and t.channel.lly >= shape.lly - 1e-9
            and t.channel.ury <= shape.ury + 1e-9
        ]
        if not devices:
            return
        instance = self._instance_of.get(devices[0].name, shape.owner)
        # Connection intervals along y: contacts first, then channels.
        contacts = [
            (self.shapes[j].lly, self.shapes[j].ury)
            for j in self.graph.neighbors(self._index_of(shape))
            if self.shapes[j].layer is Layer.CONTACT
        ]
        channels = sorted(
            ((t.channel.lly, t.channel.ury, t) for t in devices),
            key=lambda item: item[0],
        )
        if not contacts:
            return
        contact_top = max(c[1] for c in contacts)

        prev_top = contact_top
        floating_above: list = [t for _, __, t in channels]
        for lly, ury, device in channels:
            gap = lly - prev_top
            if gap > 0:
                weight = density * average_critical_area(
                    gap, shape.width, self.size
                )
                if weight > 0:
                    if len(floating_above) == len(devices):
                        faults.add(
                            FloatingNetFault(
                                weight=weight,
                                origin=(mech,),
                                net=shape.net,
                                floating_inputs=((instance, shape.net),),
                            )
                        )
                    elif len(floating_above) == 1:
                        faults.add(
                            TransistorGateOpen(
                                weight=weight,
                                origin=(mech,),
                                transistor=floating_above[0].name,
                                instance=instance,
                            )
                        )
                    else:
                        faults.add(
                            TransistorStuckOpen(
                                weight=weight,
                                origin=(mech,),
                                transistors=tuple(
                                    sorted(t.name for t in floating_above)
                                ),
                                instance=instance,
                            )
                        )
            prev_top = max(prev_top, ury)
            floating_above = floating_above[1:]

    def _cut_open(self, ctx: _NetContext, node: int, faults: FaultList) -> None:
        """A missing contact or via."""
        shape = self.shapes[node]
        mech = (
            DefectMechanism.CONTACT_OPEN
            if shape.layer is Layer.CONTACT
            else DefectMechanism.VIA_OPEN
        )
        weight = self.stats.density(mech)
        if weight <= 0 or not ctx.anchors:
            return
        reach = self._bfs(ctx, ctx.anchors, removed=frozenset((node,)))
        floating = set(ctx.nodes) - reach - {node}
        self._emit_open(ctx, floating, weight, mech, faults)

    def _wire_opens(self, ctx: _NetContext, node: int, faults: FaultList) -> None:
        """Breaks along a metal wire: one fault per inter-connection gap."""
        shape = self.shapes[node]
        mech = LAYER_MECHANISMS[shape.layer][1]
        density = self.stats.density(mech)
        if density <= 0 or not ctx.anchors:
            return
        neighbours = ctx.adjacency.get(node, [])
        if len(neighbours) < 2:
            return
        horizontal = shape.width >= shape.height
        span_of = (
            (lambda r: (max(r.llx, shape.llx), min(r.urx, shape.urx)))
            if horizontal
            else (lambda r: (max(r.lly, shape.lly), min(r.ury, shape.ury)))
        )
        marks = sorted(
            (span_of(self.shapes[j]) + (j,) for j in neighbours),
            key=lambda item: item[0],
        )
        prev_hi = marks[0][1]
        left: list[int] = [marks[0][2]]
        for lo, hi, j in marks[1:]:
            gap = lo - prev_hi
            if gap > 0:
                weight = density * average_critical_area(
                    gap, shape.min_dimension, self.size
                )
                if weight > 0:
                    right = [m[2] for m in marks if m[2] not in left]
                    self._split_open(ctx, node, left, right, weight, mech, faults)
            left.append(j)
            prev_hi = max(prev_hi, hi)

    def _split_open(
        self,
        ctx: _NetContext,
        node: int,
        left: list[int],
        right: list[int],
        weight: float,
        mech: DefectMechanism,
        faults: FaultList,
    ) -> None:
        """Open splitting ``node`` with its neighbours divided left/right."""
        removed = frozenset((node,))
        anchors = ctx.anchors
        # Seed from anchor-side: anchors themselves plus whichever side of
        # the split they reach.
        reach = self._bfs(ctx, anchors, removed=removed)
        floating = set()
        anchor_sides = {"left": False, "right": False}
        for group, name in ((left, "left"), (right, "right")):
            if any(j in reach for j in group):
                anchor_sides[name] = True
        if anchor_sides["left"] and anchor_sides["right"]:
            # Both sides independently reach anchors: check for stranded
            # anchor groups that lost every sink (partial drive loss).
            self._stranded_anchor_check(ctx, node, weight, mech, faults)
            return
        # Nodes not reachable from anchors (excluding the broken one) float.
        floating = set(ctx.nodes) - reach - {node}
        self._emit_open(ctx, floating, weight, mech, faults)

    def _stranded_anchor_check(
        self,
        ctx: _NetContext,
        node: int,
        weight: float,
        mech: DefectMechanism,
        faults: FaultList,
    ) -> None:
        sinks = ctx.gate_shapes | ctx.po_ports
        if not sinks:
            return
        reach_from_sinks = self._bfs(ctx, sinks, removed=frozenset((node,)))
        stranded = [a for a in ctx.anchors if a not in reach_from_sinks]
        if not stranded:
            return
        devices: set[str] = set()
        for a in stranded:
            devices.update(self._adjacent_transistors.get(id(self.shapes[a]), ()))
        if devices:
            faults.add(
                TransistorStuckOpen(
                    weight=weight,
                    origin=(mech,),
                    transistors=tuple(sorted(devices)),
                    instance=self.shapes[stranded[0]].owner,
                )
            )

    def _emit_open(
        self,
        ctx: _NetContext,
        floating: set[int],
        weight: float,
        mech: DefectMechanism,
        faults: FaultList,
    ) -> None:
        if not floating:
            return
        floating_inputs: set[tuple[str, str]] = set()
        stuck_open: set[str] = set()
        floats_po = False
        for i in floating:
            shape = self.shapes[i]
            if i in ctx.gate_shapes:
                floating_inputs.add((shape.owner, ctx.name))
            elif i in ctx.po_ports:
                floats_po = True
            elif i in ctx.diff_shapes:
                stuck_open.update(self._adjacent_transistors.get(id(shape), ()))
        if not floating_inputs and not stuck_open and not floats_po:
            return
        faults.add(
            FloatingNetFault(
                weight=weight,
                origin=(mech,),
                net=ctx.name,
                floating_inputs=tuple(sorted(floating_inputs)),
                floats_output_port=floats_po,
                stuck_open=tuple(sorted(stuck_open)),
            )
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _bfs(
        self, ctx: _NetContext, seeds: set[int], removed: frozenset[int]
    ) -> set[int]:
        seen = set(s for s in seeds if s not in removed)
        stack = list(seen)
        while stack:
            current = stack.pop()
            for nxt in ctx.adjacency.get(current, ()):  # pragma: no branch
                if nxt not in seen and nxt not in removed:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def _map_seg_transistors(self) -> dict[int, tuple[str, ...]]:
        """id(diff shape) -> names of devices horizontally adjacent to it."""
        by_owner: dict[str, list] = defaultdict(list)
        for t in self.design.transistors:
            by_owner[self._instance(t.name)].append(t)
        mapping: dict[int, tuple[str, ...]] = {}
        for shape in self.shapes:
            if shape.layer not in _DIFF_LAYERS or not shape.owner:
                continue
            polarity = "n" if shape.layer is Layer.NDIFF else "p"
            names = []
            for t in by_owner.get(shape.owner, ()):  # pragma: no branch
                if t.polarity != polarity:
                    continue
                ch = t.channel
                touches = (
                    abs(ch.llx - shape.urx) < 1e-6 or abs(ch.urx - shape.llx) < 1e-6
                )
                y_overlap = min(ch.ury, shape.ury) - max(ch.lly, shape.lly) > 0
                if touches and y_overlap:
                    names.append(t.name)
            if names:
                mapping[id(shape)] = tuple(sorted(names))
        return mapping

    def _map_sd_pairs(self) -> dict[tuple[str, frozenset], str]:
        mapping: dict[tuple[str, frozenset], str] = {}
        for t in self.design.transistors:
            key = (self._instance(t.name), frozenset((t.source, t.drain)))
            mapping.setdefault(key, t.name)
        return mapping

    def _cell_output_of(self, transistor_name: str) -> str:
        instance = self._instance(transistor_name)
        for net, cell in self.design.cell_of_net.items():
            if cell.instance == instance:
                return net
        return GND

    @staticmethod
    def _instance(transistor_name: str) -> str:
        return transistor_name.rsplit(".", 1)[0]

    def _index_of(self, shape: Rect) -> int:
        if not hasattr(self, "_id_index"):
            self._id_index = {id(s): i for i, s in enumerate(self.shapes)}
        return self._id_index[id(shape)]
