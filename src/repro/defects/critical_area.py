"""Critical-area computation for spot defects.

The critical area ``A(x)`` of a fault for defect diameter ``x`` is the area
in which the centre of an ``x``-sized defect causes that fault.  The fault
weight is the size-averaged critical area times the mechanism density:

    w = D * A_avg,   A_avg = integral A(x) p(x) dx

with the inverse-cube size distribution from
:mod:`repro.defects.statistics`.  Closed forms (used here) exist for the two
first-order geometries:

* **bridge** between two parallel edges at spacing ``s`` with facing run
  ``L``:  ``A(x) = L * (x - s)`` for ``x > s``;
* **open** of a wire of width ``w`` and length ``L``:  ``A(x) = L * (x - w)``
  for ``x > w``.

Second-order corner terms are omitted, as in most published extractors.  A
Monte-Carlo estimator is provided for cross-checking the closed forms in the
test suite.
"""

from __future__ import annotations

import random

from repro.defects.statistics import SizeDistribution

__all__ = [
    "bridge_critical_area",
    "open_critical_area",
    "average_critical_area",
    "monte_carlo_average",
]


def bridge_critical_area(run_length: float, spacing: float, x: float) -> float:
    """Critical area of a parallel-run bridge for defect diameter ``x``."""
    if x <= spacing or run_length <= 0:
        return 0.0
    return run_length * (x - spacing)


def open_critical_area(length: float, width: float, x: float) -> float:
    """Critical area of a wire-segment open for defect diameter ``x``."""
    if x <= width or length <= 0:
        return 0.0
    return length * (x - width)


def average_critical_area(
    length: float, gap: float, size: SizeDistribution
) -> float:
    """Size-averaged critical area ``integral L*(x-g) p(x) dx``.

    ``gap`` is the spacing for bridges or the wire width for opens; the
    linear geometry makes the closed form identical.  For the power-law
    family ``p(x) = (p-1) x0^(p-1) / x^p`` on ``[x0, x_max]`` with
    ``a = max(gap, x0)``:

        A_avg = L (p-1) x0^(p-1) * [ F(x_max) - F(a) ],
        F(x)  = x^(2-p)/(2-p) - g x^(1-p)/(1-p)        (p != 2)
        F(x)  = ln(x) + g/x                            (p == 2)

    which reduces to the familiar inverse-cube expression at p = 3.
    Returns 0 when the gap exceeds the largest modelled defect.
    """
    if length <= 0:
        return 0.0
    x0, x_max, p = size.x0, size.x_max, size.exponent
    if gap >= x_max:
        return 0.0
    a = max(gap, x0)

    if abs(p - 2.0) < 1e-12:

        def antiderivative(x: float) -> float:
            import math

            return math.log(x) + gap / x

    else:

        def antiderivative(x: float) -> float:
            return x ** (2.0 - p) / (2.0 - p) - gap * x ** (1.0 - p) / (1.0 - p)

    value = (
        length
        * (p - 1.0)
        * x0 ** (p - 1.0)
        * (antiderivative(x_max) - antiderivative(a))
    )
    return max(0.0, value)


def monte_carlo_average(
    length: float,
    gap: float,
    size: SizeDistribution,
    samples: int = 20000,
    seed: int = 7,
) -> float:
    """Monte-Carlo estimate of :func:`average_critical_area`.

    Samples defect diameters from the size distribution (truncated at
    ``x_max`` by rejection) and averages the linear critical-area kernel.
    Used by tests to validate the closed form; accuracy ~1/sqrt(samples).
    """
    rng = random.Random(seed)
    total = 0.0
    for _ in range(samples):
        x = size.sample(rng.random())
        # Draws beyond x_max fall outside the truncated support and simply
        # contribute zero, exactly like the closed form's ignored tail.
        if gap < x <= size.x_max:
            total += length * (x - gap)
    return total / samples
