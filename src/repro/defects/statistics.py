"""Spot-defect statistics: defect types, size distribution, density tables.

The paper weights each extracted fault by its *average number of inducing
defects* ``w_j = A_j * D_j`` (critical area x defect density), using density
and size statistics "similar to Maly" — a bridge-heavy table, as expected for
positive-photoresist CMOS lines.  This module provides:

* the classic ``p(x) = 2 x0^2 / x^3`` spot-defect diameter distribution
  (normalised on ``[x0, inf)``, truncated at ``x_max`` in practice);
* per-mechanism defect densities (:class:`DefectStatistics`), with the
  bridge-heavy default table plus an open-heavy variant for the ablation
  benches;
* yield helpers shared with :mod:`repro.core`.

Units: lengths in micrometres, densities in defects per square micrometre
(conductor mechanisms) or per cut (contact/via mechanisms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum

from repro.layout.geometry import Layer

__all__ = [
    "DefectMechanism",
    "SizeDistribution",
    "DefectStatistics",
    "maly_like_statistics",
    "open_heavy_statistics",
]


class DefectMechanism(str, Enum):
    """Physical defect mechanisms the extractor models."""

    METAL1_SHORT = "metal1_short"
    METAL1_OPEN = "metal1_open"
    METAL2_SHORT = "metal2_short"
    METAL2_OPEN = "metal2_open"
    POLY_SHORT = "poly_short"
    POLY_OPEN = "poly_open"
    DIFF_SHORT = "diff_short"
    DIFF_OPEN = "diff_open"
    CONTACT_OPEN = "contact_open"
    VIA_OPEN = "via_open"
    GATE_OXIDE_SHORT = "gate_oxide_short"

    @property
    def is_bridge(self) -> bool:
        """True for mechanisms that connect distinct nodes."""
        return self.value.endswith("short")

    @property
    def is_open(self) -> bool:
        """True for mechanisms that sever connections."""
        return self.value.endswith("open")


#: Conductor layer -> (short mechanism, open mechanism).
LAYER_MECHANISMS: dict[Layer, tuple[DefectMechanism, DefectMechanism]] = {
    Layer.METAL1: (DefectMechanism.METAL1_SHORT, DefectMechanism.METAL1_OPEN),
    Layer.METAL2: (DefectMechanism.METAL2_SHORT, DefectMechanism.METAL2_OPEN),
    Layer.POLY: (DefectMechanism.POLY_SHORT, DefectMechanism.POLY_OPEN),
    Layer.NDIFF: (DefectMechanism.DIFF_SHORT, DefectMechanism.DIFF_OPEN),
    Layer.PDIFF: (DefectMechanism.DIFF_SHORT, DefectMechanism.DIFF_OPEN),
}


@dataclass(frozen=True)
class SizeDistribution:
    """Power-law spot-defect diameter distribution on ``[x0, x_max]``.

    ``p(x) = (p - 1) x0^(p-1) / x^p`` — the Ferris-Prabhu family, with the
    standard empirical exponent ``p = 3`` (Stapper's inverse-cube law) as
    default.  ``x0`` is the peak/minimum resolvable size; ``x_max`` truncates
    the integrals (the residual tail mass beyond ``x_max`` is negligible for
    ``x_max >> x0`` and is simply ignored, matching common practice).
    Smaller exponents put more mass on large defects, which fattens
    critical-area weights for widely-spaced geometry.
    """

    x0: float = 1.0
    x_max: float = 30.0
    exponent: float = 3.0

    def __post_init__(self) -> None:
        if not 0 < self.x0 < self.x_max:
            raise ValueError(f"need 0 < x0 < x_max, got {self.x0}, {self.x_max}")
        if self.exponent <= 1.0:
            raise ValueError("power-law exponent must exceed 1")

    def pdf(self, x: float) -> float:
        """Probability density at diameter ``x`` (0 outside the support)."""
        if x < self.x0 or x > self.x_max:
            return 0.0
        p = self.exponent
        return (p - 1.0) * self.x0 ** (p - 1.0) / x**p

    def cdf(self, x: float) -> float:
        """Cumulative probability of diameter <= x."""
        if x <= self.x0:
            return 0.0
        x = min(x, self.x_max)
        return 1.0 - (self.x0 / x) ** (self.exponent - 1.0)

    def sample(self, u: float) -> float:
        """Inverse-CDF sample from a uniform ``u`` in [0, 1)."""
        if not 0.0 <= u < 1.0:
            raise ValueError("u must be in [0, 1)")
        return self.x0 * (1.0 - u) ** (-1.0 / (self.exponent - 1.0))

    def mean(self) -> float:
        """Mean defect diameter over the (untruncated) distribution.

        Finite only for exponents above 2.
        """
        p = self.exponent
        if p <= 2.0:
            return math.inf
        return self.x0 * (p - 1.0) / (p - 2.0)


@dataclass(frozen=True)
class DefectStatistics:
    """Density table: average defects per um^2 (or per cut) by mechanism.

    The absolute scale cancels when the experiment pipeline rescales yield to
    the paper's Y = 0.75; only the *relative* mix matters for the coverage
    curves and the fitted (R, theta_max).
    """

    size: SizeDistribution = field(default_factory=SizeDistribution)
    densities: dict[DefectMechanism, float] = field(
        default_factory=lambda: dict(_MALY_LIKE_DENSITIES)
    )

    def density(self, mechanism: DefectMechanism) -> float:
        """Density for one mechanism (0 when absent from the table)."""
        return self.densities.get(mechanism, 0.0)

    def scaled(self, factor: float) -> DefectStatistics:
        """A copy with every density multiplied by ``factor``."""
        return replace(
            self,
            densities={m: d * factor for m, d in self.densities.items()},
        )

    def bridge_fraction(self) -> float:
        """Fraction of total tabulated density on bridge mechanisms."""
        total = sum(self.densities.values())
        if total == 0:
            return 0.0
        bridges = sum(d for m, d in self.densities.items() if m.is_bridge)
        return bridges / total


# Relative density table "similar to Maly": metal bridging dominates, as in
# positive-photoresist CMOS lines, with extra (bridging) defects roughly an
# order of magnitude more likely than missing (open) defects.  Units:
# defects/um^2 for area mechanisms, defects/cut for cuts.
_MALY_LIKE_DENSITIES: dict[DefectMechanism, float] = {
    DefectMechanism.METAL1_SHORT: 8.0e-7,
    DefectMechanism.METAL2_SHORT: 6.0e-7,
    DefectMechanism.POLY_SHORT: 5.0e-7,
    DefectMechanism.DIFF_SHORT: 2.0e-7,
    DefectMechanism.METAL1_OPEN: 0.5e-7,
    DefectMechanism.METAL2_OPEN: 0.4e-7,
    DefectMechanism.POLY_OPEN: 0.4e-7,
    DefectMechanism.DIFF_OPEN: 0.3e-7,
    DefectMechanism.CONTACT_OPEN: 2.0e-7,
    DefectMechanism.VIA_OPEN: 2.0e-7,
    DefectMechanism.GATE_OXIDE_SHORT: 4.0e-7,
}

# Open-heavy table for the ablation study (electromigration-limited or
# negative-photoresist-style lines): the paper predicts the susceptibility
# ratio R moves toward (or below) 1 under such statistics.
_OPEN_HEAVY_DENSITIES: dict[DefectMechanism, float] = {
    DefectMechanism.METAL1_SHORT: 1.5e-7,
    DefectMechanism.METAL2_SHORT: 1.2e-7,
    DefectMechanism.POLY_SHORT: 1.0e-7,
    DefectMechanism.DIFF_SHORT: 0.5e-7,
    DefectMechanism.METAL1_OPEN: 8.0e-7,
    DefectMechanism.METAL2_OPEN: 6.0e-7,
    DefectMechanism.POLY_OPEN: 5.0e-7,
    DefectMechanism.DIFF_OPEN: 2.0e-7,
    DefectMechanism.CONTACT_OPEN: 12.0e-7,
    DefectMechanism.VIA_OPEN: 12.0e-7,
    DefectMechanism.GATE_OXIDE_SHORT: 2.0e-7,
}


def maly_like_statistics() -> DefectStatistics:
    """The default, bridge-heavy density table (the paper's regime)."""
    return DefectStatistics()


def open_heavy_statistics() -> DefectStatistics:
    """An open-dominated density table for ablation experiments."""
    return DefectStatistics(densities=dict(_OPEN_HEAVY_DENSITIES))
