"""Monte-Carlo spot-defect injection over a finished layout.

An independent validator for the analytic critical-area extraction: sample
defects (mechanism by density share, position uniform over the die, diameter
from the size distribution), determine geometrically which fault each one
induces, and compare observed fault frequencies with the analytic weights.

A square defect footprint is used (matching the first-order critical-area
kernels the extractor integrates); bridges count when the footprint touches
shapes of two different nets on the defect's layer, opens when it spans the
full width of a wire.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.defects.statistics import (
    LAYER_MECHANISMS,
    DefectMechanism,
    DefectStatistics,
)
from repro.layout.design import LayoutDesign
from repro.layout.geometry import Layer, Rect
from repro.layout.spatial import SpatialIndex

__all__ = ["MonteCarloResult", "sample_defects"]


@dataclass
class MonteCarloResult:
    """Outcome of a defect-injection campaign."""

    n_samples: int = 0
    n_faults: int = 0
    bridge_hits: Counter = field(default_factory=Counter)  # (net_a, net_b) -> hits
    open_hits: Counter = field(default_factory=Counter)    # net -> hits
    benign: int = 0

    @property
    def fault_fraction(self) -> float:
        """Fraction of sampled defects that caused any fault."""
        return self.n_faults / self.n_samples if self.n_samples else 0.0

    def bridge_frequency(self, net_a: str, net_b: str) -> float:
        """Observed per-sample frequency of a specific bridge."""
        key = tuple(sorted((net_a, net_b)))
        return self.bridge_hits[key] / self.n_samples if self.n_samples else 0.0


def sample_defects(
    design: LayoutDesign,
    statistics: DefectStatistics | None = None,
    n_samples: int = 20000,
    seed: int = 99,
    margin: float = 10.0,
) -> MonteCarloResult:
    """Inject ``n_samples`` random spot defects and classify each.

    Only area mechanisms (conductor shorts/opens) are sampled — cut opens are
    per-cut Bernoulli events with no geometry to validate.  The relative
    sampling rate of each mechanism follows the density table, so observed
    bridge frequencies are directly comparable (up to a global factor) with
    the extractor's weights.
    """
    statistics = statistics or DefectStatistics()
    rng = random.Random(seed)
    die = design.die
    if die is None:
        raise ValueError("design has no shapes")

    # Sampling distribution over area mechanisms.
    area_mechs = [
        (mech, statistics.density(mech))
        for layer, mechs in LAYER_MECHANISMS.items()
        for mech in mechs
    ]
    # Deduplicate (diff short/open appear for both diffusion layers).
    mech_weights: dict[DefectMechanism, float] = {}
    for mech, density in area_mechs:
        mech_weights[mech] = density
    mechs = [m for m, d in mech_weights.items() if d > 0]
    weights = [mech_weights[m] for m in mechs]

    layer_of_mech: dict[DefectMechanism, list[Layer]] = {}
    for layer, (short, open_) in LAYER_MECHANISMS.items():
        layer_of_mech.setdefault(short, []).append(layer)
        layer_of_mech.setdefault(open_, []).append(layer)

    by_layer: dict[Layer, SpatialIndex] = {}
    for layer in set(l for ls in layer_of_mech.values() for l in ls):
        shapes = [s for s in design.shapes if s.layer is layer and s.net]
        by_layer[layer] = SpatialIndex(shapes)

    result = MonteCarloResult(n_samples=n_samples)
    x_lo, y_lo = die.llx - margin, die.lly - margin
    x_hi, y_hi = die.urx + margin, die.ury + margin

    for _ in range(n_samples):
        mech = rng.choices(mechs, weights=weights)[0]
        layers = layer_of_mech[mech]
        layer = layers[0] if len(layers) == 1 else rng.choice(layers)
        diameter = statistics.size.sample(rng.random())
        if diameter > statistics.size.x_max:
            result.benign += 1
            continue
        cx = rng.uniform(x_lo, x_hi)
        cy = rng.uniform(y_lo, y_hi)
        half = diameter / 2
        footprint = Rect(layer, cx - half, cy - half, cx + half, cy + half)
        index = by_layer.get(layer)
        touched = [
            s
            for s in (index.near(footprint) if index else [])
            if s.layer is layer and s.intersects(footprint)
        ]
        if mech.is_bridge:
            nets = {s.net for s in touched}
            if len(nets) >= 2:
                a, b = sorted(nets)[:2]
                result.bridge_hits[(a, b)] += 1
                result.n_faults += 1
            else:
                result.benign += 1
        else:
            cut = None
            for shape in touched:
                horizontal = shape.width >= shape.height
                if horizontal:
                    severed = (
                        footprint.lly <= shape.lly and footprint.ury >= shape.ury
                        and footprint.llx > shape.llx and footprint.urx < shape.urx
                    )
                else:
                    severed = (
                        footprint.llx <= shape.llx and footprint.urx >= shape.urx
                        and footprint.lly > shape.lly and footprint.ury < shape.ury
                    )
                if severed:
                    cut = shape.net
                    break
            if cut is not None:
                result.open_hits[cut] += 1
                result.n_faults += 1
            else:
                result.benign += 1
    return result
