"""Realistic (defect-induced) fault records.

Each fault carries a ``weight``: the average number of defects inducing it,
``w_j = A_j * D_j`` (eq. 4 of the paper via ``w_j = -ln(1 - p_j)``).  The
behavioural classes mirror what the switch-level simulator can inject:

* :class:`BridgeFault` — two distinct circuit nodes resistively connected
  (same-layer proximity bridges and gate-oxide shorts);
* :class:`FloatingNetFault` — an open that leaves a set of gate inputs (and
  possibly primary-output observers) electrically floating;
* :class:`TransistorStuckOpen` — an open in a cell's source/drain path or a
  missing cell contact, so the affected devices can never conduct;
* :class:`TransistorStuckOn` — a device that conducts regardless of its gate
  (from channel-region diffusion shorts).

``origin`` records the mechanism and layer the fault came from so histograms
and ablations can slice the population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log

from repro.defects.statistics import DefectMechanism

__all__ = [
    "RealisticFault",
    "BridgeFault",
    "FloatingNetFault",
    "TransistorGateOpen",
    "TransistorStuckOpen",
    "TransistorStuckOn",
    "FaultList",
]


@dataclass
class RealisticFault:
    """Base class: a layout-extracted fault with an occurrence weight."""

    weight: float = 0.0
    origin: tuple[DefectMechanism, ...] = field(default_factory=tuple)

    @property
    def probability(self) -> float:
        """Occurrence probability ``p_j = 1 - exp(-w_j)`` (inverse of eq. 4)."""
        from math import exp

        return 1.0 - exp(-self.weight)

    def key(self) -> tuple:
        """Behavioural identity used to aggregate same-effect faults."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner."""
        raise NotImplementedError


@dataclass
class BridgeFault(RealisticFault):
    """Nodes ``net_a`` and ``net_b`` bridged (order-normalised)."""

    net_a: str = ""
    net_b: str = ""

    def __post_init__(self) -> None:
        if self.net_a > self.net_b:
            self.net_a, self.net_b = self.net_b, self.net_a

    def key(self) -> tuple:
        return ("bridge", self.net_a, self.net_b)

    def describe(self) -> str:
        return f"bridge({self.net_a}, {self.net_b})"


@dataclass
class FloatingNetFault(RealisticFault):
    """An open on net ``net`` leaving ``floating_inputs`` undriven.

    ``floating_inputs`` holds ``(instance, net)`` gate-input pins cut off
    from the net's driver; ``floats_output_port`` marks a primary-output
    observer that lost its connection.
    """

    net: str = ""
    floating_inputs: tuple[tuple[str, str], ...] = ()
    floats_output_port: bool = False
    #: Devices additionally severed from the net (partial-drive opens).
    stuck_open: tuple[str, ...] = ()

    def key(self) -> tuple:
        return (
            "open",
            self.net,
            self.floating_inputs,
            self.floats_output_port,
            self.stuck_open,
        )

    def describe(self) -> str:
        pins = ", ".join(f"{inst}" for inst, _ in self.floating_inputs)
        tag = "+PO" if self.floats_output_port else ""
        extra = f" +open[{','.join(self.stuck_open)}]" if self.stuck_open else ""
        return f"open({self.net} -> floats [{pins}]{tag}{extra})"


@dataclass
class TransistorStuckOpen(RealisticFault):
    """Devices (by name) that can no longer conduct."""

    transistors: tuple[str, ...] = ()
    instance: str = ""

    def key(self) -> tuple:
        return ("t-open", self.transistors)

    def describe(self) -> str:
        return f"stuck-open({', '.join(self.transistors)})"


@dataclass
class TransistorGateOpen(RealisticFault):
    """A single device whose gate poly broke between its channel and the pin.

    The trapped gate charge fixes the device in an unknown but constant
    state; detection semantics require failing for both the always-on and
    always-off assumption.
    """

    transistor: str = ""
    instance: str = ""

    def key(self) -> tuple:
        return ("g-open", self.transistor)

    def describe(self) -> str:
        return f"gate-open({self.transistor})"


@dataclass
class TransistorStuckOn(RealisticFault):
    """A device that conducts regardless of its gate value."""

    transistor: str = ""
    instance: str = ""

    def key(self) -> tuple:
        return ("t-on", self.transistor)

    def describe(self) -> str:
        return f"stuck-on({self.transistor})"


class FaultList:
    """Aggregating container: same-effect faults merge, weights add."""

    def __init__(self) -> None:
        self._by_key: dict[tuple, RealisticFault] = {}

    def add(self, fault: RealisticFault) -> None:
        """Insert or merge ``fault`` by behavioural key."""
        if fault.weight <= 0:
            return
        existing = self._by_key.get(fault.key())
        if existing is None:
            self._by_key[fault.key()] = fault
        else:
            existing.weight += fault.weight
            merged = set(existing.origin) | set(fault.origin)
            existing.origin = tuple(sorted(merged, key=lambda m: m.value))

    def __iter__(self):
        return iter(self._by_key.values())

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def faults(self) -> list[RealisticFault]:
        """All aggregated faults (insertion order)."""
        return list(self._by_key.values())

    def total_weight(self) -> float:
        """Sum of weights — the exponent of the yield formula (eq. 5)."""
        return sum(f.weight for f in self._by_key.values())

    def predicted_yield(self) -> float:
        """``Y = exp(-sum w_j)`` (eq. 5)."""
        from math import exp

        return exp(-self.total_weight())

    def scaled_to_yield(self, target_yield: float) -> "FaultList":
        """A copy rescaled so the predicted yield equals ``target_yield``.

        The paper scales its c432 experiment to Y = 0.75 ("as if the circuit
        has a different size but maintains the same testability features"):
        every weight is multiplied by ``ln(target) / ln(current)``.
        """
        if not 0 < target_yield < 1:
            raise ValueError("target yield must be in (0, 1)")
        current = self.total_weight()
        if current <= 0:
            raise ValueError("cannot scale an empty fault list")
        factor = -log(target_yield) / current
        scaled = FaultList()
        for fault in self:
            clone = type(fault)(**{**fault.__dict__})
            clone.weight = fault.weight * factor
            scaled.add(clone)
        return scaled

    def weights(self) -> list[float]:
        """All fault weights, in fault order."""
        return [f.weight for f in self]

    def by_class(self) -> dict[str, list[RealisticFault]]:
        """Faults grouped by behavioural class name."""
        groups: dict[str, list[RealisticFault]] = {}
        for fault in self:
            groups.setdefault(type(fault).__name__, []).append(fault)
        return groups

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_records(self) -> list[dict]:
        """Plain-dict records (JSON-ready) for every fault."""
        records = []
        for fault in self:
            record = {
                "class": type(fault).__name__,
                "weight": fault.weight,
                "origin": [m.value for m in fault.origin],
            }
            for key, value in fault.__dict__.items():
                if key in ("weight", "origin"):
                    continue
                if isinstance(value, tuple):
                    value = [list(v) if isinstance(v, tuple) else v for v in value]
                record[key] = value
            records.append(record)
        return records

    def save_json(self, path) -> None:
        """Write the fault list (with weights and origins) to a JSON file."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_records(), indent=1))

    @classmethod
    def load_json(cls, path) -> "FaultList":
        """Re-load a fault list written by :meth:`save_json`."""
        import json
        from pathlib import Path

        from repro.defects.statistics import DefectMechanism

        classes = {
            "BridgeFault": BridgeFault,
            "FloatingNetFault": FloatingNetFault,
            "TransistorGateOpen": TransistorGateOpen,
            "TransistorStuckOpen": TransistorStuckOpen,
            "TransistorStuckOn": TransistorStuckOn,
        }
        faults = cls()
        for record in json.loads(Path(path).read_text()):
            kwargs = dict(record)
            klass = classes[kwargs.pop("class")]
            kwargs["origin"] = tuple(DefectMechanism(m) for m in kwargs["origin"])
            for key, value in list(kwargs.items()):
                if isinstance(value, list):
                    kwargs[key] = tuple(
                        tuple(v) if isinstance(v, list) else v for v in value
                    )
            faults.add(klass(**kwargs))
        return faults
