"""Defect statistics, critical areas and layout fault extraction (IFA)."""

from repro.defects.critical_area import (
    average_critical_area,
    bridge_critical_area,
    monte_carlo_average,
    open_critical_area,
)
from repro.defects.extraction import FaultExtractor, extract_faults
from repro.defects.monte_carlo import MonteCarloResult, sample_defects
from repro.defects.fault_types import (
    BridgeFault,
    FaultList,
    FloatingNetFault,
    RealisticFault,
    TransistorGateOpen,
    TransistorStuckOn,
    TransistorStuckOpen,
)
from repro.defects.statistics import (
    DefectMechanism,
    DefectStatistics,
    SizeDistribution,
    maly_like_statistics,
    open_heavy_statistics,
)

__all__ = [
    "BridgeFault",
    "DefectMechanism",
    "DefectStatistics",
    "FaultExtractor",
    "FaultList",
    "FloatingNetFault",
    "MonteCarloResult",
    "RealisticFault",
    "SizeDistribution",
    "TransistorGateOpen",
    "TransistorStuckOn",
    "TransistorStuckOpen",
    "average_critical_area",
    "bridge_critical_area",
    "extract_faults",
    "maly_like_statistics",
    "monte_carlo_average",
    "open_critical_area",
    "open_heavy_statistics",
    "sample_defects",
]
