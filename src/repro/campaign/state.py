"""Campaign state, reconstructed exactly from the journal.

The journal records a campaign's *transitions*; :class:`CampaignState`
replays them into the current truth.  The state machine per job::

    pending --lease--> leased --done-------> done
       ^                  |---fail(transient, budget left)--> pending
       |                  |---fail(fatal) / budget spent----> quarantined
       +-----reclaim------+        (lease expired / supervisor crashed)

Replay is a pure fold over records — no clocks, no filesystem — which is
what makes the crash-prefix property provable: state after replaying a
journal prefix equals state after applying exactly the acknowledged
records in that prefix.  Leases do not survive a supervisor restart: a
``leased`` job with no terminal record is folded back to ``pending`` by
:meth:`CampaignState.release_dead_leases` when a resume begins (the worker
holding it is gone with the crashed process).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.journal import Journal, JournalCorruptError
from repro.campaign.spec import CampaignSpec, JobSpec, config_from_dict

__all__ = [
    "JobState",
    "CampaignState",
    "campaign_record",
    "PENDING",
    "LEASED",
    "DONE",
    "QUARANTINED",
]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"


@dataclass
class JobState:
    """Everything the journal knows about one job."""

    job_id: str
    config: dict[str, object]
    priority: int = 0
    max_attempts: int = 2
    status: str = PENDING
    #: Leases granted so far (attempt numbers are 0-based lease indices).
    attempts: int = 0
    #: True when the result was served from the content-addressed store.
    cached: bool = False
    #: sha256 of the canonical result record, once done.
    result_sha: str | None = None
    last_error: str | None = None
    lease_id: str | None = None

    def to_payload(self) -> dict[str, object]:
        return {
            "job_id": self.job_id,
            "config": self.config,
            "priority": self.priority,
            "max_attempts": self.max_attempts,
            "status": self.status,
            "attempts": self.attempts,
            "cached": self.cached,
            "result_sha": self.result_sha,
            "last_error": self.last_error,
            "lease_id": self.lease_id,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, object]) -> "JobState":
        return cls(**payload)  # type: ignore[arg-type]


@dataclass
class CampaignState:
    """The replayed truth of one campaign."""

    name: str = "campaign"
    jobs: dict[str, JobState] = field(default_factory=dict)
    #: Deterministic scheduling order (highest priority first) fixed by the
    #: campaign record; resume preserves it.
    job_order: list[str] = field(default_factory=list)
    stopped: bool = False
    stop_reason: str | None = None
    finished: bool = False
    last_seq: int = -1

    # -- queries --------------------------------------------------------
    def pending_jobs(self) -> list[JobState]:
        """Jobs still runnable, in scheduling order."""
        return [
            self.jobs[job_id]
            for job_id in self.job_order
            if self.jobs[job_id].status == PENDING
        ]

    def counts(self) -> dict[str, int]:
        totals = {PENDING: 0, LEASED: 0, DONE: 0, QUARANTINED: 0}
        for job in self.jobs.values():
            totals[job.status] += 1
        return totals

    @property
    def complete(self) -> bool:
        """True when no job can make further progress."""
        return all(
            job.status in (DONE, QUARANTINED) for job in self.jobs.values()
        )

    @property
    def stopped_before_start(self) -> bool:
        """True for a journal holding a ``stop`` but no jobs at all.

        A clean SIGINT can land before any campaign record is journalled
        (``campaign run`` interrupted while loading the spec): the journal
        then holds only the stop record, which must read as "stopped before
        start", not as an empty campaign.
        """
        return self.stopped and not self.jobs

    # -- construction ---------------------------------------------------
    @classmethod
    def load(cls, journal: Journal) -> "CampaignState":
        """Reconstruct state from the journal's snapshot + records."""
        snapshot = journal.load_snapshot()
        records, last_seq = journal.replay()
        if snapshot is not None:
            state = cls.from_payload(snapshot["state"])
        else:
            state = cls()
        for record in records:
            state.apply(record)
        state.last_seq = last_seq
        return state

    def release_dead_leases(self) -> list[str]:
        """Fold crash-orphaned leases back to pending (resume entry point).

        A lease only exists inside one supervisor process; after a crash the
        journal still says ``leased`` but no worker holds the job.  The
        lease attempt stays counted — a job that keeps crashing its
        supervisor still exhausts its retry budget eventually.
        """
        released = []
        for job in self.jobs.values():
            if job.status == LEASED:
                job.status = PENDING
                job.lease_id = None
                released.append(job.job_id)
        return sorted(released)

    # -- the fold -------------------------------------------------------
    def apply(self, record: dict) -> None:
        """Apply one journal record to the state."""
        kind = record.get("type")
        if kind == "campaign":
            self.name = str(record.get("name", self.name))
            for entry in record.get("jobs", []):
                job_id = str(entry["job_id"])
                if job_id in self.jobs:
                    # Overlapping re-registration (resubmitted spec):
                    # strengthen, never reset progress.
                    job = self.jobs[job_id]
                    job.priority = max(job.priority, int(entry.get("priority", 0)))
                    job.max_attempts = max(
                        job.max_attempts, int(entry.get("max_attempts", 1))
                    )
                else:
                    self.jobs[job_id] = JobState(
                        job_id=job_id,
                        config=dict(entry["config"]),
                        priority=int(entry.get("priority", 0)),
                        max_attempts=int(entry.get("max_attempts", 2)),
                    )
                    self.job_order.append(job_id)
            self.finished = False
        elif kind == "lease":
            job = self._job(record)
            job.status = LEASED
            job.attempts = int(record.get("attempt", job.attempts)) + 1
            job.lease_id = str(record.get("lease_id"))
        elif kind == "done":
            job = self._job(record)
            job.status = DONE
            job.cached = bool(record.get("cached", False))
            job.result_sha = record.get("result_sha")
            job.lease_id = None
        elif kind == "fail":
            job = self._job(record)
            job.status = PENDING
            job.last_error = str(record.get("reason", ""))
            job.lease_id = None
        elif kind == "quarantine":
            job = self._job(record)
            job.status = QUARANTINED
            job.last_error = str(record.get("reason", job.last_error or ""))
            job.lease_id = None
        elif kind == "reclaim":
            job = self._job(record)
            job.status = PENDING
            job.last_error = str(record.get("reason", ""))
            job.lease_id = None
        elif kind == "stop":
            self.stopped = True
            self.stop_reason = str(record.get("reason", ""))
        elif kind == "end":
            self.finished = True
            self.stopped = False
            self.stop_reason = None
        else:
            raise JournalCorruptError(
                f"unknown journal record type {kind!r}"
            )

    def _job(self, record: dict) -> JobState:
        job_id = str(record.get("job"))
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JournalCorruptError(
                f"journal references unknown job {job_id!r}"
            ) from None

    # -- snapshot round trip -------------------------------------------
    def to_payload(self) -> dict[str, object]:
        return {
            "name": self.name,
            "jobs": {
                job_id: job.to_payload() for job_id, job in self.jobs.items()
            },
            "job_order": list(self.job_order),
            "stopped": self.stopped,
            "stop_reason": self.stop_reason,
            "finished": self.finished,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CampaignState":
        state = cls(
            name=str(payload.get("name", "campaign")),
            stopped=bool(payload.get("stopped", False)),
            stop_reason=payload.get("stop_reason"),
            finished=bool(payload.get("finished", False)),
        )
        for job_id, job_payload in payload.get("jobs", {}).items():
            state.jobs[str(job_id)] = JobState.from_payload(job_payload)
        state.job_order = [str(j) for j in payload.get("job_order", [])]
        return state

    # -- spec glue ------------------------------------------------------
    def job_spec(self, job_id: str) -> JobSpec:
        """Rebuild the runnable :class:`JobSpec` for one journalled job."""
        job = self.jobs[job_id]
        return JobSpec(
            job_id=job.job_id,
            config=config_from_dict(dict(job.config)),
            priority=job.priority,
            max_attempts=job.max_attempts,
        )


def campaign_record(spec: CampaignSpec, jobs: list[JobSpec]) -> dict:
    """The journal record registering a campaign and its expanded jobs."""
    return {
        "type": "campaign",
        "name": spec.name,
        "spec": spec.to_dict(),
        "jobs": [
            {
                "job_id": job.job_id,
                "config": job.config_dict(),
                "priority": job.priority,
                "max_attempts": job.max_attempts,
            }
            for job in jobs
        ],
    }
