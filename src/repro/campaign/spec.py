"""The campaign job model: a config sweep expanded into addressable jobs.

A :class:`CampaignSpec` describes *many* experiments as one base
:class:`~repro.experiments.ExperimentConfig` plus deltas — a ``grid`` (the
cartesian product of per-field value lists) and/or an explicit ``jobs`` list
of per-job overrides.  :meth:`CampaignSpec.expand` materialises the sweep
into :class:`JobSpec` units of work, each identified by the **config hash**
(:func:`repro.obs.manifest.config_hash`) of its expanded configuration — the
same key the checkpoint store and run manifests already use.  Content
addressing is what makes the campaign layer idempotent: re-submitting an
overlapping sweep re-derives the same job ids, and any job whose id is
already in the result store is served from cache instead of recomputed.

Specs are plain JSON on disk (see :func:`load_spec`)::

    {
      "name": "seed-sweep",
      "base": {"benchmark": "c17", "max_random_patterns": 64},
      "grid": {"seed": [1, 2, 3], "target_yield": [0.75, 0.9]},
      "jobs": [{"seed": 99, "priority": 5}],
      "priority": 0,
      "max_attempts": 2
    }

Every scalar ``ExperimentConfig`` field is sweepable; ``statistics`` (a
nested object with no JSON form) is not.  Per-job ``priority`` and
``max_attempts`` ride alongside the config delta and are stripped before the
configuration is built, so they never perturb the job id.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field

from repro.experiments import ExperimentConfig
from repro.obs.manifest import config_hash, config_to_dict

__all__ = [
    "CampaignSpecError",
    "JobSpec",
    "CampaignSpec",
    "SWEEPABLE_FIELDS",
    "config_from_dict",
    "load_spec",
]


class CampaignSpecError(ValueError):
    """A campaign spec that cannot be expanded into valid jobs."""


#: ``ExperimentConfig`` fields a spec may set or sweep.  ``statistics`` is a
#: nested dataclass with no JSON representation, so it is excluded: campaign
#: jobs always run with the default defect statistics.
SWEEPABLE_FIELDS: frozenset[str] = frozenset(
    f.name for f in dataclasses.fields(ExperimentConfig) if f.name != "statistics"
)

#: Keys of a ``jobs`` list entry that configure the *job*, not the
#: experiment; stripped before the config delta is applied.
_JOB_KEYS = frozenset({"priority", "max_attempts"})


def config_from_dict(fields: dict[str, object]) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from a flat JSON dictionary.

    The inverse of :func:`repro.obs.manifest.config_to_dict` for campaign
    configurations (``statistics`` restricted to None).  Unknown keys and
    invalid values raise :class:`CampaignSpecError` with the offending name —
    a spec typo fails at submission, never mid-campaign.
    """
    unknown = sorted(set(fields) - SWEEPABLE_FIELDS - {"statistics"})
    if unknown:
        raise CampaignSpecError(
            f"unknown ExperimentConfig field(s): {', '.join(unknown)} "
            f"(sweepable: {', '.join(sorted(SWEEPABLE_FIELDS))})"
        )
    if fields.get("statistics") is not None:
        raise CampaignSpecError(
            "campaign jobs cannot carry custom defect statistics; "
            "omit the 'statistics' field"
        )
    kwargs = {k: v for k, v in fields.items() if k != "statistics"}
    try:
        return ExperimentConfig(**kwargs)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise CampaignSpecError(f"invalid experiment configuration: {exc}") from exc


@dataclass(frozen=True)
class JobSpec:
    """One unit of campaign work: a fully-expanded experiment configuration.

    Attributes
    ----------
    job_id:
        The configuration hash — the job's identity in the journal, the
        result store, the checkpoint store and the run manifests.
    config:
        The expanded configuration the job runs.
    priority:
        Scheduling priority; higher runs first (ties break on job id).
    max_attempts:
        Total lease attempts before a transiently-failing job is
        quarantined (fatal failures quarantine immediately).
    """

    job_id: str
    config: ExperimentConfig
    priority: int = 0
    max_attempts: int = 2

    @classmethod
    def for_config(
        cls, config: ExperimentConfig, priority: int = 0, max_attempts: int = 2
    ) -> "JobSpec":
        return cls(
            job_id=config_hash(config),
            config=config,
            priority=priority,
            max_attempts=max_attempts,
        )

    def config_dict(self) -> dict[str, object]:
        """The JSON form of the job's configuration (journal payload)."""
        return config_to_dict(self.config)


@dataclass(frozen=True)
class CampaignSpec:
    """A named config sweep: base config, grid, explicit deltas, defaults."""

    name: str = "campaign"
    base: ExperimentConfig = field(default_factory=ExperimentConfig)
    #: Field name -> values; jobs are the cartesian product over all fields.
    grid: dict[str, tuple] = field(default_factory=dict)
    #: Explicit per-job deltas (may carry ``priority`` / ``max_attempts``).
    jobs: tuple[dict, ...] = field(default_factory=tuple)
    priority: int = 0
    max_attempts: int = 2

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise CampaignSpecError("campaign name must be non-empty")
        if self.max_attempts < 1:
            raise CampaignSpecError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        grid = {k: tuple(v) for k, v in dict(self.grid).items()}
        for name, values in grid.items():
            if name not in SWEEPABLE_FIELDS:
                raise CampaignSpecError(
                    f"grid sweeps unknown field {name!r} "
                    f"(sweepable: {', '.join(sorted(SWEEPABLE_FIELDS))})"
                )
            if not values:
                raise CampaignSpecError(f"grid field {name!r} has no values")
        object.__setattr__(self, "grid", grid)
        object.__setattr__(
            self, "jobs", tuple(dict(j) for j in tuple(self.jobs))
        )
        if not grid and not self.jobs:
            raise CampaignSpecError(
                "spec expands to no jobs: give a grid, a jobs list, or both"
            )

    # ------------------------------------------------------------------
    def expand(self) -> list[JobSpec]:
        """Materialise the sweep into jobs, highest priority first.

        Grid jobs apply each product point to the base config; explicit jobs
        apply their delta (minus the job keys).  Duplicate configurations —
        overlapping grid points and deltas hash identically — collapse to
        one job keeping the highest priority and the largest retry budget
        seen, so an overlapping re-submission can only *strengthen* a job.
        """
        base_dict = config_to_dict(self.base)
        expanded: dict[str, JobSpec] = {}

        def add(delta: dict[str, object], priority: int, max_attempts: int) -> None:
            merged = dict(base_dict)
            merged.pop("statistics", None)
            merged.update(delta)
            job = JobSpec.for_config(
                config_from_dict(merged),
                priority=priority,
                max_attempts=max_attempts,
            )
            previous = expanded.get(job.job_id)
            if previous is not None:
                job = JobSpec(
                    job_id=job.job_id,
                    config=job.config,
                    priority=max(previous.priority, job.priority),
                    max_attempts=max(previous.max_attempts, job.max_attempts),
                )
            expanded[job.job_id] = job

        # Guard the empty grid: product() over zero iterables yields one
        # empty point, which would smuggle the bare base config in as a job.
        if self.grid:
            names = sorted(self.grid)
            for values in itertools.product(*(self.grid[n] for n in names)):
                add(dict(zip(names, values)), self.priority, self.max_attempts)
        for entry in self.jobs:
            extra = {k: v for k, v in entry.items() if k not in _JOB_KEYS}
            priority = int(entry.get("priority", self.priority))
            max_attempts = int(entry.get("max_attempts", self.max_attempts))
            if max_attempts < 1:
                raise CampaignSpecError(
                    f"job max_attempts must be >= 1, got {max_attempts}"
                )
            add(extra, priority, max_attempts)
        return sorted(
            expanded.values(), key=lambda j: (-j.priority, j.job_id)
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON form of the spec (journalled with the campaign record)."""
        return {
            "name": self.name,
            "base": config_to_dict(self.base),
            "grid": {k: list(v) for k, v in sorted(self.grid.items())},
            "jobs": [dict(j) for j in self.jobs],
            "priority": self.priority,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "CampaignSpec":
        if not isinstance(payload, dict):
            raise CampaignSpecError(
                f"spec must be a JSON object, got {type(payload).__name__}"
            )
        unknown = sorted(
            set(payload) - {"name", "base", "grid", "jobs", "priority", "max_attempts"}
        )
        if unknown:
            raise CampaignSpecError(f"unknown spec key(s): {', '.join(unknown)}")
        base_fields = payload.get("base", {})
        if not isinstance(base_fields, dict):
            raise CampaignSpecError("spec 'base' must be a JSON object")
        base = config_from_dict(dict(base_fields))
        grid = payload.get("grid", {})
        if not isinstance(grid, dict):
            raise CampaignSpecError("spec 'grid' must be a JSON object")
        jobs = payload.get("jobs", [])
        if not isinstance(jobs, list) or not all(
            isinstance(j, dict) for j in jobs
        ):
            raise CampaignSpecError("spec 'jobs' must be a list of objects")
        return cls(
            name=str(payload.get("name", "campaign")),
            base=base,
            grid={str(k): tuple(v) for k, v in grid.items()},
            jobs=tuple(jobs),
            priority=int(payload.get("priority", 0)),
            max_attempts=int(payload.get("max_attempts", 2)),
        )


def load_spec(path: str) -> CampaignSpec:
    """Parse and validate a campaign spec JSON file."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CampaignSpecError(f"cannot read spec {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CampaignSpecError(f"spec {path} is not valid JSON: {exc}") from exc
    return CampaignSpec.from_dict(payload)
