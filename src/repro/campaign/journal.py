"""Crash-safe campaign journal: an append-only, sha256-framed JSONL WAL.

Campaign state is never stored directly — it is **reconstructed** by
replaying the journal, so the journal is the single source of truth and the
only file the supervisor must get right under crashes.  The discipline:

* **Append-only frames.**  Each record is one JSON line
  ``{"record": {...}, "seq": N, "sha256": "<hex>"}`` where the digest covers
  ``"<seq>:<canonical record JSON>"``.  A line is written with one
  ``write`` call, flushed and fsynced before :meth:`Journal.append`
  returns — when a record is acknowledged, it is on disk.
* **Torn tail tolerated.**  A crash mid-append leaves a final line that is
  truncated (unparsable, or parsable with a failing digest).  Replay treats
  exactly that — a damaged *last* line — as "the append never happened",
  warns, and returns the state of every acknowledged record before it.
* **Corruption never trusted.**  A damaged line *before* the tail cannot be
  a torn append (appends are sequential), so it is real corruption: replay
  raises :class:`JournalCorruptError` rather than rebuilding wrong state.
  Out-of-order or duplicated ``seq`` values are rejected the same way.
* **Atomic snapshot compaction.**  :meth:`Journal.compact` publishes a
  digest-checked ``snapshot.json`` (temp file + ``os.replace``) holding a
  state payload and the last sequence number it covers, then atomically
  replaces the journal with only the records past the snapshot.  Replay is
  idempotent across a crash *between* those two steps because records at or
  below ``snapshot.last_seq`` are skipped.

The ``campaign.journal`` chaos point lets tests mangle the very bytes of an
append (``truncate`` / ``corrupt``) to exercise both replay policies.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from pathlib import Path
from typing import IO

from repro import obs
from repro.resilience import chaos

__all__ = [
    "Journal",
    "JournalError",
    "JournalCorruptError",
    "JOURNAL_NAME",
    "SNAPSHOT_NAME",
]

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"
_SNAPSHOT_MAGIC = "repro-campaign-snapshot/1"


class JournalError(Exception):
    """The journal could not be read or written."""


class JournalCorruptError(JournalError):
    """A non-tail journal record (or the snapshot) failed verification."""


def _frame_digest(seq: int, record_json: str) -> str:
    return hashlib.sha256(f"{seq}:{record_json}".encode()).hexdigest()


class Journal:
    """The write-ahead journal (and snapshot) of one campaign directory."""

    def __init__(self, directory: str | Path, readonly: bool = False):
        """Open the journal of ``directory``.

        ``readonly=True`` opens for replay only: no tail repair, no appends,
        no directory creation side effects beyond the home itself.  This is
        what observers (``campaign status --follow``, ``trace``, ``report``)
        use while a live supervisor — the single writer — may still be
        appending: a read-only open must never touch the file.
        """
        self.dir = Path(directory)
        self.readonly = readonly
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise JournalError(
                f"cannot create campaign directory {self.dir}: {exc}"
            ) from exc
        self.path = self.dir / JOURNAL_NAME
        self.snapshot_path = self.dir / SNAPSHOT_NAME
        self._handle: IO[str] | None = None
        self._next_seq = -1 if readonly else self._recover_next_seq()

    # -- write path ----------------------------------------------------
    def _open(self) -> IO[str]:
        if self._handle is None:
            try:
                self._handle = open(self.path, "a", encoding="utf-8")
            except OSError as exc:
                raise JournalError(
                    f"cannot open journal {self.path}: {exc}"
                ) from exc
        return self._handle

    def append(self, record: dict) -> int:
        """Durably append one record; returns its sequence number.

        The line is flushed and fsynced before returning: an acknowledged
        record survives ``kill -9`` of the supervisor.  The cooperative
        ``campaign.journal`` chaos point (key: the record's ``type``) can
        mangle the write to simulate a torn (``truncate``) or bit-flipped
        (``corrupt``) line.
        """
        if self.readonly:
            raise JournalError(
                f"journal {self.path} was opened read-only"
            )
        record_json = json.dumps(record, sort_keys=True)
        seq = self._next_seq
        line = (
            json.dumps(
                {
                    "record": record,
                    "seq": seq,
                    "sha256": _frame_digest(seq, record_json),
                },
                sort_keys=True,
            )
            + "\n"
        )
        mangle = chaos.planned_kind(
            "campaign.journal", key=str(record.get("type"))
        )
        if mangle == "truncate":
            line = line[: max(1, len(line) // 2)]
        elif mangle == "corrupt":
            flip = len(line) // 2
            line = line[:flip] + ("#" if line[flip] != "#" else "@") + line[flip + 1 :]
        handle = self._open()
        try:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        except OSError as exc:
            raise JournalError(
                f"cannot append to journal {self.path}: {exc}"
            ) from exc
        self._next_seq = seq + 1
        obs.inc("campaign.journal_appends")
        return seq

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- read path -----------------------------------------------------
    def _recover_next_seq(self) -> int:
        records, last_seq, valid_bytes, ends_clean = self._scan()
        del records
        # Repair the tail before this instance can append: damaged bytes
        # (or a verified final line missing only its newline) would turn a
        # tolerated tear into unrecoverable mid-file corruption once a new
        # record lands after them.
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = valid_bytes
        try:
            if size > valid_bytes:
                os.truncate(self.path, valid_bytes)
            if valid_bytes and not ends_clean:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write("\n")
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError as exc:
            raise JournalError(
                f"cannot repair torn journal tail {self.path}: {exc}"
            ) from exc
        return last_seq + 1

    def replay(self) -> tuple[list[dict], int]:
        """Verified journal records newer than the snapshot, in order.

        Returns ``(records, last_seq)``: ``records`` are the journal records
        not yet folded into the snapshot (state reconstruction applies them
        on top of the snapshot's state payload, see
        :meth:`repro.campaign.state.CampaignState.load`); ``last_seq`` is
        the highest sequence number acknowledged anywhere (snapshot
        included), or -1 for a fresh journal.
        """
        records, last_seq, _valid_bytes, _ends_clean = self._scan()
        return records, last_seq

    def _scan(self) -> tuple[list[dict], int, int, bool]:
        """Replay core; also reports the clean byte extent for tail repair.

        Returns ``(records, last_seq, valid_bytes, ends_clean)`` where
        ``valid_bytes`` is how many leading bytes hold verified records and
        ``ends_clean`` is False when the last verified record is missing its
        trailing newline (a crash can lose the newline but not the frame).
        """
        snapshot = self.load_snapshot()
        snapshot_seq = -1 if snapshot is None else int(snapshot["last_seq"])
        records: list[dict] = []
        last_seq = snapshot_seq
        valid_bytes = 0
        ends_clean = True
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return records, last_seq, valid_bytes, ends_clean
        except OSError as exc:
            raise JournalError(
                f"cannot read journal {self.path}: {exc}"
            ) from exc
        for index, line in enumerate(lines):
            is_tail = index == len(lines) - 1
            try:
                seq, record = self._verify_line(line)
            except JournalCorruptError as exc:
                if is_tail:
                    # A damaged final line is the torn tail of a crashed
                    # append: the record was never acknowledged, so dropping
                    # it is exact — warn and stop.
                    warnings.warn(
                        f"{self.path}: discarding torn tail record ({exc})",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    obs.inc("campaign.journal_torn_tails")
                    break
                raise
            valid_bytes += len(line.encode("utf-8"))
            ends_clean = line.endswith("\n")
            if seq <= snapshot_seq:
                # Replayed by the snapshot already (compaction crashed
                # between snapshot publish and journal truncation).
                continue
            if seq != last_seq + 1:
                raise JournalCorruptError(
                    f"{self.path}: line {index + 1} has seq {seq}, "
                    f"expected {last_seq + 1}"
                )
            records.append(record)
            last_seq = seq
        return records, last_seq, valid_bytes, ends_clean

    def _verify_line(self, line: str) -> tuple[int, dict]:
        stripped = line.strip()
        if not stripped:
            raise JournalCorruptError("empty line")
        try:
            frame = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise JournalCorruptError(f"unparsable frame: {exc}") from exc
        if not isinstance(frame, dict):
            raise JournalCorruptError(
                f"frame is {type(frame).__name__}, expected object"
            )
        missing = {"record", "seq", "sha256"} - set(frame)
        if missing:
            raise JournalCorruptError(
                f"frame missing key(s): {', '.join(sorted(missing))}"
            )
        seq = frame["seq"]
        record = frame["record"]
        if not isinstance(seq, int) or not isinstance(record, dict):
            raise JournalCorruptError("frame seq/record have wrong types")
        record_json = json.dumps(record, sort_keys=True)
        if frame["sha256"] != _frame_digest(seq, record_json):
            raise JournalCorruptError(f"digest mismatch on seq {seq}")
        return seq, record

    # -- snapshot compaction --------------------------------------------
    def compact(self, state_payload: dict) -> int:
        """Atomically fold the journal into a snapshot; returns records kept.

        ``state_payload`` must be the state reconstructed from everything
        currently acknowledged (the caller replays first).  The snapshot is
        published with ``os.replace`` before the journal is truncated (also
        via ``os.replace``), so a crash at any point leaves a replayable
        pair: snapshot-then-full-journal replays are de-duplicated by
        sequence number.
        """
        if self.readonly:
            raise JournalError(
                f"journal {self.path} was opened read-only"
            )
        self.close()
        _records, last_seq = self.replay()
        blob = json.dumps(state_payload, sort_keys=True)
        snapshot = {
            "magic": _SNAPSHOT_MAGIC,
            "last_seq": last_seq,
            "state": state_payload,
            "state_sha256": hashlib.sha256(blob.encode()).hexdigest(),
            # Wall-clock of the compaction: the campaign trace exporter
            # places a "journal compacted" marker here.  Outside the digest
            # on purpose — old snapshots without it stay verifiable.
            "compacted_ts": round(time.time(), 6),
        }
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(snapshot, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.snapshot_path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise JournalError(
                f"cannot write snapshot {self.snapshot_path}: {exc}"
            ) from exc
        # Everything at or below last_seq now lives in the snapshot; the
        # journal restarts empty (records, if any arrived concurrently,
        # would carry higher seqs — the supervisor is single-writer, so in
        # practice the new journal starts empty).
        tmp_journal = self.path.with_suffix(".jsonl.tmp")
        try:
            with open(tmp_journal, "w", encoding="utf-8") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_journal, self.path)
        except OSError as exc:
            tmp_journal.unlink(missing_ok=True)
            raise JournalError(
                f"cannot truncate journal {self.path}: {exc}"
            ) from exc
        obs.inc("campaign.journal_compactions")
        return 0

    def load_snapshot(self) -> dict | None:
        """The verified snapshot, or None when absent.

        A snapshot that fails verification is unrecoverable corruption (it
        was published atomically, and the journal behind it was truncated),
        so it always raises :class:`JournalCorruptError`.
        """
        try:
            with open(self.snapshot_path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise JournalError(
                f"cannot read snapshot {self.snapshot_path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise JournalCorruptError(
                f"{self.snapshot_path}: unparsable snapshot: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("magic") != _SNAPSHOT_MAGIC:
            raise JournalCorruptError(
                f"{self.snapshot_path}: bad snapshot magic"
            )
        state = payload.get("state")
        blob = json.dumps(state, sort_keys=True)
        if hashlib.sha256(blob.encode()).hexdigest() != payload.get("state_sha256"):
            raise JournalCorruptError(
                f"{self.snapshot_path}: snapshot state digest mismatch"
            )
        if not isinstance(payload.get("last_seq"), int):
            raise JournalCorruptError(
                f"{self.snapshot_path}: snapshot last_seq missing"
            )
        return {
            "last_seq": payload["last_seq"],
            "state": state,
            "compacted_ts": payload.get("compacted_ts"),
        }
