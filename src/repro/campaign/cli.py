"""``python -m repro campaign`` — drive a durable multi-experiment campaign.

Subcommands::

    campaign run SPEC --dir DIR      submit the spec's sweep and run it
    campaign resume --dir DIR        continue a stopped/killed campaign
    campaign status --dir DIR        job table + counts (read-only)
    campaign status --dir DIR --follow   live-updating table (read-only)
    campaign trace --dir DIR         Chrome trace from the journal alone
    campaign report --dir DIR        self-contained HTML sweep report
    campaign gc --dir DIR            prune results/checkpoints not in history
    campaign compact --dir DIR       fold the journal into a snapshot

``status --follow``, ``trace`` and ``report`` open the journal strictly
read-only — they are safe to run against a live campaign (the supervisor
stays the single writer).

Exit codes follow the repo-wide convention: ``0`` success (campaign
complete, no quarantined jobs), ``1`` complete but with quarantined jobs,
``2`` validation/environment error (bad spec, missing directory), and
``128 + signum`` when a signal stopped the run cleanly (``130`` SIGINT,
``143`` SIGTERM) — the stop point is journalled, so ``campaign resume``
continues exactly where the run stopped.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path

from repro import obs
from repro.campaign.journal import (
    JOURNAL_NAME,
    Journal,
    JournalCorruptError,
    JournalError,
)
from repro.campaign.spec import CampaignSpecError, load_spec
from repro.campaign.state import DONE, LEASED, PENDING, QUARANTINED, CampaignState
from repro.campaign.store import ResultStore, dir_size_bytes
from repro.campaign.supervisor import DEFAULT_LEASE_TIMEOUT, CampaignSupervisor
from repro.resilience.checkpoint import CheckpointStore

__all__ = ["campaign_main", "build_campaign_parser"]


def build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Crash-safe supervised experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dir",
            required=True,
            metavar="DIR",
            help="campaign directory (journal, results, manifests, leases)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help=(
                "process-pool width; 0 runs jobs inline in the supervisor "
                "(default: CPU count)"
            ),
        )
        p.add_argument(
            "--lease-timeout",
            type=float,
            default=DEFAULT_LEASE_TIMEOUT,
            metavar="S",
            help=(
                "seconds a job may show no heartbeat progress before its "
                f"lease is reclaimed (default: {DEFAULT_LEASE_TIMEOUT:g})"
            ),
        )
        p.add_argument(
            "--results-dir",
            metavar="DIR",
            help=(
                "content-addressed result store (default: <dir>/results); "
                "share one across campaigns to share their cache"
            ),
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="render a live per-job fleet table on stderr",
        )
        p.add_argument(
            "--events",
            metavar="FILE",
            help=(
                "stream merged campaign + tagged worker events to FILE as "
                "JSON lines (tailable; appends across resumes)"
            ),
        )

    run = sub.add_parser("run", help="submit a spec's sweep and run it")
    run.add_argument("spec", metavar="SPEC", help="campaign spec JSON file")
    add_run_options(run)

    resume = sub.add_parser(
        "resume", help="continue a stopped or killed campaign"
    )
    add_run_options(resume)

    status = sub.add_parser("status", help="show the campaign's job table")
    status.add_argument("--dir", required=True, metavar="DIR")
    status.add_argument(
        "--follow",
        action="store_true",
        help=(
            "keep re-rendering until the campaign completes or stops "
            "(read-only; safe while a supervisor runs)"
        ),
    )
    status.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="journal poll interval for --follow (default: 1.0)",
    )

    trace = sub.add_parser(
        "trace",
        help="export a Chrome/Perfetto trace built from the journal alone",
    )
    trace.add_argument("--dir", required=True, metavar="DIR")
    trace.add_argument(
        "--out",
        metavar="FILE",
        help="trace JSON destination (default: <dir>/trace.json)",
    )
    trace.add_argument(
        "--events",
        metavar="FILE",
        help=(
            "overlay a merged --events JSONL stream as per-worker instant "
            "markers"
        ),
    )

    report = sub.add_parser(
        "report", help="render a self-contained HTML sweep report"
    )
    report.add_argument("--dir", required=True, metavar="DIR")
    report.add_argument(
        "--out",
        metavar="FILE",
        help="report destination (default: <dir>/report.html)",
    )
    report.add_argument(
        "--baseline",
        metavar="DIR",
        help=(
            "previous campaign directory to compare per-job wall times "
            "against (regression strip)"
        ),
    )
    report.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="X",
        help=(
            "regression threshold multiplier, same contract as "
            "obs check-bench (default: 3.0)"
        ),
    )
    report.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 when any job regressed vs --baseline",
    )
    report.add_argument(
        "--results-dir",
        metavar="DIR",
        help=(
            "result store searched for per-job manifests "
            "(default: <dir>/results)"
        ),
    )

    gc = sub.add_parser(
        "gc",
        help="delete results/checkpoints whose hash left the history",
    )
    gc.add_argument("--dir", required=True, metavar="DIR")
    gc.add_argument(
        "--results-dir",
        metavar="DIR",
        help="result store to prune (default: <dir>/results)",
    )
    gc.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="also prune this per-stage checkpoint store",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be deleted without deleting",
    )

    compact = sub.add_parser(
        "compact", help="fold the journal into an atomic snapshot"
    )
    compact.add_argument("--dir", required=True, metavar="DIR")
    return parser


def _require_campaign_dir(directory: str) -> Path | None:
    """The campaign home, or None (with a message) when nothing lives there."""
    path = Path(directory)
    if not (path / JOURNAL_NAME).exists() and not (
        path / "snapshot.json"
    ).exists():
        print(
            f"error: {directory} holds no campaign journal; "
            "start one with: python -m repro campaign run SPEC --dir "
            f"{directory}",
            file=sys.stderr,
        )
        return None
    return path


def _load_state(directory: Path) -> CampaignState:
    journal = Journal(directory, readonly=True)
    try:
        return CampaignState.load(journal)
    finally:
        journal.close()


def _load_journal_view(
    directory: Path,
) -> tuple[CampaignState, list[dict], list[float]]:
    """Read-only (state, records, compaction stamps) for observers.

    ``records`` are the journal records *after* the snapshot — a compacted
    journal's folded history lives only in the snapshot, so trace/report
    panels built from records cover what the journal still holds (the
    snapshot's ``compacted_ts`` marks the fold point).
    """
    journal = Journal(directory, readonly=True)
    try:
        snapshot = journal.load_snapshot()
        records, last_seq = journal.replay()
        if snapshot is not None:
            state = CampaignState.from_payload(snapshot["state"])
        else:
            state = CampaignState()
        for record in records:
            state.apply(record)
        state.last_seq = last_seq
        compactions = []
        if snapshot is not None and snapshot.get("compacted_ts") is not None:
            compactions.append(float(snapshot["compacted_ts"]))
        return state, records, compactions
    finally:
        journal.close()


def _keep_hashes(state: CampaignState, manifest_path: Path) -> set[str]:
    """Every config hash still referenced by journal or manifest history."""
    keep = set(state.jobs)
    if manifest_path.exists():
        from repro.obs.manifest import read_manifests

        try:
            for manifest in read_manifests(str(manifest_path)):
                if manifest.config_hash:
                    keep.add(manifest.config_hash)
        except Exception as exc:
            print(
                f"warning: cannot read manifests {manifest_path}: {exc}; "
                "keeping journal hashes only",
                file=sys.stderr,
            )
    return keep


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"


def _run_or_resume(args: argparse.Namespace, spec_path: str | None) -> int:
    if spec_path is None:
        home = _require_campaign_dir(args.dir)
        if home is None:
            return 2
    if args.workers is not None and args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.lease_timeout <= 0:
        print("error: --lease-timeout must be positive", file=sys.stderr)
        return 2

    spec = None
    if spec_path is not None:
        try:
            spec = load_spec(spec_path)
        except CampaignSpecError as exc:
            print(f"error: invalid campaign spec: {exc}", file=sys.stderr)
            return 2

    renderer = event_sink = None
    streaming = args.progress or bool(args.events)
    if streaming:
        bus = obs.enable_events()
        if args.progress:
            from repro.campaign.telemetry import FleetRenderer

            renderer = FleetRenderer()
            bus.subscribe(renderer)
        if args.events:
            try:
                event_sink = obs.JsonlEventSink(args.events, bus)
            except OSError as exc:
                print(
                    f"error: cannot write events file {args.events}: {exc}",
                    file=sys.stderr,
                )
                obs.disable_events()
                return 2

    try:
        try:
            supervisor = CampaignSupervisor(
                args.dir,
                max_workers=args.workers,
                lease_timeout=args.lease_timeout,
                results_dir=args.results_dir,
            )
        except (JournalError, OSError, ValueError) as exc:
            print(f"error: cannot open campaign: {exc}", file=sys.stderr)
            return 2
        if spec is not None:
            try:
                new = supervisor.submit(spec)
            except CampaignSpecError as exc:
                print(f"error: invalid campaign spec: {exc}", file=sys.stderr)
                return 2
            total = len(supervisor.state.jobs)
            print(
                f"campaign {supervisor.state.name!r}: {len(new)} new job(s) "
                f"submitted ({total} total) in {args.dir}"
            )
        elif not supervisor.state.jobs:
            print(
                f"error: campaign in {args.dir} has no jobs", file=sys.stderr
            )
            return 2
        report = supervisor.run()
    finally:
        if renderer is not None:
            renderer.close()
        if event_sink is not None:
            event_sink.close()
        if streaming:
            obs.disable_events()

    counts = report.counts
    print(
        f"campaign {report.name!r}: {counts.get(DONE, 0)} done "
        f"({report.jobs_cached} from cache, {report.jobs_computed} computed), "
        f"{counts.get(QUARANTINED, 0)} quarantined, "
        f"{counts.get(PENDING, 0) + counts.get(LEASED, 0)} remaining "
        f"[{report.wall_s:.1f}s]"
    )
    if report.leases_reclaimed:
        print(f"  reclaimed {report.leases_reclaimed} expired lease(s)")
    if report.stopped:
        print(
            f"stopped by {report.stop_reason}; resume with: "
            f"python -m repro campaign resume --dir {args.dir}"
        )
        try:
            return 128 + int(signal.Signals[str(report.stop_reason)].value)
        except (KeyError, ValueError):
            return 1
    return 1 if counts.get(QUARANTINED, 0) else 0


def _render_status(state: CampaignState) -> list[str]:
    """The status table as lines (shared by one-shot and --follow)."""
    if state.stopped_before_start:
        # A stop can be journalled before any campaign record (SIGINT while
        # the spec was still loading): the journal is valid, the campaign
        # just never started.
        return [
            f"campaign stopped before any job started "
            f"(stop reason: {state.stop_reason}); resume will wait for a "
            "spec submission"
        ]
    counts = state.counts()
    flags = []
    if state.finished:
        flags.append("finished")
    if state.stopped:
        flags.append(f"stopped ({state.stop_reason})")
    lines = [
        f"campaign {state.name!r}: {len(state.jobs)} job(s)"
        + (f"  [{', '.join(flags)}]" if flags else "")
    ]
    header = f"{'job':<18} {'status':<12} {'att':>3} {'prio':>4}  detail"
    lines.append(header)
    lines.append("-" * len(header))
    for job_id in state.job_order:
        job = state.jobs[job_id]
        if job.status == DONE:
            detail = "cache" if job.cached else "computed"
            if job.result_sha:
                detail += f"  sha={job.result_sha[:12]}"
        else:
            detail = job.last_error or ""
        lines.append(
            f"{job.job_id:<18} {job.status:<12} {job.attempts:>3} "
            f"{job.priority:>4}  {detail}"
        )
    lines.append(
        f"totals: {counts[DONE]} done, {counts[PENDING]} pending, "
        f"{counts[LEASED]} leased, {counts[QUARANTINED]} quarantined"
    )
    return lines


def _status(args: argparse.Namespace) -> int:
    home = _require_campaign_dir(args.dir)
    if home is None:
        return 2
    try:
        state = _load_state(home)
    except (JournalCorruptError, JournalError) as exc:
        print(f"error: cannot load campaign: {exc}", file=sys.stderr)
        return 2
    print("\n".join(_render_status(state)))
    if not args.follow:
        return 0
    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    # Follow mode: poll the journal read-only and re-render on change until
    # the campaign reaches a terminal state.  The journal is the only
    # channel — this works from any process, needs no event bus, and never
    # writes (a live supervisor stays the single writer).
    last_seq = state.last_seq
    try:
        while not (state.finished or state.stopped or
                   (state.jobs and state.complete)):
            time.sleep(args.interval)
            try:
                state = _load_state(home)
            except (JournalCorruptError, JournalError) as exc:
                print(
                    f"error: cannot load campaign: {exc}", file=sys.stderr
                )
                return 2
            if state.last_seq == last_seq:
                continue
            last_seq = state.last_seq
            print()
            print("\n".join(_render_status(state)))
    except KeyboardInterrupt:
        print()  # leave the table on its own line
    return 0


def _read_event_records(path: str) -> list[dict] | None:
    """JSONL event records from a ``--events`` stream (None on I/O error)."""
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of a killed writer
                if isinstance(record, dict):
                    records.append(record)
    except OSError as exc:
        print(f"error: cannot read events file {path}: {exc}",
              file=sys.stderr)
        return None
    return records


def _trace(args: argparse.Namespace) -> int:
    home = _require_campaign_dir(args.dir)
    if home is None:
        return 2
    try:
        _state, records, compactions = _load_journal_view(home)
    except (JournalCorruptError, JournalError) as exc:
        print(f"error: cannot load campaign: {exc}", file=sys.stderr)
        return 2
    events = None
    if args.events:
        events = _read_event_records(args.events)
        if events is None:
            return 2
    from repro.obs.export import write_campaign_trace

    out = args.out or str(home / "trace.json")
    try:
        count = write_campaign_trace(
            out, records, events=events, compactions=compactions
        )
    except OSError as exc:
        print(f"error: cannot write trace {out}: {exc}", file=sys.stderr)
        return 2
    print(
        f"wrote {count} trace event(s) to {out} "
        "(open in chrome://tracing or ui.perfetto.dev)"
    )
    return 0


def _campaign_manifests(home: Path, results_root: Path) -> list:
    """Every per-job manifest a campaign left behind.

    The supervisor appends to ``<dir>/manifests.jsonl``; jobs served from a
    *shared* result store may have journalled theirs next to the result
    payload instead, so the store is searched too.
    """
    from repro.obs.manifest import read_manifests

    paths = [home / "manifests.jsonl"]
    if results_root.is_dir():
        paths.extend(sorted(results_root.rglob("manifests.jsonl")))
    manifests = []
    for path in paths:
        if not path.is_file():
            continue
        try:
            manifests.extend(read_manifests(str(path)))
        except Exception as exc:
            print(
                f"warning: skipping unreadable manifests {path}: {exc}",
                file=sys.stderr,
            )
    return manifests


def _report(args: argparse.Namespace) -> int:
    from repro.obs.campaign_html import (
        DEFAULT_TOLERANCE,
        campaign_regressions,
        write_campaign_report,
    )

    home = _require_campaign_dir(args.dir)
    if home is None:
        return 2
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    if tolerance <= 0:
        print("error: --tolerance must be positive", file=sys.stderr)
        return 2
    try:
        state, records, _compactions = _load_journal_view(home)
    except (JournalCorruptError, JournalError) as exc:
        print(f"error: cannot load campaign: {exc}", file=sys.stderr)
        return 2
    base_records = None
    if args.baseline:
        base_home = _require_campaign_dir(args.baseline)
        if base_home is None:
            return 2
        try:
            _, base_records, _ = _load_journal_view(base_home)
        except (JournalCorruptError, JournalError) as exc:
            print(
                f"error: cannot load baseline campaign: {exc}",
                file=sys.stderr,
            )
            return 2
    results_root = Path(
        args.results_dir if args.results_dir else home / "results"
    )
    manifests = _campaign_manifests(home, results_root)
    out = args.out or str(home / "report.html")
    try:
        size = write_campaign_report(
            out,
            state.to_payload(),
            records,
            manifests=manifests,
            base_records=base_records,
            tolerance=tolerance,
            source=str(home),
        )
    except OSError as exc:
        print(f"error: cannot write report {out}: {exc}", file=sys.stderr)
        return 2
    print(
        f"wrote campaign report ({size} bytes, {len(state.jobs)} job(s), "
        f"{len(manifests)} manifest(s)) to {out}"
    )
    if base_records is None:
        return 0
    rows = campaign_regressions(records, base_records, tolerance)
    regressed = [r for r in rows if r["regressed"]]
    for row in rows:
        verdict = "REGRESSED" if row["regressed"] else "ok"
        print(
            f"  {row['job'][:18]:<18} {row['base_s']:.3f}s -> "
            f"{row['current_s']:.3f}s  ({row['ratio']:.2f}x)  {verdict}"
        )
    if not rows:
        print("  (no job computed in both campaigns; nothing to compare)")
    if regressed:
        print(
            f"{len(regressed)} job(s) slower than {tolerance:g}x baseline",
            file=sys.stderr,
        )
        if args.gate:
            return 1
    return 0


def _gc(args: argparse.Namespace) -> int:
    home = _require_campaign_dir(args.dir)
    if home is None:
        return 2
    try:
        state = _load_state(home)
    except (JournalCorruptError, JournalError) as exc:
        print(f"error: cannot load campaign: {exc}", file=sys.stderr)
        return 2
    keep = _keep_hashes(state, home / "manifests.jsonl")
    results_root = Path(
        args.results_dir if args.results_dir else home / "results"
    )
    store = ResultStore(results_root)
    candidates = [j for j in store.job_ids() if j not in keep]
    if args.dry_run:
        would_free = sum(
            dir_size_bytes(results_root / job_id) for job_id in candidates
        )
        print(
            f"gc (dry run): would remove {len(candidates)} result dir(s), "
            f"{_fmt_bytes(would_free)} from {results_root}"
        )
        removed, reclaimed = len(candidates), would_free
    else:
        removed, reclaimed = store.prune(keep)
        print(
            f"gc: removed {removed} result dir(s), "
            f"{_fmt_bytes(reclaimed)} reclaimed from {results_root}"
        )
    if args.checkpoint_dir:
        ckpt_root = Path(args.checkpoint_dir)
        if args.dry_run:
            n = sum(
                1
                for entry in ckpt_root.iterdir()
                if entry.is_dir() and entry.name not in keep
            ) if ckpt_root.is_dir() else 0
            print(
                f"gc (dry run): would prune up to {n} checkpoint dir(s) "
                f"from {ckpt_root}"
            )
        else:
            ck_removed, ck_reclaimed = CheckpointStore.prune(ckpt_root, keep)
            removed += ck_removed
            reclaimed += ck_reclaimed
            print(
                f"gc: removed {ck_removed} checkpoint dir(s), "
                f"{_fmt_bytes(ck_reclaimed)} reclaimed from {ckpt_root}"
            )
    print(f"kept {len(keep)} hash(es) still in journal/manifest history")
    return 0


def _compact(args: argparse.Namespace) -> int:
    home = _require_campaign_dir(args.dir)
    if home is None:
        return 2
    journal = Journal(home)
    try:
        state = CampaignState.load(journal)
        journal.compact(state.to_payload())
    except (JournalCorruptError, JournalError) as exc:
        print(f"error: cannot compact campaign: {exc}", file=sys.stderr)
        return 2
    finally:
        journal.close()
    print(
        f"compacted {home / JOURNAL_NAME} into {home / 'snapshot.json'} "
        f"(last_seq={state.last_seq}, {len(state.jobs)} job(s))"
    )
    return 0


def campaign_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro campaign``."""
    args = build_campaign_parser().parse_args(argv)
    if args.command == "run":
        return _run_or_resume(args, args.spec)
    if args.command == "resume":
        return _run_or_resume(args, None)
    if args.command == "status":
        return _status(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "report":
        return _report(args)
    if args.command == "gc":
        return _gc(args)
    if args.command == "compact":
        return _compact(args)
    raise AssertionError(f"unhandled command {args.command!r}")
