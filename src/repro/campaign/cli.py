"""``python -m repro campaign`` — drive a durable multi-experiment campaign.

Subcommands::

    campaign run SPEC --dir DIR      submit the spec's sweep and run it
    campaign resume --dir DIR        continue a stopped/killed campaign
    campaign status --dir DIR        job table + counts (read-only)
    campaign gc --dir DIR            prune results/checkpoints not in history
    campaign compact --dir DIR       fold the journal into a snapshot

Exit codes follow the repo-wide convention: ``0`` success (campaign
complete, no quarantined jobs), ``1`` complete but with quarantined jobs,
``2`` validation/environment error (bad spec, missing directory), and
``128 + signum`` when a signal stopped the run cleanly (``130`` SIGINT,
``143`` SIGTERM) — the stop point is journalled, so ``campaign resume``
continues exactly where the run stopped.
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path

from repro import obs
from repro.campaign.journal import (
    JOURNAL_NAME,
    Journal,
    JournalCorruptError,
    JournalError,
)
from repro.campaign.spec import CampaignSpecError, load_spec
from repro.campaign.state import DONE, LEASED, PENDING, QUARANTINED, CampaignState
from repro.campaign.store import ResultStore, dir_size_bytes
from repro.campaign.supervisor import DEFAULT_LEASE_TIMEOUT, CampaignSupervisor
from repro.resilience.checkpoint import CheckpointStore

__all__ = ["campaign_main", "build_campaign_parser"]


def build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Crash-safe supervised experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dir",
            required=True,
            metavar="DIR",
            help="campaign directory (journal, results, manifests, leases)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help=(
                "process-pool width; 0 runs jobs inline in the supervisor "
                "(default: CPU count)"
            ),
        )
        p.add_argument(
            "--lease-timeout",
            type=float,
            default=DEFAULT_LEASE_TIMEOUT,
            metavar="S",
            help=(
                "seconds a job may show no heartbeat progress before its "
                f"lease is reclaimed (default: {DEFAULT_LEASE_TIMEOUT:g})"
            ),
        )
        p.add_argument(
            "--results-dir",
            metavar="DIR",
            help=(
                "content-addressed result store (default: <dir>/results); "
                "share one across campaigns to share their cache"
            ),
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="render live campaign events on stderr",
        )
        p.add_argument(
            "--events",
            metavar="FILE",
            help="stream campaign events to FILE as JSON lines (tailable)",
        )

    run = sub.add_parser("run", help="submit a spec's sweep and run it")
    run.add_argument("spec", metavar="SPEC", help="campaign spec JSON file")
    add_run_options(run)

    resume = sub.add_parser(
        "resume", help="continue a stopped or killed campaign"
    )
    add_run_options(resume)

    status = sub.add_parser("status", help="show the campaign's job table")
    status.add_argument("--dir", required=True, metavar="DIR")

    gc = sub.add_parser(
        "gc",
        help="delete results/checkpoints whose hash left the history",
    )
    gc.add_argument("--dir", required=True, metavar="DIR")
    gc.add_argument(
        "--results-dir",
        metavar="DIR",
        help="result store to prune (default: <dir>/results)",
    )
    gc.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="also prune this per-stage checkpoint store",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be deleted without deleting",
    )

    compact = sub.add_parser(
        "compact", help="fold the journal into an atomic snapshot"
    )
    compact.add_argument("--dir", required=True, metavar="DIR")
    return parser


def _require_campaign_dir(directory: str) -> Path | None:
    """The campaign home, or None (with a message) when nothing lives there."""
    path = Path(directory)
    if not (path / JOURNAL_NAME).exists() and not (
        path / "snapshot.json"
    ).exists():
        print(
            f"error: {directory} holds no campaign journal; "
            "start one with: python -m repro campaign run SPEC --dir "
            f"{directory}",
            file=sys.stderr,
        )
        return None
    return path


def _load_state(directory: Path) -> CampaignState:
    journal = Journal(directory)
    try:
        return CampaignState.load(journal)
    finally:
        journal.close()


def _keep_hashes(state: CampaignState, manifest_path: Path) -> set[str]:
    """Every config hash still referenced by journal or manifest history."""
    keep = set(state.jobs)
    if manifest_path.exists():
        from repro.obs.manifest import read_manifests

        try:
            for manifest in read_manifests(str(manifest_path)):
                if manifest.config_hash:
                    keep.add(manifest.config_hash)
        except Exception as exc:
            print(
                f"warning: cannot read manifests {manifest_path}: {exc}; "
                "keeping journal hashes only",
                file=sys.stderr,
            )
    return keep


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"


def _run_or_resume(args: argparse.Namespace, spec_path: str | None) -> int:
    if spec_path is None:
        home = _require_campaign_dir(args.dir)
        if home is None:
            return 2
    if args.workers is not None and args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.lease_timeout <= 0:
        print("error: --lease-timeout must be positive", file=sys.stderr)
        return 2

    spec = None
    if spec_path is not None:
        try:
            spec = load_spec(spec_path)
        except CampaignSpecError as exc:
            print(f"error: invalid campaign spec: {exc}", file=sys.stderr)
            return 2

    renderer = event_sink = None
    streaming = args.progress or bool(args.events)
    if streaming:
        bus = obs.enable_events()
        if args.progress:
            renderer = obs.ProgressRenderer()
            bus.subscribe(renderer)
        if args.events:
            try:
                event_sink = obs.JsonlEventSink(args.events, bus)
            except OSError as exc:
                print(
                    f"error: cannot write events file {args.events}: {exc}",
                    file=sys.stderr,
                )
                obs.disable_events()
                return 2

    try:
        try:
            supervisor = CampaignSupervisor(
                args.dir,
                max_workers=args.workers,
                lease_timeout=args.lease_timeout,
                results_dir=args.results_dir,
            )
        except (JournalError, OSError, ValueError) as exc:
            print(f"error: cannot open campaign: {exc}", file=sys.stderr)
            return 2
        if spec is not None:
            try:
                new = supervisor.submit(spec)
            except CampaignSpecError as exc:
                print(f"error: invalid campaign spec: {exc}", file=sys.stderr)
                return 2
            total = len(supervisor.state.jobs)
            print(
                f"campaign {supervisor.state.name!r}: {len(new)} new job(s) "
                f"submitted ({total} total) in {args.dir}"
            )
        elif not supervisor.state.jobs:
            print(
                f"error: campaign in {args.dir} has no jobs", file=sys.stderr
            )
            return 2
        report = supervisor.run()
    finally:
        if renderer is not None:
            renderer.close()
        if event_sink is not None:
            event_sink.close()
        if streaming:
            obs.disable_events()

    counts = report.counts
    print(
        f"campaign {report.name!r}: {counts.get(DONE, 0)} done "
        f"({report.jobs_cached} from cache, {report.jobs_computed} computed), "
        f"{counts.get(QUARANTINED, 0)} quarantined, "
        f"{counts.get(PENDING, 0) + counts.get(LEASED, 0)} remaining "
        f"[{report.wall_s:.1f}s]"
    )
    if report.leases_reclaimed:
        print(f"  reclaimed {report.leases_reclaimed} expired lease(s)")
    if report.stopped:
        print(
            f"stopped by {report.stop_reason}; resume with: "
            f"python -m repro campaign resume --dir {args.dir}"
        )
        try:
            return 128 + int(signal.Signals[str(report.stop_reason)].value)
        except (KeyError, ValueError):
            return 1
    return 1 if counts.get(QUARANTINED, 0) else 0


def _status(args: argparse.Namespace) -> int:
    home = _require_campaign_dir(args.dir)
    if home is None:
        return 2
    try:
        state = _load_state(home)
    except (JournalCorruptError, JournalError) as exc:
        print(f"error: cannot load campaign: {exc}", file=sys.stderr)
        return 2
    counts = state.counts()
    flags = []
    if state.finished:
        flags.append("finished")
    if state.stopped:
        flags.append(f"stopped ({state.stop_reason})")
    print(
        f"campaign {state.name!r}: {len(state.jobs)} job(s)"
        + (f"  [{', '.join(flags)}]" if flags else "")
    )
    header = f"{'job':<18} {'status':<12} {'att':>3} {'prio':>4}  detail"
    print(header)
    print("-" * len(header))
    for job_id in state.job_order:
        job = state.jobs[job_id]
        if job.status == DONE:
            detail = "cache" if job.cached else "computed"
            if job.result_sha:
                detail += f"  sha={job.result_sha[:12]}"
        else:
            detail = job.last_error or ""
        print(
            f"{job.job_id:<18} {job.status:<12} {job.attempts:>3} "
            f"{job.priority:>4}  {detail}"
        )
    print(
        f"totals: {counts[DONE]} done, {counts[PENDING]} pending, "
        f"{counts[LEASED]} leased, {counts[QUARANTINED]} quarantined"
    )
    return 0


def _gc(args: argparse.Namespace) -> int:
    home = _require_campaign_dir(args.dir)
    if home is None:
        return 2
    try:
        state = _load_state(home)
    except (JournalCorruptError, JournalError) as exc:
        print(f"error: cannot load campaign: {exc}", file=sys.stderr)
        return 2
    keep = _keep_hashes(state, home / "manifests.jsonl")
    results_root = Path(
        args.results_dir if args.results_dir else home / "results"
    )
    store = ResultStore(results_root)
    candidates = [j for j in store.job_ids() if j not in keep]
    if args.dry_run:
        would_free = sum(
            dir_size_bytes(results_root / job_id) for job_id in candidates
        )
        print(
            f"gc (dry run): would remove {len(candidates)} result dir(s), "
            f"{_fmt_bytes(would_free)} from {results_root}"
        )
        removed, reclaimed = len(candidates), would_free
    else:
        removed, reclaimed = store.prune(keep)
        print(
            f"gc: removed {removed} result dir(s), "
            f"{_fmt_bytes(reclaimed)} reclaimed from {results_root}"
        )
    if args.checkpoint_dir:
        ckpt_root = Path(args.checkpoint_dir)
        if args.dry_run:
            n = sum(
                1
                for entry in ckpt_root.iterdir()
                if entry.is_dir() and entry.name not in keep
            ) if ckpt_root.is_dir() else 0
            print(
                f"gc (dry run): would prune up to {n} checkpoint dir(s) "
                f"from {ckpt_root}"
            )
        else:
            ck_removed, ck_reclaimed = CheckpointStore.prune(ckpt_root, keep)
            removed += ck_removed
            reclaimed += ck_reclaimed
            print(
                f"gc: removed {ck_removed} checkpoint dir(s), "
                f"{_fmt_bytes(ck_reclaimed)} reclaimed from {ckpt_root}"
            )
    print(f"kept {len(keep)} hash(es) still in journal/manifest history")
    return 0


def _compact(args: argparse.Namespace) -> int:
    home = _require_campaign_dir(args.dir)
    if home is None:
        return 2
    journal = Journal(home)
    try:
        state = CampaignState.load(journal)
        journal.compact(state.to_payload())
    except (JournalCorruptError, JournalError) as exc:
        print(f"error: cannot compact campaign: {exc}", file=sys.stderr)
        return 2
    finally:
        journal.close()
    print(
        f"compacted {home / JOURNAL_NAME} into {home / 'snapshot.json'} "
        f"(last_seq={state.last_seq}, {len(state.jobs)} job(s))"
    )
    return 0


def campaign_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro campaign``."""
    args = build_campaign_parser().parse_args(argv)
    if args.command == "run":
        return _run_or_resume(args, args.spec)
    if args.command == "resume":
        return _run_or_resume(args, None)
    if args.command == "status":
        return _status(args)
    if args.command == "gc":
        return _gc(args)
    if args.command == "compact":
        return _compact(args)
    raise AssertionError(f"unhandled command {args.command!r}")
