"""Crash-safe campaign layer: durable multi-experiment orchestration.

One campaign = one directory = one write-ahead journal.  The package treats
:func:`repro.experiments.run_experiment` as its unit of work and layers on:

* :mod:`repro.campaign.spec` — a config sweep expanded into jobs identified
  by configuration hash (:class:`CampaignSpec`, :class:`JobSpec`);
* :mod:`repro.campaign.journal` — the sha256-framed append-only journal with
  torn-tail-tolerant replay and atomic snapshot compaction
  (:class:`Journal`);
* :mod:`repro.campaign.state` — exact state reconstruction by replaying the
  journal (:class:`CampaignState`);
* :mod:`repro.campaign.store` — the content-addressed result store that
  serves re-submitted sweeps from cache (:class:`ResultStore`);
* :mod:`repro.campaign.supervisor` — the leased, heartbeat-monitored
  process-pool scheduler (:class:`CampaignSupervisor`), which also bridges
  worker events back onto the supervisor's bus tagged per job;
* :mod:`repro.campaign.telemetry` — the live fleet table renderer
  (:class:`FleetRenderer`, behind ``campaign run --progress``);
* :mod:`repro.campaign.cli` — ``python -m repro campaign run|resume|status|
  trace|report|gc|compact``.

See ``docs/CAMPAIGN.md`` for the design rationale and crash matrix.
"""

from repro.campaign.journal import (
    Journal,
    JournalCorruptError,
    JournalError,
)
from repro.campaign.spec import (
    CampaignSpec,
    CampaignSpecError,
    JobSpec,
    config_from_dict,
    load_spec,
)
from repro.campaign.state import CampaignState, JobState, campaign_record
from repro.campaign.store import (
    ResultCorruptError,
    ResultStore,
    record_sha256,
    result_record,
)
from repro.campaign.supervisor import CampaignReport, CampaignSupervisor
from repro.campaign.telemetry import FleetRenderer

__all__ = [
    "CampaignSpec",
    "CampaignSpecError",
    "JobSpec",
    "config_from_dict",
    "load_spec",
    "Journal",
    "JournalError",
    "JournalCorruptError",
    "CampaignState",
    "JobState",
    "campaign_record",
    "ResultStore",
    "ResultCorruptError",
    "result_record",
    "record_sha256",
    "CampaignSupervisor",
    "CampaignReport",
    "FleetRenderer",
]
