"""Content-addressed campaign results keyed by experiment-configuration hash.

A :class:`ResultStore` persists one canonical **result record** per job
under ``<root>/<job_id>/result.json``, with the same atomic, digest-verified
file discipline as :class:`repro.resilience.checkpoint.CheckpointStore`:
writes publish via temp-file + ``os.replace``, loads verify payload size and
SHA-256 before anything is trusted.  Because the job id *is* the config
hash, any re-submitted or overlapping sweep that expands to a job already in
the store is served from cache — zero fault simulation — and served
**bit-identically**: the record stores only deterministic outputs of
:func:`repro.experiments.run_experiment` (series, fit, detection digests),
never wall-clock facts.

:func:`result_record` defines that canonical record;
:func:`ResultStore.prune` is the unbounded-growth valve used by
``python -m repro campaign gc``.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import warnings
from pathlib import Path

from repro import obs
from repro.experiments.pipeline import ExperimentResult

__all__ = [
    "ResultStore",
    "ResultCorruptError",
    "result_record",
    "record_sha256",
    "dir_size_bytes",
]

_RESULT_MAGIC = "repro-campaign-result/1"


class ResultCorruptError(Exception):
    """A stored result failed its integrity check."""


def record_sha256(record: dict) -> str:
    """Digest of a result record's canonical JSON form."""
    blob = json.dumps(record, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def result_record(result: ExperimentResult) -> dict:
    """The canonical, deterministic record of one experiment run.

    Bit-identical across processes and across resume/recompute paths: it
    contains only values derived from the (deterministic) pipeline outputs —
    no wall-clock timings, no pids, no environment.  The per-fault detection
    maps are folded into digests so records stay small while still proving
    two runs detected exactly the same faults at exactly the same vectors.
    """
    fit = result.fit()
    stuck = result.stuck_result
    detection_blob = json.dumps(
        sorted((repr(f), k) for f, k in stuck.first_detection.items())
    )
    counts_blob = json.dumps(
        sorted((repr(f), n) for f, n in stuck.detection_counts.items())
    )
    return {
        "magic": _RESULT_MAGIC,
        "benchmark": result.config.benchmark,
        "seed": result.config.seed,
        "n_patterns": len(result.test_patterns),
        "n_random": result.n_random,
        "n_stuck_faults": len(result.stuck_faults),
        "n_redundant": len(result.redundant_faults),
        "n_untestable_static": len(result.static_untestable),
        "series": [
            [k, t, theta, gamma, dl]
            for k, t, theta, gamma, dl in result.series()
        ],
        "final_T": result.final_T,
        "final_theta": result.theta_at(result.sample_ks[-1]),
        "final_DL": result.dl_at(result.sample_ks[-1]),
        "R": fit.susceptibility_ratio,
        "theta_max_fit": fit.theta_max,
        "fit_residual": fit.residual,
        "theta_max_measured": result.theta_max,
        "first_detection_sha256": hashlib.sha256(
            detection_blob.encode()
        ).hexdigest(),
        "detection_counts_sha256": hashlib.sha256(
            counts_blob.encode()
        ).hexdigest(),
    }


def dir_size_bytes(path: Path) -> int:
    """Total size of every regular file under ``path``."""
    total = 0
    for entry in path.rglob("*"):
        try:
            if entry.is_file():
                total += entry.stat().st_size
        except OSError:
            continue
    return total


class ResultStore:
    """Atomic, digest-verified result files keyed by job (config) hash."""

    def __init__(self, root: str | Path, strict: bool = False):
        self.root = Path(root)
        self.strict = strict
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise OSError(
                f"cannot create result store {self.root}: {exc}"
            ) from exc

    def path_for(self, job_id: str) -> Path:
        return self.root / job_id / "result.json"

    def has(self, job_id: str) -> bool:
        """True when a result file exists for ``job_id`` (unverified)."""
        return self.path_for(job_id).exists()

    def job_ids(self) -> list[str]:
        """Every job hash with a result file, sorted."""
        return sorted(
            p.parent.name for p in self.root.glob("*/result.json")
        )

    # ------------------------------------------------------------------
    def save(self, job_id: str, record: dict) -> str:
        """Atomically persist ``record``; returns its canonical sha256."""
        sha = record_sha256(record)
        blob = json.dumps(record, sort_keys=True)
        envelope = json.dumps(
            {
                "magic": _RESULT_MAGIC,
                "job_id": job_id,
                "payload_sha256": sha,
                "payload_size": len(blob),
                "record": record,
            },
            sort_keys=True,
        )
        path = self.path_for(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(envelope + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise OSError(f"cannot write result {path}: {exc}") from exc
        obs.inc("campaign.results_saved")
        return sha

    def load(self, job_id: str) -> dict | None:
        """The verified result record for ``job_id``, or None when absent.

        A corrupt file raises :class:`ResultCorruptError` in strict mode;
        otherwise it is warned about, counted
        (``campaign.results_corrupt``), and treated as missing so the job
        recomputes.
        """
        path = self.path_for(job_id)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise OSError(f"cannot read result {path}: {exc}") from exc
        try:
            return self._decode(job_id, text)
        except ResultCorruptError as exc:
            if self.strict:
                raise
            warnings.warn(
                f"discarding corrupt result for job {job_id} ({exc}); "
                "the job will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
            obs.inc("campaign.results_corrupt")
            return None

    def _decode(self, job_id: str, text: str) -> dict:
        path = self.path_for(job_id)
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ResultCorruptError(f"{path}: unparsable envelope") from exc
        if (
            not isinstance(envelope, dict)
            or envelope.get("magic") != _RESULT_MAGIC
        ):
            raise ResultCorruptError(f"{path}: bad result magic")
        if envelope.get("job_id") != job_id:
            raise ResultCorruptError(
                f"{path}: envelope names job {envelope.get('job_id')!r}, "
                f"expected {job_id!r}"
            )
        record = envelope.get("record")
        if not isinstance(record, dict):
            raise ResultCorruptError(f"{path}: missing record")
        blob = json.dumps(record, sort_keys=True)
        if len(blob) != envelope.get("payload_size"):
            raise ResultCorruptError(
                f"{path}: payload is {len(blob)} bytes, envelope says "
                f"{envelope.get('payload_size')}"
            )
        if record_sha256(record) != envelope.get("payload_sha256"):
            raise ResultCorruptError(f"{path}: payload digest mismatch")
        obs.inc("campaign.results_loaded")
        return record

    # ------------------------------------------------------------------
    def prune(self, keep_hashes: set[str] | frozenset[str]) -> tuple[int, int]:
        """Delete result directories whose hash is not in ``keep_hashes``.

        Returns ``(directories_removed, bytes_reclaimed)``.  Only
        directories that actually hold a ``result.json`` are candidates —
        anything else under the root is left alone.
        """
        removed = 0
        reclaimed = 0
        for path in sorted(self.root.glob("*/result.json")):
            job_dir = path.parent
            if job_dir.name in keep_hashes:
                continue
            reclaimed += dir_size_bytes(job_dir)
            shutil.rmtree(job_dir, ignore_errors=True)
            removed += 1
        return removed, reclaimed
