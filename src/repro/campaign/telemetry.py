"""Live fleet telemetry for campaign runs (``--progress`` / ``--follow``).

The supervisor re-publishes worker events on its own bus tagged as
:class:`~repro.obs.events.JobEvent` and narrates scheduling through
:class:`~repro.obs.events.CampaignEvent`.  :class:`FleetRenderer`
subscribes to that merged stream and renders the *fleet*: one row per
in-flight job (stage, progress, lease attempt) plus a campaign footer
(done/cached/quarantined counts, throughput, an EWMA-based ETA).

On a TTY the table redraws in place (ANSI cursor-up); otherwise it prints
throttled single-line summaries so CI logs stay readable.  Like every
sink, the renderer is advisory — it never raises into the bus (a broken
terminal must not take the supervisor down).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import TextIO

from repro.obs.events import (
    CampaignEvent,
    Event,
    JobEvent,
    ProgressEvent,
    RetryEvent,
    StageEvent,
    _fmt_eta,
)

__all__ = ["FleetRenderer"]

#: Max job rows drawn on a TTY before the table elides to "… and N more".
_MAX_ROWS = 12

#: Terminal campaign-event actions, mapped to the status column they set.
_TERMINAL_STATUS = {
    "done": "done",
    "cached": "cached",
    "quarantine": "quarantined",
}


@dataclass
class _JobRow:
    """Everything the renderer knows about one job."""

    job_id: str
    status: str = "pending"  # pending|running|done|cached|quarantined
    attempt: int = 0
    stage: str = ""
    completed: float = 0.0
    total: float | None = None
    unit: str = ""
    worker_pid: int | None = None
    retries: int = 0
    dropped: int = 0
    wall_s: float | None = None
    last_update: float = field(default_factory=time.monotonic)

    @property
    def active(self) -> bool:
        return self.status == "running"


class FleetRenderer:
    """Terminal renderer for the merged campaign event stream.

    ``total_jobs`` seeds the footer's x/N completion counter (discovered
    from lease events when omitted).  The campaign ETA is ``remaining jobs
    × EWMA(job wall) / active leases`` — the same EWMA discipline
    :class:`~repro.obs.events.ProgressRenderer` applies to chunk latencies,
    lifted one level up to whole jobs.
    """

    def __init__(
        self,
        total_jobs: int | None = None,
        stream: TextIO | None = None,
        alpha: float = 0.4,
        min_interval: float = 0.5,
        clock=time.monotonic,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.total_jobs = total_jobs
        self.alpha = alpha
        self.min_interval = min_interval
        self._clock = clock
        self._jobs: dict[str, _JobRow] = {}
        self._ewma_wall: float | None = None
        self._started = clock()
        self._last_render = 0.0
        self._drawn_lines = 0
        self._notes: list[str] = []
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False

    # -- state folding ------------------------------------------------------
    def _row(self, job_id: str) -> _JobRow:
        row = self._jobs.get(job_id)
        if row is None:
            row = self._jobs[job_id] = _JobRow(job_id=job_id)
        return row

    def _apply_campaign(self, event: CampaignEvent) -> None:
        if event.job == "-":
            if event.action in ("stop", "degrade"):
                reason = event.data.get("reason", "")
                self._notes.append(f"{event.action}: {reason}")
            return
        row = self._row(event.job)
        row.last_update = self._clock()
        if event.action == "lease":
            row.status = "running"
            attempt = event.data.get("attempt")
            if isinstance(attempt, int):
                row.attempt = attempt
        elif event.action in _TERMINAL_STATUS:
            row.status = _TERMINAL_STATUS[event.action]
            wall = event.data.get("wall_s")
            if isinstance(wall, (int, float)) and wall > 0:
                row.wall_s = float(wall)
                self._ewma_wall = (
                    float(wall)
                    if self._ewma_wall is None
                    else self.alpha * float(wall)
                    + (1 - self.alpha) * self._ewma_wall
                )
        elif event.action == "reclaim":
            row.status = "reclaimed"
            row.stage = ""
        elif event.action == "events_dropped":
            dropped = event.data.get("dropped")
            if isinstance(dropped, int):
                row.dropped = dropped

    def _apply_job(self, event: JobEvent) -> None:
        row = self._row(event.job)
        row.last_update = self._clock()
        if event.worker_pid is not None:
            row.worker_pid = event.worker_pid
        inner = event.inner
        kind = event.inner_type
        if kind == "ProgressEvent":
            row.stage = str(inner.get("stage", row.stage))
            completed = inner.get("completed")
            if isinstance(completed, (int, float)):
                row.completed = float(completed)
            total = inner.get("total")
            row.total = float(total) if isinstance(total, (int, float)) else None
            row.unit = str(inner.get("unit", row.unit))
        elif kind == "StageEvent":
            if inner.get("status") == "start":
                row.stage = str(inner.get("stage", row.stage))
                row.completed, row.total = 0.0, None

    # -- counts -------------------------------------------------------------
    def _counts(self) -> dict[str, int]:
        counts = {"done": 0, "cached": 0, "quarantined": 0, "running": 0}
        for row in self._jobs.values():
            if row.status in ("done", "cached"):
                counts["done"] += 1
            if row.status == "cached":
                counts["cached"] += 1
            elif row.status == "quarantined":
                counts["quarantined"] += 1
            elif row.status == "running":
                counts["running"] += 1
        return counts

    def _footer(self) -> str:
        counts = self._counts()
        total = self.total_jobs or len(self._jobs)
        parts = [f"{counts['done']}/{total} done"]
        if counts["cached"]:
            parts.append(f"{counts['cached']} cached")
        if counts["quarantined"]:
            parts.append(f"{counts['quarantined']} quarantined")
        elapsed = max(1e-9, self._clock() - self._started)
        if counts["done"]:
            parts.append(f"{counts['done'] / elapsed:.2f} jobs/s")
        remaining = max(0, total - counts["done"] - counts["quarantined"])
        if remaining and self._ewma_wall is not None:
            lanes = max(1, counts["running"])
            parts.append(
                f"eta {_fmt_eta(remaining * self._ewma_wall / lanes)}"
            )
        dropped = sum(row.dropped for row in self._jobs.values())
        if dropped:
            parts.append(f"{dropped} worker event(s) dropped")
        return " · ".join(parts)

    def _row_line(self, row: _JobRow) -> str:
        parts = [f"{row.job_id[:12]:<12}", f"{row.status:<11}"]
        parts.append(f"a{row.attempt}")
        if row.worker_pid is not None:
            parts.append(f"pid {row.worker_pid}")
        if row.stage:
            progress = f"[{row.stage}]"
            if row.total:
                progress += f" {row.completed:g}/{row.total:g} {row.unit}"
            elif row.completed:
                progress += f" {row.completed:g} {row.unit}"
            parts.append(progress.rstrip())
        if row.wall_s is not None:
            parts.append(f"{row.wall_s:.2f}s")
        if row.retries:
            parts.append(f"{row.retries} retry(s)")
        return "  ".join(parts)

    # -- output -------------------------------------------------------------
    def _render_tty(self) -> None:
        # Redraw in place: move up over the previous frame, clear each line.
        rows = sorted(
            self._jobs.values(),
            key=lambda r: (not r.active, -r.last_update),
        )
        lines = [self._row_line(row) for row in rows[:_MAX_ROWS]]
        if len(rows) > _MAX_ROWS:
            lines.append(f"… and {len(rows) - _MAX_ROWS} more job(s)")
        lines.extend(self._notes[-2:])
        lines.append(self._footer())
        up = f"\x1b[{self._drawn_lines}A" if self._drawn_lines else ""
        body = "".join(f"\x1b[2K{line}\n" for line in lines)
        self.stream.write(up + body)
        self.stream.flush()
        self._drawn_lines = len(lines)

    def _render_log(self) -> None:
        self.stream.write(self._footer() + "\n")
        self.stream.flush()

    def _maybe_render(self, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        try:
            if self._tty:
                self._render_tty()
            else:
                self._render_log()
        except (OSError, ValueError):
            # A vanished/closed terminal must not unsubscribe the renderer
            # or disturb the supervisor; state keeps folding silently.
            pass

    def __call__(self, event: Event) -> None:
        if isinstance(event, CampaignEvent):
            self._apply_campaign(event)
            # Scheduling transitions always render: they are rare and they
            # are the moments a human watches for.
            self._maybe_render(force=event.action != "counters")
        elif isinstance(event, JobEvent):
            self._apply_job(event)
            self._maybe_render()
        elif isinstance(event, RetryEvent) and event.point == "campaign.job":
            self._row(str(event.key)).retries = event.attempt
            self._notes.append(
                f"retry {str(event.key)[:12]}: {event.reason}"
            )
            self._maybe_render(force=True)
        elif isinstance(event, (ProgressEvent, StageEvent)):
            # Inline campaigns (max_workers=0) publish untagged events on
            # the same bus; the fleet view ignores them — the per-job view
            # arrives via the tagged JobEvent republication.
            return

    def close(self) -> None:
        """Draw the final frame (always) and release the live region."""
        try:
            if self._tty:
                self._render_tty()
                self._drawn_lines = 0
            else:
                self._render_log()
        except (OSError, ValueError):
            pass
