"""The campaign supervisor: leased fan-out of experiments over a process pool.

One :class:`CampaignSupervisor` owns a campaign directory::

    <dir>/journal.jsonl     the write-ahead journal (single writer: this)
    <dir>/snapshot.json     atomic compaction of the journal (optional)
    <dir>/results/          content-addressed result store (config-hash keyed)
    <dir>/manifests.jsonl   one run manifest per completed job (obs toolchain)
    <dir>/leases/           worker heartbeat files, one per active lease

Scheduling discipline (the DAVOS ``Multicore`` shape — ``maxproc``,
``retry_attempts`` — rebuilt on this repo's journal/result-store/event-bus
substrate):

* Every transition is journalled **before** it is acted on (lease before
  submit, done after the result is safely in the store), so ``kill -9`` at
  any instant loses at most the in-flight leases — never a completed result.
* A job whose id is already in the result store is **served from cache**:
  the supervisor journals a cached completion, bumps ``pipeline.cache_hit``,
  and never touches a worker — re-submitted or overlapping sweeps cost
  seconds, not simulations.
* Each submitted job holds a **lease**: the worker heartbeats a counter file
  while it runs, and a lease with no progress for ``lease_timeout`` seconds
  is reclaimed — the hung pool is abandoned, a fresh one is built, and the
  job returns to the queue (its attempt spent).
* Failures classify through the PR-4 taxonomy
  (:func:`repro.resilience.classify_failure`): transient failures retry with
  the deterministic :class:`~repro.resilience.retry.RetryPolicy` backoff
  until the job's ``max_attempts`` budget is spent; fatal failures (and
  spent budgets) quarantine the job immediately.  Nothing is silent —
  counters, warnings, and :class:`~repro.obs.events.CampaignEvent` /
  :class:`~repro.obs.events.RetryEvent` records on the live bus.
* A broken pool degrades the worker count (never below one) rather than
  failing the campaign; SIGINT/SIGTERM journal a clean ``stop`` record so a
  later ``campaign resume`` continues exactly where the run stopped.

The ``campaign.job`` chaos point fires inside the worker before the
experiment runs (kinds ``exception``/``fatal``/``crash``/``sleep``); the
cooperative ``campaign.lease`` point (kind ``expire``) forces a lease to be
treated as expired, exercising the reclaim path deterministically.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.campaign.journal import Journal
from repro.campaign.spec import CampaignSpec, config_from_dict
from repro.campaign.state import DONE, CampaignState, campaign_record
from repro.campaign.store import ResultStore, result_record
from repro.experiments import run_experiment
from repro.obs.events import (
    BoundedEventBuffer,
    CampaignEvent,
    Event,
    JobEvent,
    RetryEvent,
    read_event_envelopes,
)
from repro.obs.manifest import RunManifest
from repro.resilience import chaos
from repro.resilience.errors import FailureKind, classify_failure
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future, ProcessPoolExecutor

__all__ = ["CampaignSupervisor", "CampaignReport"]

#: Default no-progress window before a lease is reclaimed.
DEFAULT_LEASE_TIMEOUT = 120.0


# ----------------------------------------------------------------------
# Worker side
def _init_campaign_worker(plan: chaos.ChaosPlan | None) -> None:
    """Pool initializer: arm the chaos plan inside each worker."""
    chaos.install(plan)


def _heartbeat_loop(
    path_str: str, interval: float, stop: threading.Event
) -> None:
    count = 0
    path = Path(path_str)
    while not stop.wait(interval):
        count += 1
        try:
            path.write_text(str(count), encoding="utf-8")
        except OSError:
            return


def _run_campaign_job(
    job_id: str,
    config_dict: dict[str, object],
    attempt: int,
    hb_path: str | None,
    hb_interval: float,
    events_path: str | None = None,
    telemetry: bool = False,
) -> dict[str, object]:
    """Execute one job in a worker: run the experiment, return its record.

    The ``campaign.job`` chaos point fires *before* the heartbeat thread
    starts, so an injected ``sleep`` models the worst hang — a worker that
    never reports liveness at all.

    With ``events_path`` the job runs under a fresh in-process event bus
    whose events ship back through a :class:`BoundedEventBuffer` envelope
    file (the pool half of the campaign event bridge); ``telemetry`` runs
    the job under a fresh metrics registry and returns its counter snapshot
    in the payload (``"counters"``).  Both save and restore the module-level
    obs state, so the inline mode (``max_workers=0``, sharing the
    supervisor's process) never clobbers the parent's collectors.
    """
    chaos.maybe_inject("campaign.job", key=job_id, attempt=attempt)
    stop = threading.Event()
    thread: threading.Thread | None = None
    if hb_path is not None:
        try:
            Path(hb_path).write_text("0", encoding="utf-8")
        except OSError:
            pass
        thread = threading.Thread(
            target=_heartbeat_loop,
            args=(hb_path, hb_interval, stop),
            daemon=True,
        )
        thread.start()
    prev_bus = obs.event_bus()
    prev_collector, prev_registry = obs.collector(), obs.registry()
    buffer: BoundedEventBuffer | None = None
    if events_path is not None:
        bus = obs.enable_events()
        buffer = BoundedEventBuffer(
            events_path,
            tags={
                "job": job_id,
                "attempt": attempt,
                "worker_pid": os.getpid(),
            },
        )
        bus.subscribe(buffer)
    fresh_registry = None
    if telemetry or events_path is not None:
        _collector, fresh_registry = obs.enable()
    try:
        config = config_from_dict(dict(config_dict))
        t0 = time.perf_counter()
        result = run_experiment(config)
        payload: dict[str, object] = {
            "record": result_record(result),
            "wall_s": time.perf_counter() - t0,
            "worker_pid": os.getpid(),
            "engine": dict(result.engine),
        }
        if fresh_registry is not None:
            payload["counters"] = fresh_registry.snapshot()["counters"]
        return payload
    finally:
        stop.set()
        if thread is not None:
            thread.join(timeout=1.0)
        if buffer is not None:
            buffer.close()
        if events_path is not None:
            if prev_bus is not None:
                obs.enable_events(prev_bus)
            else:
                obs.disable_events()
        if fresh_registry is not None:
            if prev_collector is not None and prev_registry is not None:
                obs.enable(prev_collector, prev_registry)
            else:
                obs.disable()


class _InlineForwarder:
    """Re-publish an inline job's events on the parent bus, tagged.

    The inline twin of the envelope-file bridge: events published while an
    inline job runs land on a private bus, and this forwarder wraps each one
    in a :class:`JobEvent` (job id, config hash, pid) before handing it to
    the supervisor's own bus — so ``--events`` streams and renderers see one
    merged, tagged feed regardless of pool width.
    """

    def __init__(self, job_id: str, pid: int, parent_bus: object) -> None:
        self.job_id = job_id
        self.pid = pid
        self.parent_bus = parent_bus

    def __call__(self, event: Event) -> None:
        self.parent_bus.publish(  # type: ignore[attr-defined]
            JobEvent(
                job=self.job_id,
                config_hash=self.job_id,
                worker_pid=self.pid,
                inner=event.to_record(),
                ts=event.ts,
                ts_mono=event.ts_mono,
            )
        )


# ----------------------------------------------------------------------
# Parent side
@dataclass
class _Lease:
    """Supervisor-side view of one granted lease."""

    job_id: str
    lease_id: str
    attempt: int
    granted_mono: float
    hb_path: Path | None
    last_hb: str = ""
    last_progress_mono: float = 0.0
    #: Worker-side event envelope channel (None = telemetry off).
    events_path: Path | None = None
    events_offset: int = 0
    events_dropped: int = 0

    def __post_init__(self) -> None:
        if not self.last_progress_mono:
            self.last_progress_mono = self.granted_mono


@dataclass
class CampaignReport:
    """What one :meth:`CampaignSupervisor.run` call accomplished."""

    name: str
    counts: dict[str, int] = field(default_factory=dict)
    jobs_cached: int = 0
    jobs_computed: int = 0
    jobs_retried: int = 0
    leases_reclaimed: int = 0
    jobs_quarantined: int = 0
    stopped: bool = False
    stop_reason: str | None = None
    finished: bool = False
    wall_s: float = 0.0

    @property
    def n_done(self) -> int:
        return self.counts.get(DONE, 0)


class CampaignSupervisor:
    """Durable scheduler for one campaign directory (single writer).

    Parameters
    ----------
    directory:
        Campaign home; created if missing.  Holds the journal, snapshot,
        result store, manifests and lease heartbeats.
    max_workers:
        Process-pool width.  ``0`` runs jobs inline in the supervisor
        process (no pool, no heartbeats) — the deterministic mode tests and
        tiny sweeps use.  None = machine CPU count.
    lease_timeout:
        Seconds a lease may show no heartbeat progress before it is
        reclaimed.  None disables reclaim (a hung worker hangs the
        campaign — only sensible inline).
    retry:
        Deterministic backoff policy between a job's transient failures
        (the per-job *budget* lives on the job spec as ``max_attempts``).
    results_dir:
        Result-store root; defaults to ``<directory>/results``.  Point
        several campaigns at one store to share their cache.
    """

    def __init__(
        self,
        directory: str | Path,
        max_workers: int | None = None,
        lease_timeout: float | None = DEFAULT_LEASE_TIMEOUT,
        retry: RetryPolicy | None = None,
        results_dir: str | Path | None = None,
        manifest_path: str | Path | None = None,
        poll_interval: float = 0.05,
    ) -> None:
        self.dir = Path(directory)
        self.journal = Journal(self.dir)
        self.state = CampaignState.load(self.journal)
        self.store = ResultStore(
            results_dir if results_dir is not None else self.dir / "results"
        )
        self.manifest_path = Path(
            manifest_path
            if manifest_path is not None
            else self.dir / "manifests.jsonl"
        )
        cpu = os.cpu_count() or 1
        self.max_workers = cpu if max_workers is None else max_workers
        if self.max_workers < 0:
            raise ValueError(
                f"max_workers must be >= 0, got {self.max_workers}"
            )
        self.lease_timeout = lease_timeout
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.poll_interval = poll_interval
        self._pool: "ProcessPoolExecutor | None" = None
        self._pool_workers = max(1, self.max_workers)
        self._stop_signal: str | None = None
        #: Backoff sleeper; tests substitute a recorder.
        self._sleep: Callable[[float], None] = time.sleep
        self._report = CampaignReport(name=self.state.name)

    # -- submission ----------------------------------------------------
    def submit(self, spec: CampaignSpec) -> list[str]:
        """Register ``spec``'s expanded jobs; returns the new job ids.

        Overlap-safe: jobs already registered keep their progress (a
        re-submission can only raise priority / retry budget), jobs already
        in the result store will be served from cache when :meth:`run`
        reaches them.
        """
        jobs = spec.expand()
        known = set(self.state.jobs)
        record = campaign_record(spec, jobs)
        self._append(record)
        obs.inc("campaign.jobs_submitted", len(jobs))
        return [j.job_id for j in jobs if j.job_id not in known]

    def _append(self, record: dict) -> None:
        # Stamp a wall clock into every journalled transition: replay
        # ignores unknown keys (state stays a pure fold), but the campaign
        # trace/gantt can then be rebuilt from the journal alone.
        record.setdefault("ts", round(time.time(), 6))
        seq = self.journal.append(record)
        self.state.apply(record)
        self.state.last_seq = seq

    # -- the run loop --------------------------------------------------
    def run(self) -> CampaignReport:
        """Drive the campaign until complete, stopped, or out of work."""
        from concurrent.futures import FIRST_COMPLETED, Future, wait

        t0 = time.perf_counter()
        self._report = CampaignReport(name=self.state.name)
        released = self.state.release_dead_leases()
        for job_id in released:
            # The journal must reflect the release (replay would otherwise
            # still see the dead lease): reclaim with a restart reason.
            self._append(
                {
                    "type": "reclaim",
                    "job": job_id,
                    "reason": "supervisor restart: lease holder is gone",
                }
            )
            self._emit_campaign(job_id, "reclaim", reason="supervisor restart")

        backoff_until: dict[str, float] = {}
        in_flight: dict["Future", _Lease] = {}
        previous_handlers: dict[int, object] = {}
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous_handlers[signum] = signal.signal(
                    signum, self._handle_signal
                )
        try:
            while True:
                if self._stop_signal is not None:
                    self._record_stop(self._stop_signal)
                    break
                now = time.monotonic()
                ready = [
                    job.job_id
                    for job in self.state.pending_jobs()
                    if backoff_until.get(job.job_id, 0.0) <= now
                ]
                # Cache first: served jobs never cost a lease or a worker.
                progressed = False
                for job_id in ready:
                    if self._serve_cached(job_id):
                        progressed = True
                if progressed:
                    continue
                slots = (
                    max(0, 1 - len(in_flight))
                    if self.max_workers == 0
                    else max(0, self._pool_workers - len(in_flight))
                )
                for job_id in ready[:slots]:
                    if self.max_workers == 0:
                        self._run_inline(job_id, backoff_until)
                        progressed = True
                    else:
                        lease = self._submit_job(job_id, in_flight)
                        progressed = lease or progressed
                if self.max_workers == 0:
                    if progressed:
                        continue
                    if not self._wait_for_backoff(backoff_until):
                        break
                    continue
                if not in_flight:
                    if any(
                        backoff_until.get(j.job_id, 0.0) > now
                        for j in self.state.pending_jobs()
                    ):
                        if not self._wait_for_backoff(backoff_until):
                            break
                        continue
                    break
                done, _ = wait(
                    set(in_flight),
                    timeout=self.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                for lease in in_flight.values():
                    self._pump_lease_events(lease)
                # Expiry first, harvest second: a chaos-forced ``expire``
                # must win even when the worker already finished, or the
                # reclaim path would depend on worker speed.
                self._check_leases(in_flight, backoff_until)
                for future in done:
                    lease = in_flight.pop(future, None)
                    if lease is None:  # reclaimed just above
                        continue
                    self._finish_lease(future, lease, backoff_until)
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)  # type: ignore[arg-type]
            self._shutdown_pool(abandon=self._stop_signal is not None)
        if self.state.complete and not self.state.finished:
            self._append({"type": "end", "name": self.state.name})
        self.journal.close()
        report = self._report
        report.counts = self.state.counts()
        report.stopped = self._stop_signal is not None
        report.stop_reason = self._stop_signal
        report.finished = self.state.finished
        report.wall_s = time.perf_counter() - t0
        return report

    def request_stop(self, reason: str = "requested") -> None:
        """Ask the run loop to stop at the next clean point (thread-safe)."""
        self._stop_signal = reason

    # -- cache serving --------------------------------------------------
    def _serve_cached(self, job_id: str) -> bool:
        record = self.store.load(job_id) if self.store.has(job_id) else None
        if record is None:
            return False
        from repro.campaign.store import record_sha256

        sha = record_sha256(record)
        self._append(
            {
                "type": "done",
                "job": job_id,
                "cached": True,
                "result_sha": sha,
            }
        )
        self._write_manifest(job_id, record, cache="hit")
        obs.inc("pipeline.cache_hit")
        obs.inc("campaign.jobs_cached")
        self._report.jobs_cached += 1
        self._emit_campaign(job_id, "cached", result_sha=sha)
        return True

    # -- job execution --------------------------------------------------
    def _submit_job(
        self, job_id: str, in_flight: dict["Future", _Lease]
    ) -> bool:
        job = self.state.jobs[job_id]
        attempt = job.attempts  # 0-based lease index
        lease_id = f"{job_id}.a{attempt}"
        hb_dir = self.dir / "leases"
        hb_dir.mkdir(parents=True, exist_ok=True)
        hb_path = hb_dir / f"{lease_id}.hb"
        hb_path.unlink(missing_ok=True)
        self._append(
            {
                "type": "lease",
                "job": job_id,
                "lease_id": lease_id,
                "attempt": attempt,
            }
        )
        obs.inc("pipeline.cache_miss")
        self._emit_campaign(job_id, "lease", attempt=attempt)
        interval = (
            max(0.02, min(1.0, self.lease_timeout / 4.0))
            if self.lease_timeout is not None
            else 1.0
        )
        events_path: Path | None = None
        if obs.events_enabled():
            events_path = hb_dir / f"{lease_id}.events.jsonl"
            events_path.unlink(missing_ok=True)
        pool = self._ensure_pool()
        try:
            future = pool.submit(
                _run_campaign_job,
                job_id,
                dict(job.config),
                attempt,
                str(hb_path),
                interval,
                str(events_path) if events_path is not None else None,
                events_path is not None,
            )
        except Exception as exc:  # pool broke at submission
            self._handle_failure(job_id, attempt, exc, {})
            self._degrade_pool(f"submit failed: {exc}")
            return False
        in_flight[future] = _Lease(
            job_id=job_id,
            lease_id=lease_id,
            attempt=attempt,
            granted_mono=time.monotonic(),
            hb_path=hb_path,
            events_path=events_path,
        )
        return True

    def _run_inline(
        self, job_id: str, backoff_until: dict[str, float]
    ) -> None:
        """Execute one job in-process (``max_workers=0``), same journal flow."""
        job = self.state.jobs[job_id]
        attempt = job.attempts
        self._append(
            {
                "type": "lease",
                "job": job_id,
                "lease_id": f"{job_id}.a{attempt}",
                "attempt": attempt,
            }
        )
        obs.inc("pipeline.cache_miss")
        self._emit_campaign(job_id, "lease", attempt=attempt)
        # Inline jobs share the supervisor's process: swap in a fresh bus so
        # the job's own events can be re-published *tagged* on the parent
        # bus (the same JobEvent envelope pool workers ship through files).
        parent_bus = obs.event_bus()
        if parent_bus is not None:
            fresh = obs.enable_events()
            fresh.subscribe(
                _InlineForwarder(job_id, os.getpid(), parent_bus)
            )
        try:
            payload = _run_campaign_job(
                job_id,
                dict(job.config),
                attempt,
                None,
                1.0,
                telemetry=parent_bus is not None,
            )
        except Exception as exc:
            self._handle_failure(job_id, attempt, exc, backoff_until)
            return
        finally:
            if parent_bus is not None:
                obs.enable_events(parent_bus)
        self._complete_job(job_id, payload)

    def _finish_lease(
        self,
        future: "Future",
        lease: _Lease,
        backoff_until: dict[str, float],
    ) -> None:
        from concurrent.futures import BrokenExecutor

        try:
            payload = future.result()
        except Exception as exc:
            self._handle_failure(
                lease.job_id, lease.attempt, exc, backoff_until
            )
            if isinstance(exc, BrokenExecutor):
                self._degrade_pool(f"pool broke: {exc}")
            return
        finally:
            self._close_lease_channel(lease)
        self._complete_job(lease.job_id, payload)

    def _complete_job(self, job_id: str, payload: dict[str, object]) -> None:
        record = payload["record"]
        assert isinstance(record, dict)
        sha = self.store.save(job_id, record)
        wall_s = round(float(payload.get("wall_s", 0.0)), 6)
        self._append(
            {
                "type": "done",
                "job": job_id,
                "cached": False,
                "result_sha": sha,
                "wall_s": wall_s,
                "worker_pid": payload.get("worker_pid"),
            }
        )
        self._write_manifest(job_id, record, cache="miss")
        obs.inc("campaign.jobs_done")
        self._report.jobs_computed += 1
        self._emit_campaign(
            job_id,
            "done",
            result_sha=sha,
            wall_s=wall_s,
            worker_pid=payload.get("worker_pid"),
        )
        counters = payload.get("counters")
        if isinstance(counters, dict) and counters:
            # The job's own counter snapshot, from the fresh per-job
            # registry: deterministic for a deterministic config, so a
            # resumed campaign's merged stream carries counters
            # bit-identical to an uninterrupted run's.
            self._emit_campaign(job_id, "counters", counters=counters)

    # -- failure handling -----------------------------------------------
    def _handle_failure(
        self,
        job_id: str,
        attempt: int,
        exc: BaseException,
        backoff_until: dict[str, float],
    ) -> None:
        failure = classify_failure(exc)
        job = self.state.jobs[job_id]
        self._append(
            {
                "type": "fail",
                "job": job_id,
                "attempt": attempt,
                "kind": failure.kind.value,
                "reason": failure.reason,
            }
        )
        obs.inc("campaign.job_failures")
        obs.inc(f"campaign.job_failure.{failure.exception_type}")
        if (
            failure.kind is FailureKind.FATAL
            or job.attempts >= job.max_attempts
        ):
            why = (
                "deterministic failure"
                if failure.kind is FailureKind.FATAL
                else f"retry budget spent ({job.attempts}/{job.max_attempts})"
            )
            self._quarantine(job_id, f"{why}: {failure.reason}")
            return
        delay = self.retry.delay(job.attempts - 1)
        backoff_until[job_id] = time.monotonic() + delay
        obs.inc("campaign.jobs_retried")
        self._report.jobs_retried += 1
        if obs.events_enabled():
            obs.emit(
                RetryEvent(
                    point="campaign.job",
                    key=job_id,
                    attempt=job.attempts,
                    reason=failure.reason,
                    delay_s=delay,
                )
            )
        warnings.warn(
            f"campaign job {job_id} failed transiently "
            f"({failure.reason}); retrying in {delay:.2f}s "
            f"(attempt {job.attempts}/{job.max_attempts})",
            RuntimeWarning,
            stacklevel=2,
        )

    def _quarantine(self, job_id: str, reason: str) -> None:
        self._append(
            {"type": "quarantine", "job": job_id, "reason": reason}
        )
        obs.inc("campaign.jobs_quarantined")
        self._report.jobs_quarantined += 1
        self._emit_campaign(job_id, "quarantine", reason=reason)
        warnings.warn(
            f"campaign job {job_id} quarantined: {reason}",
            RuntimeWarning,
            stacklevel=2,
        )

    # -- the event bridge (pool workers -> parent bus) --------------------
    def _pump_lease_events(self, lease: _Lease) -> None:
        """Re-publish a worker's shipped events, tagged, on the parent bus.

        Reads the newline-terminated envelopes appended to the lease's
        channel file since the last pump and re-publishes every wrapped
        event as a :class:`JobEvent`.  Envelope drop counters are surfaced —
        a ``campaign.worker_events_dropped`` counter plus an
        ``events_dropped`` campaign event — never swallowed.
        """
        if lease.events_path is None:
            return
        envelopes, lease.events_offset = read_event_envelopes(
            str(lease.events_path), lease.events_offset
        )
        for envelope in envelopes:
            tags = envelope.get("tags") or {}
            pid = tags.get("worker_pid")
            for record in envelope.get("events", ()):
                if not isinstance(record, dict):
                    continue
                obs.emit(
                    JobEvent(
                        job=lease.job_id,
                        config_hash=lease.job_id,
                        worker_pid=pid if isinstance(pid, int) else None,
                        inner=record,
                        ts=float(record.get("ts", 0.0) or 0.0),
                        ts_mono=float(record.get("ts_mono", 0.0) or 0.0),
                    )
                )
            dropped = envelope.get("dropped")
            if isinstance(dropped, int) and dropped > lease.events_dropped:
                delta = dropped - lease.events_dropped
                lease.events_dropped = dropped
                obs.inc("campaign.worker_events_dropped", delta)
                self._emit_campaign(
                    lease.job_id,
                    "events_dropped",
                    dropped=dropped,
                    new=delta,
                )

    def _close_lease_channel(self, lease: _Lease) -> None:
        """Final drain of a finished/reclaimed lease's files, then cleanup."""
        self._pump_lease_events(lease)
        if lease.hb_path is not None:
            lease.hb_path.unlink(missing_ok=True)
        if lease.events_path is not None:
            lease.events_path.unlink(missing_ok=True)
            lease.events_path = None

    # -- leases ----------------------------------------------------------
    def _check_leases(
        self,
        in_flight: dict["Future", _Lease],
        backoff_until: dict[str, float],
    ) -> None:
        if self.lease_timeout is None or not in_flight:
            return
        now = time.monotonic()
        expired: list["Future"] = []
        for future, lease in in_flight.items():
            if lease.hb_path is not None:
                try:
                    beat = lease.hb_path.read_text(encoding="utf-8")
                except OSError:
                    beat = lease.last_hb
                if beat != lease.last_hb:
                    lease.last_hb = beat
                    lease.last_progress_mono = now
            forced = (
                chaos.planned_kind(
                    "campaign.lease", key=lease.job_id, attempt=lease.attempt
                )
                == "expire"
            )
            # A completed future can only be reclaimed by a *forced*
            # expiry — the timeout path never punishes a finished worker.
            timed_out = (
                not future.done()
                and now - lease.last_progress_mono > self.lease_timeout
            )
            if forced or timed_out:
                expired.append(future)
        if not expired:
            return
        # One hung worker poisons the whole pool (we cannot kill a single
        # future): reclaim every in-flight lease, abandon the pool, and let
        # the survivors retry on a fresh one.
        hung = {in_flight[f].job_id for f in expired}
        for future, lease in list(in_flight.items()):
            reason = (
                f"lease {lease.lease_id} expired after "
                f"{self.lease_timeout}s without heartbeat progress"
                if future in expired
                else (
                    f"pool abandoned while reclaiming hung job(s) "
                    f"{', '.join(sorted(hung))}"
                )
            )
            self._append(
                {
                    "type": "reclaim",
                    "job": lease.job_id,
                    "lease_id": lease.lease_id,
                    "reason": reason,
                }
            )
            obs.inc("campaign.leases_reclaimed")
            self._report.leases_reclaimed += 1
            self._emit_campaign(lease.job_id, "reclaim", reason=reason)
            self._close_lease_channel(lease)
            job = self.state.jobs[lease.job_id]
            if job.attempts >= job.max_attempts:
                self._quarantine(
                    lease.job_id, f"retry budget spent after reclaim: {reason}"
                )
            else:
                delay = self.retry.delay(job.attempts - 1)
                backoff_until[lease.job_id] = time.monotonic() + delay
                obs.inc("campaign.jobs_retried")
                self._report.jobs_retried += 1
            del in_flight[future]
        warnings.warn(
            f"reclaimed {len(hung)} hung lease(s) "
            f"({', '.join(sorted(hung))}); pool abandoned and rebuilt",
            RuntimeWarning,
            stacklevel=3,
        )
        self._shutdown_pool(abandon=True)

    # -- pool management --------------------------------------------------
    def _ensure_pool(self) -> "ProcessPoolExecutor":
        from concurrent.futures import ProcessPoolExecutor

        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._pool_workers,
                initializer=_init_campaign_worker,
                initargs=(chaos.current_plan(),),
            )
        return self._pool

    def _degrade_pool(self, reason: str) -> None:
        """Rebuild the pool one worker narrower — degraded, never silent."""
        self._shutdown_pool(abandon=True)
        if self._pool_workers > 1:
            self._pool_workers -= 1
            obs.inc("campaign.workers_degraded")
            self._emit_campaign(
                "-", "degrade", workers=self._pool_workers, reason=reason
            )
            warnings.warn(
                f"campaign pool degraded to {self._pool_workers} worker(s): "
                f"{reason}",
                RuntimeWarning,
                stacklevel=3,
            )

    def _shutdown_pool(self, abandon: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=not abandon, cancel_futures=abandon)
            self._pool = None

    # -- stop / signals ---------------------------------------------------
    def _handle_signal(self, signum: int, _frame: object) -> None:
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        self._stop_signal = name

    def _record_stop(self, reason: str) -> None:
        self._append({"type": "stop", "reason": reason})
        obs.inc("campaign.stops")
        self._emit_campaign("-", "stop", reason=reason)

    # -- backoff waiting --------------------------------------------------
    def _wait_for_backoff(self, backoff_until: dict[str, float]) -> bool:
        """Sleep until the earliest backed-off job is ready; False = no work."""
        pending = {j.job_id for j in self.state.pending_jobs()}
        deadlines = [
            t for j, t in backoff_until.items() if j in pending
        ]
        if not deadlines:
            return False
        delay = max(0.0, min(deadlines) - time.monotonic())
        if delay:
            self._sleep(min(delay, 1.0))
        return True

    # -- reporting --------------------------------------------------------
    def _write_manifest(
        self, job_id: str, record: dict, cache: str
    ) -> None:
        """Append one run manifest per completed job (obs list/diff/html)."""
        job = self.state.jobs[job_id]
        try:
            config = config_from_dict(dict(job.config))
        except Exception:  # journalled config predates a schema change
            return
        results = {
            key: record.get(key)
            for key in (
                "R",
                "theta_max_fit",
                "fit_residual",
                "theta_max_measured",
                "final_T",
                "final_theta",
                "final_DL",
                "n_patterns",
                "n_random",
                "n_redundant",
                "n_untestable_static",
            )
        }
        results["campaign"] = self.state.name
        results["job_id"] = job_id
        manifest = RunManifest.from_run(config, results=results, cache=cache)
        try:
            manifest.write(str(self.manifest_path))
        except OSError as exc:
            warnings.warn(
                f"cannot append campaign manifest {self.manifest_path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    def _emit_campaign(self, job_id: str, action: str, **data: object) -> None:
        if obs.events_enabled():
            obs.emit(
                CampaignEvent(job=job_id, action=action, data=dict(data))
            )

    # -- maintenance ------------------------------------------------------
    def compact(self) -> None:
        """Fold the journal into an atomic snapshot (see :class:`Journal`)."""
        self.journal.compact(self.state.to_payload())
