"""Design-rule spacing checks.

The LVS-lite pass (:mod:`repro.layout.extract`) guarantees *electrical*
correctness — no shorts, no splits.  This module adds the geometric check:
same-layer shapes of different nets must keep the technology's minimum
spacing.  The generators are designed to be spacing-clean; the test suite
asserts it, and the checker doubles as a diagnostic when modifying the cell
template or router.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.design import LayoutDesign
from repro.layout.geometry import DesignRules, Rect
from repro.layout.spatial import SpatialIndex

__all__ = ["SpacingViolation", "check_spacing"]


@dataclass(frozen=True)
class SpacingViolation:
    """One pair of different-net shapes closer than the layer's rule."""

    shape_a: Rect
    shape_b: Rect
    spacing: float
    required: float

    @property
    def severity(self) -> float:
        """1 - spacing/required: 0 at the rule edge, 1 at contact."""
        return 1.0 - self.spacing / self.required


#: Metal1 clearance between a pin pad and neighbouring cell metal — real
#: rule decks carry a separate (smaller) pad-clearance rule.
PAD_CLEARANCE_RULE = 1.0


def check_spacing(
    design: LayoutDesign, rules: DesignRules | None = None
) -> list[SpacingViolation]:
    """Find same-layer, different-net shape pairs below minimum spacing.

    Only conductor layers are checked (cut layers sit inside conductor
    geometry by construction).  Touching/overlapping pairs are *shorts* and
    the LVS pass reports those; they appear here with spacing 0.

    Two technology-intent waivers apply:

    * source/drain diffusion segments flanking the same transistor channel —
      the drawn masks have *continuous* diffusion there, the gap is the
      gate, not a spacing site;
    * metal1 involving a pin pad uses the (smaller) pad-clearance rule.
    """
    rules = rules or DesignRules()
    violations: list[SpacingViolation] = []
    max_space = max(
        rules.min_space(layer)
        for layer in {s.layer for s in design.shapes if s.layer.is_conductor}
    )
    channels = [t.channel for t in design.transistors]
    channel_index = SpatialIndex(channels) if channels else None

    def separated_by_channel(a: Rect, b: Rect) -> bool:
        if channel_index is None:
            return False
        # Gap band between the two rects (works for the x-separated S/D case).
        lo_x = min(a.urx, b.urx)
        hi_x = max(a.llx, b.llx)
        lo_y = max(a.lly, b.lly)
        hi_y = min(a.ury, b.ury)
        if hi_x <= lo_x or hi_y <= lo_y:
            return False
        band = Rect(a.layer, lo_x, lo_y, hi_x, hi_y)
        return any(
            ch.intersects(band) and ch.overlap_area(band) > 0
            for ch in channel_index.near(band)
        )

    index = SpatialIndex([s for s in design.shapes if s.layer.is_conductor])
    for a, b in index.candidate_pairs(margin=max_space):
        if a.layer != b.layer or a.net == b.net or not a.net or not b.net:
            continue
        required = rules.min_space(a.layer)
        if "pin" in (a.purpose, b.purpose):
            required = min(required, PAD_CLEARANCE_RULE)
        spacing = a.distance_to(b)
        if spacing >= required - 1e-9:
            continue
        if a.layer.value.endswith("diff") and separated_by_channel(a, b):
            continue
        violations.append(SpacingViolation(a, b, spacing, required))
    violations.sort(key=lambda v: -v.severity)
    return violations
