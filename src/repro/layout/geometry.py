"""Layout geometry primitives: layers, rectangles and spacing queries.

Everything is axis-aligned Manhattan geometry, the norm for standard-cell
layout.  Dimensions are in micrometres of a nominal ~1 um, 2-metal CMOS
process (the paper's vintage); the technology constants live in
:class:`DesignRules`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum

__all__ = ["Layer", "Rect", "DesignRules", "bounding_box", "facing_span"]


class Layer(str, Enum):
    """Mask layers of the 2-metal CMOS process, bottom-up."""

    NWELL = "nwell"
    NDIFF = "ndiff"      # n+ active (NMOS source/drain)
    PDIFF = "pdiff"      # p+ active (PMOS source/drain)
    POLY = "poly"        # polysilicon gates and short straps
    CONTACT = "contact"  # diffusion/poly to metal1
    METAL1 = "metal1"
    VIA = "via"          # metal1 to metal2
    METAL2 = "metal2"

    @property
    def is_conductor(self) -> bool:
        """Layers on which spot defects cause shorts/opens between nets."""
        return self in (
            Layer.NDIFF,
            Layer.PDIFF,
            Layer.POLY,
            Layer.METAL1,
            Layer.METAL2,
        )

    @property
    def is_cut(self) -> bool:
        """Cut layers (contacts/vias), subject to missing-cut open defects."""
        return self in (Layer.CONTACT, Layer.VIA)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle on one layer, labelled with its net.

    ``net`` is the electrical node the shape belongs to ("" for well/implant
    shapes that carry no signal).  ``purpose`` distinguishes e.g. transistor
    gates ("gate") from routing ("wire") for fault classification.
    """

    layer: Layer
    llx: float
    lly: float
    urx: float
    ury: float
    net: str = ""
    purpose: str = "wire"
    #: Owning cell instance for cell-internal shapes ("" for routing).
    owner: str = ""

    def __post_init__(self) -> None:
        if self.urx < self.llx or self.ury < self.lly:
            raise ValueError(f"degenerate rect: {self}")

    # -- basic metrics --------------------------------------------------
    @property
    def width(self) -> float:
        """Extent along x."""
        return self.urx - self.llx

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.ury - self.lly

    @property
    def area(self) -> float:
        """Rectangle area."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Geometric centre (x, y)."""
        return ((self.llx + self.urx) / 2, (self.lly + self.ury) / 2)

    @property
    def min_dimension(self) -> float:
        """The wire width: the smaller of width and height."""
        return min(self.width, self.height)

    @property
    def length(self) -> float:
        """The wire length: the larger of width and height."""
        return max(self.width, self.height)

    # -- relations -------------------------------------------------------
    def intersects(self, other: Rect) -> bool:
        """True when the two rectangles overlap or touch (any layer)."""
        return (
            self.llx <= other.urx
            and other.llx <= self.urx
            and self.lly <= other.ury
            and other.lly <= self.ury
        )

    def overlap_area(self, other: Rect) -> float:
        """Area of geometric intersection (0 when disjoint)."""
        w = min(self.urx, other.urx) - max(self.llx, other.llx)
        h = min(self.ury, other.ury) - max(self.lly, other.lly)
        return max(0.0, w) * max(0.0, h)

    def distance_to(self, other: Rect) -> float:
        """Euclidean edge-to-edge clearance (0 when overlapping/touching)."""
        dx = max(0.0, max(self.llx, other.llx) - min(self.urx, other.urx))
        dy = max(0.0, max(self.lly, other.lly) - min(self.ury, other.ury))
        return math.hypot(dx, dy)

    def translated(self, dx: float, dy: float) -> Rect:
        """A copy shifted by (dx, dy)."""
        return replace(
            self, llx=self.llx + dx, lly=self.lly + dy, urx=self.urx + dx, ury=self.ury + dy
        )

    def renamed(self, net: str) -> Rect:
        """A copy attached to a different net."""
        return replace(self, net=net)


def bounding_box(rects: list[Rect]) -> Rect | None:
    """Smallest rectangle covering all shapes (layer of the first one)."""
    if not rects:
        return None
    return Rect(
        rects[0].layer,
        min(r.llx for r in rects),
        min(r.lly for r in rects),
        max(r.urx for r in rects),
        max(r.ury for r in rects),
    )


def facing_span(a: Rect, b: Rect) -> tuple[float, float] | None:
    """Parallel-run geometry between two same-layer shapes.

    Returns ``(spacing, run_length)``: the edge-to-edge gap and the length
    over which the two rectangles face each other in the orthogonal axis.
    Returns None when the shapes do not face (diagonal neighbours) or
    overlap; overlapping same-net shapes are simply connected metal, and
    overlapping different-net shapes would be a DRC violation the generator
    never produces.
    """
    x_overlap = min(a.urx, b.urx) - max(a.llx, b.llx)
    y_overlap = min(a.ury, b.ury) - max(a.lly, b.lly)
    if x_overlap > 0 and y_overlap > 0:
        return None  # overlapping
    if x_overlap > 0:
        spacing = max(a.lly, b.lly) - min(a.ury, b.ury)
        return (spacing, x_overlap)
    if y_overlap > 0:
        spacing = max(a.llx, b.llx) - min(a.urx, b.urx)
        return (spacing, y_overlap)
    return None


@dataclass(frozen=True)
class DesignRules:
    """Technology constants for the synthetic ~1 um 2-metal CMOS process.

    All values in micrometres.  These set wire widths/pitches for the cell
    generator and router, and the minimum spacings from which bridge critical
    areas start.
    """

    lambda_um: float = 0.5

    # widths
    poly_width: float = 1.0
    metal1_width: float = 1.5
    metal2_width: float = 1.5
    diff_width: float = 1.5
    contact_size: float = 1.0
    via_size: float = 1.0

    # spacings
    poly_space: float = 1.5
    metal1_space: float = 1.5
    metal2_space: float = 2.0
    diff_space: float = 1.5

    # pitches used by the router grid
    @property
    def metal1_pitch(self) -> float:
        """Centre-to-centre metal1 track pitch."""
        return self.metal1_width + self.metal1_space

    @property
    def metal2_pitch(self) -> float:
        """Centre-to-centre metal2 track pitch."""
        return self.metal2_width + self.metal2_space

    def min_width(self, layer: Layer) -> float:
        """Minimum drawn width for a conductor layer."""
        return {
            Layer.POLY: self.poly_width,
            Layer.METAL1: self.metal1_width,
            Layer.METAL2: self.metal2_width,
            Layer.NDIFF: self.diff_width,
            Layer.PDIFF: self.diff_width,
            Layer.CONTACT: self.contact_size,
            Layer.VIA: self.via_size,
        }.get(layer, self.lambda_um)

    def min_space(self, layer: Layer) -> float:
        """Minimum spacing for a conductor layer."""
        return {
            Layer.POLY: self.poly_space,
            Layer.METAL1: self.metal1_space,
            Layer.METAL2: self.metal2_space,
            Layer.NDIFF: self.diff_space,
            Layer.PDIFF: self.diff_space,
        }.get(layer, self.lambda_um)
