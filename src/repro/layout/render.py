"""SVG rendering of layouts for visual inspection.

Writes a self-contained SVG with one translucent colour per mask layer, in
mask order (wells at the bottom, metal2 on top), plus optional net tooltips.
Useful for debugging the generators and for documentation screenshots; no
third-party dependencies.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.layout.design import LayoutDesign
from repro.layout.geometry import Layer, Rect

__all__ = ["render_svg", "LAYER_STYLE"]

#: Fill colour and opacity per layer, drawn bottom-up in this order.
LAYER_STYLE: dict[Layer, tuple[str, float]] = {
    Layer.NWELL: ("#f2e8c9", 0.5),
    Layer.NDIFF: ("#2e8b57", 0.65),
    Layer.PDIFF: ("#c8a415", 0.65),
    Layer.POLY: ("#d04a35", 0.7),
    Layer.CONTACT: ("#1a1a1a", 0.9),
    Layer.METAL1: ("#3f6fbf", 0.55),
    Layer.VIA: ("#5e2d79", 0.9),
    Layer.METAL2: ("#b03060", 0.45),
}


def render_svg(
    shapes_or_design: LayoutDesign | Iterable[Rect],
    path: str | Path | None = None,
    scale: float = 2.0,
    tooltips: bool = True,
) -> str:
    """Render shapes (or a whole design) to SVG text.

    Parameters
    ----------
    shapes_or_design:
        A :class:`LayoutDesign` or any iterable of rectangles.
    path:
        When given, the SVG text is also written to this file.
    scale:
        Pixels per micrometre.
    tooltips:
        Emit ``<title>`` elements (net and purpose) per rectangle.

    Returns
    -------
    str
        The SVG document.
    """
    if isinstance(shapes_or_design, LayoutDesign):
        shapes = list(shapes_or_design.shapes)
        name = shapes_or_design.name
    else:
        shapes = list(shapes_or_design)
        name = "layout"
    if not shapes:
        raise ValueError("nothing to render")

    x_lo = min(s.llx for s in shapes)
    y_lo = min(s.lly for s in shapes)
    x_hi = max(s.urx for s in shapes)
    y_hi = max(s.ury for s in shapes)
    width = (x_hi - x_lo) * scale
    height = (y_hi - y_lo) * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.2f} {height:.2f}">',
        f"<!-- {name}: {len(shapes)} shapes, "
        f"{x_hi - x_lo:.1f} x {y_hi - y_lo:.1f} um -->",
        f'<rect width="{width:.2f}" height="{height:.2f}" fill="#fbfaf7"/>',
    ]

    order = list(LAYER_STYLE)
    for layer in order:
        fill, opacity = LAYER_STYLE[layer]
        group = [s for s in shapes if s.layer is layer]
        if not group:
            continue
        parts.append(f'<g fill="{fill}" fill-opacity="{opacity}">')
        for s in group:
            x = (s.llx - x_lo) * scale
            # SVG's y axis grows downward; flip so the die reads naturally.
            y = (y_hi - s.ury) * scale
            w = s.width * scale
            h = s.height * scale
            title = (
                f"<title>{_escape(s.net)} [{s.layer.value}"
                + (f"/{s.purpose}" if s.purpose != "wire" else "")
                + "]</title>"
                if tooltips and s.net
                else ""
            )
            parts.append(
                f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
                f'height="{h:.2f}">{title}</rect>'
            )
        parts.append("</g>")
    parts.append("</svg>")
    text = "\n".join(parts)
    if path is not None:
        Path(path).write_text(text)
    return text


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
