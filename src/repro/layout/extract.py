"""Layout-to-circuit extraction and physical verification.

This is the "layout-level circuit description + circuit extraction rules"
half of the paper's *lift* tool:

* :func:`build_connectivity` derives the electrical connectivity graph from
  pure geometry (same-layer contact/overlap plus contact/via cuts);
* :func:`verify_layout` is an LVS-lite check: every net label forms exactly
  one connected component and no two different nets touch (a hard short);
* :func:`extract_transistors` recovers MOS devices from poly/diffusion
  adjacency and cross-checks them against the generator's netlist.

These checks run in the test suite on every generated layout, so the defect
extractor downstream can trust shape labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.layout.design import LayoutDesign
from repro.layout.geometry import Layer, Rect
from repro.layout.spatial import SpatialIndex

__all__ = [
    "ExtractedTransistor",
    "VerificationReport",
    "build_connectivity",
    "verify_layout",
    "extract_transistors",
    "find_shorts",
]

_CONDUCTORS = (Layer.NDIFF, Layer.PDIFF, Layer.POLY, Layer.METAL1, Layer.METAL2)
_CONTACT_BOTTOM = (Layer.POLY, Layer.NDIFF, Layer.PDIFF)


def build_connectivity(shapes: list[Rect]) -> nx.Graph:
    """Electrical connectivity graph over shape indices.

    Edges join same-layer shapes that touch/overlap, and conductor shapes
    joined through a contact (poly/diff <-> metal1) or via (metal1 <->
    metal2) cut that overlaps both with positive area.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(len(shapes)))
    index_of = {id(s): i for i, s in enumerate(shapes)}
    index = SpatialIndex(shapes)

    for i, shape in enumerate(shapes):
        for other in index.near(shape):
            j = index_of[id(other)]
            if j <= i:
                continue
            if shape.layer == other.layer and shape.layer in _CONDUCTORS:
                if shape.intersects(other):
                    graph.add_edge(i, j)
            elif shape.layer.is_cut or other.layer.is_cut:
                cut, metal = (shape, other) if shape.layer.is_cut else (other, shape)
                if cut.overlap_area(metal) <= 0:
                    continue
                if cut.layer is Layer.CONTACT and metal.layer in (
                    Layer.METAL1,
                    *_CONTACT_BOTTOM,
                ):
                    graph.add_edge(i, j)
                elif cut.layer is Layer.VIA and metal.layer in (
                    Layer.METAL1,
                    Layer.METAL2,
                ):
                    graph.add_edge(i, j)
    return graph


@dataclass
class VerificationReport:
    """Result of the LVS-lite pass."""

    split_nets: dict[str, int] = field(default_factory=dict)  # net -> n components
    merged_nets: list[tuple[str, str]] = field(default_factory=list)
    shorts: list[tuple[Rect, Rect]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when connectivity matches labels and no shorts exist."""
        return not self.split_nets and not self.merged_nets and not self.shorts


def find_shorts(shapes: list[Rect]) -> list[tuple[Rect, Rect]]:
    """Same-layer shape pairs of *different* nets that touch or overlap."""
    shorts = []
    index = SpatialIndex(shapes)
    for a, b in index.candidate_pairs():
        if (
            a.layer == b.layer
            and a.layer in _CONDUCTORS
            and a.net != b.net
            and a.net
            and b.net
            and a.intersects(b)
        ):
            shorts.append((a, b))
    return shorts


def verify_layout(design: LayoutDesign) -> VerificationReport:
    """Check the layout's geometry against its net labels.

    * every labelled net must form exactly one connected component;
    * no connected component may carry two different net labels;
    * no two different-net shapes on one layer may touch.
    """
    report = VerificationReport()
    shapes = design.shapes
    graph = build_connectivity(shapes)

    for component in nx.connected_components(graph):
        labels = {shapes[i].net for i in component if shapes[i].net}
        if len(labels) > 1:
            ordered = sorted(labels)
            report.merged_nets.extend(
                (ordered[0], other) for other in ordered[1:]
            )

    components_per_net: dict[str, int] = {}
    for component in nx.connected_components(graph):
        labels = {shapes[i].net for i in component if shapes[i].net}
        for label in labels:
            components_per_net[label] = components_per_net.get(label, 0) + 1
    for net, count in components_per_net.items():
        if count > 1:
            report.split_nets[net] = count

    report.shorts = find_shorts(shapes)
    return report


@dataclass(frozen=True)
class ExtractedTransistor:
    """A MOS device recovered from geometry."""

    polarity: str
    gate_net: str
    sd_nets: frozenset[str]
    x: float
    y: float


def extract_transistors(design: LayoutDesign) -> list[ExtractedTransistor]:
    """Recover transistors from poly-over-diffusion adjacency.

    A device exists wherever a poly stripe separates two source/drain
    diffusion segments that abut it from opposite sides with overlapping
    vertical extent.
    """
    polys = [s for s in design.shapes if s.layer is Layer.POLY and s.purpose == "gate"]
    diffs = [s for s in design.shapes if s.layer in (Layer.NDIFF, Layer.PDIFF)]
    diff_index = SpatialIndex(diffs)

    devices: list[ExtractedTransistor] = []
    for poly in polys:
        near = [d for d in diff_index.near(poly, margin=1.0)]
        for layer in (Layer.NDIFF, Layer.PDIFF):
            left = [
                d
                for d in near
                if d.layer is layer
                and abs(d.urx - poly.llx) < 1e-9
                and min(d.ury, poly.ury) - max(d.lly, poly.lly) > 0
            ]
            right = [
                d
                for d in near
                if d.layer is layer
                and abs(d.llx - poly.urx) < 1e-9
                and min(d.ury, poly.ury) - max(d.lly, poly.lly) > 0
            ]
            for a in left:
                for b in right:
                    y_lo = max(a.lly, b.lly, poly.lly)
                    y_hi = min(a.ury, b.ury, poly.ury)
                    if y_hi <= y_lo:
                        continue
                    devices.append(
                        ExtractedTransistor(
                            polarity="n" if layer is Layer.NDIFF else "p",
                            gate_net=poly.net,
                            sd_nets=frozenset({a.net, b.net}),
                            x=(poly.llx + poly.urx) / 2,
                            y=(y_lo + y_hi) / 2,
                        )
                    )
    return devices
