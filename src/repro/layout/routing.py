"""Two-metal channel routing.

Routing model (matching the cell template in :mod:`repro.layout.cells`):

* every cell pin pad hangs in the channel *below* its row — inputs as metal1
  pads, outputs as metal2 pads;
* each net gets one horizontal **metal1 trunk** per channel it has pads in,
  on a track assigned by the classic left-edge algorithm;
* pads connect to their channel's trunk with short vertical **metal2
  branches** (via at the trunk; input pads also get a via at the pad);
* nets spanning several rows get one vertical **metal2 riser** connecting
  their trunks, placed on a free column found via a die-wide vertical-object
  registry (which also tracks pad branches and the cells' own metal2 drops,
  so no two metal2 verticals of different nets ever come closer than the
  metal2 spacing rule);
* vertical metal2 **power straps** at the left die edge tie the per-row
  VDD/GND rails together.

Channel heights are a *product* of routing (pad band + tracks + clearance),
so the router runs before absolute row positions exist; it works in
row/channel index space and :mod:`repro.layout.design` converts to absolute
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.cells import PIN_BAND, VDD, GND
from repro.layout.geometry import DesignRules, Layer
from repro.layout.placement import Placement

__all__ = ["PinRef", "NetRoute", "RoutingPlan", "route"]

#: Track pitch for metal1 trunks inside channels.
TRACK_PITCH = 3.0
#: Channel space above the top track / below the pad band.
PAD_CLEARANCE = 5.25
#: Extra channel space under the bottom track (clearance to the row below).
BOTTOM_CLEARANCE = 2.25
#: Pad band depth (pads occupy the top 3 um of each channel).
PAD_DEPTH = -PIN_BAND[0]
#: Minimum centre-to-centre distance between metal2 verticals.
M2_COLUMN_PITCH = 3.5


@dataclass(frozen=True)
class PinRef:
    """One cell pad: absolute x, owning row, and the pad's layer."""

    net: str
    x: float
    row: int
    layer: Layer


@dataclass
class NetRoute:
    """Routing assignment for one signal net."""

    net: str
    pins: list[PinRef] = field(default_factory=list)
    #: channel index -> (x_lo, x_hi, track) for the net's trunk there.
    trunks: dict[int, tuple[float, float, int]] = field(default_factory=dict)
    #: x column of the inter-channel riser, when the net spans channels.
    riser_x: float | None = None

    @property
    def channels(self) -> list[int]:
        """Channels in which this net has pads, ascending."""
        return sorted({pin.row for pin in self.pins})


@dataclass
class RoutingPlan:
    """Complete routing solution in row/channel index space."""

    nets: dict[str, NetRoute] = field(default_factory=dict)
    tracks_per_channel: dict[int, int] = field(default_factory=dict)

    def channel_height(self, channel: int) -> float:
        """Physical height of a channel given its track count.

        Measured from the row base downward: pad band (3 um) + clearance to
        the top track + (tracks - 1) pitches + half a trunk width + clearance
        to the row below; algebraically ``4.5 + 3 * tracks``.
        """
        tracks = self.tracks_per_channel.get(channel, 0)
        if tracks == 0:
            return PAD_DEPTH + 1.5
        return 4.5 + TRACK_PITCH * tracks

    def track_offset(self, track: int) -> float:
        """Trunk centreline y measured *down* from the row base."""
        return PAD_CLEARANCE + TRACK_PITCH * track


class _VerticalRegistry:
    """Die-wide registry of vertical metal2 objects for collision avoidance.

    Vertical extent is tracked in *zone units*: channel ``r`` is zone
    ``2r .. 2r+1`` and row ``r`` is zone ``2r+1 .. 2r+2``, which is enough to
    decide whether two verticals can overlap before absolute coordinates
    exist.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[float, float, float, float]] = []

    @staticmethod
    def channel_zone(channel: int) -> tuple[float, float]:
        return (2 * channel, 2 * channel + 1)

    @staticmethod
    def span_zone(channel_lo: int, channel_hi: int) -> tuple[float, float]:
        return (2 * channel_lo, 2 * channel_hi + 1)

    @staticmethod
    def cell_drop_zone(row: int) -> tuple[float, float]:
        # A cell's internal metal2 output drop spans its channel and the
        # lower part of its row.
        return (2 * row, 2 * row + 2)

    def add(self, x_lo: float, x_hi: float, zone: tuple[float, float]) -> None:
        self._entries.append((x_lo, x_hi, zone[0], zone[1]))

    def is_free(self, x_lo: float, x_hi: float, zone: tuple[float, float]) -> bool:
        gap = DesignRules().metal2_space
        for ex_lo, ex_hi, z_lo, z_hi in self._entries:
            if zone[1] <= z_lo or z_hi <= zone[0]:
                continue
            if x_lo - gap < ex_hi and ex_lo < x_hi + gap:
                return False
        return True

    def find_column(
        self,
        preferred: float,
        zone: tuple[float, float],
        x_min: float,
        x_max: float,
        half_width: float = 0.75,
    ) -> float:
        """Nearest free column centre to ``preferred`` within [x_min, x_max]."""
        # Scan at half the column pitch: is_free enforces real spacing, and
        # the finer grid packs columns tightly into the feedthrough lanes.
        grain = M2_COLUMN_PITCH / 2
        step = 0
        while step * grain < (x_max - x_min) + M2_COLUMN_PITCH:
            for sign in (1, -1) if step else (1,):
                x = preferred + sign * step * grain
                if not x_min <= x <= x_max:
                    continue
                if self.is_free(x - half_width, x + half_width, zone):
                    self.add(x - half_width, x + half_width, zone)
                    return x
            step += 1
        raise RuntimeError(
            f"no free riser column near x={preferred:.1f} in [{x_min:.1f}, {x_max:.1f}]"
        )


def collect_pins(placement: Placement) -> dict[str, list[PinRef]]:
    """Gather absolute pad references per signal net from the placement."""
    pins: dict[str, list[PinRef]] = {}
    for placed in placement.cells:
        cell = placed.cell
        for net, pad in cell.pads:
            if net in (VDD, GND):
                continue
            x = placed.x + (pad.llx + pad.urx) / 2
            pins.setdefault(net, []).append(PinRef(net, x, placed.row, pad.layer))
    return pins


def route(placement: Placement) -> RoutingPlan:
    """Compute trunks, tracks and riser columns for every signal net."""
    pins = collect_pins(placement)
    registry = _VerticalRegistry()
    plan = RoutingPlan()

    # 1. Register the fixed verticals: pad branches and cell metal2 drops.
    for net, refs in pins.items():
        for ref in refs:
            if ref.layer is Layer.METAL2:
                # Output pads: the cell's internal metal2 drop includes a jog
                # reaching 2.25 um left of the pad (back to the spine via).
                zone = registry.cell_drop_zone(ref.row)
                registry.add(ref.x - 2.25, ref.x + 0.75, zone)
            else:
                registry.add(ref.x - 0.75, ref.x + 0.75, registry.channel_zone(ref.row))

    # 2. Allocate riser columns for multi-channel nets.  x_min keeps risers
    # a full metal2 space away from the power straps at the left die edge;
    # longest spans go first (first-fit-decreasing packs columns much better
    # than arbitrary order).
    x_min = 9.0
    x_max = placement.die_width + 250.0
    for net in sorted(pins):
        plan.nets[net] = NetRoute(net=net, pins=pins[net])
    multi_row = [nr for nr in plan.nets.values() if len(nr.channels) > 1]
    multi_row.sort(key=lambda nr: nr.channels[-1] - nr.channels[0], reverse=True)
    for net_route in multi_row:
        channels = net_route.channels
        xs = sorted(ref.x for ref in net_route.pins)
        preferred = xs[len(xs) // 2]
        zone = registry.span_zone(channels[0], channels[-1])
        net_route.riser_x = registry.find_column(preferred, zone, x_min, x_max)

    # 3. Left-edge track assignment per channel.
    per_channel: dict[int, list[tuple[float, float, NetRoute]]] = {}
    for net_route in plan.nets.values():
        for channel in net_route.channels:
            xs = [ref.x for ref in net_route.pins if ref.row == channel]
            if net_route.riser_x is not None:
                xs.append(net_route.riser_x)
            lo, hi = min(xs) - 1.0, max(xs) + 1.0
            per_channel.setdefault(channel, []).append((lo, hi, net_route))

    margin = 2.25
    for channel, intervals in per_channel.items():
        intervals.sort(key=lambda item: item[0])
        track_right: list[float] = []
        for lo, hi, net_route in intervals:
            placed_track = None
            for t, right in enumerate(track_right):
                if right + margin <= lo:
                    placed_track = t
                    break
            if placed_track is None:
                placed_track = len(track_right)
                track_right.append(hi)
            else:
                track_right[placed_track] = hi
            net_route.trunks[channel] = (lo, hi, placed_track)
        plan.tracks_per_channel[channel] = len(track_right)

    return plan
