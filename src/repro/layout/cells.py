"""Procedural CMOS standard-cell generation.

Each mapped gate (INV, NAND2-4, NOR2-4 — see :mod:`repro.layout.techmap`)
becomes a :class:`CellLayout`: a transistor-level netlist plus real mask
geometry in cell-local coordinates.  The template follows the classic
two-rail standard-cell image of ~1 um 2-metal processes:

* horizontal metal1 power rails at the cell top (VDD) and bottom (GND),
* a PMOS diffusion band under the VDD rail, an NMOS band above the GND rail,
* one vertical poly stripe per input crossing both bands (the gates),
* metal1 stubs/straps for the series/parallel source-drain wiring and a
  vertical metal1 output spine,
* input pins as poly extensions contacted to metal1 pads *below* the cell
  (in the routing channel), and the output pin as a metal2 pad dropped from
  a via on the spine — so the router never has to cross the rails in metal1.

All shapes carry their electrical net name, which is what the defect
extractor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.layout.geometry import DesignRules, Layer, Rect

__all__ = [
    "Transistor",
    "CellLayout",
    "build_cell",
    "CELL_HEIGHT",
    "PIN_BAND",
    "VDD",
    "GND",
]

#: Global power net names used across the whole design.
VDD = "VDD"
GND = "GND"

# Cell template coordinates (micrometres, cell-local).
CELL_HEIGHT = 26.0
RAIL_GND_Y = (0.0, 2.0)
RAIL_VDD_Y = (24.0, 26.0)
NDIFF_Y = (4.0, 7.0)
PDIFF_Y = (19.0, 22.0)
POLY_Y = (-3.0, 23.0)       # stripes run from the pin band through both bands
PIN_BAND = (-3.0, -1.0)     # pad band in the channel below the cell
POLY_PITCH = 4.0
FIRST_POLY_LEFT = 3.0
POLY_WIDTH = 1.0
DIFF_LEFT = 1.5
M1_HALF = 0.75              # half of metal1 width 1.5
NMOS_STRIP_Y = (8.0, 9.5)   # below-spine OUT strap for NOR pull-down
PMOS_STRIP_Y = (16.5, 18.0)  # above-spine OUT strap for NAND pull-up

#: Transistor electrical strength per unit W/L, NMOS mobility reference.
NMOS_STRENGTH_PER_SQUARE = 1.0
PMOS_STRENGTH_PER_SQUARE = 0.5


@dataclass(frozen=True)
class Transistor:
    """One MOS device of a cell.

    ``source``/``drain`` are interchangeable electrically; by convention the
    source is the supply side of series chains.  ``channel`` is the gate-oxide
    region (poly over diffusion), used for oxide-short critical areas.
    """

    name: str
    polarity: str  # "n" or "p"
    gate: str
    source: str
    drain: str
    width: float
    length: float
    channel: Rect

    @property
    def strength(self) -> float:
        """Drive strength (conductance units) of the device when fully on."""
        per_square = (
            NMOS_STRENGTH_PER_SQUARE
            if self.polarity == "n"
            else PMOS_STRENGTH_PER_SQUARE
        )
        return per_square * self.width / self.length


@dataclass
class CellLayout:
    """A placed-at-origin standard cell: netlist + geometry + pins."""

    instance: str
    gate_type: GateType
    input_nets: tuple[str, ...]
    output_net: str
    width: float
    height: float = CELL_HEIGHT
    shapes: list[Rect] = field(default_factory=list)
    #: net -> one representative pad (the output pad for the output net).
    pins: dict[str, Rect] = field(default_factory=dict)
    #: every pad, in pin order — a net repeated on several gate pins (e.g.
    #: NAND(a, a)) contributes one pad per pin, and all must be routed.
    pads: list[tuple[str, Rect]] = field(default_factory=list)
    transistors: list[Transistor] = field(default_factory=list)
    internal_nets: list[str] = field(default_factory=list)

    @property
    def input_pad_x(self) -> dict[str, float]:
        """Pin-pad centre x per input net (cell-local)."""
        return {
            net: (pad.llx + pad.urx) / 2
            for net, pad in self.pins.items()
            if net != self.output_net
        }

    @property
    def output_pad_x(self) -> float:
        """Output pad centre x (cell-local)."""
        pad = self.pins[self.output_net]
        return (pad.llx + pad.urx) / 2


def _poly_stripe_x(i: int) -> tuple[float, float]:
    left = FIRST_POLY_LEFT + i * POLY_PITCH
    return left, left + POLY_WIDTH


def _segment_x(i: int, n: int) -> tuple[float, float]:
    """Diffusion S/D segment i (0..n) for an n-transistor row."""
    if i == 0:
        return DIFF_LEFT, FIRST_POLY_LEFT
    left = FIRST_POLY_LEFT + (i - 1) * POLY_PITCH + POLY_WIDTH
    if i == n:
        return left, left + 3.0
    return left, FIRST_POLY_LEFT + i * POLY_PITCH


def _seg_center(i: int, n: int) -> float:
    lo, hi = _segment_x(i, n)
    return (lo + hi) / 2


def _contact(x_center: float, y_center: float, net: str) -> Rect:
    return Rect(
        Layer.CONTACT, x_center - 0.5, y_center - 0.5, x_center + 0.5, y_center + 0.5, net
    )


def build_cell(
    gate: Gate, rules: DesignRules | None = None
) -> CellLayout:
    """Generate the standard-cell layout for one mapped gate.

    Supports INV (``NOT``) and NAND/NOR with 2-4 inputs.  Raises
    ``ValueError`` for anything else — run :func:`repro.layout.techmap.techmap`
    first.
    """
    del rules  # template dimensions are currently fixed; kept for API symmetry
    gt, n = gate.gate_type, len(gate.inputs)
    if gt is GateType.NOT:
        if n != 1:
            raise ValueError("INV cell takes exactly one input")
    elif gt in (GateType.NAND, GateType.NOR):
        if not 2 <= n <= 4:
            raise ValueError(f"{gt.value}{n} is not in the cell library (2-4)")
    else:
        raise ValueError(f"no physical cell for {gt.value}; techmap the netlist first")

    inst = gate.name
    out = gate.output
    cell = CellLayout(
        instance=inst,
        gate_type=gt,
        input_nets=tuple(gate.inputs),
        output_net=out,
        width=POLY_PITCH * n + 5.0,
    )
    shapes = cell.shapes

    # Rails ("rail" purpose: the design assembler replaces these with one
    # continuous rail per row so the rail is a single conductor, not a chain
    # of overlapping per-cell pieces).
    shapes.append(
        Rect(Layer.METAL1, 0, RAIL_GND_Y[0], cell.width, RAIL_GND_Y[1], GND, "rail")
    )
    shapes.append(
        Rect(Layer.METAL1, 0, RAIL_VDD_Y[0], cell.width, RAIL_VDD_Y[1], VDD, "rail")
    )

    # Poly gates with pin pads.
    for i, net in enumerate(gate.inputs):
        px0, px1 = _poly_stripe_x(i)
        shapes.append(Rect(Layer.POLY, px0, POLY_Y[0], px1, POLY_Y[1], net, "gate"))
        cx = (px0 + px1) / 2
        shapes.append(_contact(cx, -2.0, net))
        pad = Rect(Layer.METAL1, cx - M1_HALF, PIN_BAND[0], cx + M1_HALF, PIN_BAND[1], net, "pin")
        shapes.append(pad)
        cell.pins[net] = pad
        cell.pads.append((net, pad))

    spine_x = _seg_center(n, n)
    series_internal = []

    if gt is GateType.NOT:
        _diff_row(cell, Layer.NDIFF, NDIFF_Y, [GND, out], n)
        _diff_row(cell, Layer.PDIFF, PDIFF_Y, [VDD, out], n)
        _stub_down(cell, _seg_center(0, n), GND)
        _stub_up(cell, _seg_center(0, n), VDD)
        shapes.append(_contact(_seg_center(0, n), 5.5, GND))
        shapes.append(_contact(_seg_center(0, n), 20.5, VDD))
        shapes.append(_contact(spine_x, 5.5, out))
        shapes.append(_contact(spine_x, 20.5, out))
        spine_y = (5.0, 21.0)
    elif gt is GateType.NAND:
        # NMOS series GND -> out; PMOS parallel VDD/out alternating.
        series_internal = [f"{inst}#n{i}" for i in range(1, n)]
        nmos_nets = [GND, *series_internal, out]
        pmos_nets = [VDD if i % 2 == 0 else out for i in range(n + 1)]
        _diff_row(cell, Layer.NDIFF, NDIFF_Y, nmos_nets, n)
        _diff_row(cell, Layer.PDIFF, PDIFF_Y, pmos_nets, n)
        _stub_down(cell, _seg_center(0, n), GND)
        shapes.append(_contact(_seg_center(0, n), 5.5, GND))
        shapes.append(_contact(spine_x, 5.5, out))
        strip_lo = None
        for i, net in enumerate(pmos_nets):
            cx = _seg_center(i, n)
            shapes.append(_contact(cx, 20.5, net))
            if net == VDD:
                _stub_up(cell, cx, VDD)
            elif i < n:  # interior OUT contact -> connector down to the strip
                shapes.append(
                    Rect(Layer.METAL1, cx - M1_HALF, PMOS_STRIP_Y[0], cx + M1_HALF, 21.0, out)
                )
                strip_lo = cx if strip_lo is None else min(strip_lo, cx)
        if strip_lo is not None:
            shapes.append(
                Rect(
                    Layer.METAL1,
                    strip_lo - M1_HALF,
                    PMOS_STRIP_Y[0],
                    spine_x + M1_HALF,
                    PMOS_STRIP_Y[1],
                    out,
                )
            )
        spine_y = (5.0, 21.0) if pmos_nets[n] == out else (5.0, PMOS_STRIP_Y[1])
    else:  # NOR: PMOS series VDD -> out; NMOS parallel GND/out alternating.
        series_internal = [f"{inst}#p{i}" for i in range(1, n)]
        pmos_nets = [VDD, *series_internal, out]
        nmos_nets = [GND if i % 2 == 0 else out for i in range(n + 1)]
        _diff_row(cell, Layer.PDIFF, PDIFF_Y, pmos_nets, n)
        _diff_row(cell, Layer.NDIFF, NDIFF_Y, nmos_nets, n)
        _stub_up(cell, _seg_center(0, n), VDD)
        shapes.append(_contact(_seg_center(0, n), 20.5, VDD))
        shapes.append(_contact(spine_x, 20.5, out))
        strip_lo = None
        for i, net in enumerate(nmos_nets):
            cx = _seg_center(i, n)
            shapes.append(_contact(cx, 5.5, net))
            if net == GND:
                _stub_down(cell, cx, GND)
            elif i < n:
                shapes.append(
                    Rect(Layer.METAL1, cx - M1_HALF, 5.0, cx + M1_HALF, NMOS_STRIP_Y[1], out)
                )
                strip_lo = cx if strip_lo is None else min(strip_lo, cx)
        if strip_lo is not None:
            shapes.append(
                Rect(
                    Layer.METAL1,
                    strip_lo - M1_HALF,
                    NMOS_STRIP_Y[0],
                    spine_x + M1_HALF,
                    NMOS_STRIP_Y[1],
                    out,
                )
            )
        spine_y = (5.0, 21.0) if nmos_nets[n] == out else (NMOS_STRIP_Y[0], 21.0)

    # Output spine, via, metal2 drop to the pin pad.  The pad is offset
    # 1.5 um right of the spine (with a short metal2 jog at the via) so its
    # vertical metal2 keeps full spacing from the last input pin's branch.
    shapes.append(
        Rect(Layer.METAL1, spine_x - M1_HALF, spine_y[0], spine_x + M1_HALF, spine_y[1], out)
    )
    via_y = spine_y[0] + 1.5
    out_x = spine_x + 1.5
    shapes.append(
        Rect(Layer.VIA, spine_x - 0.5, via_y - 0.5, spine_x + 0.5, via_y + 0.5, out)
    )
    shapes.append(
        Rect(
            Layer.METAL2,
            spine_x - M1_HALF,
            via_y - 0.75,
            out_x + M1_HALF,
            via_y + 0.75,
            out,
        )
    )
    shapes.append(
        Rect(Layer.METAL2, out_x - M1_HALF, PIN_BAND[0], out_x + M1_HALF, via_y + 0.75, out)
    )
    out_pad = Rect(
        Layer.METAL2, out_x - M1_HALF, PIN_BAND[0], out_x + M1_HALF, PIN_BAND[1], out, "pin"
    )
    cell.pins[out] = out_pad
    cell.pads.append((out, out_pad))

    # Transistor records with channel rectangles.
    for i, net in enumerate(gate.inputs):
        px0, px1 = _poly_stripe_x(i)
        n_channel = Rect(Layer.POLY, px0, NDIFF_Y[0], px1, NDIFF_Y[1], net, "channel")
        p_channel = Rect(Layer.POLY, px0, PDIFF_Y[0], px1, PDIFF_Y[1], net, "channel")
        n_width = NDIFF_Y[1] - NDIFF_Y[0]
        p_width = PDIFF_Y[1] - PDIFF_Y[0]
        if gt is GateType.NOT:
            n_src, n_drn = GND, out
            p_src, p_drn = VDD, out
        elif gt is GateType.NAND:
            chain = [GND, *series_internal, out]
            n_src, n_drn = chain[i], chain[i + 1]
            p_src, p_drn = VDD, out
        else:
            chain = [VDD, *series_internal, out]
            p_src, p_drn = chain[i], chain[i + 1]
            n_src, n_drn = GND, out
        cell.transistors.append(
            Transistor(f"{inst}.N{i}", "n", net, n_src, n_drn, n_width, POLY_WIDTH, n_channel)
        )
        cell.transistors.append(
            Transistor(f"{inst}.P{i}", "p", net, p_src, p_drn, p_width, POLY_WIDTH, p_channel)
        )

    cell.internal_nets = list(series_internal)
    return cell


def _diff_row(
    cell: CellLayout,
    layer: Layer,
    band: tuple[float, float],
    seg_nets: list[str],
    n: int,
) -> None:
    """Emit the S/D diffusion segments of one transistor row."""
    for i, net in enumerate(seg_nets):
        x0, x1 = _segment_x(i, n)
        cell.shapes.append(Rect(layer, x0, band[0], x1, band[1], net, "sd"))


def _stub_down(cell: CellLayout, x_center: float, net: str) -> None:
    """Vertical metal1 strap from a contact down into the GND rail."""
    cell.shapes.append(
        Rect(Layer.METAL1, x_center - M1_HALF, 0.0, x_center + M1_HALF, 6.25, net)
    )


def _stub_up(cell: CellLayout, x_center: float, net: str) -> None:
    """Vertical metal1 strap from a contact up into the VDD rail."""
    cell.shapes.append(
        Rect(Layer.METAL1, x_center - M1_HALF, 20.0, x_center + M1_HALF, 26.0, net)
    )


def build_cells(circuit: Circuit) -> list[CellLayout]:
    """Generate cells for every gate of a tech-mapped circuit."""
    return [build_cell(gate) for gate in circuit.gates]
