"""Uniform-grid spatial index over layout rectangles.

Connectivity extraction, DRC-style checks, and critical-area neighbour
queries all need "which shapes are near this one" in better than O(n^2);
a simple bucket grid is ample at this library's die sizes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.layout.geometry import Rect

__all__ = ["SpatialIndex"]


class SpatialIndex:
    """Buckets rectangles into a uniform grid for neighbourhood queries."""

    def __init__(self, shapes: Iterable[Rect], cell_size: float = 25.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        self.shapes: list[Rect] = list(shapes)
        self._grid: dict[tuple[int, int], list[int]] = defaultdict(list)
        for index, shape in enumerate(self.shapes):
            for key in self._keys(shape, 0.0):
                self._grid[key].append(index)

    def _keys(self, shape: Rect, margin: float) -> Iterator[tuple[int, int]]:
        x0 = int((shape.llx - margin) // self.cell_size)
        x1 = int((shape.urx + margin) // self.cell_size)
        y0 = int((shape.lly - margin) // self.cell_size)
        y1 = int((shape.ury + margin) // self.cell_size)
        for gx in range(x0, x1 + 1):
            for gy in range(y0, y1 + 1):
                yield (gx, gy)

    def near(self, shape: Rect, margin: float = 0.0) -> list[Rect]:
        """Shapes whose bucket neighbourhood overlaps ``shape`` +- margin.

        Candidates only — callers still apply their exact predicate.
        """
        seen: set[int] = set()
        result: list[Rect] = []
        for key in self._keys(shape, margin):
            for index in self._grid.get(key, ()):  # pragma: no branch
                if index not in seen:
                    seen.add(index)
                    result.append(self.shapes[index])
        return result

    def candidate_pairs(self, margin: float = 0.0) -> Iterator[tuple[Rect, Rect]]:
        """Yield each unordered shape pair sharing a bucket (with margin).

        Pairs are yielded exactly once.  ``margin`` widens each shape's
        bucket footprint so near-but-not-touching pairs are included, which
        is what spacing and critical-area analyses need.
        """
        if margin > 0.0:
            widened: dict[tuple[int, int], list[int]] = defaultdict(list)
            for index, shape in enumerate(self.shapes):
                for key in self._keys(shape, margin):
                    widened[key].append(index)
            grid = widened
        else:
            grid = self._grid
        emitted: set[tuple[int, int]] = set()
        for indices in grid.values():
            for i, a in enumerate(indices):
                for b in indices[i + 1 :]:
                    pair = (a, b) if a < b else (b, a)
                    if pair not in emitted:
                        emitted.add(pair)
                        yield self.shapes[pair[0]], self.shapes[pair[1]]
