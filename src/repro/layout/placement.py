"""Row-based standard-cell placement.

Cells are placed in horizontal rows in depth-first cone order
(:func:`repro.circuit.levelize.dfs_topological`), which keeps each logic
cone contiguous — the cheap stand-in for a wirelength-driven placer, and a
load-bearing choice for the experiment's fault statistics (see DESIGN.md
section 4b).  Rows are filled greedily to a common target width, skipping
the vertical feedthrough lanes the router uses for inter-row metal2 risers,
so the die comes out roughly square given the row-plus-channel pitch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuit.levelize import dfs_topological
from repro.circuit.netlist import Circuit
from repro.layout.cells import CELL_HEIGHT, CellLayout, build_cell

__all__ = ["PlacedCell", "Placement", "place"]

#: Rough estimate of routing-channel height used only to pick the row count.
_CHANNEL_ESTIMATE = 18.0

#: Space reserved at the left die edge for power straps.
POWER_MARGIN = 8.0


@dataclass
class PlacedCell:
    """One cell instance at its absolute position."""

    cell: CellLayout
    x: float
    row: int


@dataclass
class Placement:
    """The placed design: rows of cells plus die-level metrics."""

    rows: list[list[PlacedCell]] = field(default_factory=list)
    row_width: float = 0.0
    #: Vertical feedthrough lanes (x_lo, x_hi) kept free of cells in every
    #: row, giving the router metal2 riser columns through the core.
    lanes: list[tuple[float, float]] = field(default_factory=list)

    @property
    def n_rows(self) -> int:
        """Number of cell rows."""
        return len(self.rows)

    @property
    def die_width(self) -> float:
        """Total die width including the power-strap margin."""
        return POWER_MARGIN + self.row_width

    @property
    def cells(self) -> list[PlacedCell]:
        """All placed cells, bottom row first."""
        return [pc for row in self.rows for pc in row]

    def total_cell_area(self) -> float:
        """Sum of cell footprints."""
        return sum(pc.cell.width * CELL_HEIGHT for pc in self.cells)


def place(
    mapped: Circuit,
    aspect: float = 1.0,
    lane_pitch: float = 40.0,
    lane_width: float = 11.0,
) -> Placement:
    """Place the cells of a tech-mapped circuit into rows.

    Parameters
    ----------
    mapped:
        Circuit over the physical cell library (see ``techmap``).
    aspect:
        Desired die height/width ratio; 1.0 aims for a square die.
    lane_pitch / lane_width:
        Spacing and width of the vertical feedthrough lanes kept free of
        cells, which the router uses for inter-row metal2 risers (the
        two-layer-process equivalent of feedthrough cells).
    """
    cells = [build_cell(gate) for gate in dfs_topological(mapped)]
    total_width = sum(c.width for c in cells)

    # Group decomposition clusters (techmap names a compound gate's internal
    # cells `<base>$k`): keeping a cluster in one row keeps its internal
    # nets riser-free and short, the way a library's compound cell would.
    groups: list[list[CellLayout]] = []
    for cell in cells:
        key = cell.instance.split("$")[0]
        if groups and groups[-1][0].instance.split("$")[0] == key:
            groups[-1].append(cell)
        else:
            groups.append([cell])
    # Lanes inflate the effective row width by roughly their area share.
    lane_factor = 1.0 + lane_width / max(lane_pitch, lane_width + 1.0)
    row_pitch = CELL_HEIGHT + _CHANNEL_ESTIMATE
    n_rows = max(1, round(math.sqrt(aspect * total_width * lane_factor / row_pitch)))
    target = total_width * lane_factor / n_rows

    lanes = [
        (POWER_MARGIN + (k + 1) * lane_pitch, POWER_MARGIN + (k + 1) * lane_pitch + lane_width)
        for k in range(int(target // lane_pitch) + 1)
        if POWER_MARGIN + (k + 1) * lane_pitch < POWER_MARGIN + target
    ]

    def advance_past_lanes(x: float, width: float) -> float:
        for lo, hi in lanes:
            if x < hi and lo < x + width:
                x = hi
        return x

    placement = Placement(lanes=lanes)
    current: list[PlacedCell] = []
    cursor = POWER_MARGIN
    row = 0
    for group in groups:
        group_width = sum(c.width for c in group)
        x = advance_past_lanes(cursor, group[0].width)
        # Row break decided per *group*, so clusters never straddle rows
        # (a cluster wider than a row still has to split).
        breaks = (
            current
            and x - POWER_MARGIN + group_width > target * 1.05
            and group_width <= target
        )
        if breaks:
            placement.rows.append(current)
            current = []
            cursor = POWER_MARGIN
            row += 1
        for cell in group:
            x = advance_past_lanes(cursor, cell.width)
            if current and x - POWER_MARGIN + cell.width > target * 1.35:
                # Oversize escape hatch: even a cluster must wrap eventually.
                placement.rows.append(current)
                current = []
                cursor = POWER_MARGIN
                row += 1
                x = advance_past_lanes(cursor, cell.width)
            current.append(PlacedCell(cell, x, row))
            cursor = x + cell.width
    if current:
        placement.rows.append(current)
    placement.row_width = max(
        ((r[-1].x + r[-1].cell.width - POWER_MARGIN) for r in placement.rows if r),
        default=0.0,
    )
    return placement
