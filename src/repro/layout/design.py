"""Full-design layout assembly: netlist -> placed, routed mask geometry.

:func:`build_layout` is the one-call entry point the experiments use: it
tech-maps the circuit, places the cells, routes the nets, and emits every
mask shape in absolute coordinates together with the transistor-level
netlist.  The result, :class:`LayoutDesign`, is what the defect extractor
(:mod:`repro.defects.extraction`) and the switch-level fault simulator
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.circuit.netlist import Circuit
from repro.layout.cells import (
    CELL_HEIGHT,
    GND,
    VDD,
    CellLayout,
    Transistor,
)
from repro.layout.geometry import Layer, Rect, bounding_box
from repro.layout.placement import Placement, place
from repro.layout.routing import RoutingPlan, route
from repro.layout.techmap import techmap

__all__ = ["LayoutDesign", "build_layout"]


@dataclass
class LayoutDesign:
    """A complete physical design.

    Attributes
    ----------
    name:
        Design name (source circuit name).
    source:
        The original gate-level circuit.
    mapped:
        The tech-mapped circuit actually implemented by the cells.
    placement / plan:
        Placement and routing solutions.
    shapes:
        Every mask rectangle in absolute die coordinates.
    transistors:
        Transistor-level netlist (absolute channel rectangles).
    cell_of_net:
        Output net -> the CellLayout driving it.
    row_base:
        Absolute y of each cell row's origin.
    """

    name: str
    source: Circuit
    mapped: Circuit
    placement: Placement
    plan: RoutingPlan
    shapes: list[Rect] = field(default_factory=list)
    transistors: list[Transistor] = field(default_factory=list)
    cell_of_net: dict[str, CellLayout] = field(default_factory=dict)
    row_base: list[float] = field(default_factory=list)

    @property
    def die(self) -> Rect | None:
        """Bounding box of all shapes."""
        return bounding_box(self.shapes)

    @property
    def signal_nets(self) -> list[str]:
        """All signal (non-supply) net names present in the layout."""
        names = {s.net for s in self.shapes if s.net and s.net not in (VDD, GND)}
        return sorted(names)

    def shapes_of_net(self, net: str) -> list[Rect]:
        """All shapes labelled with ``net``."""
        return [s for s in self.shapes if s.net == net]

    def area_mm2(self) -> float:
        """Die area in square millimetres."""
        box = self.die
        return 0.0 if box is None else box.width * box.height / 1e6

    def wire_length_by_layer(self) -> dict[Layer, float]:
        """Total drawn wire length per conductor layer (um)."""
        totals: dict[Layer, float] = {}
        for shape in self.shapes:
            if shape.layer.is_conductor:
                totals[shape.layer] = totals.get(shape.layer, 0.0) + shape.length
        return totals


def build_layout(circuit: Circuit, pre_mapped: bool = False) -> LayoutDesign:
    """Generate the complete layout for ``circuit``.

    Parameters
    ----------
    circuit:
        Gate-level circuit (any supported gate types).
    pre_mapped:
        Set True when ``circuit`` is already restricted to the physical
        library (skips tech mapping).
    """
    mapped = circuit if pre_mapped else techmap(circuit)
    placement = place(mapped)
    plan = route(placement)

    design = LayoutDesign(
        name=circuit.name,
        source=circuit,
        mapped=mapped,
        placement=placement,
        plan=plan,
    )

    # Row bases from channel heights (channel r sits below row r).
    y = 0.0
    for r in range(placement.n_rows):
        y += plan.channel_height(r)
        design.row_base.append(y)
        y += CELL_HEIGHT

    _emit_cells(design)
    _emit_rails_and_straps(design)
    _emit_routing(design)
    return design


# ----------------------------------------------------------------------
# Emission passes
# ----------------------------------------------------------------------
def _emit_cells(design: LayoutDesign) -> None:
    for placed in design.placement.cells:
        base = design.row_base[placed.row]
        for shape in placed.cell.shapes:
            if shape.purpose == "rail":
                continue  # replaced by the continuous per-row rails
            moved = shape.translated(placed.x, base)
            design.shapes.append(replace(moved, owner=placed.cell.instance))
        for t in placed.cell.transistors:
            design.transistors.append(
                Transistor(
                    t.name,
                    t.polarity,
                    t.gate,
                    t.source,
                    t.drain,
                    t.width,
                    t.length,
                    t.channel.translated(placed.x, base),
                )
            )
        design.cell_of_net[placed.cell.output_net] = placed.cell


def _emit_rails_and_straps(design: LayoutDesign) -> None:
    shapes = design.shapes
    rows = design.placement.rows
    for r, row in enumerate(rows):
        if not row:
            continue
        base = design.row_base[r]
        # One continuous rail per row, from the power-strap margin to the
        # last cell — it also bridges the feedthrough lanes, where the
        # per-cell rail segments leave gaps.
        row_end = row[-1].x + row[-1].cell.width
        shapes.append(Rect(Layer.METAL1, 0.0, base + 0.0, row_end, base + 2.0, GND))
        shapes.append(Rect(Layer.METAL1, 0.0, base + 24.0, row_end, base + 26.0, VDD))
    if not design.row_base:
        return
    y_lo = design.row_base[0]
    y_hi = design.row_base[-1]
    shapes.append(Rect(Layer.METAL2, 1.25, y_lo + 0.25, 2.75, y_hi + 1.75, GND))
    shapes.append(Rect(Layer.METAL2, 4.75, y_lo + 24.25, 6.25, y_hi + 25.75, VDD))
    for base in design.row_base:
        shapes.append(Rect(Layer.VIA, 1.5, base + 0.5, 2.5, base + 1.5, GND))
        shapes.append(Rect(Layer.VIA, 5.0, base + 24.5, 6.0, base + 25.5, VDD))


def _trunk_y(design: LayoutDesign, channel: int, track: int) -> float:
    return design.row_base[channel] - design.plan.track_offset(track)


def _emit_routing(design: LayoutDesign) -> None:
    shapes = design.shapes
    source_pis = set(design.mapped.primary_inputs)
    source_pos = set(design.mapped.primary_outputs)

    for net_name, net_route in design.plan.nets.items():
        trunk_ys: dict[int, float] = {}
        for channel, (lo, hi, track) in net_route.trunks.items():
            yc = _trunk_y(design, channel, track)
            trunk_ys[channel] = yc
            shapes.append(Rect(Layer.METAL1, lo, yc - 0.75, hi, yc + 0.75, net_name))

        # Pad branches (vertical metal2 from trunk up to the pad band).
        for pin in net_route.pins:
            yc = trunk_ys[pin.row]
            pad_top = design.row_base[pin.row] - 1.0
            shapes.append(
                Rect(Layer.METAL2, pin.x - 0.75, yc - 0.75, pin.x + 0.75, pad_top, net_name)
            )
            shapes.append(
                Rect(Layer.VIA, pin.x - 0.5, yc - 0.5, pin.x + 0.5, yc + 0.5, net_name)
            )
            if pin.layer is Layer.METAL1:  # input pads need a pad-level via
                pad_mid = design.row_base[pin.row] - 2.0
                shapes.append(
                    Rect(
                        Layer.VIA,
                        pin.x - 0.5,
                        pad_mid - 0.5,
                        pin.x + 0.5,
                        pad_mid + 0.5,
                        net_name,
                    )
                )

        # Riser connecting multi-channel trunks.
        if net_route.riser_x is not None:
            channels = net_route.channels
            y_lo = trunk_ys[channels[0]] - 0.75
            y_hi = trunk_ys[channels[-1]] + 0.75
            rx = net_route.riser_x
            shapes.append(Rect(Layer.METAL2, rx - 0.75, y_lo, rx + 0.75, y_hi, net_name))
            for channel in channels:
                yc = trunk_ys[channel]
                shapes.append(
                    Rect(Layer.VIA, rx - 0.5, yc - 0.5, rx + 0.5, yc + 0.5, net_name)
                )

        # External port markers for primary inputs/outputs (anchor shapes the
        # open-fault analysis uses as the net's external driver/observer).
        if net_name in source_pis or net_name in source_pos:
            channels = net_route.channels
            if channels:
                channel = channels[0]
                lo, hi, track = net_route.trunks[channel]
                yc = trunk_ys[channel]
                # The marker lies on top of the trunk (no new metal), so it
                # can never create spacing conflicts of its own.
                if net_name in source_pis:
                    shapes.append(
                        Rect(Layer.METAL1, lo, yc - 0.75, min(lo + 2.0, hi), yc + 0.75, net_name, "port")
                    )
                else:
                    shapes.append(
                        Rect(Layer.METAL1, max(hi - 2.0, lo), yc - 0.75, hi, yc + 0.75, net_name, "port")
                    )
