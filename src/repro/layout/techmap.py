"""Technology mapping onto the physical standard-cell library.

The cell generator realises only static complementary CMOS primitives — INV
and NAND/NOR up to four inputs — as real standard-cell libraries of the
paper's era did.  :func:`techmap` rewrites an arbitrary gate-level circuit
into an equivalent netlist over those primitives:

* ``AND``/``OR``  -> NAND/NOR + INV (wide gates decomposed into trees),
* ``XOR``        -> the classic four-NAND2 realisation (chained for n > 2),
* ``XNOR``       -> XOR + INV,
* ``BUF``        -> two INVs.

Primary inputs, primary outputs and all original net names are preserved, so
stuck-at faults and extracted layout faults can be reported against the
original netlist's nets.
"""

from __future__ import annotations

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit, Gate

__all__ = ["techmap", "MAX_CELL_FANIN"]

#: Largest fan-in the physical cell library provides.
MAX_CELL_FANIN = 4


class _Mapper:
    def __init__(self, source: Circuit):
        self.source = source
        self.mapped = Circuit(name=f"{source.name}_mapped")
        self._counter = 0

    def fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}${self._counter}"

    # -- primitive emitters ------------------------------------------------
    def emit_inv(self, source_net: str, output: str) -> str:
        self.mapped.add_gate(GateType.NOT, [source_net], output)
        return output

    def emit_nand(self, inputs: list[str], output: str) -> str:
        if len(inputs) == 1:
            return self.emit_inv(inputs[0], output)
        self.mapped.add_gate(GateType.NAND, inputs, output)
        return output

    def emit_nor(self, inputs: list[str], output: str) -> str:
        if len(inputs) == 1:
            return self.emit_inv(inputs[0], output)
        self.mapped.add_gate(GateType.NOR, inputs, output)
        return output

    # -- wide-gate trees ---------------------------------------------------
    def reduce_and(self, inputs: list[str], output: str, invert: bool) -> str:
        """Emit AND (invert=False) or NAND (invert=True) of any width."""
        while len(inputs) > MAX_CELL_FANIN:
            grouped: list[str] = []
            for start in range(0, len(inputs), MAX_CELL_FANIN):
                chunk = inputs[start : start + MAX_CELL_FANIN]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                    continue
                nand = self.emit_nand(chunk, self.fresh(output))
                grouped.append(self.emit_inv(nand, self.fresh(output)))
            inputs = grouped
        if invert:
            return self.emit_nand(inputs, output)
        nand = self.emit_nand(inputs, self.fresh(output))
        return self.emit_inv(nand, output)

    def reduce_or(self, inputs: list[str], output: str, invert: bool) -> str:
        """Emit OR (invert=False) or NOR (invert=True) of any width."""
        while len(inputs) > MAX_CELL_FANIN:
            grouped: list[str] = []
            for start in range(0, len(inputs), MAX_CELL_FANIN):
                chunk = inputs[start : start + MAX_CELL_FANIN]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                    continue
                nor = self.emit_nor(chunk, self.fresh(output))
                grouped.append(self.emit_inv(nor, self.fresh(output)))
            inputs = grouped
        if invert:
            return self.emit_nor(inputs, output)
        nor = self.emit_nor(inputs, self.fresh(output))
        return self.emit_inv(nor, output)

    def emit_xor2(self, a: str, b: str, output: str) -> str:
        """Four-NAND2 XOR."""
        m = self.emit_nand([a, b], self.fresh(output))
        left = self.emit_nand([a, m], self.fresh(output))
        right = self.emit_nand([b, m], self.fresh(output))
        return self.emit_nand([left, right], output)

    def map_gate(self, gate: Gate) -> None:
        gt, inputs, out = gate.gate_type, list(gate.inputs), gate.output
        if gt is GateType.NOT:
            self.emit_inv(inputs[0], out)
        elif gt is GateType.BUF:
            mid = self.emit_inv(inputs[0], self.fresh(out))
            self.emit_inv(mid, out)
        elif gt is GateType.NAND:
            self.reduce_and(inputs, out, invert=True)
        elif gt is GateType.AND:
            self.reduce_and(inputs, out, invert=False)
        elif gt is GateType.NOR:
            self.reduce_or(inputs, out, invert=True)
        elif gt is GateType.OR:
            self.reduce_or(inputs, out, invert=False)
        elif gt in (GateType.XOR, GateType.XNOR):
            acc = inputs[0]
            for operand in inputs[1:-1]:
                acc = self.emit_xor2(acc, operand, self.fresh(out))
            if gt is GateType.XOR:
                self.emit_xor2(acc, inputs[-1], out)
            else:
                xor = self.emit_xor2(acc, inputs[-1], self.fresh(out))
                self.emit_inv(xor, out)
        else:  # pragma: no cover - GateType is closed
            raise ValueError(f"unmappable gate type {gt!r}")


def techmap(circuit: Circuit) -> Circuit:
    """Map ``circuit`` onto the INV/NAND(2-4)/NOR(2-4) physical library.

    Returns a validated, functionally equivalent circuit whose every gate is
    realisable by :mod:`repro.layout.cells`.  Original net names are kept;
    decomposition-internal nets are suffixed ``$k``.
    """
    circuit.validate()
    mapper = _Mapper(circuit)
    mapper.mapped.primary_inputs = list(circuit.primary_inputs)
    mapper.mapped.primary_outputs = list(circuit.primary_outputs)
    for gate in circuit.gates:
        mapper.map_gate(gate)
    mapper.mapped.validate()
    return mapper.mapped
