"""Physical-design substrate: geometry, cells, placement, routing, assembly."""

from repro.layout.cells import (
    CELL_HEIGHT,
    GND,
    VDD,
    CellLayout,
    Transistor,
    build_cell,
    build_cells,
)
from repro.layout.design import LayoutDesign, build_layout
from repro.layout.drc import SpacingViolation, check_spacing
from repro.layout.extract import (
    ExtractedTransistor,
    VerificationReport,
    build_connectivity,
    extract_transistors,
    find_shorts,
    verify_layout,
)
from repro.layout.geometry import DesignRules, Layer, Rect, bounding_box, facing_span
from repro.layout.placement import PlacedCell, Placement, place
from repro.layout.routing import NetRoute, PinRef, RoutingPlan, route
from repro.layout.spatial import SpatialIndex
from repro.layout.techmap import MAX_CELL_FANIN, techmap

__all__ = [
    "CELL_HEIGHT",
    "CellLayout",
    "DesignRules",
    "ExtractedTransistor",
    "GND",
    "Layer",
    "LayoutDesign",
    "MAX_CELL_FANIN",
    "NetRoute",
    "PinRef",
    "PlacedCell",
    "Placement",
    "Rect",
    "RoutingPlan",
    "SpacingViolation",
    "SpatialIndex",
    "Transistor",
    "VDD",
    "VerificationReport",
    "bounding_box",
    "build_cell",
    "build_cells",
    "build_connectivity",
    "build_layout",
    "check_spacing",
    "extract_transistors",
    "facing_span",
    "find_shorts",
    "place",
    "route",
    "techmap",
    "verify_layout",
]
