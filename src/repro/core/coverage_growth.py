"""Random-test coverage-growth laws (the paper's eqs. 7-10).

Coverage under k random vectors follows Williams' test-length law

    T(k)     = 1 - exp(-ln(k) / ln(s_T))            (eq. 7)
    theta(k) = theta_max * (1 - exp(-ln(k)/ln(s)))  (eq. 8)

where ``s`` is the fault-set *susceptibility* (larger s = harder set:
coverage grows more slowly with k).  Eliminating k links the two coverages:

    theta(T) = theta_max * (1 - (1 - T)**R),  R = ln(s_T)/ln(s_theta)  (eq. 9, 10)

``R > 1`` whenever the realistic faults are more susceptible (easier) than
the stuck-at set — the bridging-dominated case.
"""

from __future__ import annotations

import math

__all__ = [
    "coverage_at",
    "weighted_coverage_at",
    "theta_of_T",
    "T_of_theta",
    "susceptibility_ratio",
    "susceptibility_from_point",
    "test_length_for_coverage",
]


def coverage_at(k: float, susceptibility: float) -> float:
    """Stuck-at coverage after ``k`` random vectors (eq. 7).

    ``susceptibility`` must exceed 1 (s = e corresponds to T(k) =
    1 - 1/k).  T(1) = 0 and T -> 1 as k -> infinity.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if susceptibility <= 1:
        raise ValueError("susceptibility must be > 1")
    return 1.0 - math.exp(-math.log(k) / math.log(susceptibility))


def weighted_coverage_at(
    k: float, susceptibility: float, theta_max: float = 1.0
) -> float:
    """Weighted realistic coverage after ``k`` random vectors (eq. 8)."""
    if not 0 <= theta_max <= 1:
        raise ValueError("theta_max must be in [0, 1]")
    return theta_max * coverage_at(k, susceptibility)


def theta_of_T(
    coverage: float, susceptibility_ratio_value: float, theta_max: float = 1.0
) -> float:
    """Realistic coverage as a function of stuck-at coverage (eq. 9)."""
    if not 0 <= coverage <= 1:
        raise ValueError("coverage must be in [0, 1]")
    if susceptibility_ratio_value <= 0:
        raise ValueError("R must be positive")
    return theta_max * (1.0 - (1.0 - coverage) ** susceptibility_ratio_value)


def T_of_theta(
    theta: float, susceptibility_ratio_value: float, theta_max: float = 1.0
) -> float:
    """Invert eq. 9: the stuck-at coverage at which theta is reached."""
    if not 0 <= theta < theta_max or theta_max <= 0:
        raise ValueError("theta must be in [0, theta_max)")
    inner = 1.0 - theta / theta_max
    return 1.0 - inner ** (1.0 / susceptibility_ratio_value)


def susceptibility_ratio(s_stuck_at: float, s_realistic: float) -> float:
    """``R = ln(s_T) / ln(s_theta)`` (eq. 10)."""
    if s_stuck_at <= 1 or s_realistic <= 1:
        raise ValueError("susceptibilities must be > 1")
    return math.log(s_stuck_at) / math.log(s_realistic)


def test_length_for_coverage(target: float, susceptibility: float) -> float:
    """Random vectors needed to reach ``target`` coverage (invert eq. 7).

    This is Williams' self-test test-length question: with fault-set
    susceptibility ``s``, reaching coverage T needs
    ``k = exp(-ln(s) * ln(1 - T))`` vectors.
    """
    if not 0 <= target < 1:
        raise ValueError("target coverage must be in [0, 1)")
    if susceptibility <= 1:
        raise ValueError("susceptibility must be > 1")
    if target == 0:
        return 1.0
    return math.exp(-math.log(susceptibility) * math.log(1.0 - target))


def susceptibility_from_point(k: float, coverage: float) -> float:
    """Susceptibility implied by one (k, T) observation (invert eq. 7)."""
    if not 0 < coverage < 1:
        raise ValueError("coverage must be in (0, 1) to invert")
    if k <= 1:
        raise ValueError("k must exceed 1")
    # T = 1 - exp(-ln k / ln s)  =>  ln s = -ln k / ln(1 - T)
    return math.exp(-math.log(k) / math.log(1.0 - coverage))
