"""Defect-level models: Williams-Brown, Agrawal, weighted, and the proposed
two-parameter model (the paper's eq. 11).

All functions take/return plain floats; yields and coverages are fractions in
[0, 1], defect levels are fractions (multiply by 1e6 for ppm).
"""

from __future__ import annotations

import math

__all__ = [
    "williams_brown",
    "agrawal",
    "weighted_defect_level",
    "sousa_defect_level",
    "clustered_defect_level",
    "residual_defect_level",
    "required_coverage",
    "required_coverage_williams_brown",
    "ppm",
]


def _check_unit(name: str, value: float, closed: bool = True) -> None:
    lo_ok = value >= 0 if closed else value > 0
    if not (lo_ok and value <= 1):
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def williams_brown(yield_value: float, coverage: float) -> float:
    """Classic defect level ``DL = 1 - Y**(1 - T)`` (eq. 1, [Williams-Brown 81]).

    Assumes equally probable single stuck-at faults; the paper shows this
    overestimates the coverage needed for a target DL when realistic faults
    are easier to detect (R > 1) and *underestimates* the floor when the test
    technique cannot reach every defect (theta_max < 1).
    """
    _check_unit("yield", yield_value, closed=False)
    _check_unit("coverage", coverage)
    return 1.0 - yield_value ** (1.0 - coverage)


def agrawal(yield_value: float, coverage: float, n_average: float) -> float:
    """Agrawal et al. model with fault multiplicity (eq. 2).

    ``n_average`` is the average number of faults on a faulty chip; the model
    postulates a Poisson fault count and reduces detection requirements as
    multiplicity grows.
    """
    _check_unit("yield", yield_value, closed=False)
    _check_unit("coverage", coverage)
    if n_average < 1:
        raise ValueError("average fault multiplicity must be >= 1")
    tail = (1.0 - coverage) * (1.0 - yield_value) * math.exp(
        -(n_average - 1.0) * coverage
    )
    return tail / (yield_value + tail)


def weighted_defect_level(yield_value: float, theta: float) -> float:
    """Weighted realistic-fault defect level ``DL = 1 - Y**(1 - theta)`` (eq. 3).

    ``theta`` is the *weighted* realistic fault coverage of eq. 6.  This is
    the reference the paper treats as the actual defect level when plotting
    ``(T(k), DL(theta(k)))``.
    """
    return williams_brown(yield_value, theta)


def sousa_defect_level(
    yield_value: float,
    coverage: float,
    susceptibility_ratio: float = 1.0,
    theta_max: float = 1.0,
) -> float:
    """The paper's model (eq. 11):

        DL(T) = 1 - Y ** (1 - theta_max * (1 - (1 - T)**R))

    Reduces to Williams-Brown at ``R = 1`` and ``theta_max = 1``.  ``R > 1``
    means realistic faults are *easier* to detect than stuck-at faults
    (bridging-dominated populations), so DL falls below the Williams-Brown
    curve at intermediate coverage; ``theta_max < 1`` leaves a residual
    defect level at T = 1.
    """
    _check_unit("yield", yield_value, closed=False)
    _check_unit("coverage", coverage)
    _check_unit("theta_max", theta_max)
    if susceptibility_ratio <= 0:
        raise ValueError("susceptibility ratio must be positive")
    theta = theta_max * (1.0 - (1.0 - coverage) ** susceptibility_ratio)
    return 1.0 - yield_value ** (1.0 - theta)


def clustered_defect_level(
    total_weight: float, theta: float, clustering: float = 2.0
) -> float:
    """Defect level under negative-binomial (Stapper) defect clustering.

    The shipped-defective fraction is ``1 - P(no fault) / P(no detected
    fault)``.  With total average fault count ``w`` (eq. 5's exponent),
    detected weight fraction ``theta`` and clustering parameter ``alpha``:

        DL = 1 - [ (1 + w/alpha) / (1 + w*theta/alpha) ] ** (-alpha)

    As ``alpha -> infinity`` this recovers the Poisson form of eq. 3,
    ``1 - Y**(1-theta)`` with ``Y = exp(-w)``.  Clustering *lowers* the
    defect level at equal yield: undetected defects concentrate on chips
    that already failed the test.
    """
    if total_weight < 0:
        raise ValueError("total weight must be non-negative")
    _check_unit("theta", theta)
    if clustering <= 0:
        raise ValueError("clustering parameter must be positive")
    numerator = 1.0 + total_weight / clustering
    denominator = 1.0 + total_weight * theta / clustering
    return 1.0 - (numerator / denominator) ** (-clustering)


def residual_defect_level(yield_value: float, theta_max: float) -> float:
    """The floor ``1 - Y**(1 - theta_max)`` that no test length removes.

    The paper calls this the residual defect level of a detection technique:
    with steady-state voltage testing alone, theta_max < 1 and this is what
    remains even at 100 % stuck-at coverage.
    """
    _check_unit("yield", yield_value, closed=False)
    _check_unit("theta_max", theta_max)
    return 1.0 - yield_value ** (1.0 - theta_max)


def required_coverage(
    yield_value: float,
    target_dl: float,
    susceptibility_ratio: float = 1.0,
    theta_max: float = 1.0,
) -> float:
    """Invert eq. 11: the stuck-at coverage needed for a target defect level.

    Raises ``ValueError`` when the target lies below the residual defect
    level (no finite test reaches it with this technique).
    """
    _check_unit("yield", yield_value, closed=False)
    if not 0 <= target_dl < 1:
        raise ValueError(f"target DL must be in [0, 1), got {target_dl}")
    floor = residual_defect_level(yield_value, theta_max)
    if target_dl < floor - 1e-15:
        raise ValueError(
            f"target DL {target_dl:.3e} is below the residual defect level "
            f"{floor:.3e} for theta_max={theta_max}"
        )
    theta_needed = 1.0 - math.log(1.0 - target_dl) / math.log(yield_value)
    inner = 1.0 - theta_needed / theta_max
    inner = min(max(inner, 0.0), 1.0)
    return 1.0 - inner ** (1.0 / susceptibility_ratio)


def required_coverage_williams_brown(yield_value: float, target_dl: float) -> float:
    """Coverage the Williams-Brown model demands for a target defect level."""
    return required_coverage(yield_value, target_dl, 1.0, 1.0)


def ppm(defect_level: float) -> float:
    """Convert a defect-level fraction to parts per million."""
    return defect_level * 1e6
