"""Curve fitting for the defect-level and coverage-growth models.

The paper determines ``(R, theta_max)`` by fitting eq. 11 to the simulated
``(T(k), DL(theta(k)))`` points (fig. 5: R = 1.9, theta_max = 0.96), and the
Agrawal ``n`` by fitting eq. 2 to fallout data.  These fits, plus
susceptibility estimation from coverage-growth curves, live here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import curve_fit, least_squares

from repro import obs
from repro.core.coverage_growth import coverage_at
from repro.core.defect_level import agrawal, sousa_defect_level

__all__ = [
    "SousaFit",
    "FalloutFit",
    "fit_sousa_model",
    "fit_sousa_with_yield",
    "fit_agrawal_n",
    "fit_susceptibility",
]


@dataclass(frozen=True)
class SousaFit:
    """Result of fitting eq. 11 to (T, DL) data."""

    susceptibility_ratio: float
    theta_max: float
    residual: float

    def predict(self, yield_value: float, coverage: float) -> float:
        """Evaluate the fitted model."""
        return sousa_defect_level(
            yield_value, coverage, self.susceptibility_ratio, self.theta_max
        )


def fit_sousa_model(
    coverages: Sequence[float],
    defect_levels: Sequence[float],
    yield_value: float,
    r_bounds: tuple[float, float] = (0.1, 10.0),
    theta_bounds: tuple[float, float] = (0.5, 1.0),
) -> SousaFit:
    """Least-squares fit of ``(R, theta_max)`` in eq. 11.

    Fitting happens on the *exponent* scale (the realistic coverage
    ``theta = 1 - ln(1 - DL)/ln(Y)``), which weights the high-coverage tail
    where the models actually differ, the way the paper's log-scale DL plots
    do.
    """
    T = np.asarray(coverages, dtype=float)
    dl = np.asarray(defect_levels, dtype=float)
    if T.shape != dl.shape or T.size < 2:
        raise ValueError("need matching coverage/DL arrays with >= 2 points")
    if not 0 < yield_value < 1:
        raise ValueError("yield must be in (0, 1)")

    log_y = math.log(yield_value)
    theta_obs = 1.0 - np.log(np.clip(1.0 - dl, 1e-15, 1.0)) / log_y

    def residuals(params: np.ndarray) -> np.ndarray:
        r, theta_max = params
        theta_model = theta_max * (1.0 - np.power(np.clip(1.0 - T, 0.0, 1.0), r))
        return theta_model - theta_obs

    with obs.span("fitting.sousa", n_points=int(T.size)):
        result = least_squares(
            residuals,
            x0=np.array([1.5, 0.95]),
            bounds=(
                np.array([r_bounds[0], theta_bounds[0]]),
                np.array([r_bounds[1], theta_bounds[1]]),
            ),
        )
    r_fit, theta_fit = result.x
    fit = SousaFit(
        susceptibility_ratio=float(r_fit),
        theta_max=float(theta_fit),
        residual=float(np.sqrt(np.mean(result.fun**2))),
    )
    obs.set_gauge("fitting.R", fit.susceptibility_ratio)
    obs.set_gauge("fitting.theta_max", fit.theta_max)
    obs.set_gauge("fitting.residual", fit.residual)
    return fit


@dataclass(frozen=True)
class FalloutFit:
    """Joint fit of (Y, R, theta_max) to production fallout data."""

    yield_value: float
    susceptibility_ratio: float
    theta_max: float
    residual: float

    def predict(self, coverage: float) -> float:
        """Evaluate the fitted model at a coverage point."""
        return sousa_defect_level(
            self.yield_value, coverage, self.susceptibility_ratio, self.theta_max
        )


def fit_sousa_with_yield(
    coverages: Sequence[float],
    defect_levels: Sequence[float],
    y_bounds: tuple[float, float] = (0.05, 0.999),
    r_bounds: tuple[float, float] = (0.1, 10.0),
    theta_bounds: tuple[float, float] = (0.5, 1.0),
) -> FalloutFit:
    """Fit (Y, R, theta_max) jointly to measured fallout data.

    The paper notes that "Predictions of Y, DL, R and theta_max can be
    obtained at the design phase, and can be ascertained during test
    application, in IC production" — this is the production-side direction:
    from observed (coverage, fallout) pairs alone, recover all three model
    parameters.  Needs data spanning a decent coverage range; with only a
    high-coverage tail, Y and theta_max trade off against each other.
    """
    T = np.asarray(coverages, dtype=float)
    dl = np.asarray(defect_levels, dtype=float)
    if T.shape != dl.shape or T.size < 3:
        raise ValueError("need matching coverage/DL arrays with >= 3 points")

    log_dl_obs = np.log(np.clip(dl, 1e-15, 1.0))

    def residuals(params: np.ndarray) -> np.ndarray:
        y, r, theta_max = params
        theta = theta_max * (1.0 - np.power(np.clip(1.0 - T, 0.0, 1.0), r))
        model = 1.0 - np.power(y, 1.0 - theta)
        return np.log(np.clip(model, 1e-15, 1.0)) - log_dl_obs

    result = least_squares(
        residuals,
        x0=np.array([0.5, 1.5, 0.95]),
        bounds=(
            np.array([y_bounds[0], r_bounds[0], theta_bounds[0]]),
            np.array([y_bounds[1], r_bounds[1], theta_bounds[1]]),
        ),
    )
    y_fit, r_fit, theta_fit = result.x
    return FalloutFit(
        yield_value=float(y_fit),
        susceptibility_ratio=float(r_fit),
        theta_max=float(theta_fit),
        residual=float(np.sqrt(np.mean(result.fun**2))),
    )


def fit_agrawal_n(
    coverages: Sequence[float],
    defect_levels: Sequence[float],
    yield_value: float,
    n_bounds: tuple[float, float] = (1.0, 50.0),
) -> float:
    """Fit the Agrawal model's average multiplicity ``n`` to (T, DL) data."""
    T = np.asarray(coverages, dtype=float)
    dl = np.asarray(defect_levels, dtype=float)

    def model(t: np.ndarray, n: float) -> np.ndarray:
        return np.array([agrawal(yield_value, ti, n) for ti in t])

    popt, _ = curve_fit(
        model, T, dl, p0=[2.0], bounds=([n_bounds[0]], [n_bounds[1]])
    )
    return float(popt[0])


def fit_susceptibility(
    ks: Sequence[float],
    coverages: Sequence[float],
    theta_max: float | None = None,
) -> tuple[float, float]:
    """Fit eq. 7/8 to an observed coverage-growth curve.

    Returns ``(susceptibility, theta_max)``.  When ``theta_max`` is given it
    is held fixed (use 1.0 for stuck-at curves); otherwise both parameters
    are fitted.
    """
    k_arr = np.asarray(ks, dtype=float)
    c_arr = np.asarray(coverages, dtype=float)
    if k_arr.shape != c_arr.shape or k_arr.size < 2:
        raise ValueError("need matching k/coverage arrays with >= 2 points")
    if np.any(k_arr < 1):
        raise ValueError("vector counts must be >= 1")

    if theta_max is not None:

        def model_fixed(k: np.ndarray, log_s: float) -> np.ndarray:
            return theta_max * (1.0 - np.exp(-np.log(k) / log_s))

        popt, _ = curve_fit(
            model_fixed, k_arr, c_arr, p0=[2.0], bounds=([1e-3], [1e3])
        )
        return float(math.exp(popt[0])), float(theta_max)

    def model(k: np.ndarray, log_s: float, tmax: float) -> np.ndarray:
        return tmax * (1.0 - np.exp(-np.log(k) / log_s))

    popt, _ = curve_fit(
        model, k_arr, c_arr, p0=[2.0, 0.95], bounds=([1e-3, 0.1], [1e3, 1.0])
    )
    return float(math.exp(popt[0])), float(popt[1])


def _self_check() -> None:  # pragma: no cover - sanity helper
    ks = [2, 4, 8, 16, 64, 256, 1024]
    s = math.exp(3.0)
    curve = [coverage_at(k, s) for k in ks]
    fitted, _ = fit_susceptibility(ks, curve, theta_max=1.0)
    assert abs(math.log(fitted) - 3.0) < 1e-6
