"""Classical IC yield models.

The paper takes the yield either from eq. 5 (fault weights) or from standard
models "[2, 3]"; this module provides the usual family so the benches can
cross-check the weight-based yield against the Poisson and negative-binomial
(Stapper) forms, and project yield across die areas.
"""

from __future__ import annotations

import math

__all__ = [
    "poisson_yield",
    "negative_binomial_yield",
    "murphy_yield",
    "defects_for_yield",
    "scale_yield_to_area",
]


def poisson_yield(defect_density: float, area: float) -> float:
    """``Y = exp(-A D)`` — Poisson-distributed point defects."""
    _check_positive("defect_density", defect_density, zero_ok=True)
    _check_positive("area", area, zero_ok=True)
    return math.exp(-defect_density * area)


def negative_binomial_yield(
    defect_density: float, area: float, clustering: float = 2.0
) -> float:
    """Stapper's model ``Y = (1 + A D / alpha) ** -alpha``.

    ``clustering`` (alpha) captures defect clustering; alpha -> infinity
    recovers the Poisson model.
    """
    _check_positive("defect_density", defect_density, zero_ok=True)
    _check_positive("area", area, zero_ok=True)
    _check_positive("clustering", clustering)
    return (1.0 + defect_density * area / clustering) ** (-clustering)


def murphy_yield(defect_density: float, area: float) -> float:
    """Murphy's bose-einstein-ish compromise ``Y = ((1 - e^-AD) / AD)^2``."""
    _check_positive("defect_density", defect_density, zero_ok=True)
    _check_positive("area", area, zero_ok=True)
    ad = defect_density * area
    if ad == 0:
        return 1.0
    return ((1.0 - math.exp(-ad)) / ad) ** 2


def defects_for_yield(target_yield: float, area: float) -> float:
    """Poisson-model defect density that produces ``target_yield``."""
    if not 0 < target_yield <= 1:
        raise ValueError("target yield must be in (0, 1]")
    _check_positive("area", area)
    return -math.log(target_yield) / area


def scale_yield_to_area(yield_value: float, area_ratio: float) -> float:
    """Yield of a die ``area_ratio`` times larger, same defect process.

    Under Poisson statistics ``Y' = Y ** area_ratio`` — the identity behind
    the paper's "scaling the yield value can be interpreted as if the circuit
    has a different size but maintains the same testability features".
    """
    if not 0 < yield_value <= 1:
        raise ValueError("yield must be in (0, 1]")
    _check_positive("area_ratio", area_ratio)
    return yield_value**area_ratio


def _check_positive(name: str, value: float, zero_ok: bool = False) -> None:
    if value < 0 or (value == 0 and not zero_ok):
        raise ValueError(f"{name} must be positive, got {value}")
