"""Weighted realistic-fault arithmetic (the paper's eqs. 4-6).

Each realistic fault ``j`` has an occurrence probability ``p_j`` and weight

    w_j = -ln(1 - p_j) = A_j * D_j          (eq. 4)

the average number of defects inducing it.  The whole fault set then gives

    Y     = exp(-sum_j w_j)                 (eq. 5)
    theta = sum_detected w_j / sum_all w_j  (eq. 6)
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "weight_from_probability",
    "probability_from_weight",
    "yield_from_weights",
    "weights_for_yield",
    "weighted_coverage",
    "unweighted_coverage",
]


def weight_from_probability(p: float) -> float:
    """``w = -ln(1 - p)`` (eq. 4)."""
    if not 0 <= p < 1:
        raise ValueError(f"fault probability must be in [0, 1), got {p}")
    return -math.log(1.0 - p)


def probability_from_weight(w: float) -> float:
    """``p = 1 - exp(-w)`` — inverse of eq. 4."""
    if w < 0:
        raise ValueError(f"weight must be non-negative, got {w}")
    return 1.0 - math.exp(-w)


def yield_from_weights(weights: Iterable[float]) -> float:
    """``Y = exp(-sum w_j)`` (eq. 5)."""
    total = 0.0
    for w in weights:
        if w < 0:
            raise ValueError("weights must be non-negative")
        total += w
    return math.exp(-total)


def weights_for_yield(weights: Sequence[float], target_yield: float) -> list[float]:
    """Rescale a weight set so eq. 5 yields ``target_yield``.

    This is the paper's yield-scaling step ("as if the circuit has a
    different size but maintains the same testability features").
    """
    if not 0 < target_yield < 1:
        raise ValueError("target yield must be in (0, 1)")
    total = sum(weights)
    if total <= 0:
        raise ValueError("cannot scale an all-zero weight set")
    factor = -math.log(target_yield) / total
    return [w * factor for w in weights]


def weighted_coverage(
    weights: Sequence[float], detected: Sequence[bool]
) -> float:
    """``theta`` of eq. 6 for a detection flag per fault."""
    if len(weights) != len(detected):
        raise ValueError("weights and detected flags must align")
    total = sum(weights)
    if total <= 0:
        return 1.0
    hit = sum(w for w, d in zip(weights, detected) if d)
    return hit / total


def unweighted_coverage(detected: Sequence[bool]) -> float:
    """``Gamma``: the same fault set counted with equal likelihood."""
    if not detected:
        return 1.0
    return sum(detected) / len(detected)
