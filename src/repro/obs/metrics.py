"""Counters, gauges and histograms for pipeline telemetry.

A :class:`MetricsRegistry` holds named instruments, created on first use::

    registry.counter("fault_sim.patterns_applied").inc(256)
    registry.histogram("extraction.weights").observe(w)

Instrumented code does not talk to a registry directly — it goes through the
module-level helpers in :mod:`repro.obs` (``obs.inc``, ``obs.observe``,
``obs.set_gauge``) which early-return when collection is disabled, keeping
the production path free of locking and lookups.

Histograms use fixed bucket boundaries.  The default boundary set is
log-spaced over fifteen decades (1e-9 .. 1e6) because the quantities we bin
— fault weights, critical areas, residuals — naturally spread over several
orders of magnitude (the paper's fig. 3 weight histogram spans > 3 decades).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from typing import Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BOUNDS"]

#: Log-spaced decade boundaries 1e-9, 1e-8, ..., 1e6.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(10.0**e for e in range(-9, 7))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max summary.

    ``bounds`` are the bucket edges: bucket ``i`` holds values in
    ``[bounds[i-1], bounds[i])`` with an underflow bucket below the first
    edge and an overflow bucket at or above the last.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, bounds: Sequence[float] | None = None):
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = bisect_right(self.bounds, value)
        with self._lock:
            self.buckets[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]) from buckets.

        The estimator finds the bucket holding the target rank and linearly
        interpolates inside it; the exact ``min``/``max`` summaries bound the
        open underflow/overflow buckets, so the estimate always lies within
        ``[min, max]`` and is exact for 0, for 100, and whenever the bucket
        holding the rank has collapsed to a single point.  With no samples
        there is no percentile to report and :class:`ValueError` is raised —
        a silent 0.0 here once masked an instrument that never observed
        anything.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            raise ValueError(
                f"percentile({q}) of empty histogram {self.name!r}: "
                "no samples observed"
            )
        if q == 0.0:
            return self.min
        if q == 100.0:
            return self.max
        # Target rank over the sorted samples (nearest-rank, 1-based).
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if cumulative + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else self.min
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return lower
                fraction = (rank - cumulative) / n
                return lower + fraction * (upper - lower)
            cumulative += n
        return self.max  # pragma: no cover - ranks always land in a bucket

    def nonzero_buckets(self) -> list[tuple[float | None, float | None, int]]:
        """(lower, upper, count) for populated buckets; None marks +/-inf."""
        out: list[tuple[float | None, float | None, int]] = []
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            lower = self.bounds[i - 1] if i > 0 else None
            upper = self.bounds[i] if i < len(self.bounds) else None
            out.append((lower, upper, n))
        return out


class MetricsRegistry:
    """Named instruments, created on first use; thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    # -- queries ------------------------------------------------------------
    @property
    def counters(self) -> dict[str, Counter]:
        with self._lock:
            return dict(self._counters)

    def counter_values(self) -> dict[str, int]:
        """name -> current value for every counter (a point-in-time copy).

        The worker-telemetry protocol diffs two of these snapshots to get the
        counter *deltas* one fault chunk contributed (see
        ``repro.simulation.parallel``).
        """
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def merge_counter_deltas(
        self, deltas: dict[str, int], skip: frozenset[str] = frozenset()
    ) -> None:
        """Add per-name counter deltas (e.g. from a worker process) into this
        registry, ignoring names in ``skip`` and non-positive deltas."""
        for name, delta in deltas.items():
            if name in skip or delta <= 0:
                continue
            self.counter(name).inc(delta)

    @property
    def gauges(self) -> dict[str, Gauge]:
        with self._lock:
            return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def snapshot(self) -> dict[str, dict]:
        """JSON-able snapshot of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: g.value for n, g in sorted(self.gauges.items())
                if g.value is not None
            },
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.total,
                    "mean": h.mean,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "buckets": [
                        [lo, hi, n_samples]
                        for lo, hi, n_samples in h.nonzero_buckets()
                    ],
                }
                for n, h in sorted(self.histograms.items())
            },
        }
