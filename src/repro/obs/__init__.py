"""Dependency-free observability: spans, metrics and run manifests.

Instrumented code uses four module-level helpers, all of which are no-ops
until collection is enabled::

    from repro import obs

    with obs.span("fault_sim", benchmark="c432"):
        obs.inc("fault_sim.patterns_applied", len(patterns))
        obs.observe("extraction.weights", weight)
        obs.set_gauge("fitting.R", fit.susceptibility_ratio)

The disabled path costs one module-global check per call (``span`` returns a
shared no-op context manager; the metric helpers early-return), so the
default pipeline timings do not regress.  ``obs.enable()`` installs a
thread-safe :class:`~repro.obs.trace.TraceCollector` and
:class:`~repro.obs.metrics.MetricsRegistry`; the CLI enables collection for
``--profile`` and ``--trace`` runs.

Naming scheme (see ``docs/OBSERVABILITY.md``): dotted lower-case
``<stage>.<quantity>`` — e.g. ``podem.backtracks``, ``pipeline.cache_hit``,
``switch_sim.detected_potential``.
"""

from __future__ import annotations

from repro.obs.events import (
    BoundedEventBuffer,
    CampaignEvent,
    CheckpointEvent,
    Event,
    EventBus,
    JobEvent,
    JsonlEventSink,
    ListSink,
    ProgressEvent,
    ProgressRenderer,
    RetryEvent,
    StageEvent,
    event_from_record,
    read_event_envelopes,
)
from repro.obs.export import (
    campaign_chrome_trace,
    chrome_trace,
    write_campaign_trace,
    write_chrome_trace,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    config_to_dict,
    git_describe,
    read_manifests,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import render_metrics, render_profile, render_span_tree
from repro.obs.trace import NULL_SPAN, Span, TraceCollector

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "collector",
    "registry",
    "Span",
    "TraceCollector",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "MANIFEST_SCHEMA_VERSION",
    "config_hash",
    "config_to_dict",
    "git_describe",
    "read_manifests",
    "render_span_tree",
    "render_metrics",
    "render_profile",
    "NULL_SPAN",
    "enable_events",
    "disable_events",
    "events_enabled",
    "event_bus",
    "emit",
    "Event",
    "EventBus",
    "ProgressEvent",
    "StageEvent",
    "RetryEvent",
    "CheckpointEvent",
    "CampaignEvent",
    "JobEvent",
    "JsonlEventSink",
    "ListSink",
    "BoundedEventBuffer",
    "ProgressRenderer",
    "event_from_record",
    "read_event_envelopes",
    "chrome_trace",
    "write_chrome_trace",
    "campaign_chrome_trace",
    "write_campaign_trace",
]

_collector: TraceCollector | None = None
_registry: MetricsRegistry | None = None
_bus: EventBus | None = None


def enable(
    trace_collector: TraceCollector | None = None,
    metrics_registry: MetricsRegistry | None = None,
) -> tuple[TraceCollector, MetricsRegistry]:
    """Install (fresh or given) collector + registry; returns both."""
    global _collector, _registry
    _collector = trace_collector or TraceCollector()
    _registry = metrics_registry or MetricsRegistry()
    return _collector, _registry


def disable() -> None:
    """Return to the zero-overhead no-op state."""
    global _collector, _registry
    _collector = None
    _registry = None


def is_enabled() -> bool:
    """True while a collector is installed."""
    return _collector is not None


def collector() -> TraceCollector | None:
    """The active span collector, or None when disabled."""
    return _collector


def registry() -> MetricsRegistry | None:
    """The active metrics registry, or None when disabled."""
    return _registry


def span(name: str, **attributes: object):
    """Open a (possibly no-op) timing span: ``with obs.span("stage"): ...``"""
    if _collector is None:
        return NULL_SPAN
    return _collector.start(name, attributes)


def inc(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` (no-op while disabled)."""
    if _registry is None:
        return
    _registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled)."""
    if _registry is None:
        return
    _registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    if _registry is None:
        return
    _registry.gauge(name).set(value)


# ---------------------------------------------------------------------------
# Event bus (live progress / streaming events; see repro.obs.events)
# ---------------------------------------------------------------------------
def enable_events(bus: EventBus | None = None) -> EventBus:
    """Install (fresh or given) event bus; returns it.

    Independent of :func:`enable`: a run can stream events without paying
    for span/metric collection, and vice versa.
    """
    global _bus
    _bus = bus or EventBus()
    return _bus


def disable_events() -> None:
    """Return event emission to the zero-overhead no-op state."""
    global _bus
    _bus = None


def events_enabled() -> bool:
    """True while an event bus is installed.

    Call sites inside loops guard event *construction* behind this, so the
    disabled path never allocates an event object.
    """
    return _bus is not None


def event_bus() -> EventBus | None:
    """The active event bus, or None when disabled."""
    return _bus


def emit(event: Event) -> None:
    """Publish ``event`` to the active bus (no-op while disabled)."""
    if _bus is None:
        return
    _bus.publish(event)
