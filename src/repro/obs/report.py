"""Human-readable rendering of collected spans and metrics.

``python -m repro --profile`` prints these after the run: a stage-timing
tree (wall and CPU milliseconds, self-time for spans with children) and a
table of every counter, gauge and histogram summary.

Kept free of imports from :mod:`repro.experiments` (which imports the
instrumented pipeline, which imports :mod:`repro.obs`) — the tiny table
formatter is local.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceCollector

__all__ = [
    "render_span_tree",
    "render_metrics",
    "render_profile",
    "render_attribution",
]


def _fmt_ms(seconds: float) -> str:
    return f"{1000.0 * seconds:9.1f} ms"


#: Children sharing a name beyond this count render as one aggregate line
#: (e.g. the per-vector fault-sim calls inside the PODEM top-off loop).
_AGGREGATE_THRESHOLD = 4


def _span_lines(span: Span, depth: int, lines: list[str]) -> None:
    attrs = ""
    if span.attributes:
        attrs = "  [" + ", ".join(
            f"{k}={v}" for k, v in sorted(span.attributes.items())
        ) + "]"
    self_note = ""
    if span.children:
        self_note = f"  (self {1000.0 * span.self_wall_time:.1f} ms)"
    lines.append(
        f"{'  ' * depth}{span.name:<{max(1, 34 - 2 * depth)}}"
        f"{_fmt_ms(span.wall_time)}  cpu {_fmt_ms(span.cpu_time)}"
        f"{self_note}{attrs}"
    )
    by_name: dict[str, int] = {}
    for child in span.children:
        by_name[child.name] = by_name.get(child.name, 0) + 1
    aggregated: set[str] = set()
    for child in span.children:
        if by_name[child.name] >= _AGGREGATE_THRESHOLD:
            if child.name in aggregated:
                continue
            aggregated.add(child.name)
            group = [c for c in span.children if c.name == child.name]
            label = f"{child.name} ×{len(group)}"
            lines.append(
                f"{'  ' * (depth + 1)}{label:<{max(1, 34 - 2 * (depth + 1))}}"
                f"{_fmt_ms(sum(c.wall_time for c in group))}"
                f"  cpu {_fmt_ms(sum(c.cpu_time for c in group))}"
            )
        else:
            _span_lines(child, depth + 1, lines)


def render_span_tree(collector: TraceCollector) -> str:
    """The indented per-stage timing tree of every root span."""
    lines = ["stage timings (wall / thread-CPU):"]
    if not collector.roots:
        lines.append("  (no spans recorded)")
    for root in collector.roots:
        _span_lines(root, 1, lines)
    return "\n".join(lines)


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return lines


def render_metrics(registry: MetricsRegistry) -> str:
    """Counters, gauges and histogram summaries as one aligned table."""
    rows: list[list[str]] = []
    for name, counter in sorted(registry.counters.items()):
        rows.append([name, "counter", str(counter.value)])
    for name, gauge in sorted(registry.gauges.items()):
        if gauge.value is not None:
            rows.append([name, "gauge", f"{gauge.value:.6g}"])
    for name, hist in sorted(registry.histograms.items()):
        if not hist.count:
            continue
        rows.append(
            [
                name,
                "histogram",
                f"n={hist.count} mean={hist.mean:.3g} "
                f"p50={hist.percentile(50):.3g} "
                f"p95={hist.percentile(95):.3g} "
                f"min={hist.min:.3g} max={hist.max:.3g}",
            ]
        )
    lines = ["metrics:"]
    if rows:
        lines.extend("  " + line for line in _table(["name", "kind", "value"], rows))
    else:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)


def render_attribution(snapshot: dict[str, object]) -> str:
    """The "where the time goes" block of an attribution snapshot.

    ``snapshot`` is :meth:`AttributionCollector.snapshot`, optionally with a
    ``reconcile`` section merged in (``__main__`` adds it from the
    ``pipeline.run`` span wall).  Stage wall times render as a share-of-total
    table, kernel work counters and the cone-bucket histogram follow, and
    the reconciliation line closes the block.
    """
    lines = ["cost attribution:"]
    stage_wall = snapshot.get("stage_wall_s", {})
    if isinstance(stage_wall, dict) and stage_wall:
        total = sum(stage_wall.values()) or 1.0
        rows = [
            [name, f"{1000.0 * seconds:9.1f} ms", f"{100.0 * seconds / total:5.1f} %"]
            for name, seconds in sorted(
                stage_wall.items(), key=lambda kv: -kv[1]
            )
        ]
        lines.extend(
            "  " + line for line in _table(["stage", "wall", "share"], rows)
        )
    stages = snapshot.get("stages", {})
    if isinstance(stages, dict) and stages:
        lines.append("  kernel work:")
        for component, counters in sorted(stages.items()):
            for quantity, value in sorted(counters.items()):
                lines.append(f"    {component}.{quantity}: {value:,}")
    cones = snapshot.get("cone_buckets", {})
    if isinstance(cones, dict) and cones:
        total_evals = sum(
            c.get("gate_evals", 0) for c in cones.values()
        ) or 1
        lines.append("  gate-evals by cone size:")
        rows = [
            [
                bucket,
                str(counters.get("faults", 0)),
                f"{counters.get('gate_evals', 0):,}",
                f"{100.0 * counters.get('gate_evals', 0) / total_evals:5.1f} %",
            ]
            for bucket, counters in sorted(cones.items())
        ]
        lines.extend(
            "    " + line
            for line in _table(["cone bucket", "faults", "gate evals", "share"], rows)
        )
    memory = snapshot.get("memory_peak_bytes", {})
    if isinstance(memory, dict) and memory:
        lines.append("  memory peaks (tracemalloc):")
        for name, peak in sorted(memory.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {name}: {peak / 1e6:.2f} MB")
    reconcile = snapshot.get("reconcile", {})
    if isinstance(reconcile, dict) and reconcile:
        lines.append(
            "  reconciliation: "
            f"{reconcile.get('attributed_wall_s', 0.0):.3f} s attributed of "
            f"{reconcile.get('pipeline_wall_s', 0.0):.3f} s pipeline wall "
            f"({100.0 * float(reconcile.get('coverage', 0.0)):.1f} % covered)"
        )
    if len(lines) == 1:
        lines.append("  (no attribution recorded)")
    return "\n".join(lines)


def _render_engine(engine: dict[str, object]) -> str:
    """One-block engine descriptor (``engine_info()`` of the last run)."""
    lines = ["engine:"]
    for key, value in engine.items():
        if value is None:
            continue
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)


def render_profile(
    collector: TraceCollector,
    registry: MetricsRegistry,
    engine: dict[str, object] | None = None,
) -> str:
    """The full ``--profile`` report: span tree, engine block, metric table.

    ``engine`` is the fault-simulation engine descriptor
    (:meth:`~repro.simulation.parallel.ParallelFaultSimulator.engine_info`);
    when given it renders between the tree and the metrics, and a one-line
    resilience summary (retries / salvaged / serial chunks) follows the
    metrics when the run had anything to report.
    """
    parts = [render_span_tree(collector)]
    if engine:
        parts.append(_render_engine(engine))
    parts.append(render_metrics(registry))
    retries = registry.counters.get("resilience.chunk_retries")
    salvaged = registry.counters.get("resilience.chunks_salvaged")
    degraded = registry.counters.get("resilience.degraded_runs")
    if any(c is not None and c.value for c in (retries, salvaged, degraded)):
        parts.append(
            "resilience: "
            f"{retries.value if retries else 0} chunk retries, "
            f"{salvaged.value if salvaged else 0} chunks salvaged, "
            f"{degraded.value if degraded else 0} degraded run(s)"
        )
    return "\n\n".join(parts)
