"""Chrome/Perfetto trace-event export of collected spans and events.

Converts a :class:`~repro.obs.trace.TraceCollector`'s span forest — parent
spans plus any worker-process spans merged in by the parallel engine — into
the Chrome trace-event JSON format (the ``{"traceEvents": [...]}`` object
form), loadable in ``chrome://tracing`` and https://ui.perfetto.dev.

Layout:

* one **process lane per OS process** — the parent pipeline is one lane,
  every pool worker another.  Worker spans are recognised by the
  ``worker_pid`` attribute the telemetry merge tags them with (see
  ``repro.simulation.parallel``); a span inherits its nearest tagged
  ancestor's lane, so untagged children of a worker span stay in the worker
  lane.  Within a process, one thread lane per collector thread is not
  tracked — spans nest by time, which the viewers render correctly.
* spans become complete events (``"ph": "X"``) with microsecond timestamps;
* retry/checkpoint events from the event bus become instant events
  (``"ph": "i"``), globally scoped so they draw as full-height markers.

All spans and events share one timebase: ``time.perf_counter()`` is
CLOCK_MONOTONIC-backed on the platforms we run on, so timestamps taken in
worker processes line up with the parent's on the same machine.  Timestamps
are rebased to the earliest span so traces start at t=0.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.obs.events import CheckpointEvent, Event, RetryEvent
from repro.obs.trace import Span, TraceCollector

__all__ = ["chrome_trace", "write_chrome_trace"]

#: Span attribute naming the OS process a span was recorded in.
WORKER_PID_ATTR = "worker_pid"


def _jsonable_args(attributes: dict[str, object]) -> dict[str, object]:
    return {
        k: v if isinstance(v, (bool, int, float, str, type(None))) else repr(v)
        for k, v in attributes.items()
    }


def _collect_complete_events(
    span: Span,
    lane_pid: int,
    base: float,
    out: list[dict],
) -> None:
    pid_attr = span.attributes.get(WORKER_PID_ATTR)
    if isinstance(pid_attr, int):
        lane_pid = pid_attr
    if span.end_wall is not None:
        out.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(1e6 * (span.start_wall - base), 3),
                "dur": round(1e6 * span.wall_time, 3),
                "pid": lane_pid,
                "tid": lane_pid,
                "args": _jsonable_args(span.attributes),
            }
        )
    for child in span.children:
        _collect_complete_events(child, lane_pid, base, out)


def _earliest_start(spans: Iterable[Span]) -> float | None:
    starts = [
        s.start_wall
        for root in spans
        for s in root.iter_tree()
        if s.end_wall is not None
    ]
    return min(starts) if starts else None


def chrome_trace(
    collector: TraceCollector,
    events: Sequence[Event] | None = None,
    main_pid: int | None = None,
) -> dict:
    """Build the Chrome trace-event object for a collector's span forest.

    ``events`` (optional) adds instant markers for
    :class:`~repro.obs.events.RetryEvent` and
    :class:`~repro.obs.events.CheckpointEvent`; other event types are
    ignored.  ``main_pid`` labels the parent lane (default: this process).
    """
    pid = main_pid if main_pid is not None else os.getpid()
    roots = list(collector.roots)
    base = _earliest_start(roots)
    if base is None:
        base = 0.0
    trace_events: list[dict] = []
    for root in roots:
        _collect_complete_events(root, pid, base, trace_events)

    lanes = sorted({e["pid"] for e in trace_events} | {pid})
    for lane in lanes:
        label = "pipeline (main)" if lane == pid else f"fault-sim worker {lane}"
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": lane,
                "tid": lane,
                "args": {"name": label},
            }
        )
        # Sort order: main lane first, workers after, in pid order.
        trace_events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": lane,
                "tid": lane,
                "args": {"sort_index": 0 if lane == pid else lane},
            }
        )

    for event in events or ():
        if isinstance(event, RetryEvent):
            name = f"retry {event.point} key={event.key}"
        elif isinstance(event, CheckpointEvent):
            name = f"checkpoint {event.action} {event.stage}"
        else:
            continue
        trace_events.append(
            {
                "name": name,
                "ph": "i",
                "s": "g",  # global scope: full-height marker
                "ts": round(1e6 * (event.ts_mono - base), 3),
                "pid": pid,
                "tid": pid,
                "args": _jsonable_args(
                    {
                        k: v
                        for k, v in event.__dict__.items()
                        if k not in ("ts", "ts_mono")
                    }
                ),
            }
        )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    collector: TraceCollector,
    events: Sequence[Event] | None = None,
) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    trace = chrome_trace(collector, events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    return len(trace["traceEvents"])
