"""Chrome/Perfetto trace-event export of collected spans and events.

Converts a :class:`~repro.obs.trace.TraceCollector`'s span forest — parent
spans plus any worker-process spans merged in by the parallel engine — into
the Chrome trace-event JSON format (the ``{"traceEvents": [...]}`` object
form), loadable in ``chrome://tracing`` and https://ui.perfetto.dev.

Layout:

* one **process lane per OS process** — the parent pipeline is one lane,
  every pool worker another.  Worker spans are recognised by the
  ``worker_pid`` attribute the telemetry merge tags them with (see
  ``repro.simulation.parallel``); a span inherits its nearest tagged
  ancestor's lane, so untagged children of a worker span stay in the worker
  lane.  Within a process, one thread lane per collector thread is not
  tracked — spans nest by time, which the viewers render correctly.
* spans become complete events (``"ph": "X"``) with microsecond timestamps;
* retry/checkpoint events from the event bus become instant events
  (``"ph": "i"``), globally scoped so they draw as full-height markers.

All spans and events share one timebase: ``time.perf_counter()`` is
CLOCK_MONOTONIC-backed on the platforms we run on, so timestamps taken in
worker processes line up with the parent's on the same machine.  Timestamps
are rebased to the earliest span so traces start at t=0.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.obs.events import CheckpointEvent, Event, RetryEvent
from repro.obs.trace import Span, TraceCollector

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "campaign_chrome_trace",
    "write_campaign_trace",
]

#: Span attribute naming the OS process a span was recorded in.
WORKER_PID_ATTR = "worker_pid"


def _jsonable_args(attributes: dict[str, object]) -> dict[str, object]:
    return {
        k: v if isinstance(v, (bool, int, float, str, type(None))) else repr(v)
        for k, v in attributes.items()
    }


def _collect_complete_events(
    span: Span,
    lane_pid: int,
    base: float,
    out: list[dict],
) -> None:
    pid_attr = span.attributes.get(WORKER_PID_ATTR)
    if isinstance(pid_attr, int):
        lane_pid = pid_attr
    if span.end_wall is not None:
        out.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(1e6 * (span.start_wall - base), 3),
                "dur": round(1e6 * span.wall_time, 3),
                "pid": lane_pid,
                "tid": lane_pid,
                "args": _jsonable_args(span.attributes),
            }
        )
    for child in span.children:
        _collect_complete_events(child, lane_pid, base, out)


def _earliest_start(spans: Iterable[Span]) -> float | None:
    starts = [
        s.start_wall
        for root in spans
        for s in root.iter_tree()
        if s.end_wall is not None
    ]
    return min(starts) if starts else None


def chrome_trace(
    collector: TraceCollector,
    events: Sequence[Event] | None = None,
    main_pid: int | None = None,
) -> dict:
    """Build the Chrome trace-event object for a collector's span forest.

    ``events`` (optional) adds instant markers for
    :class:`~repro.obs.events.RetryEvent` and
    :class:`~repro.obs.events.CheckpointEvent`; other event types are
    ignored.  ``main_pid`` labels the parent lane (default: this process).
    """
    pid = main_pid if main_pid is not None else os.getpid()
    roots = list(collector.roots)
    base = _earliest_start(roots)
    if base is None:
        base = 0.0
    trace_events: list[dict] = []
    for root in roots:
        _collect_complete_events(root, pid, base, trace_events)

    lanes = sorted({e["pid"] for e in trace_events} | {pid})
    for lane in lanes:
        label = "pipeline (main)" if lane == pid else f"fault-sim worker {lane}"
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": lane,
                "tid": lane,
                "args": {"name": label},
            }
        )
        # Sort order: main lane first, workers after, in pid order.
        trace_events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": lane,
                "tid": lane,
                "args": {"sort_index": 0 if lane == pid else lane},
            }
        )

    for event in events or ():
        if isinstance(event, RetryEvent):
            name = f"retry {event.point} key={event.key}"
        elif isinstance(event, CheckpointEvent):
            name = f"checkpoint {event.action} {event.stage}"
        else:
            continue
        trace_events.append(
            {
                "name": name,
                "ph": "i",
                "s": "g",  # global scope: full-height marker
                "ts": round(1e6 * (event.ts_mono - base), 3),
                "pid": pid,
                "tid": pid,
                "args": _jsonable_args(
                    {
                        k: v
                        for k, v in event.__dict__.items()
                        if k not in ("ts", "ts_mono")
                    }
                ),
            }
        )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    collector: TraceCollector,
    events: Sequence[Event] | None = None,
) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    trace = chrome_trace(collector, events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    return len(trace["traceEvents"])


# ---------------------------------------------------------------------------
# Campaign-scoped traces: one process group per job, built from the journal
# ---------------------------------------------------------------------------
#: Synthetic pid of the supervisor lane (job lanes count up from 1).
SUPERVISOR_LANE = 0

#: Journal record types that terminate an open lease interval.
_TERMINAL_TYPES = frozenset({"done", "fail", "reclaim", "quarantine"})


def _record_ts(record: dict) -> float | None:
    ts = record.get("ts")
    if isinstance(ts, (int, float)) and not isinstance(ts, bool):
        return float(ts)
    return None


def campaign_chrome_trace(
    records: Sequence[dict],
    events: Sequence[dict] | None = None,
    compactions: Sequence[float] | None = None,
) -> dict:
    """Build one Chrome/Perfetto trace for a whole campaign.

    ``records`` are replayed journal records (plain dicts) — the trace is
    reconstructable from the journal alone, post-mortem.  Layout:

    * **one process group per job** (synthetic pids counting from 1, the
      supervisor on pid 0), named by the job's config hash;
    * **one lane per worker** inside a job's group: each lease interval
      becomes a complete event on the tid of the worker pid that finished it
      (attempt number when the worker never reported, e.g. a reclaim);
    * **instant markers** for lease reclaims, transient-failure retries,
      cache hits, stop records and journal compactions
      (``compactions``: wall-clock stamps from snapshots);
    * ``events`` (optional) overlays a merged ``--events`` stream: each
      ``JobEvent`` record becomes a thread-scoped instant in its job lane.

    The timebase is rebased to the earliest journal wall clock.  Journals
    written before records carried ``ts`` degrade to a synthetic index
    timebase (one millisecond per record), flagged in ``otherData``.
    """
    records = list(records)
    # Synthetic pid per job, in first-seen order (campaign record first).
    job_pids: dict[str, int] = {}

    def lane(job_id: str) -> int:
        if job_id not in job_pids:
            job_pids[job_id] = len(job_pids) + 1
        return job_pids[job_id]

    for record in records:
        if record.get("type") == "campaign":
            for entry in record.get("jobs", ()):
                if isinstance(entry, dict) and "job_id" in entry:
                    lane(str(entry["job_id"]))

    stamps = [t for r in records if (t := _record_ts(r)) is not None]
    synthetic = not stamps
    if synthetic:
        # Pre-PR-10 journal: no wall clocks.  Space records 1ms apart so
        # ordering still reads; flagged below.
        base = 0.0
        times = [0.001 * i for i in range(len(records))]
    else:
        base = min(stamps)
        last = base
        times = []
        for record in records:
            ts = _record_ts(record)
            last = ts if ts is not None else last
            times.append(last)

    def us(ts: float) -> float:
        return round(1e6 * (ts - base), 3)

    trace_events: list[dict] = []
    open_leases: dict[str, tuple[float, int]] = {}  # job -> (t0, attempt)

    def close_lease(job_id: str, t1: float, record: dict) -> None:
        started = open_leases.pop(job_id, None)
        if started is None:
            return
        t0, attempt = started
        kind = str(record.get("type"))
        pid_value = record.get("worker_pid")
        tid = pid_value if isinstance(pid_value, int) else attempt
        trace_events.append(
            {
                "name": f"attempt {attempt} [{kind}]",
                "ph": "X",
                "ts": us(t0),
                "dur": round(1e6 * max(0.0, t1 - t0), 3),
                "pid": lane(job_id),
                "tid": tid,
                "args": _jsonable_args(
                    {
                        k: v
                        for k, v in record.items()
                        if k not in ("type", "job", "ts")
                    }
                    | {"outcome": kind}
                ),
            }
        )

    def marker(
        name: str, ts: float, pid: int, args: dict | None = None
    ) -> None:
        trace_events.append(
            {
                "name": name,
                "ph": "i",
                "s": "g",
                "ts": us(ts),
                "pid": pid,
                "tid": pid if pid == SUPERVISOR_LANE else 0,
                "args": _jsonable_args(args or {}),
            }
        )

    for record, now in zip(records, times):
        kind = record.get("type")
        job_id = str(record.get("job", "-"))
        if kind == "campaign":
            marker(
                f"campaign {record.get('name', '?')} registered "
                f"({len(record.get('jobs', ()))} job(s))",
                now,
                SUPERVISOR_LANE,
            )
        elif kind == "lease":
            open_leases[job_id] = (now, int(record.get("attempt", 0)))
        elif kind in _TERMINAL_TYPES:
            cached = kind == "done" and bool(record.get("cached"))
            if cached:
                marker(
                    "cache hit",
                    now,
                    lane(job_id),
                    {"result_sha": record.get("result_sha")},
                )
            close_lease(job_id, now, record)
            if kind == "reclaim":
                marker(
                    "lease reclaimed",
                    now,
                    lane(job_id),
                    {"reason": record.get("reason")},
                )
            elif kind == "fail":
                marker(
                    "retry (transient failure)",
                    now,
                    lane(job_id),
                    {
                        "reason": record.get("reason"),
                        "kind": record.get("kind"),
                    },
                )
            elif kind == "quarantine":
                marker(
                    "quarantined",
                    now,
                    lane(job_id),
                    {"reason": record.get("reason")},
                )
        elif kind == "stop":
            marker(
                f"stop ({record.get('reason', '?')})",
                now,
                SUPERVISOR_LANE,
            )
        elif kind == "end":
            marker("campaign complete", now, SUPERVISOR_LANE)
    # Leases still open at the end of the journal: the supervisor died (or
    # is still running).  Draw them to the last known instant so the killed
    # attempt is visible next to its later reclaim.
    t_end = times[-1] if times else 0.0
    for job_id in list(open_leases):
        close_lease(
            job_id, t_end, {"type": "open", "note": "no terminal record"}
        )

    for record in events or ():
        if not isinstance(record, dict) or record.get("type") != "JobEvent":
            continue
        job_id = str(record.get("job", "?"))
        ts = _record_ts(record)
        if ts is None or synthetic:
            continue
        inner = record.get("inner") or {}
        name = str(inner.get("type", "event"))
        stage = inner.get("stage")
        if stage:
            name = f"{stage}: {name}"
        pid_value = record.get("worker_pid")
        trace_events.append(
            {
                "name": name,
                "ph": "i",
                "s": "t",
                "ts": us(ts),
                "pid": lane(job_id),
                "tid": pid_value if isinstance(pid_value, int) else 0,
                "args": _jsonable_args(
                    {
                        k: v
                        for k, v in inner.items()
                        if k not in ("type", "ts", "ts_mono")
                        and isinstance(v, (bool, int, float, str))
                    }
                ),
            }
        )

    for ts in compactions or ():
        if isinstance(ts, (int, float)) and not synthetic:
            marker("journal compacted", float(ts), SUPERVISOR_LANE)

    # Process metadata: the supervisor lane first, one group per job after.
    used = {e["pid"] for e in trace_events}
    for pid in sorted(used | {SUPERVISOR_LANE}):
        label = "campaign supervisor"
        for job_id, job_pid in job_pids.items():
            if job_pid == pid:
                label = f"job {job_id[:16]}"
                break
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        trace_events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro campaign journal",
            "timebase": (
                "synthetic (journal predates per-record wall clocks)"
                if synthetic
                else "journal wall clock, rebased to the earliest record"
            ),
            "jobs": len(job_pids),
        },
    }


def write_campaign_trace(
    path: str,
    records: Sequence[dict],
    events: Sequence[dict] | None = None,
    compactions: Sequence[float] | None = None,
) -> int:
    """Write a campaign trace JSON to ``path``; returns the event count."""
    trace = campaign_chrome_trace(
        records, events=events, compactions=compactions
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    return len(trace["traceEvents"])
