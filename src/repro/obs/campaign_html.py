"""Self-contained HTML sweep report over a campaign directory.

``python -m repro campaign report`` renders one HTML file from the durable
artifacts a campaign leaves behind — the journal, the per-job manifests and
the content-addressed result store — with nothing but the journal strictly
required.  Panels:

* **Campaign summary** — job counts, attempts, wall clock, terminal state;
* **Job gantt** — every lease interval on a timeline built from journal
  wall clocks, reclaimed/failed attempts highlighted;
* **Sweep dimensions** — small multiples of final coverage and DL (ppm)
  against each swept config axis, one chart per axis;
* **Cache economics** — store hits vs computed runs and the estimated
  simulation seconds the store saved;
* **Retries & quarantines** — the campaign's failure timeline;
* **Regression vs baseline** — per-job wall-time ratios against a previous
  campaign directory (the ``obs check-bench`` contract: noise-scaled
  tolerance, exit-1 gate in the CLI);
* **Jobs** — the per-job ledger (status, attempts, result shas).

Like :mod:`repro.obs.html` this module is stdlib-only and renders a
complete standalone document — inline CSS/SVG, zero scripts, zero external
requests.  Journals written before records carried wall clocks (pre
``compacted_ts`` schema) degrade: the gantt and failure timeline fall back
to explanatory notes instead of failing.
"""

from __future__ import annotations

from html import escape
from typing import TYPE_CHECKING, Sequence

from repro.obs.html import (
    _CSS,
    _bar_chart,
    _fmt_ppm,
    _fmt_s,
    _legend,
    _line_chart,
    _note,
    _num,
    _panel,
    _tiles,
    _timeline_rows,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.manifest import RunManifest

__all__ = [
    "CAMPAIGN_PANEL_IDS",
    "build_campaign_report",
    "write_campaign_report",
    "campaign_regressions",
]

#: Stable DOM ids, one per report section — CI asserts each renders.
CAMPAIGN_PANEL_IDS = (
    "panel-campaign-summary",
    "panel-campaign-gantt",
    "panel-campaign-sweep",
    "panel-campaign-cache",
    "panel-campaign-retries",
    "panel-campaign-regression",
    "panel-campaign-jobs",
)

#: Default noise multiplier for the regression gate (same contract as
#: ``obs check-bench``): flag when current > tolerance × baseline.
DEFAULT_TOLERANCE = 3.0


# ---------------------------------------------------------------------------
# Journal record digestion
# ---------------------------------------------------------------------------
def _record_ts(record: dict) -> float | None:
    return _num(record.get("ts"))


def _timebase(records: Sequence[dict]) -> tuple[float, float] | None:
    """(t0, t1) wall-clock envelope, or None for a pre-``ts`` journal."""
    stamps = [t for r in records if (t := _record_ts(r)) is not None]
    if not stamps:
        return None
    return min(stamps), max(stamps)


def _lease_intervals(records: Sequence[dict]) -> list[dict]:
    """Lease → terminal-record intervals with wall clocks.

    Returns ``{job, attempt, start, end, outcome, cached, reason}`` rows
    (times absolute); a lease with no terminal record (the supervisor was
    killed holding it) closes at the last journalled instant with outcome
    ``"killed"``.
    """
    envelope = _timebase(records)
    if envelope is None:
        return []
    open_leases: dict[str, tuple[float, int]] = {}
    intervals: list[dict] = []
    last = envelope[0]
    for record in records:
        ts = _record_ts(record)
        last = ts if ts is not None else last
        kind = record.get("type")
        job_id = str(record.get("job", "-"))
        if kind == "lease":
            open_leases[job_id] = (last, int(record.get("attempt", 0)))
        elif kind in ("done", "fail", "reclaim", "quarantine"):
            started = open_leases.pop(job_id, None)
            if started is None:
                continue
            intervals.append(
                {
                    "job": job_id,
                    "attempt": started[1],
                    "start": started[0],
                    "end": last,
                    "outcome": str(kind),
                    "cached": bool(record.get("cached", False)),
                    "reason": record.get("reason"),
                }
            )
    for job_id, (t0, attempt) in open_leases.items():
        intervals.append(
            {
                "job": job_id,
                "attempt": attempt,
                "start": t0,
                "end": envelope[1],
                "outcome": "killed",
                "cached": False,
                "reason": "no terminal record (supervisor died)",
            }
        )
    return intervals


def _computed_walls(records: Sequence[dict]) -> dict[str, float]:
    """job -> wall seconds of its *computed* (non-cached) done record."""
    walls: dict[str, float] = {}
    for record in records:
        if (
            record.get("type") == "done"
            and not record.get("cached")
            and (wall := _num(record.get("wall_s"))) is not None
        ):
            walls[str(record.get("job"))] = wall
    return walls


# ---------------------------------------------------------------------------
# Regression strip (check-bench contract over per-job wall times)
# ---------------------------------------------------------------------------
def campaign_regressions(
    records: Sequence[dict],
    base_records: Sequence[dict],
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[dict]:
    """Per-job wall-time comparison against a previous campaign's journal.

    Only jobs *computed* in both campaigns compare (a cache hit measures
    the store, not the pipeline).  Returns one row per common job:
    ``{job, base_s, current_s, ratio, regressed}`` where ``regressed``
    means current > tolerance × base — the ``obs check-bench`` contract.
    """
    current = _computed_walls(records)
    base = _computed_walls(base_records)
    rows = []
    for job_id in sorted(set(current) & set(base)):
        base_s = base[job_id]
        current_s = current[job_id]
        ratio = current_s / base_s if base_s > 0 else float("inf")
        rows.append(
            {
                "job": job_id,
                "base_s": base_s,
                "current_s": current_s,
                "ratio": ratio,
                "regressed": current_s > tolerance * base_s,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Panels
# ---------------------------------------------------------------------------
def _summary_panel(state: dict, records: Sequence[dict]) -> str:
    jobs = state.get("jobs", {})
    statuses = [str(j.get("status")) for j in jobs.values()]
    done = statuses.count("done")
    quarantined = statuses.count("quarantined")
    cached = sum(1 for j in jobs.values() if j.get("cached"))
    attempts = sum(int(j.get("attempts", 0)) for j in jobs.values())
    reclaims = sum(1 for r in records if r.get("type") == "reclaim")
    retries = sum(1 for r in records if r.get("type") == "fail")
    envelope = _timebase(records)
    wall = _fmt_s(envelope[1] - envelope[0]) if envelope else "n/a"
    if state.get("finished"):
        status = "complete"
    elif state.get("stopped"):
        status = f"stopped ({state.get('stop_reason')})"
    else:
        status = "in flight"
    body = _tiles(
        (
            (len(jobs), "jobs", "ink"),
            (done, "done", "good" if done == len(jobs) else "ink"),
            (cached, "served from store", "ink"),
            (quarantined, "quarantined", "crit" if quarantined else "good"),
            (attempts, "lease attempts", "ink"),
            (retries, "transient failures", "crit" if retries else "ink"),
            (reclaims, "lease reclaims", "crit" if reclaims else "ink"),
            (wall, "journalled wall span", "ink"),
        )
    )
    body += _note(f"campaign state: {status}")
    caption = (
        f"campaign {state.get('name', '?')}; wall span covers every "
        "journalled record including resumes"
    )
    return _panel("panel-campaign-summary", "Campaign summary", body, caption)


_OUTCOME_CLS = {"done": "s1", "fail": "s2", "reclaim": "s2",
                "quarantine": "s2", "killed": "s2"}


def _gantt_panel(records: Sequence[dict]) -> str:
    intervals = _lease_intervals(records)
    envelope = _timebase(records)
    if not intervals or envelope is None:
        return _panel(
            "panel-campaign-gantt",
            "Job gantt",
            _note(
                "journal records carry no wall clocks (campaign predates "
                "timestamped records) — re-run under the current schema to "
                "populate the gantt"
            ),
        )
    t0, t1 = envelope
    total = max(1e-9, t1 - t0)
    rows = []
    last_job = None
    for iv in sorted(intervals, key=lambda iv: (iv["job"], iv["start"])):
        outcome = iv["outcome"]
        tip = (
            f"{iv['job'][:16]} attempt {iv['attempt']}: {outcome} "
            f"after {_fmt_s(iv['end'] - iv['start'])}"
        )
        if outcome == "reclaim":
            tip += f" — lease reclaimed ({iv['reason']})"
        elif iv["reason"]:
            tip += f" ({iv['reason']})"
        if iv["cached"]:
            tip += " [store hit]"
        rows.append(
            {
                "label": iv["job"][:16] if iv["job"] != last_job else "",
                "start": iv["start"] - t0,
                "dur": max(0.0, iv["end"] - iv["start"]),
                "cls": _OUTCOME_CLS.get(outcome, "s1"),
                "tip": tip,
            }
        )
        last_job = iv["job"]
    body = _legend(
        [("completed lease", "s1"), ("reclaimed / failed / killed", "s2")]
    )
    body += _timeline_rows(rows, total)
    caption = (
        f"{len(intervals)} lease interval(s) from the journal wall clocks; "
        "gaps are scheduling/backoff waits, a second bar on one job is a "
        "retry or a post-crash resume"
    )
    return _panel("panel-campaign-gantt", "Job gantt", body, caption)


def _sweep_axes(jobs: dict) -> dict[str, list]:
    """Config keys that actually vary across jobs -> sorted distinct values."""
    values: dict[str, set] = {}
    for job in jobs.values():
        config = job.get("config")
        if not isinstance(config, dict):
            continue
        for key, value in config.items():
            if isinstance(value, (bool, int, float, str)):
                values.setdefault(key, set()).add(value)
    axes = {k: v for k, v in values.items() if len(v) > 1}
    return {
        k: sorted(v, key=lambda x: (str(type(x)), x))
        for k, v in sorted(axes.items())
    }


def _sweep_panel(state: dict, manifests: Sequence["RunManifest"]) -> str:
    jobs = state.get("jobs", {})
    axes = _sweep_axes(jobs)
    if not axes:
        return _panel(
            "panel-campaign-sweep",
            "Sweep dimensions",
            _note("no swept config axis — every job shares one config"),
        )
    by_job: dict[str, "RunManifest"] = {}
    for manifest in manifests:
        job_id = manifest.results.get("job_id")
        if isinstance(job_id, str):
            by_job[job_id] = manifest  # latest manifest per job wins
    if not by_job:
        return _panel(
            "panel-campaign-sweep",
            "Sweep dimensions",
            _note(
                "swept axes: "
                + ", ".join(axes)
                + " — but no per-job manifests were found to plot against"
            ),
        )
    charts: list[str] = []
    for axis, _values in list(axes.items())[:3]:
        t_points: list[tuple[float, float]] = []
        dl_points: list[tuple[float, float]] = []
        categorical: list[tuple[str, float]] = []
        for job_id, job in jobs.items():
            manifest = by_job.get(job_id)
            config = job.get("config")
            if manifest is None or not isinstance(config, dict):
                continue
            x_raw = config.get(axis)
            final_t = _num(manifest.results.get("final_T"))
            final_dl = _num(manifest.results.get("final_DL"))
            x = _num(x_raw)
            if x is not None:
                if final_t is not None:
                    t_points.append((x, final_t))
                if final_dl is not None:
                    dl_points.append((x, final_dl))
            elif final_t is not None:
                categorical.append((str(x_raw), final_t))
        if t_points or dl_points:
            svg = _legend([("coverage T", "s1"), ("DL (ppm)", "s2")])
            svg += _line_chart(
                [
                    {
                        "label": "T",
                        "cls": "s1",
                        "points": sorted(t_points),
                        "markers": True,
                    },
                    {
                        "label": "DL ppm",
                        "cls": "s2",
                        "points": sorted(
                            (x, 1e6 * y) for x, y in dl_points
                        ),
                        "markers": True,
                    },
                ],
                y_label="T / DL ppm",
                tip=lambda label, x, y: f"{label} @ {axis}={x:g}: {y:.4g}",
            )
        elif categorical:
            categorical.sort()
            svg = _bar_chart(
                [label for label, _ in categorical],
                [value for _, value in categorical],
                y_label="coverage T",
                y_fmt=lambda v: f"{v:.3f}",
            )
        else:
            svg = _note("no recorded results along this axis")
        charts.append(f"<div><h3>{escape(axis)}</h3>{svg}</div>")
    body = f'<div class="chart-grid">{"".join(charts)}</div>'
    dropped = len(axes) - min(3, len(axes))
    caption = (
        f"{len(axes)} swept axis(es); final coverage and defect level per "
        "job from the campaign's manifests"
        + (f" — {dropped} further axis(es) not shown" if dropped else "")
    )
    return _panel("panel-campaign-sweep", "Sweep dimensions", body, caption)


def _cache_panel(state: dict, records: Sequence[dict]) -> str:
    jobs = state.get("jobs", {})
    cached = sum(1 for j in jobs.values() if j.get("cached"))
    walls = _computed_walls(records)
    computed = len(walls)
    mean_wall = sum(walls.values()) / computed if computed else 0.0
    saved = cached * mean_wall
    total = cached + computed
    hit_rate = f"{100.0 * cached / total:.0f}%" if total else "n/a"
    body = _tiles(
        (
            (cached, "store hits", "good" if cached else "ink"),
            (computed, "computed", "ink"),
            (hit_rate, "hit rate", "ink"),
            (_fmt_s(mean_wall) if computed else "n/a",
             "mean computed wall", "ink"),
            (_fmt_s(saved) if total else "n/a",
             "est. sim-seconds saved", "good" if saved else "ink"),
        )
    )
    caption = (
        "savings estimate = store hits × mean computed wall of this "
        "campaign — an estimate, not a measurement (the avoided runs were "
        "never timed)"
    )
    return _panel("panel-campaign-cache", "Cache economics", body, caption)


def _retries_panel(records: Sequence[dict]) -> str:
    envelope = _timebase(records)
    events = [
        r
        for r in records
        if r.get("type") in ("fail", "reclaim", "quarantine", "stop")
    ]
    if not events:
        return _panel(
            "panel-campaign-retries",
            "Retries & quarantines",
            _note("clean campaign — no failures, reclaims or stops"),
        )
    rows_html = []
    for record in events:
        ts = _record_ts(record)
        offset = (
            _fmt_s(ts - envelope[0])
            if ts is not None and envelope is not None
            else "-"
        )
        rows_html.append(
            "<tr>"
            f"<td>{escape(offset)}</td>"
            f"<td>{escape(str(record.get('job', '-'))[:16])}</td>"
            f"<td>{escape(str(record.get('type')))}</td>"
            f"<td>{escape(str(record.get('kind', '')))}</td>"
            f"<td>{escape(str(record.get('reason', ''))[:120])}</td>"
            "</tr>"
        )
    body = (
        '<table class="data"><thead><tr><th>t+</th><th>job</th>'
        "<th>event</th><th>kind</th><th>reason</th></tr></thead>"
        f'<tbody>{"".join(rows_html)}</tbody></table>'
    )
    caption = (
        f"{len(events)} failure-path event(s) in journal order; t+ offsets "
        "from the earliest journalled record"
        + ("" if envelope else " (unavailable: journal predates wall clocks)")
    )
    return _panel(
        "panel-campaign-retries", "Retries & quarantines", body, caption
    )


def _regression_panel(
    records: Sequence[dict],
    base_records: Sequence[dict] | None,
    tolerance: float,
) -> str:
    if base_records is None:
        return _panel(
            "panel-campaign-regression",
            "Regression vs baseline",
            _note(
                "no baseline campaign given — pass --baseline DIR to "
                "compare per-job wall times against a previous campaign"
            ),
        )
    rows = campaign_regressions(records, base_records, tolerance)
    if not rows:
        return _panel(
            "panel-campaign-regression",
            "Regression vs baseline",
            _note(
                "no job was computed (cache-free) in both campaigns — "
                "nothing to compare"
            ),
        )
    regressed = [r for r in rows if r["regressed"]]
    table = "".join(
        "<tr>"
        f"<td>{escape(r['job'][:16])}</td>"
        f"<td>{_fmt_s(r['base_s'])}</td>"
        f"<td>{_fmt_s(r['current_s'])}</td>"
        f"<td>{r['ratio']:.2f}×</td>"
        f"<td>{'REGRESSED' if r['regressed'] else 'ok'}</td>"
        "</tr>"
        for r in rows
    )
    body = _bar_chart(
        [r["job"][:8] for r in rows],
        [r["ratio"] for r in rows],
        y_label="current / baseline wall",
        y_fmt=lambda v: f"{v:.1f}×",
        tip=lambda label, v: f"{label}: {v:.2f}× baseline",
    )
    body += (
        '<table class="data"><thead><tr><th>job</th><th>baseline</th>'
        "<th>current</th><th>ratio</th><th>verdict</th></tr></thead>"
        f"<tbody>{table}</tbody></table>"
    )
    caption = (
        f"{len(rows)} job(s) computed in both campaigns; tolerance "
        f"{tolerance:g}× (the obs check-bench contract) — "
        + (
            f"{len(regressed)} regression(s)"
            if regressed
            else "no regressions"
        )
    )
    return _panel(
        "panel-campaign-regression", "Regression vs baseline", body, caption
    )


def _jobs_panel(state: dict, manifests: Sequence["RunManifest"]) -> str:
    jobs = state.get("jobs", {})
    if not jobs:
        return _panel(
            "panel-campaign-jobs", "Jobs", _note("no jobs journalled")
        )
    by_job: dict[str, "RunManifest"] = {}
    for manifest in manifests:
        job_id = manifest.results.get("job_id")
        if isinstance(job_id, str):
            by_job[job_id] = manifest
    order = state.get("job_order") or list(jobs)
    rows = []
    for job_id in order:
        job = jobs.get(job_id)
        if job is None:
            continue
        manifest = by_job.get(job_id)
        final_t = (
            _num(manifest.results.get("final_T")) if manifest else None
        )
        final_dl = (
            _num(manifest.results.get("final_DL")) if manifest else None
        )
        sha = job.get("result_sha") or ""
        rows.append(
            "<tr>"
            f"<td>{escape(str(job_id)[:16])}</td>"
            f"<td>{escape(str(job.get('status')))}</td>"
            f"<td>{int(job.get('attempts', 0))}</td>"
            f"<td>{'hit' if job.get('cached') else ''}</td>"
            f"<td>{f'{final_t:.4f}' if final_t is not None else '-'}</td>"
            f"<td>{_fmt_ppm(final_dl) if final_dl is not None else '-'}</td>"
            f"<td>{escape(str(sha)[:12])}</td>"
            f"<td>{escape(str(job.get('last_error') or '')[:80])}</td>"
            "</tr>"
        )
    body = (
        '<table class="data"><thead><tr><th>job</th><th>status</th>'
        "<th>attempts</th><th>store</th><th>T</th><th>DL ppm</th>"
        "<th>result sha</th><th>last error</th></tr></thead>"
        f'<tbody>{"".join(rows)}</tbody></table>'
    )
    caption = (
        "scheduling order; T / DL ppm come from per-job manifests when "
        "present"
    )
    return _panel("panel-campaign-jobs", "Jobs", body, caption)


# ---------------------------------------------------------------------------
# Document assembly
# ---------------------------------------------------------------------------
def build_campaign_report(
    state: dict,
    records: Sequence[dict],
    manifests: Sequence["RunManifest"] = (),
    base_records: Sequence[dict] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    source: str | None = None,
) -> str:
    """Render the full campaign report HTML.

    ``state`` is a replayed :meth:`CampaignState.to_payload` dict and
    ``records`` the journal records it was folded from; ``manifests`` are
    the campaign's per-job run manifests (empty is fine — panels degrade);
    ``base_records`` enables the regression strip.  The output is a
    complete standalone document — no scripts, no external references.
    """
    records = list(records)
    manifests = list(manifests)
    jobs = state.get("jobs", {})
    subtitle = (
        f"{len(jobs)} job(s) · {len(records)} journal record(s)"
        + (f" · {source}" if source else "")
    )
    panels = (
        _summary_panel(state, records)
        + _gantt_panel(records)
        + _sweep_panel(state, manifests)
        + _cache_panel(state, records)
        + _retries_panel(records)
        + _regression_panel(records, base_records, tolerance)
        + _jobs_panel(state, manifests)
    )
    title = f"campaign {state.get('name', '?')}"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{escape(title)} — sweep report</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        f"<header><h1>Sweep report: {escape(str(state.get('name', '?')))}</h1>"
        f"<p>{escape(subtitle)}</p></header>\n"
        f"<main>{panels}</main>\n"
        "<footer>generated by python -m repro campaign report — "
        "self-contained, no external resources; hover any mark for exact "
        "values</footer>\n"
        "</body>\n</html>\n"
    )


def write_campaign_report(
    path: str,
    state: dict,
    records: Sequence[dict],
    manifests: Sequence["RunManifest"] = (),
    base_records: Sequence[dict] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    source: str | None = None,
) -> int:
    """Write the campaign report to ``path``; returns bytes written."""
    document = build_campaign_report(
        state,
        records,
        manifests=manifests,
        base_records=base_records,
        tolerance=tolerance,
        source=source,
    )
    data = document.encode("utf-8")
    with open(path, "wb") as sink:
        sink.write(data)
    return len(data)
