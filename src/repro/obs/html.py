"""Self-contained HTML dashboard over recorded run manifests.

``python -m repro obs html`` renders one HTML file — inline CSS, hand-rolled
inline SVG, zero scripts, zero external requests — from the JSON-lines
manifest history that ``--trace`` appends.  Panels:

* **Run history** — coverage, defect-level projection, wall time and
  patterns/second across every recorded run;
* **Coverage growth & DL(T)** — the latest run's ``T(k)``/``theta(k)``
  series and its measured-vs-fitted eq.-11 defect-level curve;
* **n-detection depth** — how many faults the sequence detected *d* times
  (Pomeranz/Reddy n-detection telemetry from ``detection_counts``);
* **Pipeline waterfall** — the latest run's span tree on a timeline;
* **Worker lanes** — merged cross-process telemetry, one lane per worker;
* **Resilience** — retries, salvaged chunks, degraded runs, checkpoint
  restores across the history;
* **Where the time goes** — the cost-attribution snapshot (stage wall
  share, gate-evals by cone bucket, kernel work counters).

Like the rest of :mod:`repro.obs` this module is stdlib-only; in
particular it must not import :mod:`repro.core` (numpy/scipy) — the fitted
DL(T) curve arrives pre-sampled inside ``manifest.curves``.  Manifests
written by older schema versions simply render fewer panels: every section
degrades to an explanatory note when its data is absent.

Charts follow one shared visual system: categorical series in fixed slot
order (blue then orange), 2 px lines, >= 8 px markers, thin bars anchored
to a baseline, hairline gridlines, one y-axis per chart, text in ink
tokens (never series colors), native ``<title>`` hover tooltips, and a
dark mode driven purely by ``prefers-color-scheme``.
"""

from __future__ import annotations

import math
from html import escape
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.manifest import RunManifest

__all__ = ["build_report", "write_report", "PANEL_IDS"]

#: Stable DOM ids, one per dashboard section — the CI smoke test asserts
#: each is present in the rendered report.
PANEL_IDS = (
    "panel-trends",
    "panel-coverage",
    "panel-ndetection",
    "panel-waterfall",
    "panel-lanes",
    "panel-analysis",
    "panel-resilience",
    "panel-attribution",
)

# Chart geometry (px).
_W, _H = 560, 230
_ML, _MR, _MT, _MB = 64, 14, 14, 34


# ---------------------------------------------------------------------------
# Small formatting helpers
# ---------------------------------------------------------------------------
def _fmt_num(value: float) -> str:
    """Compact human number: 1234567 -> '1.23M'."""
    if value == 0:
        return "0"
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= cut:
            return f"{value / cut:.3g}{suffix}"
    if abs(value) >= 1:
        return f"{value:.4g}"
    return f"{value:.3g}"


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{1000.0 * seconds:.1f}ms"


def _fmt_ppm(fraction: float) -> str:
    return f"{1e6 * fraction:.0f}"


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """~n round tick values covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(1, n)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        if mag * mult >= raw:
            step = mag * mult
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks or [lo, hi]


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Decade ticks covering the positive range [lo, hi]."""
    lo_exp = math.floor(math.log10(lo))
    hi_exp = math.ceil(math.log10(hi))
    return [10.0 ** e for e in range(lo_exp, hi_exp + 1)]


# ---------------------------------------------------------------------------
# SVG chart builders
# ---------------------------------------------------------------------------
def _chart_frame(
    x_ticks: Sequence[float],
    y_ticks: Sequence[float],
    sx: Callable[[float], float],
    sy: Callable[[float], float],
    x_fmt: Callable[[float], str],
    y_fmt: Callable[[float], str],
    y_label: str = "",
) -> list[str]:
    """Gridlines, baseline, and tick labels shared by every XY chart."""
    parts: list[str] = []
    for tick in y_ticks:
        y = sy(tick)
        parts.append(
            f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" y2="{y:.1f}" '
            f'class="grid"/>'
        )
        parts.append(
            f'<text x="{_ML - 6}" y="{y + 3.5:.1f}" class="tick" '
            f'text-anchor="end">{escape(y_fmt(tick))}</text>'
        )
    parts.append(
        f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" y2="{_H - _MB}" '
        f'class="baseline"/>'
    )
    for tick in x_ticks:
        x = sx(tick)
        parts.append(
            f'<text x="{x:.1f}" y="{_H - _MB + 16}" class="tick" '
            f'text-anchor="middle">{escape(x_fmt(tick))}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="{_ML}" y="{_MT - 2}" class="axis-label" '
            f'text-anchor="start">{escape(y_label)}</text>'
        )
    return parts


def _line_chart(
    series: Sequence[dict],
    *,
    y_label: str = "",
    x_fmt: Callable[[float], str] = _fmt_num,
    y_fmt: Callable[[float], str] = _fmt_num,
    y_log: bool = False,
    tip: Callable[[str, float, float], str] | None = None,
) -> str:
    """An XY line chart.  ``series``: ``{label, cls, points, markers?}``.

    ``cls`` is the CSS series class (``s1``/``s2``); ``points`` is a list of
    (x, y) pairs.  With ``y_log`` non-positive y values are dropped (log
    scale has no zero) and a linear scale is used if nothing survives.
    """
    pts_all = [p for s in series for p in s["points"]]
    if y_log:
        pts_all = [p for p in pts_all if p[1] > 0]
    if not pts_all:
        return '<p class="note">(no data points)</p>'
    xs = [p[0] for p in pts_all]
    ys = [p[1] for p in pts_all]
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_log:
        y_lo, y_hi = min(ys), max(ys)
        if y_hi == y_lo:
            y_hi = y_lo * 10
        y_ticks = _log_ticks(y_lo, y_hi)
        t_lo, t_hi = math.log10(y_ticks[0]), math.log10(y_ticks[-1])

        def sy(v: float) -> float:
            t = (math.log10(v) - t_lo) / (t_hi - t_lo or 1.0)
            return _H - _MB - t * (_H - _MT - _MB)

    else:
        y_lo = min(0.0, min(ys))
        y_ticks = _nice_ticks(y_lo, max(ys) or 1.0, 4)
        t_lo, t_hi = y_ticks[0], y_ticks[-1]

        def sy(v: float) -> float:
            t = (v - t_lo) / (t_hi - t_lo or 1.0)
            return _H - _MB - t * (_H - _MT - _MB)

    def sx(v: float) -> float:
        return _ML + (v - x_lo) / (x_hi - x_lo) * (_W - _ML - _MR)

    x_ticks = _nice_ticks(x_lo, x_hi, 5)
    x_ticks = [t for t in x_ticks if x_lo <= t <= x_hi]
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'preserveAspectRatio="xMidYMid meet">'
    ]
    parts.extend(_chart_frame(x_ticks, y_ticks, sx, sy, x_fmt, y_fmt, y_label))
    for s in series:
        points = s["points"]
        if y_log:
            points = [p for p in points if p[1] > 0]
        if not points:
            continue
        cls = s.get("cls", "s1")
        label = s.get("label", "")
        if s.get("line", True) and len(points) > 1:
            coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
            parts.append(f'<polyline class="line {cls}" points="{coords}"/>')
        if s.get("markers", False) or len(points) == 1:
            for x, y in points:
                text = (
                    tip(label, x, y)
                    if tip is not None
                    else f"{label}: ({x_fmt(x)}, {y_fmt(y)})"
                )
                parts.append(
                    f'<circle class="dot {cls}" cx="{sx(x):.1f}" '
                    f'cy="{sy(y):.1f}" r="4"><title>{escape(text)}</title>'
                    f"</circle>"
                )
    parts.append("</svg>")
    return "".join(parts)


def _bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    y_label: str = "",
    y_fmt: Callable[[float], str] = _fmt_num,
    tip: Callable[[str, float], str] | None = None,
) -> str:
    """A vertical bar chart (single series, thin bars on the baseline)."""
    if not values or max(values) <= 0:
        return '<p class="note">(no data points)</p>'
    y_ticks = _nice_ticks(0.0, max(values), 4)
    top = y_ticks[-1]

    def sy(v: float) -> float:
        return _H - _MB - (v / top) * (_H - _MT - _MB)

    n = len(values)
    span = (_W - _ML - _MR) / n
    bar_w = min(24.0, span * 0.6)
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'preserveAspectRatio="xMidYMid meet">'
    ]
    for tick in y_ticks:
        y = sy(tick)
        parts.append(
            f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" y2="{y:.1f}" '
            f'class="grid"/>'
            f'<text x="{_ML - 6}" y="{y + 3.5:.1f}" class="tick" '
            f'text-anchor="end">{escape(y_fmt(tick))}</text>'
        )
    parts.append(
        f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" y2="{_H - _MB}" '
        f'class="baseline"/>'
    )
    label_every = max(1, n // 16)
    for i, (label, value) in enumerate(zip(labels, values)):
        cx = _ML + span * (i + 0.5)
        y = sy(value)
        h = max(0.0, _H - _MB - y)
        text = tip(label, value) if tip is not None else f"{label}: {y_fmt(value)}"
        parts.append(
            f'<rect class="bar s1" x="{cx - bar_w / 2:.1f}" y="{y:.1f}" '
            f'width="{bar_w:.1f}" height="{h:.1f}" rx="2">'
            f"<title>{escape(text)}</title></rect>"
        )
        if i % label_every == 0:
            parts.append(
                f'<text x="{cx:.1f}" y="{_H - _MB + 16}" class="tick" '
                f'text-anchor="middle">{escape(label)}</text>'
            )
    if y_label:
        parts.append(
            f'<text x="{_ML}" y="{_MT - 2}" class="axis-label" '
            f'text-anchor="start">{escape(y_label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _timeline_rows(
    rows: Sequence[dict],
    t_total: float,
    *,
    row_h: int = 24,
    label_w: int = 170,
) -> str:
    """Horizontal time-positioned bars (waterfall / worker lanes).

    ``rows``: ``{label, start, dur, cls?, tip?}`` with times in seconds
    relative to a common origin; ``t_total`` is the full timeline span.
    """
    if not rows or t_total <= 0:
        return '<p class="note">(no spans recorded)</p>'
    width = _W
    height = _MT + row_h * len(rows) + _MB
    plot_w = width - label_w - _MR

    def sx(t: float) -> float:
        return label_w + (t / t_total) * plot_w

    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'preserveAspectRatio="xMidYMid meet">'
    ]
    for tick in _nice_ticks(0.0, t_total, 5):
        if tick > t_total * 1.001:
            continue
        x = sx(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MT}" x2="{x:.1f}" '
            f'y2="{height - _MB}" class="grid"/>'
            f'<text x="{x:.1f}" y="{height - _MB + 16}" class="tick" '
            f'text-anchor="middle">{escape(_fmt_s(tick))}</text>'
        )
    for i, row in enumerate(rows):
        y = _MT + row_h * i
        bar_y = y + (row_h - 14) / 2
        x0 = sx(max(0.0, row["start"]))
        w = max(2.0, (row["dur"] / t_total) * plot_w)
        cls = row.get("cls", "s1")
        tip_text = row.get(
            "tip", f"{row['label']}: {_fmt_s(row['dur'])}"
        )
        parts.append(
            f'<text x="{label_w - 8}" y="{y + row_h / 2 + 3.5:.1f}" '
            f'class="row-label" text-anchor="end">'
            f"{escape(str(row['label']))}</text>"
        )
        parts.append(
            f'<rect class="bar {cls}" x="{x0:.1f}" y="{bar_y:.1f}" '
            f'width="{w:.1f}" height="14" rx="2">'
            f"<title>{escape(tip_text)}</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _legend(entries: Sequence[tuple[str, str]]) -> str:
    """Legend chips: [(label, series-class)] — only for >= 2 series."""
    if len(entries) < 2:
        return ""
    chips = "".join(
        f'<span class="chip"><span class="swatch {cls}"></span>'
        f"{escape(label)}</span>"
        for label, cls in entries
    )
    return f'<div class="legend">{chips}</div>'


def _panel(panel_id: str, title: str, body: str, caption: str = "") -> str:
    cap = f'<p class="caption">{escape(caption)}</p>' if caption else ""
    return (
        f'<section class="panel" id="{panel_id}">'
        f"<h2>{escape(title)}</h2>{body}{cap}</section>"
    )


def _note(text: str) -> str:
    return f'<p class="note">{escape(text)}</p>'


def _tiles(entries: Sequence[tuple[object, str, str]]) -> str:
    """A tile strip: ``(value, label, cls)`` triples, cls in ink/good/crit."""
    tiles = "".join(
        f'<div class="tile"><div class="tile-value {cls}">'
        f"{escape(str(value))}</div>"
        f'<div class="tile-label">{escape(label)}</div></div>'
        for value, label, cls in entries
    )
    return f'<div class="tiles">{tiles}</div>'


# ---------------------------------------------------------------------------
# Data extraction from manifests
# ---------------------------------------------------------------------------
def _num(value: object) -> float | None:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def _pipeline_wall(manifest: "RunManifest") -> float | None:
    return _num(manifest.stage_timings.get("pipeline.run"))


def _patterns_per_sec(manifest: "RunManifest") -> float | None:
    wall = _pipeline_wall(manifest)
    n = _num(manifest.results.get("n_patterns"))
    if wall and n:
        return n / wall
    return None


def _latest_with(
    manifests: Sequence["RunManifest"], predicate: Callable
) -> "RunManifest | None":
    for manifest in reversed(manifests):
        if predicate(manifest):
            return manifest
    return None


def _walk_spans(record: dict, depth: int = 0):
    yield record, depth
    for child in record.get("children", []):
        if isinstance(child, dict):
            yield from _walk_spans(child, depth + 1)


def _engine_kind(manifest: "RunManifest") -> str | None:
    """Engine kind (python/numpy) of a run, None for pre-registry manifests.

    The ``kind`` field appeared with the engine registry; histories recorded
    before it carry only the serial/parallel mode, and this returns None so
    callers can degrade to an unlabelled rendering instead of guessing.
    """
    engine = manifest.engine if isinstance(manifest.engine, dict) else {}
    kind = engine.get("kind")
    return str(kind) if kind else None


def _engine_mix_caption(manifests: Sequence["RunManifest"]) -> str:
    """Summarise which engine kinds produced a history, oldest schema last."""
    counts: dict[str, int] = {}
    for manifest in manifests:
        kind = _engine_kind(manifest) or "pre-engine-schema"
        counts[kind] = counts.get(kind, 0) + 1
    if not counts or set(counts) == {"pre-engine-schema"}:
        return ""
    ordered = sorted(
        counts.items(), key=lambda kv: (kv[0] == "pre-engine-schema", kv[0])
    )
    return "engines: " + ", ".join(
        f"{kind} ×{count}" for kind, count in ordered
    )


# ---------------------------------------------------------------------------
# Panels
# ---------------------------------------------------------------------------
def _trend_panel(manifests: Sequence["RunManifest"]) -> str:
    runs = list(enumerate(manifests))

    def chart(metric: Callable, y_label: str, y_fmt=_fmt_num, y_log=False):
        points = [
            (float(i), value)
            for i, m in runs
            if (value := metric(m)) is not None
        ]
        if not points:
            return _note("not recorded in this history")
        return _line_chart(
            [{"label": y_label, "cls": "s1", "points": points, "markers": True}],
            y_label=y_label,
            x_fmt=lambda v: str(int(v)),
            y_fmt=y_fmt,
            y_log=y_log,
        )

    grid = (
        '<div class="chart-grid">'
        + "".join(
            f"<div><h3>{escape(title)}</h3>{svg}</div>"
            for title, svg in (
                (
                    "Stuck-at coverage T",
                    chart(
                        lambda m: _num(m.results.get("final_T")),
                        "T (final)",
                        y_fmt=lambda v: f"{v:.3f}",
                    ),
                ),
                (
                    "Defect level (ppm)",
                    chart(
                        lambda m: _num(m.results.get("final_DL")),
                        "DL ppm",
                        y_fmt=_fmt_ppm,
                        y_log=True,
                    ),
                ),
                (
                    "Pipeline wall time",
                    chart(_pipeline_wall, "seconds", y_fmt=_fmt_s),
                ),
                (
                    "Throughput",
                    chart(_patterns_per_sec, "patterns/s"),
                ),
            )
        )
        + "</div>"
    )
    caption = (
        f"{len(manifests)} recorded run(s); x-axis is the run index in "
        "history order."
    )
    mix = _engine_mix_caption(manifests)
    if mix:
        caption += f" {mix}."
    return _panel("panel-trends", "Run history", grid, caption)


def _coverage_panel(manifests: Sequence["RunManifest"]) -> str:
    manifest = _latest_with(manifests, lambda m: bool(m.curves.get("k")))
    if manifest is None:
        return _panel(
            "panel-coverage",
            "Coverage growth & DL(T)",
            _note(
                "no per-run curves in this history — record runs with "
                "--trace using the current schema to populate this panel"
            ),
        )
    curves = manifest.curves
    ks = [float(k) for k in curves.get("k", [])]
    t_series = [float(v) for v in curves.get("T", [])]
    theta = [float(v) for v in curves.get("theta", [])]
    growth = _legend([("T(k) stuck-at", "s1"), ("theta(k) weighted", "s2")])
    growth += _line_chart(
        [
            {"label": "T(k)", "cls": "s1", "points": list(zip(ks, t_series))},
            {"label": "theta(k)", "cls": "s2", "points": list(zip(ks, theta))},
        ],
        y_label="coverage",
        x_fmt=lambda v: _fmt_num(v),
        y_fmt=lambda v: f"{v:.2f}",
    )
    dl = [float(v) for v in curves.get("DL", [])]
    fit_t = [float(v) for v in curves.get("fit_T", [])]
    fit_dl = [float(v) for v in curves.get("fit_DL", [])]
    dlt = _legend([("eq.-11 fit", "s1"), ("measured DL(theta(k))", "s2")])
    dlt += _line_chart(
        [
            {"label": "fit", "cls": "s1", "points": list(zip(fit_t, fit_dl))},
            {
                "label": "measured",
                "cls": "s2",
                "points": list(zip(t_series, dl)),
                "line": False,
                "markers": True,
            },
        ],
        y_label="DL (ppm, log)",
        x_fmt=lambda v: f"{v:.2f}",
        y_fmt=_fmt_ppm,
        y_log=True,
        tip=lambda label, x, y: f"{label}: T={x:.4f}, DL={_fmt_ppm(y)} ppm",
    )
    body = (
        '<div class="chart-grid">'
        f"<div><h3>Coverage growth</h3>{growth}</div>"
        f"<div><h3>Defect level vs coverage</h3>{dlt}</div>"
        "</div>"
    )
    caption = (
        f"latest recorded run: {manifest.benchmark}, seed {manifest.seed}, "
        f"config {manifest.config_hash[:12]}"
    )
    return _panel("panel-coverage", "Coverage growth & DL(T)", body, caption)


def _ndetection_panel(manifests: Sequence["RunManifest"]) -> str:
    manifest = _latest_with(
        manifests, lambda m: bool(m.curves.get("n_detection"))
    )
    if manifest is None:
        return _panel(
            "panel-ndetection",
            "n-detection depth",
            _note("no n-detection telemetry in this history"),
        )
    nd = manifest.curves["n_detection"]
    counts = [int(c) for c in nd.get("counts", [])]
    cap = int(nd.get("depth_cap", len(counts) - 1))
    labels = [str(d) for d in range(len(counts))]
    if labels:
        labels[-1] = f"{cap}+"
    svg = _bar_chart(
        labels,
        [float(c) for c in counts],
        y_label="faults",
        y_fmt=lambda v: _fmt_num(v),
        tip=lambda label, v: f"detected {label} times: {int(v)} fault(s)",
    )
    coverage_ge = [float(v) for v in nd.get("coverage_ge", [])]
    extra = ""
    if coverage_ge:
        cells = "".join(
            f"<td>{100.0 * v:.1f}%</td>" for v in coverage_ge
        )
        heads = "".join(
            f"<th>n&ge;{n}</th>" for n in range(1, len(coverage_ge) + 1)
        )
        extra = (
            '<table class="data"><thead><tr><th>coverage</th>'
            f"{heads}</tr></thead><tbody><tr><td>share</td>{cells}</tr>"
            "</tbody></table>"
        )
    caption = (
        "faults by detection count over the applied sequence "
        "(depth 0 = never detected); n-detection sets after Pomeranz & Reddy"
    )
    return _panel(
        "panel-ndetection", "n-detection depth", svg + extra, caption
    )


def _waterfall_panel(manifests: Sequence["RunManifest"]) -> str:
    manifest = _latest_with(manifests, lambda m: bool(m.spans))
    if manifest is None:
        return _panel(
            "panel-waterfall",
            "Pipeline waterfall",
            _note("no spans in this history — record runs with --trace"),
        )
    root = next(
        (s for s in manifest.spans if s.get("name") == "pipeline.run"),
        manifest.spans[0],
    )
    t0 = _num(root.get("t0"))
    t1 = _num(root.get("t1"))
    rows: list[dict] = []
    if t0 is not None and t1 is not None and t1 > t0:
        total = t1 - t0
        seen: dict[str, int] = {}
        for record, depth in _walk_spans(root):
            if depth > 2 or len(rows) >= 16:
                continue
            s0, s1_ = _num(record.get("t0")), _num(record.get("t1"))
            if s0 is None or s1_ is None:
                continue
            name = str(record.get("name", "?"))
            # Repeated same-name spans (per-vector ATPG sims) collapse to
            # their first occurrence to keep the waterfall readable.
            if seen.get(name):
                continue
            seen[name] = 1
            rows.append(
                {
                    "label": ("  " * depth) + name,
                    "start": s0 - t0,
                    "dur": s1_ - s0,
                    "cls": "s1" if depth != 1 else "s2",
                    "tip": (
                        f"{name}: {_fmt_s(s1_ - s0)} "
                        f"(starts at {_fmt_s(s0 - t0)})"
                    ),
                }
            )
        body = _timeline_rows(rows, total)
    else:
        body = _note("spans in this history carry no timeline endpoints")
    caption = (
        f"span timeline of the latest traced run ({manifest.benchmark}); "
        "hover a bar for exact timings"
    )
    return _panel("panel-waterfall", "Pipeline waterfall", body, caption)


def _lanes_panel(manifests: Sequence["RunManifest"]) -> str:
    manifest = _latest_with(
        manifests,
        lambda m: any(
            record.get("attributes", {}).get("worker_pid") is not None
            for root in m.spans
            for record, _ in _walk_spans(root)
        ),
    )
    if manifest is None:
        return _panel(
            "panel-lanes",
            "Worker lanes",
            _note(
                "no worker telemetry in this history (serial runs, or the "
                "parallel engine never started a pool)"
            ),
        )
    chunk_spans: list[dict] = []
    for root in manifest.spans:
        for record, _ in _walk_spans(root):
            attrs = record.get("attributes", {})
            if attrs.get("worker_pid") is not None:
                chunk_spans.append(record)
    t0 = min(_num(s.get("t0")) or 0.0 for s in chunk_spans)
    t1 = max(_num(s.get("t1")) or 0.0 for s in chunk_spans)
    by_pid: dict[int, list[dict]] = {}
    for record in chunk_spans:
        by_pid.setdefault(int(record["attributes"]["worker_pid"]), []).append(
            record
        )
    rows: list[dict] = []
    for lane, (pid, records) in enumerate(sorted(by_pid.items())):
        for record in records:
            s0 = _num(record.get("t0")) or 0.0
            s1_ = _num(record.get("t1")) or 0.0
            chunk = record.get("attributes", {}).get("chunk_id", "?")
            rows.append(
                {
                    "label": f"pid {pid}" if record is records[0] else "",
                    "start": s0 - t0,
                    "dur": s1_ - s0,
                    "cls": "s1" if lane % 2 == 0 else "s2",
                    "tip": (
                        f"worker {pid} chunk {chunk}: {_fmt_s(s1_ - s0)}"
                    ),
                }
            )
    # One visual row per span, grouped by pid (label only on the first).
    busy = sum(r["dur"] for r in rows)
    total = max(1e-9, t1 - t0)
    utilisation = busy / (total * max(1, len(by_pid)))
    body = _timeline_rows(rows, total)
    caption = (
        f"{len(by_pid)} worker process(es), {len(chunk_spans)} chunk "
        f"span(s); lane utilisation {100.0 * utilisation:.0f}% of the "
        "parallel window (alternating colors distinguish adjacent lanes)"
    )
    return _panel("panel-lanes", "Worker lanes", body, caption)


def _analysis_panel(manifests: Sequence["RunManifest"]) -> str:
    """Redundancy-prover summary of the latest run that recorded one.

    Manifests written before the prover existed (or runs with the prover
    ablated) carry no ``results["prover"]`` record; the panel degrades to a
    note instead of failing, so old histories still render.
    """
    manifest = _latest_with(
        manifests, lambda m: isinstance(m.results.get("prover"), dict)
    )
    if manifest is None:
        return _panel(
            "panel-analysis",
            "Redundancy prover",
            _note(
                "no prover records in this history — runs predate the "
                "prover or ran with prove_redundancy disabled"
            ),
        )
    prover = manifest.results["prover"]
    podem = prover.get("podem") or {}
    certs_failed = int(_num(prover.get("certs_failed")) or 0)
    by_method = prover.get("by_method") or {}
    methods = ", ".join(
        f"{name}: {count}" for name, count in sorted(by_method.items())
    )
    body = _tiles(
        (
            (prover.get("n_proved", 0), "faults proved untestable", "ink"),
            (prover.get("n_screened", "?"), "faults screened", "ink"),
            (prover.get("depth", "?"), "recursion depth", "ink"),
            (prover.get("n_learned", 0), "learned implications", "ink"),
            (
                certs_failed,
                "certificates failed",
                "crit" if certs_failed else "good",
            ),
            (podem.get("backtracks", 0), "PODEM backtracks", "ink"),
            (podem.get("learned_prunes", 0), "learned prunes", "ink"),
            (podem.get("learned_conflicts", 0), "learned conflicts", "ink"),
        )
    )
    if methods:
        body += f'<p class="note">proofs by method — {escape(methods)}</p>'
    caption = (
        f"latest run with prover records ({escape(manifest.benchmark or '?')})"
        "; proved faults leave the coverage denominator before any vector "
        "is generated, each carrying an independently checked certificate"
    )
    return _panel("panel-analysis", "Redundancy prover", body, caption)


def _resilience_panel(manifests: Sequence["RunManifest"]) -> str:
    retries = salvaged = degraded = restored = recomputed = 0
    reported = 0
    for manifest in manifests:
        r = manifest.resilience
        if not isinstance(r, dict) or not r:
            continue
        reported += 1
        retries += int(_num(r.get("chunk_retries")) or 0)
        salvaged += int(_num(r.get("chunks_salvaged")) or 0)
        degraded += 1 if r.get("engine_degraded") else 0
        restored += len(r.get("stages_restored") or [])
        recomputed += len(r.get("stages_recomputed") or [])
    if not reported:
        return _panel(
            "panel-resilience",
            "Resilience",
            _note("no resilience records in this history"),
        )
    degraded_cls = "crit" if degraded else "good"
    body = _tiles(
        (
            (degraded, "degraded run(s)", degraded_cls),
            (retries, "chunk retries", "ink"),
            (salvaged, "chunks salvaged", "ink"),
            (restored, "stages restored", "ink"),
            (recomputed, "stages recomputed", "ink"),
        )
    )
    caption = (
        f"aggregated over {reported} run(s) with resilience records; a "
        "degraded run completed but lost pool chunks to retries or the "
        "serial salvage path"
    )
    return _panel("panel-resilience", "Resilience", body, caption)


def _attribution_panel(manifests: Sequence["RunManifest"]) -> str:
    manifest = _latest_with(manifests, lambda m: bool(m.attribution))
    if manifest is None:
        return _panel(
            "panel-attribution",
            "Where the time goes",
            _note(
                "no cost attribution in this history — run with "
                "--attribution to populate this panel"
            ),
        )
    snap = manifest.attribution
    parts: list[str] = []
    stage_wall = snap.get("stage_wall_s", {})
    if isinstance(stage_wall, dict) and stage_wall:
        total = sum(stage_wall.values()) or 1.0
        items = sorted(stage_wall.items(), key=lambda kv: -kv[1])
        rows = [
            {
                "label": name,
                "start": 0.0,
                "dur": seconds,
                "cls": "s1",
                "tip": (
                    f"{name}: {_fmt_s(seconds)} "
                    f"({100.0 * seconds / total:.1f}% of attributed wall)"
                ),
            }
            for name, seconds in items
        ]
        parts.append("<h3>Stage wall time</h3>")
        parts.append(_timeline_rows(rows, items[0][1] if items else 1.0))
    cones = snap.get("cone_buckets", {})
    if isinstance(cones, dict) and cones:
        labels = sorted(cones)
        parts.append("<h3>Gate evaluations by cone size</h3>")
        parts.append(
            _bar_chart(
                labels,
                [float(cones[label].get("gate_evals", 0)) for label in labels],
                y_label="gate evals",
                tip=lambda label, v: (
                    f"cone bucket {label}: {_fmt_num(v)} gate evals, "
                    f"{cones.get(label, {}).get('faults', 0)} fault(s)"
                ),
            )
        )
    stages = snap.get("stages", {})
    if isinstance(stages, dict) and stages:
        rows_html = "".join(
            f"<tr><td>{escape(component)}.{escape(quantity)}</td>"
            f"<td>{_fmt_num(float(value))}</td></tr>"
            for component, counters in sorted(stages.items())
            for quantity, value in sorted(counters.items())
        )
        parts.append(
            '<h3>Kernel work</h3><table class="data"><thead><tr>'
            "<th>counter</th><th>total</th></tr></thead>"
            f"<tbody>{rows_html}</tbody></table>"
        )
    memory = snap.get("memory_peak_bytes", {})
    if isinstance(memory, dict) and memory:
        rows_html = "".join(
            f"<tr><td>{escape(name)}</td><td>{peak / 1e6:.2f} MB</td></tr>"
            for name, peak in sorted(memory.items(), key=lambda kv: -kv[1])
        )
        parts.append(
            '<h3>Memory peaks (tracemalloc)</h3><table class="data">'
            "<thead><tr><th>stage</th><th>peak</th></tr></thead>"
            f"<tbody>{rows_html}</tbody></table>"
        )
    kind = _engine_kind(manifest)
    captions = [
        f"fault-sim engine: {kind}"
        if kind
        else "fault-sim engine: not recorded (pre-engine-registry run)"
    ]
    reconcile = snap.get("reconcile", {})
    if isinstance(reconcile, dict) and reconcile:
        captions.append(
            f"reconciliation: {float(reconcile.get('attributed_wall_s', 0)):.3f}s "
            f"attributed of {float(reconcile.get('pipeline_wall_s', 0)):.3f}s "
            f"pipeline wall "
            f"({100.0 * float(reconcile.get('coverage', 0)):.1f}% covered)"
        )
    caption = "; ".join(captions)
    return _panel(
        "panel-attribution", "Where the time goes", "".join(parts), caption
    )


# ---------------------------------------------------------------------------
# Document assembly
# ---------------------------------------------------------------------------
_CSS = """
:root {
  color-scheme: light dark;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834;
  --good: #0ca30c; --critical: #d03b3b;
  --border: rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926;
    --border: rgba(255, 255, 255, 0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header { max-width: 1240px; margin: 0 auto 16px; }
header h1 { font-size: 20px; margin: 0 0 4px; }
header p { color: var(--text-secondary); margin: 0; }
main {
  max-width: 1240px; margin: 0 auto; display: grid; gap: 16px;
  grid-template-columns: repeat(auto-fit, minmax(580px, 1fr));
}
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; min-width: 0;
}
.panel h2 { font-size: 15px; margin: 0 0 10px; }
.panel h3 {
  font-size: 12px; font-weight: 600; color: var(--text-secondary);
  margin: 12px 0 4px;
}
svg { width: 100%; height: auto; display: block; }
.grid { stroke: var(--grid); stroke-width: 1; }
.baseline { stroke: var(--baseline); stroke-width: 1; }
.tick, .axis-label, .row-label {
  font: 11px system-ui, sans-serif; fill: var(--muted);
  font-variant-numeric: tabular-nums;
}
.row-label { fill: var(--text-secondary); }
.axis-label { fill: var(--text-secondary); }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; }
.line.s1 { stroke: var(--series-1); } .line.s2 { stroke: var(--series-2); }
.dot.s1 { fill: var(--series-1); } .dot.s2 { fill: var(--series-2); }
.bar.s1 { fill: var(--series-1); } .bar.s2 { fill: var(--series-2); }
.legend { display: flex; gap: 14px; margin: 2px 0 6px; flex-wrap: wrap; }
.chip {
  display: inline-flex; align-items: center; gap: 6px;
  font-size: 12px; color: var(--text-secondary);
}
.swatch {
  width: 10px; height: 10px; border-radius: 2px; display: inline-block;
}
.swatch.s1 { background: var(--series-1); }
.swatch.s2 { background: var(--series-2); }
.chart-grid {
  display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fit, minmax(250px, 1fr));
}
.caption, .note { color: var(--muted); font-size: 12px; margin: 8px 0 0; }
.note { font-style: italic; }
.tiles {
  display: grid; gap: 10px;
  grid-template-columns: repeat(auto-fit, minmax(120px, 1fr));
}
.tile {
  border: 1px solid var(--border); border-radius: 6px;
  padding: 10px 12px; text-align: center;
}
.tile-value {
  font-size: 24px; font-weight: 600;
  font-variant-numeric: tabular-nums;
}
.tile-value.good { color: var(--good); }
.tile-value.crit { color: var(--critical); }
.tile-label { color: var(--text-secondary); font-size: 11px; }
table.data {
  border-collapse: collapse; font-size: 12px; margin-top: 4px;
  font-variant-numeric: tabular-nums; width: 100%;
}
table.data th, table.data td {
  text-align: left; padding: 3px 10px 3px 0;
  border-bottom: 1px solid var(--grid); color: var(--text-secondary);
}
table.data th { color: var(--muted); font-weight: 600; }
footer {
  max-width: 1240px; margin: 16px auto 0; color: var(--muted);
  font-size: 12px;
}
"""


def build_report(
    manifests: Sequence["RunManifest"],
    last: int | None = None,
    source: str | None = None,
) -> str:
    """Render the full dashboard HTML for a manifest history.

    ``last`` keeps only the most recent N runs; ``source`` names the history
    file(s) in the header.  The output is a complete standalone document —
    no scripts, no external references.
    """
    manifests = list(manifests)
    if last is not None and last > 0:
        manifests = manifests[-last:]
    benchmarks = sorted({m.benchmark for m in manifests})
    subtitle = (
        f"{len(manifests)} run(s)"
        + (f" · {', '.join(benchmarks)}" if benchmarks else "")
        + (f" · {source}" if source else "")
    )
    panels = (
        _trend_panel(manifests)
        + _coverage_panel(manifests)
        + _ndetection_panel(manifests)
        + _waterfall_panel(manifests)
        + _lanes_panel(manifests)
        + _analysis_panel(manifests)
        + _resilience_panel(manifests)
        + _attribution_panel(manifests)
        if manifests
        else "".join(
            _panel(panel_id, panel_id.removeprefix("panel-").title(),
                   _note("no runs recorded"))
            for panel_id in PANEL_IDS
        )
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        "<title>repro performance observatory</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        "<header><h1>Performance observatory</h1>"
        f"<p>{escape(subtitle)}</p></header>\n"
        f"<main>{panels}</main>\n"
        "<footer>generated by python -m repro obs html — self-contained, "
        "no external resources; hover any mark for exact values</footer>\n"
        "</body>\n</html>\n"
    )


def write_report(
    path: str,
    manifests: Sequence["RunManifest"],
    last: int | None = None,
    source: str | None = None,
) -> int:
    """Write the dashboard to ``path``; returns the byte count written."""
    document = build_report(manifests, last=last, source=source)
    data = document.encode("utf-8")
    with open(path, "wb") as sink:
        sink.write(data)
    return len(data)
